// Shared helpers for the zktel benchmark harness: deterministic workload
// construction matching the paper's evaluation setup (4 routers, one
// commitment window, N total NetFlow records).
#pragma once

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/zkt.h"
#include "obs/metrics.h"
#include "sim/workload.h"

namespace zkt::bench {

struct CommittedWorkload {
  // unique_ptr because CommitmentBoard holds a mutex (not movable).
  std::unique_ptr<core::CommitmentBoard> board =
      std::make_unique<core::CommitmentBoard>();
  std::vector<netflow::RLogBatch> batches;
  u64 total_records = 0;
};

/// Build `record_count` distinct-flow records spread over `router_count`
/// routers in one window, each batch committed and published.
inline CommittedWorkload make_committed_workload(u64 record_count,
                                                 u32 router_count = 4,
                                                 u64 window_id = 1,
                                                 u64 seed = 42) {
  CommittedWorkload out;
  std::vector<crypto::SchnorrKeyPair> keys;
  for (u32 r = 0; r < router_count; ++r) {
    keys.push_back(crypto::schnorr_keygen_from_seed(
        "bench-router-" + std::to_string(seed) + "-" + std::to_string(r)));
  }
  Xoshiro256 rng(seed);
  std::vector<netflow::RLogBatch> batches(router_count);
  for (u32 r = 0; r < router_count; ++r) {
    batches[r].router_id = r;
    batches[r].window_id = window_id;
  }
  for (u64 i = 0; i < record_count; ++i) {
    netflow::FlowRecord rec;
    netflow::PacketObservation pkt;
    pkt.key = sim::synth_flow_key(seed * 1'000'000 + i, seed);
    pkt.timestamp_ms = 1000 + i;
    pkt.bytes = 800 + static_cast<u32>(rng.uniform(700));
    pkt.hop_count = static_cast<u8>(2 + rng.uniform(10));
    pkt.rtt_us = 10'000 + static_cast<u32>(rng.uniform(50'000));
    pkt.jitter_us = static_cast<u32>(rng.uniform(4'000));
    rec.observe(pkt);
    pkt.timestamp_ms += 5;
    pkt.dropped = rng.uniform(100) == 0;
    rec.observe(pkt);
    batches[i % router_count].records.push_back(std::move(rec));
  }
  for (u32 r = 0; r < router_count; ++r) {
    auto commitment =
        core::make_commitment(batches[r], keys[r], window_id * 5000);
    if (!commitment.ok() || !out.board->publish(commitment.value()).ok()) {
      std::abort();
    }
  }
  out.batches = std::move(batches);
  out.total_records = record_count;
  return out;
}

/// Commit a follow-up window over the SAME flows (same seed -> same keys) so
/// aggregating it exercises Algorithm 1's update path: every record merges
/// into an existing CLog entry and triggers the per-record Merkle
/// verification against the previous round's tree.
inline std::vector<netflow::RLogBatch> add_window(CommittedWorkload& workload,
                                                  u64 record_count,
                                                  u64 window_id,
                                                  u32 router_count = 4,
                                                  u64 seed = 42) {
  auto next = make_committed_workload(record_count, router_count, window_id,
                                      seed);
  // Republish next window's commitments onto the original board.
  for (u32 r = 0; r < router_count; ++r) {
    auto key = crypto::schnorr_keygen_from_seed(
        "bench-router-" + std::to_string(seed) + "-" + std::to_string(r));
    auto commitment =
        core::make_commitment(next.batches[r], key, window_id * 5000);
    if (!commitment.ok() ||
        !workload.board->publish(commitment.value()).ok()) {
      std::abort();
    }
  }
  return std::move(next.batches);
}

/// The entry counts of the paper's Figure 4 / Table 1 sweeps.
inline const std::vector<u64>& paper_sweep() {
  static const std::vector<u64> sweep = {50, 100, 500, 1000, 2000, 3000};
  return sweep;
}

/// Write the process-wide obs snapshot as BENCH_<name>.metrics.json in the
/// working directory. Every bench calls this before exiting, so all BENCH_*
/// trajectories share one schema (docs/OBSERVABILITY.md): prover segment
/// timings, aggregation round latency histograms, per-shard wall times, etc.
inline void write_metrics_snapshot(const std::string& bench_name) {
  const std::string path = "BENCH_" + bench_name + ".metrics.json";
  std::ofstream out(path);
  out << obs::Registry::instance().snapshot().to_json();
  if (out) {
    std::printf("\nmetrics snapshot -> %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }
}

}  // namespace zkt::bench
