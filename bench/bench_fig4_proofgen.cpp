// Figure 4 reproduction: proof-generation latency for aggregation and query
// vs the number of NetFlow records (50 .. 3000), on the paper's setup shape
// (4 routers, 5 s commitment windows, SUM(hop_count) query with src/dst
// filter).
//
// Methodology: window 1 establishes the CLog state (genesis round, not
// measured); the measured aggregation is window 2 over the SAME flows, so
// every record exercises Algorithm 1's full update path — RLog hash checks,
// per-record Merkle verification against T_prev (line 16), aggregation, and
// the in-zkVM Merkle rebuild (line 25) that the paper's profiling identifies
// as the dominant cost. The query column uses the paper's §4.2 selective
// mechanism (Merkle-open only the relevant entries); the complete-scan
// column is our extension that additionally proves completeness.
//
// The paper reports minutes (RISC Zero STARK prover); our prover is a
// trace-commitment argument, so absolute times are milliseconds. The
// reproduced *shape*: both curves grow with input size, aggregation is the
// most expensive phase at equal size (more in-zkVM hashing), verification
// stays flat (see bench_verification), and zkVM cycle counts — the quantity
// that drives the paper's latency — grow the same way.
#include <cstdio>

#include "bench_util.h"

using namespace zkt;

int main() {
  std::printf("=== Figure 4: proof generation latency ===\n");
  std::printf("%8s | %12s %12s | %15s %15s | %15s %15s\n", "records",
              "agg ms", "agg cycles", "sel query ms", "sel query cyc",
              "full query ms", "full query cyc");
  std::printf("---------+----------------------------+------------------------"
              "---------+---------------------------------\n");

  for (u64 n : bench::paper_sweep()) {
    auto workload = bench::make_committed_workload(n);
    core::AggregationService aggregation(*workload.board);
    auto genesis = aggregation.aggregate(workload.batches);
    if (!genesis.ok()) {
      std::printf("genesis failed at %llu: %s\n", (unsigned long long)n,
                  genesis.error().to_string().c_str());
      return 1;
    }

    // Measured round: same flows again -> all updates.
    auto window2 = bench::add_window(workload, n, /*window_id=*/2);
    auto round = aggregation.aggregate(window2);
    if (!round.ok()) {
      std::printf("aggregation failed at %llu: %s\n", (unsigned long long)n,
                  round.error().to_string().c_str());
      return 1;
    }

    // The paper's example query, against the aggregated state.
    const auto& first_key = workload.batches[0].records[0].key;
    core::Query query =
        core::Query::sum(core::QField::hop_sum)
            .and_where(core::QField::src_ip, core::CmpOp::eq, first_key.src_ip)
            .and_where(core::QField::dst_ip, core::CmpOp::eq, first_key.dst_ip);
    core::QueryService queries(aggregation);
    auto selective = queries.run(
        query, {.mode = core::QueryMode::selective,
                .prove_options_override = {}});
    auto complete = queries.run(query);
    if (!selective.ok() || !complete.ok()) {
      std::printf("query failed at %llu\n", (unsigned long long)n);
      return 1;
    }
    if (selective.value().value != complete.value().value) {
      std::printf("query modes disagree at %llu\n", (unsigned long long)n);
      return 1;
    }

    std::printf("%8llu | %12.2f %12llu | %15.2f %15llu | %15.2f %15llu\n",
                (unsigned long long)n, round.value().prove_info.total_ms,
                (unsigned long long)round.value().prove_info.cycles,
                selective.value().prove_info.total_ms,
                (unsigned long long)selective.value().prove_info.cycles,
                complete.value().prove_info.total_ms,
                (unsigned long long)complete.value().prove_info.cycles);

    if (n == 3000) {
      // The paper: "Profiling with RISC Zero indicates the majority of this
      // overhead stems from Merkle tree updates performed within the zkVM."
      std::printf("\naggregation cycle breakdown at %llu records "
                  "(weighted: SHA-256 row = 68 cycle-equivalents, as in a "
                  "STARK prover; total %llu weighted):\n",
                  (unsigned long long)n,
                  (unsigned long long)round.value()
                      .prove_info.weighted_cycles());
      for (const auto& [region, cycles] : round.value().prove_info.regions) {
        std::printf("  %-26s %10llu cycles (%5.1f%%)\n", region.c_str(),
                    (unsigned long long)cycles,
                    100.0 * static_cast<double>(cycles) /
                        static_cast<double>(round.value().prove_info.cycles));
      }
    }
  }

  std::printf("\npaper (RISC Zero v3.0, Threadripper PRO 5955WX): aggregation"
              " ~87 min, query ~16 min at 3000 entries; both grow with input\n"
              "size and aggregation dominates, driven by in-zkVM Merkle work "
              "— reproduced by the cycle columns above (agg > query,\n"
              "selective query cheapest because it only opens relevant "
              "entries, exactly as §4.2 describes).\n");
  zkt::bench::write_metrics_snapshot("fig4_proofgen");
  return 0;
}
