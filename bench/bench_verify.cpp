// Chain-verification throughput: sequential accept_round walk vs
// core::BatchVerifier (chain-continuity dedup, serial) vs BatchVerifier over
// the shared thread pool -> BENCH_verify.json.
//
// Methodology: an R-round composite-seal chain (full-rebuild and
// incremental-delta variants) is verified three ways from the same receipt
// vector:
//
//   sequential — one zvm::Verifier, one receipt at a time, no cache: every
//                composite round re-verifies its embedded predecessor
//                receipt (and that receipt's own embedded chain), so the
//                walk does O(R^2) receipt verifications;
//   batch      — BatchVerifier with parallel=false: the predecessor cache
//                collapses each round's assumption pass to a digest compare,
//                O(R) receipt verifications on one thread;
//   pooled     — the same batch fanned out over common::ThreadPool::shared()
//                (ZKT_POOL_THREADS), per-receipt hashing still flowing
//                through the batched SHA-256 backends.
//
// All three must accept every receipt and land on the same chain head — the
// equivalence streaming_audit_test asserts in miniature, checked here at
// bench scale. The headline column is receipts/sec; the acceptance bar for
// this harness is pooled >= 2x sequential.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/batch_verifier.h"
#include "crypto/sha256_backend.h"

using namespace zkt;

namespace {

constexpr u64 kRounds = 10;
constexpr u64 kRecords = 192;
constexpr int kIters = 5;

/// Prove an R-round composite chain in the given mode. Incremental mode
/// re-touches the same flows each window, so rounds 1..R-1 run the AGGI
/// delta guest; full mode rebuilds every round.
std::vector<zvm::Receipt> build_chain(core::AggMode mode, u64 seed) {
  auto workload = bench::make_committed_workload(kRecords, 4, 1, seed);
  zvm::ProveOptions composite;
  composite.seal_kind = zvm::SealKind::composite;
  core::AggregationService service(
      *workload.board, {.prove_options = composite, .mode = mode});

  std::vector<zvm::Receipt> receipts;
  auto batches = workload.batches;
  for (u64 window = 1; window <= kRounds; ++window) {
    if (window > 1) {
      batches = bench::add_window(workload, kRecords, window, 4, seed);
    }
    auto round = service.aggregate(batches);
    if (!round.ok()) {
      std::fprintf(stderr, "round %llu failed: %s\n",
                   (unsigned long long)window,
                   round.error().to_string().c_str());
      std::exit(1);
    }
    receipts.push_back(std::move(round.value().receipt));
  }
  return receipts;
}

struct Measurement {
  double ms = 0;  ///< best-of-kIters wall time for the whole chain
  zvm::VerifyStats stats;

  double receipts_per_sec(u64 rounds) const {
    return ms > 0 ? rounds / (ms / 1e3) : 0.0;
  }
};

template <typename Body>
Measurement measure(const Body& body) {
  Measurement best;
  for (int i = 0; i < kIters; ++i) {
    zvm::VerifyStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    body(stats);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (i == 0 || ms < best.ms) {
      best.ms = ms;
      best.stats = stats;
    }
  }
  return best;
}

void require_all_ok(const std::vector<Status>& outcomes, const char* what) {
  for (const auto& outcome : outcomes) {
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s rejected a valid receipt: %s\n", what,
                   outcome.error().to_string().c_str());
      std::exit(1);
    }
  }
}

struct Cell {
  const char* chain = "";
  Measurement sequential, batch, pooled;

  double speedup() const {
    return sequential.ms > 0 && pooled.ms > 0 ? sequential.ms / pooled.ms
                                              : 0.0;
  }
};

Cell run_chain(const char* name, core::AggMode mode, u64 seed) {
  const auto receipts = build_chain(mode, seed);
  Cell cell;
  cell.chain = name;

  cell.sequential = measure([&](zvm::VerifyStats& stats) {
    zvm::Verifier verifier;
    for (const auto& receipt : receipts) {
      zvm::VerifyContext context{nullptr, &stats};
      if (!core::verify_aggregation_receipt(verifier, receipt, context)
               .ok()) {
        std::fprintf(stderr, "sequential walk rejected a valid receipt\n");
        std::exit(1);
      }
    }
  });

  cell.batch = measure([&](zvm::VerifyStats& stats) {
    core::BatchVerifier verifier({.parallel = false});
    require_all_ok(verifier.verify_aggregation(receipts, &stats), "batch");
  });

  cell.pooled = measure([&](zvm::VerifyStats& stats) {
    core::BatchVerifier verifier;
    require_all_ok(verifier.verify_aggregation(receipts, &stats), "pooled");
  });

  std::printf(
      "%12s | %9.2f %10.0f | %9.2f %10.0f | %9.2f %10.0f | %7.2fx | "
      "%6llu %8llu\n",
      name, cell.sequential.ms, cell.sequential.receipts_per_sec(kRounds),
      cell.batch.ms, cell.batch.receipts_per_sec(kRounds), cell.pooled.ms,
      cell.pooled.receipts_per_sec(kRounds), cell.speedup(),
      (unsigned long long)cell.pooled.stats.assumptions_skipped,
      (unsigned long long)cell.pooled.stats.node_hashes_shared);
  return cell;
}

}  // namespace

int main() {
  std::printf("=== chain verification throughput (%llu composite rounds, "
              "%llu records/window, %zu pool threads) ===\n",
              (unsigned long long)kRounds, (unsigned long long)kRecords,
              common::ThreadPool::shared().thread_count());
  std::printf("%12s | %9s %10s | %9s %10s | %9s %10s | %8s | %6s %8s\n",
              "chain", "seq ms", "seq r/s", "batch ms", "batch r/s",
              "pool ms", "pool r/s", "speedup", "skips", "shared");

  std::vector<Cell> cells;
  cells.push_back(run_chain("full", core::AggMode::full, 7));
  cells.push_back(run_chain("incremental", core::AggMode::incremental, 11));

  // Forced-backend sweep over the pooled path (skipped where the ISA
  // extension is unavailable; dispatch order itself is bench_hashcost's
  // subject — this row just shows verification inherits the win).
  struct BackendRow {
    const char* name;
    double ms;
  };
  std::vector<BackendRow> backend_rows;
  {
    const auto receipts = build_chain(core::AggMode::full, 7);
    for (size_t b = 0; b < crypto::kSha256BackendCount; ++b) {
      const auto backend = static_cast<crypto::Sha256Backend>(b);
      if (!crypto::sha256_force_backend(backend)) continue;
      const auto m = measure([&](zvm::VerifyStats& stats) {
        core::BatchVerifier verifier;
        require_all_ok(verifier.verify_aggregation(receipts, &stats),
                       "backend sweep");
      });
      backend_rows.push_back({crypto::sha256_backend_name(backend), m.ms});
      std::printf("%12s | pooled full chain: %9.2f ms (%0.0f r/s)\n",
                  crypto::sha256_backend_name(backend), m.ms,
                  m.receipts_per_sec(kRounds));
    }
    crypto::sha256_force_backend(std::nullopt);
  }

  std::ofstream out("BENCH_verify.json");
  out << "{\n  \"rounds\": " << kRounds
      << ",\n  \"records_per_window\": " << kRecords
      << ",\n  \"pool_threads\": " << common::ThreadPool::shared().thread_count()
      << ",\n  \"chains\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    out << "    {\"chain\": \"" << c.chain << "\""
        << ", \"sequential_ms\": " << c.sequential.ms
        << ", \"sequential_receipts_per_sec\": "
        << c.sequential.receipts_per_sec(kRounds)
        << ", \"sequential_receipts_verified\": " << c.sequential.stats.receipts
        << ", \"batch_ms\": " << c.batch.ms
        << ", \"batch_receipts_per_sec\": " << c.batch.receipts_per_sec(kRounds)
        << ", \"pooled_ms\": " << c.pooled.ms
        << ", \"pooled_receipts_per_sec\": "
        << c.pooled.receipts_per_sec(kRounds)
        << ", \"pooled_receipts_verified\": " << c.pooled.stats.receipts
        << ", \"assumptions_skipped\": " << c.pooled.stats.assumptions_skipped
        << ", \"node_hashes_shared\": " << c.pooled.stats.node_hashes_shared
        << ", \"speedup_pooled_vs_sequential\": " << c.speedup() << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"backend_sweep_full_chain_pooled_ms\": {";
  for (size_t i = 0; i < backend_rows.size(); ++i) {
    out << "\"" << backend_rows[i].name << "\": " << backend_rows[i].ms
        << (i + 1 < backend_rows.size() ? ", " : "");
  }
  out << "}\n}\n";
  if (out) {
    std::printf("\nsweep -> BENCH_verify.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_verify.json\n");
    return 1;
  }
  bench::write_metrics_snapshot("verify");

  bool met = true;
  for (const auto& c : cells) met = met && c.speedup() >= 2.0;
  std::printf("pooled >= 2x sequential: %s\n", met ? "yes" : "NO");
  return 0;
}
