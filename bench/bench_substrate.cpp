// Substrate microbenchmarks (supporting numbers for §6's setup): router
// commitment cost per 5 s window, Schnorr sign/verify, store ingest, NetFlow
// v9 encode/decode, and flow-cache metering throughput. These quantify the
// claim that the commit-side of the system is lightweight — only proving is
// expensive, and that runs off-path.
#include <benchmark/benchmark.h>

#include "core/zkt.h"
#include "sim/workload.h"

using namespace zkt;

namespace {

std::vector<netflow::FlowRecord> make_records(u64 n) {
  std::vector<netflow::FlowRecord> records;
  records.reserve(n);
  for (u64 i = 0; i < n; ++i) {
    netflow::FlowRecord rec;
    netflow::PacketObservation pkt;
    pkt.key = sim::synth_flow_key(i, 7);
    pkt.timestamp_ms = 1000 + i;
    pkt.bytes = 900;
    pkt.hop_count = 6;
    pkt.rtt_us = 20'000;
    rec.observe(pkt);
    records.push_back(std::move(rec));
  }
  return records;
}

// Full router-side commitment for one window: serialize + hash + sign.
void BM_WindowCommit(benchmark::State& state) {
  netflow::RLogBatch batch;
  batch.router_id = 1;
  batch.window_id = 1;
  batch.records = make_records(static_cast<u64>(state.range(0)));
  const auto key = crypto::schnorr_keygen_from_seed("bench");
  for (auto _ : state) {
    auto commitment = core::make_commitment(batch, key, 5000);
    benchmark::DoNotOptimize(commitment);
  }
  state.counters["records"] = static_cast<double>(batch.records.size());
}
BENCHMARK(BM_WindowCommit)->Arg(50)->Arg(500)->Arg(3000);

void BM_SchnorrSign(benchmark::State& state) {
  const auto key = crypto::schnorr_keygen_from_seed("bench-sign");
  const auto msg = crypto::sha256(std::string_view("window"));
  for (auto _ : state) {
    auto sig = crypto::schnorr_sign(key, msg, {});
    benchmark::DoNotOptimize(sig);
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const auto key = crypto::schnorr_keygen_from_seed("bench-verify");
  const auto msg = crypto::sha256(std::string_view("window"));
  const auto sig = crypto::schnorr_sign(key, msg, {}).value();
  for (auto _ : state) {
    auto ok = crypto::schnorr_verify(key.pk_view(), msg, sig);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_StoreAppend(benchmark::State& state) {
  store::LogStore store;
  netflow::RLogBatch batch;
  batch.router_id = 1;
  batch.window_id = 1;
  batch.records = make_records(50);
  const Bytes payload = batch.canonical_bytes();
  u64 k = 0;
  for (auto _ : state) {
    auto id = store.append(store::kTableRlogs, k++, 1, payload);
    benchmark::DoNotOptimize(id);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(payload.size()));
}
BENCHMARK(BM_StoreAppend);

void BM_V9EncodeDecode(benchmark::State& state) {
  const auto records = make_records(static_cast<u64>(state.range(0)));
  for (auto _ : state) {
    netflow::V9Exporter exporter(netflow::V9Config{.source_id = 1});
    netflow::V9Collector collector;
    size_t decoded = 0;
    for (const auto& packet : exporter.export_records(records, 12'345)) {
      auto got = collector.ingest(packet);
      if (!got.ok()) state.SkipWithError("decode failed");
      decoded += got.value().size();
    }
    if (decoded != records.size()) state.SkipWithError("lost records");
  }
  state.counters["records/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(records.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_V9EncodeDecode)->Arg(50)->Arg(3000);

void BM_FlowCacheObserve(benchmark::State& state) {
  auto packets = sim::zipf_workload(
      sim::ZipfWorkloadConfig{.flow_count = 4096}, 100'000);
  netflow::FlowCache cache;
  u64 i = 0;
  for (auto _ : state) {
    auto evicted = cache.observe(packets[i++ % packets.size()]);
    benchmark::DoNotOptimize(evicted);
  }
  state.counters["packets/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlowCacheObserve);

void BM_CommitmentBoardPublish(benchmark::State& state) {
  const auto key = crypto::schnorr_keygen_from_seed("board-bench");
  netflow::RLogBatch batch;
  batch.router_id = 0;
  batch.records = make_records(10);
  core::CommitmentBoard board;
  board.register_router(0, key.public_key);
  u64 window = 0;
  for (auto _ : state) {
    batch.window_id = window++;
    auto commitment = core::make_commitment(batch, key, window * 5000);
    auto status = board.publish(commitment.value());
    if (!status.ok()) state.SkipWithError("publish failed");
  }
}
BENCHMARK(BM_CommitmentBoardPublish);

}  // namespace

BENCHMARK_MAIN();
