// Proof-tree aggregation bench -> BENCH_tree.json.
//
// Two sweeps over the redesigned sharded-proving surface (core/sharded.h,
// core/fold.h, core/pipeline.h):
//
//   shard sweep    — one 2000-record window proven at 1/2/4/8 shards with
//                    the round folded into a single tree seal (join fanout
//                    2). The headline is per-round wall-clock staying ~flat
//                    as shards grow: the K shard chains prove in parallel
//                    and the K-1 joins fold at log depth on the shared
//                    pool, so added shards buy parallelism instead of
//                    adding latency. The "seal verify" column is the
//                    auditor's whole cost for the round — one succinct
//                    receipt regardless of K.
//   depth sweep    — 4 windows through ProviderPipeline at 4 shards with
//                    pipeline_depth 1/2/3. Depth 1 is the sequential loop;
//                    deeper pipelines stage window i+1 and fold window i-1
//                    while window i proves. Receipts are byte-identical at
//                    every depth (tree_pipeline_test asserts it); the bench
//                    reports what the overlap buys in windows/sec.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "obs/metrics.h"

using namespace zkt;

namespace {

constexpr u64 kRecords = 2000;
constexpr u64 kPipelineWindows = 4;
constexpr u64 kPipelineRecords = 600;

struct ShardCell {
  u32 shards = 0;
  double wall_ms = 0;
  u64 total_cycles = 0;
  u64 joins = 0;
  u64 seal_bytes = 0;
  double seal_verify_ms = 0;
};

struct DepthCell {
  u32 depth = 0;
  double total_ms = 0;
  double windows_per_sec = 0;
  // Per-window means of the pipeline's span timings across this run:
  // stage (overlappable split-prove), prove (the serial chain-linking
  // segment on the caller thread), fold wait (blocking on the seal future).
  double stage_ms = 0;
  double prove_ms = 0;
  double fold_wait_ms = 0;
};

/// Per-window mean of histogram `name` accumulated between two registry
/// snapshots (0 when the run recorded nothing).
double span_mean(const obs::Snapshot& before, const obs::Snapshot& after,
                 std::string_view name) {
  const obs::HistogramSnapshot* b = before.find_histogram(name);
  const obs::HistogramSnapshot* a = after.find_histogram(name);
  if (a == nullptr) return 0;
  const double sum = a->sum - (b != nullptr ? b->sum : 0);
  const u64 count = a->count - (b != nullptr ? b->count : 0);
  return count == 0 ? 0 : sum / static_cast<double>(count);
}

double now_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("=== proof-tree aggregation: %llu records, join fanout 2 "
              "(%u hardware threads) ===\n",
              (unsigned long long)kRecords,
              std::thread::hardware_concurrency());
  std::printf("%7s | %12s | %12s | %6s | %10s | %14s\n", "shards", "wall ms",
              "sum cycles", "joins", "seal B", "seal verify ms");
  std::printf("--------+--------------+--------------+--------+------------+"
              "---------------\n");

  std::vector<ShardCell> shard_cells;
  double baseline_ms = 0;
  for (u32 shard_count : {1u, 2u, 4u, 8u}) {
    auto workload = bench::make_committed_workload(kRecords);
    core::ShardedAggregationService service(
        *workload.board, core::ShardedOptions{.shard_count = shard_count,
                                              .join_fanout = 2});
    auto round = service.aggregate(workload.batches);
    if (!round.ok()) {
      std::printf("sharded aggregation failed: %s\n",
                  round.error().to_string().c_str());
      return 1;
    }

    ShardCell cell;
    cell.shards = shard_count;
    cell.wall_ms = round.value().wall_ms;
    cell.total_cycles = round.value().total_cycles;
    if (round.value().tree_seal.has_value()) {
      cell.joins = shard_count - 1;  // fanout-2 fold: K leaves, K-1 joins
      cell.seal_bytes = round.value().tree_seal->to_bytes().size();
      zvm::Verifier verifier;
      const auto start = std::chrono::steady_clock::now();
      if (auto ok = core::verify_join_receipt(verifier,
                                              *round.value().tree_seal);
          !ok.ok()) {
        std::printf("seal verification failed: %s\n", ok.to_string().c_str());
        return 1;
      }
      cell.seal_verify_ms = now_ms_since(start);
    }
    if (shard_count == 1) baseline_ms = cell.wall_ms;
    shard_cells.push_back(cell);
    std::printf("%7u | %12.1f | %12llu | %6llu | %10llu | %14.2f\n",
                shard_count, cell.wall_ms,
                (unsigned long long)cell.total_cycles,
                (unsigned long long)cell.joins,
                (unsigned long long)cell.seal_bytes, cell.seal_verify_ms);
  }

  std::printf("\n=== window pipelining: %llu windows x %llu records, "
              "4 shards ===\n",
              (unsigned long long)kPipelineWindows,
              (unsigned long long)kPipelineRecords);
  std::printf("%7s | %12s | %13s | %10s %10s %13s\n", "depth", "total ms",
              "windows/sec", "stage ms", "prove ms", "fold wait ms");
  std::printf("--------+--------------+---------------+--------------------"
              "-----------------\n");

  std::vector<DepthCell> depth_cells;
  for (u32 depth : {1u, 2u, 3u}) {
    auto workload = bench::make_committed_workload(kPipelineRecords);
    store::LogStore store;
    for (u64 w = 2; w <= kPipelineWindows; ++w) {
      bench::add_window(workload, kPipelineRecords, w);
    }
    // Persist every window's raw logs the way a provider would; the
    // batches are deterministic, so rebuilding per window matches what
    // add_window committed to the board.
    for (u64 w = 1; w <= kPipelineWindows; ++w) {
      auto batches = bench::make_committed_workload(kPipelineRecords, 4, w)
                         .batches;
      for (const auto& batch : batches) {
        if (!store
                 .append(store::kTableRlogs, batch.window_id, batch.router_id,
                         batch.canonical_bytes())
                 .ok()) {
          std::printf("rlog append failed\n");
          return 1;
        }
      }
    }

    core::PipelineOptions options;
    options.sharded.shard_count = 4;
    options.sharded.join_fanout = 2;
    options.sharded.pipeline_depth = depth;
    core::ProviderPipeline pipeline(store, *workload.board, options);
    const auto before = obs::Registry::instance().snapshot();
    const auto start = std::chrono::steady_clock::now();
    auto rounds = pipeline.aggregate_pending();
    const double total_ms = now_ms_since(start);
    const auto after = obs::Registry::instance().snapshot();
    if (!rounds.ok() || rounds.value().size() != kPipelineWindows ||
        pipeline.tree_seals().size() != kPipelineWindows) {
      std::printf("pipelined aggregation failed: %s\n",
                  rounds.ok() ? "wrong round count"
                              : rounds.error().to_string().c_str());
      return 1;
    }
    DepthCell cell;
    cell.depth = depth;
    cell.total_ms = total_ms;
    cell.windows_per_sec = kPipelineWindows / (total_ms / 1000.0);
    cell.stage_ms = span_mean(before, after, "core.pipeline.stage_ms");
    cell.prove_ms = span_mean(before, after, "core.pipeline.prove_ms");
    cell.fold_wait_ms =
        span_mean(before, after, "core.pipeline.fold_wait_ms");
    depth_cells.push_back(cell);
    std::printf("%7u | %12.1f | %13.2f | %10.1f %10.1f %13.2f\n", depth,
                total_ms, cell.windows_per_sec, cell.stage_ms, cell.prove_ms,
                cell.fold_wait_ms);
  }

  std::printf("\nshape: the shard sweep's wall-clock column stays ~flat as "
              "shards grow 1->8 on a multicore host (chains prove in "
              "parallel; the fold adds K-1 joins at log depth), while the "
              "auditor's cost is one seal verification regardless of K. On "
              "a single-core machine wall-clock degrades by the split+join "
              "overhead instead — the sum-cycles column shows the "
              "parallelizable work. Deeper pipelines help when staging "
              "(witness I/O) or folding would otherwise idle the prover.\n");

  std::ofstream out("BENCH_tree.json");
  out << "{\n  \"records\": " << kRecords
      << ",\n  \"join_fanout\": 2,\n  \"pool_threads\": "
      << common::ThreadPool::shared().thread_count()
      << ",\n  \"baseline_wall_ms\": " << baseline_ms
      << ",\n  \"shard_sweep\": [\n";
  for (size_t i = 0; i < shard_cells.size(); ++i) {
    const auto& c = shard_cells[i];
    out << "    {\"shards\": " << c.shards << ", \"wall_ms\": " << c.wall_ms
        << ", \"wall_vs_baseline\": "
        << (baseline_ms > 0 ? c.wall_ms / baseline_ms : 0)
        << ", \"total_cycles\": " << c.total_cycles
        << ", \"joins\": " << c.joins << ", \"seal_bytes\": " << c.seal_bytes
        << ", \"seal_verify_ms\": " << c.seal_verify_ms << "}"
        << (i + 1 < shard_cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"pipeline_windows\": " << kPipelineWindows
      << ",\n  \"pipeline_records_per_window\": " << kPipelineRecords
      << ",\n  \"depth_sweep\": [\n";
  for (size_t i = 0; i < depth_cells.size(); ++i) {
    const auto& c = depth_cells[i];
    out << "    {\"pipeline_depth\": " << c.depth
        << ", \"total_ms\": " << c.total_ms
        << ", \"windows_per_sec\": " << c.windows_per_sec
        << ", \"stage_ms_mean\": " << c.stage_ms
        << ", \"prove_ms_mean\": " << c.prove_ms
        << ", \"fold_wait_ms_mean\": " << c.fold_wait_ms << "}"
        << (i + 1 < depth_cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (out) {
    std::printf("\nsweep -> BENCH_tree.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_tree.json\n");
    return 1;
  }
  bench::write_metrics_snapshot("tree");
  return 0;
}
