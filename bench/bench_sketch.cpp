// Sketch-path benchmarks: Count-Min update/estimate throughput, accuracy vs
// width (the memory/accuracy dial a deployment turns), commitment cost for
// sketch windows, and the prove/verify cost of a verifiable point estimate.
#include <benchmark/benchmark.h>

#include <map>

#include "common/rng.h"
#include "core/sketch_query.h"
#include "sim/workload.h"

using namespace zkt;

namespace {

void BM_CountMinUpdate(benchmark::State& state) {
  netflow::CountMinSketch sketch(netflow::CountMinParams{
      .width = static_cast<u32>(state.range(0)), .depth = 4, .seed = 1});
  auto packets =
      sim::zipf_workload(sim::ZipfWorkloadConfig{.flow_count = 4096}, 50'000);
  u64 i = 0;
  for (auto _ : state) {
    sketch.update(packets[i++ % packets.size()].key, 1);
  }
  state.counters["updates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CountMinUpdate)->Arg(1024)->Arg(65536);

void BM_CountMinEstimate(benchmark::State& state) {
  netflow::CountMinSketch sketch(
      netflow::CountMinParams{.width = 4096, .depth = 4, .seed = 1});
  for (u64 f = 0; f < 1000; ++f) sketch.update(sim::synth_flow_key(f, 1), f);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sketch.estimate(sim::synth_flow_key(i++ % 1000, 1)));
  }
}
BENCHMARK(BM_CountMinEstimate);

// Accuracy vs width: mean relative overestimate across a Zipf stream. Not a
// timing benchmark — the counters are the result.
void BM_CountMinAccuracy(benchmark::State& state) {
  const u32 width = static_cast<u32>(state.range(0));
  double rel_error_sum = 0;
  u64 flows = 0;
  for (auto _ : state) {
    netflow::CountMinSketch sketch(
        netflow::CountMinParams{.width = width, .depth = 4, .seed = 7});
    std::map<netflow::FlowKey, u64> truth;
    auto packets = sim::zipf_workload(
        sim::ZipfWorkloadConfig{.seed = 7, .flow_count = 5000}, 100'000);
    for (const auto& pkt : packets) {
      sketch.update(pkt.key, 1);
      ++truth[pkt.key];
    }
    rel_error_sum = 0;
    flows = 0;
    for (const auto& [key, count] : truth) {
      const u64 est = sketch.estimate(key);
      rel_error_sum += static_cast<double>(est - count) /
                       static_cast<double>(count);
      ++flows;
    }
    benchmark::DoNotOptimize(rel_error_sum);
  }
  state.counters["mean_rel_overestimate"] =
      rel_error_sum / static_cast<double>(flows);
  state.counters["distinct_flows"] = static_cast<double>(flows);
}
BENCHMARK(BM_CountMinAccuracy)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Iterations(1);

void BM_SketchCommit(benchmark::State& state) {
  netflow::CountMinSketch sketch(netflow::CountMinParams{
      .width = static_cast<u32>(state.range(0)), .depth = 4, .seed = 1});
  for (u64 f = 0; f < 1000; ++f) sketch.update(sim::synth_flow_key(f, 1), 1);
  const auto key = crypto::schnorr_keygen_from_seed("sketch-bench");
  for (auto _ : state) {
    auto commitment = core::make_commitment_raw(
        0, 1, sketch.hash(), sketch.total_updates(), key, 5000);
    benchmark::DoNotOptimize(commitment);
  }
  state.counters["sketch_bytes"] =
      static_cast<double>(sketch.canonical_bytes().size());
}
BENCHMARK(BM_SketchCommit)->Arg(1024)->Arg(16384);

void BM_SketchQueryProve(benchmark::State& state) {
  netflow::CountMinSketch sketch(netflow::CountMinParams{
      .width = static_cast<u32>(state.range(0)), .depth = 4, .seed = 1});
  for (u64 f = 0; f < 1000; ++f) sketch.update(sim::synth_flow_key(f, 1), 1);
  const core::CommitmentRef ref{0, 1, sketch.hash(), sketch.total_updates()};
  u64 cycles = 0;
  for (auto _ : state) {
    auto response = core::prove_sketch_query(ref, sketch,
                                             sim::synth_flow_key(3, 1));
    if (!response.ok()) state.SkipWithError("prove failed");
    cycles = response.value().prove_info.cycles;
    benchmark::DoNotOptimize(response);
  }
  state.counters["zkvm_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_SketchQueryProve)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_SketchQueryVerify(benchmark::State& state) {
  netflow::CountMinSketch sketch(
      netflow::CountMinParams{.width = 16384, .depth = 4, .seed = 1});
  for (u64 f = 0; f < 1000; ++f) sketch.update(sim::synth_flow_key(f, 1), 1);
  const core::CommitmentRef ref{0, 1, sketch.hash(), sketch.total_updates()};
  core::CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("sk-verify");
  auto commitment = core::make_commitment_raw(0, 1, sketch.hash(),
                                              sketch.total_updates(), key,
                                              5000);
  if (!board.publish(commitment.value()).ok()) {
    state.SkipWithError("publish failed");
    return;
  }
  auto response =
      core::prove_sketch_query(ref, sketch, sim::synth_flow_key(3, 1));
  if (!response.ok()) {
    state.SkipWithError("prove failed");
    return;
  }
  for (auto _ : state) {
    auto verified =
        core::verify_sketch_query(response.value().receipt, board);
    benchmark::DoNotOptimize(verified);
  }
}
BENCHMARK(BM_SketchQueryVerify);

}  // namespace

BENCHMARK_MAIN();
