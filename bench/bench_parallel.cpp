// §7 "Proof parallelization" ablation, using the library's verifiable
// sharding (core/sharded.h): NetFlow records are partitioned by flow ID
// under a split proof, shard chains prove on dedicated threads, and the
// sharded auditor verifies the assembled round. Reports wall-clock vs shard
// count for a 3000-record window.
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "core/sharded.h"

using namespace zkt;

int main() {
  constexpr u64 kRecords = 3000;
  std::printf("=== proof parallelization: %llu records sharded by flow ID "
              "(%u hardware threads) ===\n",
              (unsigned long long)kRecords,
              std::thread::hardware_concurrency());
  std::printf("%7s | %12s | %9s | %12s | %10s\n", "shards", "wall ms",
              "speedup", "sum cycles", "audit ms");
  std::printf("--------+--------------+-----------+--------------+-----------\n");

  double baseline_ms = 0;
  for (u32 shard_count : {1u, 2u, 4u, 8u, 16u}) {
    auto workload = bench::make_committed_workload(kRecords);
    core::ShardedAggregationService service(
        *workload.board, core::ShardedOptions{.shard_count = shard_count});
    auto round = service.aggregate(workload.batches);
    if (!round.ok()) {
      std::printf("sharded aggregation failed: %s\n",
                  round.error().to_string().c_str());
      return 1;
    }

    core::ShardedAuditor auditor(*workload.board, shard_count);
    const auto audit_start = std::chrono::steady_clock::now();
    if (auto accepted = auditor.accept_round(round.value()); !accepted.ok()) {
      std::printf("audit failed: %s\n", accepted.to_string().c_str());
      return 1;
    }
    const double audit_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - audit_start)
                                .count();

    if (shard_count == 1) baseline_ms = round.value().wall_ms;
    std::printf("%7u | %12.1f | %8.2fx | %12llu | %10.2f\n", shard_count,
                round.value().wall_ms, baseline_ms / round.value().wall_ms,
                (unsigned long long)round.value().total_cycles, audit_ms);
  }

  std::printf("\nshape: speedup tracks the machine's core count (near-linear "
              "until shards exceed cores — the multicore opportunity §7 "
              "describes); splitting costs extra total cycles (the split "
              "proofs + per-shard padding), the price of keeping sharded "
              "aggregation verifiable. On a single-core machine wall-clock "
              "stays flat; the sum-cycles column shows the parallelizable "
              "work.\n");
  zkt::bench::write_metrics_snapshot("parallel");
  return 0;
}
