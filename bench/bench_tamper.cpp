// §6 tamper-detection experiment: "we simulated a data tampering scenario
// ... and confirmed that any attempt to modify committed data results in
// failed proof generation due to hash mismatches or Merkle inconsistencies."
//
// For each state size we mutate committed data in several ways and measure
// (a) that proving fails, and (b) how long detection takes relative to an
// honest round (detection is never slower — the guest aborts early).
#include <cstdio>

#include "bench_util.h"

using namespace zkt;

namespace {

struct Outcome {
  bool detected = false;
  double ms = 0;
  std::string error;
};

Outcome try_aggregate(const core::CommitmentBoard& board,
                      std::vector<netflow::RLogBatch> batches) {
  core::AggregationService aggregation(board);
  const auto start = std::chrono::steady_clock::now();
  auto round = aggregation.aggregate(std::move(batches));
  Outcome out;
  out.ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
               .count();
  out.detected = !round.ok();
  if (!round.ok()) out.error = round.error().to_string();
  return out;
}

}  // namespace

int main() {
  std::printf("=== tamper detection vs honest proving ===\n");
  std::printf("%8s | %12s | %s\n", "records", "time ms", "scenario");
  std::printf("---------+--------------+------------------------------------\n");

  int failures = 0;
  for (u64 n : {100ULL, 1000ULL, 3000ULL}) {
    {
      auto w = bench::make_committed_workload(n);
      auto honest = try_aggregate(*w.board, w.batches);
      if (honest.detected) {
        std::printf("honest aggregation unexpectedly failed: %s\n",
                    honest.error.c_str());
        return 1;
      }
      std::printf("%8llu | %12.2f | honest round (baseline)\n",
                  (unsigned long long)n, honest.ms);
    }
    struct Case {
      const char* name;
      void (*mutate)(std::vector<netflow::RLogBatch>&);
    };
    const Case cases[] = {
        {"counter inflation in one record",
         [](std::vector<netflow::RLogBatch>& b) {
           b[0].records[0].packets += 1;
         }},
        {"single bit flip in an RTT field",
         [](std::vector<netflow::RLogBatch>& b) {
           b[1].records.back().rtt_sum_us ^= 1;
         }},
        {"record deletion",
         [](std::vector<netflow::RLogBatch>& b) {
           b[2].records.pop_back();
         }},
        {"record injection",
         [](std::vector<netflow::RLogBatch>& b) {
           b[3].records.push_back(b[0].records[0]);
         }},
        {"cross-router record swap",
         [](std::vector<netflow::RLogBatch>& b) {
           std::swap(b[0].records[0], b[1].records[0]);
         }},
    };
    for (const auto& c : cases) {
      auto w = bench::make_committed_workload(n);
      c.mutate(w.batches);
      auto outcome = try_aggregate(*w.board, w.batches);
      std::printf("%8llu | %12.2f | %-34s -> %s\n", (unsigned long long)n,
                  outcome.ms, c.name,
                  outcome.detected ? "DETECTED" : "MISSED (BUG!)");
      if (!outcome.detected) ++failures;
    }
  }

  if (failures > 0) {
    std::printf("\n%d tamper cases went undetected\n", failures);
    return 1;
  }
  std::printf("\nall tamper cases detected; detection aborts at the hash "
              "check, well before full proving cost.\n");
  zkt::bench::write_metrics_snapshot("tamper");
  return 0;
}
