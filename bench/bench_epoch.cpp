// Epoch-seal catch-up bench -> BENCH_epoch.json.
//
// One growing aggregation chain (1 router, 2 records per round) with an
// epoch ladder (epoch_every = 16) maintained alongside it, sampled at
// T = 16 .. 4096 rounds. At each checkpoint a cold verifier syncs twice:
//
//   replay    — fresh Auditor::accept_rounds over all T receipts (the
//               pre-epoch cost: linear in T).
//   catch-up  — fresh Auditor::catch_up over the live ladder (the binary
//               decomposition of T/16, so popcount <= log2(T/16)+1 seals)
//               plus the unsealed suffix (< 16 rounds).
//
// The headline is the catch-up column staying ~flat while replay grows
// linearly, with seal receipts constant-size at every level (DESIGN.md
// §11). The binary exits nonzero if the two paths disagree on the final
// head — the bench doubles as an end-to-end equivalence check.
#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "core/epoch.h"

using namespace zkt;

namespace {

constexpr u64 kEpochEvery = 16;

struct Cell {
  u64 rounds = 0;
  u64 seals = 0;          // live ladder size = popcount(T / epoch)
  u64 seal_rounds = 0;    // rounds covered by seals
  u64 suffix_rounds = 0;  // rounds replayed after the seals
  u64 seal_bytes_max = 0;
  double ladder_settle_ms = 0;  // prover-side wait for async seals
  double replay_ms = 0;
  double catchup_ms = 0;
};

double now_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  // 2730 rounds = 170 completed units = 0b10101010: a 4-seal ladder with a
  // 10-round suffix, so the sweep exercises multi-seal splicing and suffix
  // replay, not just the single-seal power-of-two points.
  const std::vector<u64> checkpoints = {16, 64, 256, 1024, 2730, 4096};

  core::CommitmentBoard board;
  core::AggregationService service(board);
  const auto key = crypto::schnorr_keygen_from_seed("bench-epoch");
  core::EpochLadderOptions ladder_options;
  ladder_options.epoch_every = kEpochEvery;
  core::EpochLadder ladder(ladder_options);
  std::vector<zvm::Receipt> rounds;

  std::printf("=== epoch catch-up: epoch_every %llu, 2 records/round ===\n",
              (unsigned long long)kEpochEvery);
  std::printf("%7s | %5s | %6s | %10s | %12s | %12s | %8s\n", "rounds",
              "seals", "suffix", "seal B max", "replay ms", "catchup ms",
              "speedup");
  std::printf("--------+-------+--------+------------+--------------+"
              "--------------+---------\n");

  std::vector<Cell> cells;
  for (u64 target : checkpoints) {
    // Extend the chain to `target` rounds, feeding the ladder as we go —
    // the provider's steady-state shape (seals prove asynchronously).
    while (rounds.size() < target) {
      const u64 window = rounds.size() + 1;
      netflow::RLogBatch batch;
      batch.router_id = 0;
      batch.window_id = window;
      for (u32 i = 0; i < 2; ++i) {
        netflow::FlowRecord record;
        netflow::PacketObservation pkt;
        pkt.key = sim::synth_flow_key(window * 10 + i, 7);
        pkt.timestamp_ms = window * 5000;
        pkt.bytes = 500 + static_cast<u32>(window % 900);
        record.observe(pkt);
        batch.records.push_back(std::move(record));
      }
      auto commitment = core::make_commitment(batch, key, window * 5000);
      if (!commitment.ok() || !board.publish(commitment.value()).ok()) {
        std::printf("commitment failed at window %llu\n",
                    (unsigned long long)window);
        return 1;
      }
      auto round = service.aggregate({batch});
      if (!round.ok()) {
        std::printf("aggregation failed: %s\n",
                    round.error().to_string().c_str());
        return 1;
      }
      rounds.push_back(std::move(round.value().receipt));
      if (auto fed = ladder.feed(rounds.back(), window); !fed.ok()) {
        std::printf("ladder feed failed: %s\n", fed.to_string().c_str());
        return 1;
      }
    }
    const auto settle_start = std::chrono::steady_clock::now();
    if (auto settled = ladder.settle(); !settled.ok()) {
      std::printf("ladder settle failed: %s\n", settled.to_string().c_str());
      return 1;
    }
    (void)ladder.take_completed();  // drop what a provider would persist

    Cell cell;
    cell.rounds = target;
    cell.ladder_settle_ms = now_ms_since(settle_start);
    const auto live = ladder.ladder();
    cell.seals = live.size();
    for (const auto& seal : live) {
      cell.seal_rounds += seal.rounds;
      cell.seal_bytes_max =
          std::max<u64>(cell.seal_bytes_max, seal.receipt.seal_size_bytes());
    }
    cell.suffix_rounds = target - cell.seal_rounds;

    // Cold verifier, path 1: full replay.
    core::Auditor replayed(board);
    const auto replay_start = std::chrono::steady_clock::now();
    if (auto r = replayed.accept_rounds(rounds); !r.ok()) {
      std::printf("replay failed: %s\n", r.error().to_string().c_str());
      return 1;
    }
    cell.replay_ms = now_ms_since(replay_start);

    // Cold verifier, path 2: O(log T) seals + suffix.
    core::Auditor cold(board);
    const auto catchup_start = std::chrono::steady_clock::now();
    auto report = cold.catch_up(
        live, std::span<const zvm::Receipt>(rounds).subspan(cell.seal_rounds));
    if (!report.ok()) {
      std::printf("catch-up failed: %s\n", report.error().to_string().c_str());
      return 1;
    }
    cell.catchup_ms = now_ms_since(catchup_start);

    // Equivalence gate: both paths must land on the same head.
    if (cold.rounds_accepted() != replayed.rounds_accepted() ||
        cold.current_root() != replayed.current_root() ||
        cold.head().claim_digest != replayed.head().claim_digest ||
        cold.head().entry_count != replayed.head().entry_count) {
      std::printf("HEAD MISMATCH at %llu rounds: catch-up disagrees with "
                  "replay\n",
                  (unsigned long long)target);
      return 1;
    }

    cells.push_back(cell);
    std::printf("%7llu | %5llu | %6llu | %10llu | %12.1f | %12.2f | %7.1fx\n",
                (unsigned long long)cell.rounds,
                (unsigned long long)cell.seals,
                (unsigned long long)cell.suffix_rounds,
                (unsigned long long)cell.seal_bytes_max, cell.replay_ms,
                cell.catchup_ms,
                cell.catchup_ms > 0 ? cell.replay_ms / cell.catchup_ms : 0);
  }

  std::printf("\nshape: replay verifies T receipts — linear in T. Catch-up "
              "verifies popcount(T/%llu) constant-size seals plus a "
              "<%llu-round suffix; its residual growth is the out-of-band "
              "commitment-ref replay (one hash fold + board lookup per "
              "commitment — anchoring T commitments is inherently O(T) "
              "hashing, ~10x cheaper than receipt verification), while the "
              "receipt-verification count is O(log T). Identical heads at "
              "every checkpoint.\n",
              (unsigned long long)kEpochEvery,
              (unsigned long long)kEpochEvery);

  std::ofstream out("BENCH_epoch.json");
  out << "{\n  \"epoch_every\": " << kEpochEvery
      << ",\n  \"records_per_round\": 2,\n  \"sweep\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    out << "    {\"rounds\": " << c.rounds << ", \"seals\": " << c.seals
        << ", \"seal_rounds\": " << c.seal_rounds
        << ", \"suffix_rounds\": " << c.suffix_rounds
        << ", \"seal_bytes_max\": " << c.seal_bytes_max
        << ", \"ladder_settle_ms\": " << c.ladder_settle_ms
        << ", \"replay_ms\": " << c.replay_ms
        << ", \"catchup_ms\": " << c.catchup_ms << ", \"speedup\": "
        << (c.catchup_ms > 0 ? c.replay_ms / c.catchup_ms : 0) << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (!out) {
    std::fprintf(stderr, "could not write BENCH_epoch.json\n");
    return 1;
  }
  std::printf("\nsweep -> BENCH_epoch.json\n");
  bench::write_metrics_snapshot("epoch");
  return 0;
}
