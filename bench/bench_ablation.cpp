// Design-choice ablations called out in DESIGN.md:
//
//  (a) seal soundness vs size/latency: number of Fiat–Shamir openings in the
//      composite seal (each opening halves-ish a cheating prover's escape
//      probability; more openings = bigger seal, slower prove/verify);
//  (b) composite vs succinct sealing (the Groth16-wrapper trade: constant
//      256 B proof vs transparent but growing seal);
//  (c) complete vs selective query proofs (completeness costs O(state),
//      selectivity costs O(matches·log n)).
#include <cstdio>

#include "bench_util.h"
#include "core/chain_summary.h"

using namespace zkt;

int main() {
  constexpr u64 kRecords = 1000;

  std::printf("=== (a) Fiat-Shamir opening count (records=%llu, composite)"
              " ===\n",
              (unsigned long long)kRecords);
  std::printf("%9s | %12s | %14s | %12s\n", "openings", "prove ms",
              "seal bytes", "verify ms");
  std::printf("----------+--------------+----------------+-------------\n");
  for (u32 queries : {8u, 16u, 32u, 64u, 128u, 256u}) {
    auto workload = bench::make_committed_workload(kRecords);
    zvm::ProveOptions options;
    options.seal_kind = zvm::SealKind::composite;
    options.num_queries = queries;
    core::AggregationService service(*workload.board,
                                     core::AggregationOptions{options});
    auto round = service.aggregate(workload.batches);
    if (!round.ok()) return 1;

    zvm::Verifier verifier(queries);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 20; ++i) {
      if (!verifier.verify(round.value().receipt,
                           core::guest_images().aggregate)
               .ok()) {
        return 1;
      }
    }
    const double verify_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        20;
    std::printf("%9u | %12.1f | %14zu | %12.3f\n", queries,
                round.value().prove_info.total_ms,
                round.value().receipt.seal_size_bytes(), verify_ms);
  }

  std::printf("\n=== (b) composite vs succinct sealing (aggregation) ===\n");
  std::printf("%8s | %10s | %14s %14s | %14s %14s\n", "records", "seal",
              "prove ms", "proof bytes", "receipt KB", "verify ms");
  std::printf("---------+------------+-------------------------------+------"
              "-------------------------\n");
  for (u64 n : {100ULL, 1000ULL, 3000ULL}) {
    for (auto kind : {zvm::SealKind::composite, zvm::SealKind::succinct}) {
      auto workload = bench::make_committed_workload(n);
      zvm::ProveOptions options;
      options.seal_kind = kind;
      core::AggregationService service(*workload.board,
                                       core::AggregationOptions{options});
      auto round = service.aggregate(workload.batches);
      if (!round.ok()) return 1;
      zvm::Verifier verifier;
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < 20; ++i) {
        (void)verifier.verify(round.value().receipt,
                              core::guest_images().aggregate);
      }
      const double verify_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count() /
          20;
      std::printf("%8llu | %10s | %14.1f %14zu | %14.1f %14.3f\n",
                  (unsigned long long)n,
                  kind == zvm::SealKind::composite ? "composite" : "succinct",
                  round.value().prove_info.total_ms,
                  round.value().receipt.proof_size_bytes(),
                  static_cast<double>(
                      round.value().receipt.receipt_size_bytes()) /
                      1024.0,
                  verify_ms);
    }
  }

  std::printf("\n=== (c) complete vs selective query (vary selectivity, "
              "records=%llu) ===\n",
              (unsigned long long)kRecords);
  std::printf("%12s | %14s %14s | %14s %14s\n", "matches", "complete ms",
              "cycles", "selective ms", "cycles");
  std::printf("-------------+-------------------------------+--------------"
              "-----------------\n");
  {
    auto workload = bench::make_committed_workload(kRecords);
    core::AggregationService service(*workload.board);
    if (!service.aggregate(workload.batches).ok()) return 1;
    core::QueryService queries(service);
    // dst_port filters with increasing selectivity. The synthetic keys use
    // six common ports, so a k-port disjunction matches ~k/6 of the state.
    const u16 ports[] = {80, 443, 53, 8080, 22, 3478};
    for (size_t k : {1u, 2u, 4u, 6u}) {
      std::vector<core::Condition> clause;
      for (size_t i = 0; i < k; ++i) {
        clause.push_back({core::QField::dst_port, core::CmpOp::eq, ports[i]});
      }
      core::Query q = core::Query::sum(core::QField::bytes).and_any(clause);
      auto complete = queries.run(q);
      auto selective = queries.run(
          q, {.mode = core::QueryMode::selective,
              .prove_options_override = {}});
      if (!complete.ok() || !selective.ok()) return 1;
      if (complete.value().value != selective.value().value) return 1;
      std::printf("%12llu | %14.1f %14llu | %14.1f %14llu\n",
                  (unsigned long long)complete.value().journal.result.matched,
                  complete.value().prove_info.total_ms,
                  (unsigned long long)complete.value().prove_info.cycles,
                  selective.value().prove_info.total_ms,
                  (unsigned long long)selective.value().prove_info.cycles);
    }
  }

  std::printf("\n=== (d) chain summaries: 1 receipt vs replaying N rounds "
              "===\n");
  std::printf("%8s | %14s | %16s %16s | %14s\n", "rounds", "summary ms",
              "replay sync ms", "summary sync ms", "summary B");
  std::printf("---------+----------------+-------------------------------"
              "----+--------------\n");
  for (u64 n_rounds : {2ULL, 5ULL, 10ULL, 20ULL}) {
    auto workload = bench::make_committed_workload(50);
    core::AggregationService service(*workload.board);
    std::vector<zvm::Receipt> rounds;
    if (!service.aggregate(workload.batches).ok()) return 1;
    rounds.push_back(service.last_receipt());
    for (u64 w = 2; w <= n_rounds; ++w) {
      auto batches = bench::add_window(workload, 50, w);
      if (!service.aggregate(batches).ok()) return 1;
      rounds.push_back(service.last_receipt());
    }

    auto summary = core::prove_chain_summary(rounds);
    if (!summary.ok()) return 1;

    // Replay sync: verify every round receipt.
    const auto t_replay = std::chrono::steady_clock::now();
    {
      core::Auditor auditor(*workload.board);
      for (const auto& receipt : rounds) {
        if (!auditor.accept_round(receipt).ok()) return 1;
      }
    }
    const double replay_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t_replay)
                                 .count();

    // Summary sync: verify one receipt + adopt.
    const auto t_summary = std::chrono::steady_clock::now();
    {
      auto verified =
          core::verify_chain_summary(summary.value().receipt,
                                     *workload.board,
                                     summary.value().commitments);
      if (!verified.ok()) return 1;
      core::Auditor auditor(*workload.board);
      if (!auditor
               .adopt_summary(verified.value().head())
               .ok()) {
        return 1;
      }
    }
    const double summary_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t_summary)
                                  .count();

    std::printf("%8llu | %14.1f | %16.2f %16.2f | %14zu\n",
                (unsigned long long)n_rounds,
                summary.value().prove_info.total_ms, replay_ms, summary_ms,
                summary.value().receipt.receipt_size_bytes());
  }

  std::printf("\nshape: (a) seal size and verify time grow linearly in the "
              "opening count while prove time is flat (openings are cheap "
              "next to trace generation); (b) succinct seals pin the proof "
              "at 256 B at ~equal prove cost; (c) selective query cost "
              "scales with matches, complete-scan cost with state size — "
              "they cross once most of the state matches.\n");
  zkt::bench::write_metrics_snapshot("ablation");
  return 0;
}
