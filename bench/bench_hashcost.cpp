// §7 "Specialization proof systems" ablation, in google-benchmark form.
//
// The paper observes that aggregating 3000 NetFlow records into a depth-11
// Merkle tree costs ~35,000 hashes, and that a specialized prover doing
// 600k hashes/s would beat the 87-minute zkVM time by orders of magnitude.
// These benchmarks measure our native SHA-256 rate, the zkVM's traced-hash
// rate (trace recording + commitment overhead), and Merkle build costs, and
// print the paper's hash-count accounting as counters.
// The SHA-256 backend sweep at the bottom measures the batched hashing layer
// (crypto/sha256_backend.h) under every compiled backend and writes a
// machine-readable BENCH_hash.json so CI can track per-backend throughput
// and the speedup over the portable scalar code.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/zkt.h"
#include "crypto/sha256_backend.h"

using namespace zkt;

namespace {

void BM_Sha256Native(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xA7);
  for (auto _ : state) {
    auto digest = crypto::sha256(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(size));
  state.counters["hashes/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(crypto::sha256_compression_count(size)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sha256Native)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256Traced(benchmark::State& state) {
  // The same hash executed as provable zkVM work (trace rows recorded).
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xA7);
  for (auto _ : state) {
    zvm::Env env({}, {});
    auto digest = env.sha256(data);
    benchmark::DoNotOptimize(digest);
    benchmark::DoNotOptimize(env.trace().size());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(size));
}
BENCHMARK(BM_Sha256Traced)->Arg(64)->Arg(1024)->Arg(65536);

void BM_MerkleBuild(benchmark::State& state) {
  const u64 leaves = static_cast<u64>(state.range(0));
  std::vector<crypto::Digest32> leaf_digests;
  leaf_digests.reserve(leaves);
  for (u64 i = 0; i < leaves; ++i) {
    leaf_digests.push_back(crypto::sha256(as_bytes_view(i)));
  }
  for (auto _ : state) {
    crypto::MerkleTree tree(leaf_digests);
    benchmark::DoNotOptimize(tree.root());
  }
  // The paper's accounting: hashes needed for the tree build.
  state.counters["node_hashes"] = static_cast<double>(
      crypto::MerkleTree::build_hash_count(leaves));
}
BENCHMARK(BM_MerkleBuild)->Arg(50)->Arg(500)->Arg(3000);

void BM_MerkleUpdateLeaf(benchmark::State& state) {
  const u64 leaves = static_cast<u64>(state.range(0));
  std::vector<crypto::Digest32> leaf_digests;
  for (u64 i = 0; i < leaves; ++i) {
    leaf_digests.push_back(crypto::sha256(as_bytes_view(i)));
  }
  crypto::MerkleTree tree(leaf_digests);
  u64 i = 0;
  for (auto _ : state) {
    tree.update_leaf(i % leaves, crypto::sha256(as_bytes_view(i)));
    ++i;
  }
  benchmark::DoNotOptimize(tree.root());
}
BENCHMARK(BM_MerkleUpdateLeaf)->Arg(3000)->Arg(65536);

void BM_MerkleProveVerify(benchmark::State& state) {
  const u64 leaves = static_cast<u64>(state.range(0));
  std::vector<crypto::Digest32> leaf_digests;
  for (u64 i = 0; i < leaves; ++i) {
    leaf_digests.push_back(crypto::sha256(as_bytes_view(i)));
  }
  crypto::MerkleTree tree(leaf_digests);
  const auto root = tree.root();
  u64 i = 0;
  for (auto _ : state) {
    const u64 index = i++ % leaves;
    auto proof = tree.prove(index);
    auto status = crypto::MerkleTree::verify(root, tree.leaf(index), proof);
    if (!status.ok()) state.SkipWithError("proof failed");
  }
}
BENCHMARK(BM_MerkleProveVerify)->Arg(3000);

// The paper's headline accounting, printed as a standalone comparison: in-
// trace hash cost of a 3000-entry aggregation vs a specialized 600k-hash/s
// prover.
void BM_PaperHashAccounting(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::build_hash_count(3000));
  }
  // Paper accounting: a depth-11 tree over 3000 records needs ~35,000 hashes
  // (per-record Merkle path verification dominates: records × depth). Ours:
  const double depth = 12.0;  // bit_ceil(3000) = 4096
  const double path_hashes = 3000.0 * depth;         // Algorithm 1 line 16
  const double tree_hashes =
      static_cast<double>(crypto::MerkleTree::build_hash_count(3000));
  const double record_hashes = 3000.0 * 2.0;  // commitment re-hash of entries
  const double total = path_hashes + tree_hashes + record_hashes;
  state.counters["hashes_for_3000_entries"] = total;
  state.counters["paper_estimate"] = 35'000.0;
  state.counters["starkware_secs_at_600k_per_s"] = total / 600'000.0;
}
BENCHMARK(BM_PaperHashAccounting)->Iterations(1);

// Batched leaf hashing under a pinned backend (arg = Sha256Backend value).
// Unavailable backends are skipped so the suite runs on any x86-64 (or with
// ZKT_SIMD=OFF, where only scalar exists).
void BM_HashLeavesBackend(benchmark::State& state) {
  const auto backend = static_cast<crypto::Sha256Backend>(state.range(0));
  if (!crypto::sha256_force_backend(backend)) {
    state.SkipWithError("backend unavailable on this CPU/build");
    return;
  }
  constexpr size_t kLeaves = 4096;
  constexpr size_t kLeafBytes = 80;  // typical serialized trace row
  Bytes data(kLeaves * kLeafBytes, 0xA7);
  std::vector<BytesView> views;
  views.reserve(kLeaves);
  for (size_t i = 0; i < kLeaves; ++i) {
    views.emplace_back(data.data() + i * kLeafBytes, kLeafBytes);
  }
  for (auto _ : state) {
    auto digests = crypto::MerkleTree::hash_leaves(views);
    benchmark::DoNotOptimize(digests.data());
  }
  crypto::sha256_force_backend(std::nullopt);
  const double blocks_per_leaf = static_cast<double>(
      crypto::sha256_compression_count(kLeafBytes + 1));  // +1 domain tag
  state.counters["blocks/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kLeaves * blocks_per_leaf,
      benchmark::Counter::kIsRate);
  state.SetLabel(crypto::sha256_backend_name(backend));
}
BENCHMARK(BM_HashLeavesBackend)
    ->Arg(static_cast<int>(crypto::Sha256Backend::scalar))
    ->Arg(static_cast<int>(crypto::Sha256Backend::shani))
    ->Arg(static_cast<int>(crypto::Sha256Backend::avx2));

// ---------------------------------------------------------------------------
// Backend sweep -> BENCH_hash.json
// ---------------------------------------------------------------------------

struct BackendResult {
  crypto::Sha256Backend backend;
  bool compiled = false;
  bool available = false;
  double leaf_blocks_per_s = 0;
  double pair_blocks_per_s = 0;
  bool digests_match_scalar = false;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Measure batched leaf + pair hashing under `backend` (must already be
/// forced). Returns {leaf blocks/s, pair blocks/s, final pair digest}.
void measure_backend(BackendResult& out, crypto::Digest32* pair_digest) {
  constexpr size_t kLeaves = 8192;
  constexpr size_t kLeafBytes = 80;
  constexpr double kMinSeconds = 0.25;

  Bytes data(kLeaves * kLeafBytes, 0xA7);
  std::vector<BytesView> views;
  views.reserve(kLeaves);
  for (size_t i = 0; i < kLeaves; ++i) {
    views.emplace_back(data.data() + i * kLeafBytes, kLeafBytes);
    data[i * kLeafBytes] = static_cast<u8>(i);  // distinct leaves
  }
  const double blocks_per_leaf = static_cast<double>(
      crypto::sha256_compression_count(kLeafBytes + 1));

  std::vector<crypto::Digest32> digests;
  u64 leaf_iters = 0;
  auto t0 = std::chrono::steady_clock::now();
  do {
    digests = crypto::MerkleTree::hash_leaves(views);
    ++leaf_iters;
  } while (seconds_since(t0) < kMinSeconds);
  out.leaf_blocks_per_s = static_cast<double>(leaf_iters) * kLeaves *
                          blocks_per_leaf / seconds_since(t0);

  std::vector<crypto::Digest32> pairs(digests.size() / 2);
  u64 pair_iters = 0;
  t0 = std::chrono::steady_clock::now();
  do {
    crypto::MerkleTree::hash_pairs(digests, pairs);
    ++pair_iters;
  } while (seconds_since(t0) < kMinSeconds);
  // Node message = 65 bytes = 2 compression blocks.
  out.pair_blocks_per_s = static_cast<double>(pair_iters) * pairs.size() *
                          2.0 / seconds_since(t0);
  *pair_digest = pairs.empty() ? crypto::Digest32{} : pairs[0];
}

void run_backend_sweep() {
  std::printf("\n--- SHA-256 backend sweep (batched leaf/pair hashing) ---\n");
  constexpr crypto::Sha256Backend kBackends[] = {
      crypto::Sha256Backend::scalar, crypto::Sha256Backend::shani,
      crypto::Sha256Backend::avx2};

  std::vector<BackendResult> results;
  crypto::Digest32 scalar_digest{};
  for (auto backend : kBackends) {
    BackendResult r;
    r.backend = backend;
    r.compiled = crypto::sha256_backend_compiled(backend);
    r.available = crypto::sha256_backend_available(backend);
    if (r.available && crypto::sha256_force_backend(backend)) {
      crypto::Digest32 pair_digest{};
      measure_backend(r, &pair_digest);
      crypto::sha256_force_backend(std::nullopt);
      if (backend == crypto::Sha256Backend::scalar) {
        scalar_digest = pair_digest;
        r.digests_match_scalar = true;
      } else {
        r.digests_match_scalar =
            std::equal(pair_digest.bytes.begin(), pair_digest.bytes.end(),
                       scalar_digest.bytes.begin());
      }
    }
    results.push_back(r);
  }

  const double scalar_leaf = results[0].leaf_blocks_per_s;
  for (const auto& r : results) {
    if (!r.available) {
      std::printf("%-8s unavailable (compiled=%d)\n",
                  crypto::sha256_backend_name(r.backend), r.compiled);
      continue;
    }
    std::printf("%-8s leaf %10.0f blocks/s  pair %10.0f blocks/s  "
                "speedup %.2fx  digests %s\n",
                crypto::sha256_backend_name(r.backend), r.leaf_blocks_per_s,
                r.pair_blocks_per_s,
                scalar_leaf > 0 ? r.leaf_blocks_per_s / scalar_leaf : 0.0,
                r.digests_match_scalar ? "ok" : "MISMATCH");
  }

  std::ofstream out("BENCH_hash.json");
  out << "{\n  \"active_backend\": \""
      << crypto::sha256_backend_name(crypto::sha256_active_backend())
      << "\",\n  \"backends\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << crypto::sha256_backend_name(r.backend)
        << "\", \"compiled\": " << (r.compiled ? "true" : "false")
        << ", \"available\": " << (r.available ? "true" : "false")
        << ", \"leaf_blocks_per_s\": " << r.leaf_blocks_per_s
        << ", \"pair_blocks_per_s\": " << r.pair_blocks_per_s
        << ", \"speedup_vs_scalar\": "
        << (scalar_leaf > 0 ? r.leaf_blocks_per_s / scalar_leaf : 0.0)
        << ", \"digests_match_scalar\": "
        << (r.digests_match_scalar ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (out) {
    std::printf("backend sweep -> BENCH_hash.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_hash.json\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_backend_sweep();
  return 0;
}
