// §7 "Specialization proof systems" ablation, in google-benchmark form.
//
// The paper observes that aggregating 3000 NetFlow records into a depth-11
// Merkle tree costs ~35,000 hashes, and that a specialized prover doing
// 600k hashes/s would beat the 87-minute zkVM time by orders of magnitude.
// These benchmarks measure our native SHA-256 rate, the zkVM's traced-hash
// rate (trace recording + commitment overhead), and Merkle build costs, and
// print the paper's hash-count accounting as counters.
#include <benchmark/benchmark.h>

#include "core/zkt.h"

using namespace zkt;

namespace {

void BM_Sha256Native(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xA7);
  for (auto _ : state) {
    auto digest = crypto::sha256(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(size));
  state.counters["hashes/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(crypto::sha256_compression_count(size)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sha256Native)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256Traced(benchmark::State& state) {
  // The same hash executed as provable zkVM work (trace rows recorded).
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xA7);
  for (auto _ : state) {
    zvm::Env env({}, {});
    auto digest = env.sha256(data);
    benchmark::DoNotOptimize(digest);
    benchmark::DoNotOptimize(env.trace().size());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(size));
}
BENCHMARK(BM_Sha256Traced)->Arg(64)->Arg(1024)->Arg(65536);

void BM_MerkleBuild(benchmark::State& state) {
  const u64 leaves = static_cast<u64>(state.range(0));
  std::vector<crypto::Digest32> leaf_digests;
  leaf_digests.reserve(leaves);
  for (u64 i = 0; i < leaves; ++i) {
    leaf_digests.push_back(crypto::sha256(as_bytes_view(i)));
  }
  for (auto _ : state) {
    crypto::MerkleTree tree(leaf_digests);
    benchmark::DoNotOptimize(tree.root());
  }
  // The paper's accounting: hashes needed for the tree build.
  state.counters["node_hashes"] = static_cast<double>(
      crypto::MerkleTree::build_hash_count(leaves));
}
BENCHMARK(BM_MerkleBuild)->Arg(50)->Arg(500)->Arg(3000);

void BM_MerkleUpdateLeaf(benchmark::State& state) {
  const u64 leaves = static_cast<u64>(state.range(0));
  std::vector<crypto::Digest32> leaf_digests;
  for (u64 i = 0; i < leaves; ++i) {
    leaf_digests.push_back(crypto::sha256(as_bytes_view(i)));
  }
  crypto::MerkleTree tree(leaf_digests);
  u64 i = 0;
  for (auto _ : state) {
    tree.update_leaf(i % leaves, crypto::sha256(as_bytes_view(i)));
    ++i;
  }
  benchmark::DoNotOptimize(tree.root());
}
BENCHMARK(BM_MerkleUpdateLeaf)->Arg(3000)->Arg(65536);

void BM_MerkleProveVerify(benchmark::State& state) {
  const u64 leaves = static_cast<u64>(state.range(0));
  std::vector<crypto::Digest32> leaf_digests;
  for (u64 i = 0; i < leaves; ++i) {
    leaf_digests.push_back(crypto::sha256(as_bytes_view(i)));
  }
  crypto::MerkleTree tree(leaf_digests);
  const auto root = tree.root();
  u64 i = 0;
  for (auto _ : state) {
    const u64 index = i++ % leaves;
    auto proof = tree.prove(index);
    auto status = crypto::MerkleTree::verify(root, tree.leaf(index), proof);
    if (!status.ok()) state.SkipWithError("proof failed");
  }
}
BENCHMARK(BM_MerkleProveVerify)->Arg(3000);

// The paper's headline accounting, printed as a standalone comparison: in-
// trace hash cost of a 3000-entry aggregation vs a specialized 600k-hash/s
// prover.
void BM_PaperHashAccounting(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::build_hash_count(3000));
  }
  // Paper accounting: a depth-11 tree over 3000 records needs ~35,000 hashes
  // (per-record Merkle path verification dominates: records × depth). Ours:
  const double depth = 12.0;  // bit_ceil(3000) = 4096
  const double path_hashes = 3000.0 * depth;         // Algorithm 1 line 16
  const double tree_hashes =
      static_cast<double>(crypto::MerkleTree::build_hash_count(3000));
  const double record_hashes = 3000.0 * 2.0;  // commitment re-hash of entries
  const double total = path_hashes + tree_hashes + record_hashes;
  state.counters["hashes_for_3000_entries"] = total;
  state.counters["paper_estimate"] = 35'000.0;
  state.counters["starkware_secs_at_600k_per_s"] = total / 600'000.0;
}
BENCHMARK(BM_PaperHashAccounting)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
