// Table 1 reproduction: proof / journal / receipt sizes of the aggregation
// step vs the number of records.
//
// Shape to reproduce: proofs are constant-size (256 B — the succinct SNARK
// seal), while journal and receipt grow linearly with the number of records
// (the journal carries the public commitment references and per-entry update
// digests; the receipt adds the claim and seal).
#include <cstdio>

#include "bench_util.h"

using namespace zkt;

int main() {
  std::printf("=== Table 1: proof size of aggregation ===\n");
  std::printf("%12s | %13s | %12s | %12s\n", "# of records", "Proof (bytes)",
              "Journal (KB)", "Receipt (KB)");
  std::printf("-------------+---------------+--------------+--------------\n");

  for (u64 n : bench::paper_sweep()) {
    auto workload = bench::make_committed_workload(n);
    core::AggregationService aggregation(*workload.board);
    auto round = aggregation.aggregate(workload.batches);
    if (!round.ok()) {
      std::printf("aggregation failed at %llu: %s\n", (unsigned long long)n,
                  round.error().to_string().c_str());
      return 1;
    }
    const auto& receipt = round.value().receipt;
    std::printf("%12llu | %13zu | %12.1f | %12.1f\n", (unsigned long long)n,
                receipt.proof_size_bytes(),
                static_cast<double>(receipt.journal.size()) / 1024.0,
                static_cast<double>(receipt.receipt_size_bytes()) / 1024.0);
  }

  std::printf("\npaper: proof constant at 256 B; journal 3.6 KB -> 176.7 KB "
              "and receipt 7.6 KB -> 346 KB from 50 to 3000 records.\n");

  // Query receipts behave the same way (paper: "the query proof and
  // verification show similar behavior").
  std::printf("\n--- query receipts over the same states ---\n");
  std::printf("%12s | %13s | %12s | %12s\n", "# of records", "Proof (bytes)",
              "Journal (KB)", "Receipt (KB)");
  for (u64 n : bench::paper_sweep()) {
    auto workload = bench::make_committed_workload(n);
    core::AggregationService aggregation(*workload.board);
    auto round = aggregation.aggregate(workload.batches);
    if (!round.ok()) return 1;
    core::QueryService queries(aggregation);
    auto resp = queries.run(core::Query::sum(core::QField::packets));
    if (!resp.ok()) return 1;
    const auto& receipt = resp.value().receipt;
    std::printf("%12llu | %13zu | %12.3f | %12.3f\n", (unsigned long long)n,
                receipt.proof_size_bytes(),
                static_cast<double>(receipt.journal.size()) / 1024.0,
                static_cast<double>(receipt.receipt_size_bytes()) / 1024.0);
  }
  zkt::bench::write_metrics_snapshot("table1_sizes");
  return 0;
}
