// Sketch-vs-exact query latency sweep -> BENCH_sketch_query.json.
//
// The headline of the proof-carrying round sketch (DESIGN.md §10): a
// heavy-hitters or cardinality proof against the committed round sketch
// costs O(width x depth) traced hashes regardless of how many flows the
// round aggregated, while the exact complete-scan query costs O(N). The
// sweep proves both against the same chains at N in {1k, 10k, 50k, 200k}
// and cross-checks every cell:
//
//   completeness — every planted elephant appears in the proven hit list
//                  (threshold sits above the Space-Saving floor);
//   brackets     — each hit satisfies count - error <= true <= cms_estimate
//                  with the Count-Min overshoot inside the (width, depth)
//                  error bound 2*total/width;
//   cardinality  — the sketch guest's distinct_flows equals the exact
//                  complete-scan count, and cms_lower_bound never exceeds it;
//   routing      — QueryService's cost estimator picks the sketch at every N
//                  in the sweep (est_sketch is constant, est_exact ~ 2N).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "core/zkt.h"

using namespace zkt;

namespace {

constexpr u32 kRouters = 4;
constexpr u32 kElephants = 8;

struct Cell {
  u64 n = 0;
  u64 elephant_packets = 0;
  u64 total_weight = 0;
  u64 threshold = 0;
  u64 floor = 0;
  double agg_ms = 0;
  double sketch_heavy_ms = 0;
  u64 sketch_heavy_cycles = 0;
  double sketch_card_ms = 0;
  u64 sketch_card_cycles = 0;
  double exact_heavy_ms = 0;
  u64 exact_heavy_cycles = 0;
  double exact_card_ms = 0;
  double sketch_verify_ms = 0;
  u64 hits = 0;
  u64 exact_heavy_count = 0;
  u64 distinct_flows = 0;
  u64 max_overshoot = 0;
  u64 overshoot_bound = 0;
  bool router_heavy_used_sketch = false;
  bool router_card_used_sketch = false;
};

double now_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

netflow::FlowKey mouse_key(u64 i) { return sim::synth_flow_key(i, 97); }
netflow::FlowKey elephant_key(u32 e) {
  return sim::synth_flow_key(90'000'000ULL + e, 97);
}

/// N single-packet mice plus kElephants flows of `elephant_packets` each,
/// spread over kRouters committed batches in one window.
bench::CommittedWorkload make_skewed_workload(u64 n, u64 elephant_packets) {
  bench::CommittedWorkload out;
  std::vector<netflow::RLogBatch> batches(kRouters);
  for (u32 r = 0; r < kRouters; ++r) {
    batches[r].router_id = r;
    batches[r].window_id = 1;
  }
  auto observe = [](netflow::FlowRecord& rec, const netflow::FlowKey& key,
                    u64 at_ms) {
    netflow::PacketObservation pkt;
    pkt.key = key;
    pkt.timestamp_ms = at_ms;
    pkt.bytes = 1000;
    pkt.hop_count = 4;
    rec.observe(pkt);
  };
  for (u64 i = 0; i < n; ++i) {
    netflow::FlowRecord rec;
    observe(rec, mouse_key(i), 1000 + i);
    batches[i % kRouters].records.push_back(std::move(rec));
  }
  for (u32 e = 0; e < kElephants; ++e) {
    netflow::FlowRecord rec;
    for (u64 p = 0; p < elephant_packets; ++p) {
      observe(rec, elephant_key(e), 2000 + p);
    }
    batches[e % kRouters].records.push_back(std::move(rec));
  }
  for (u32 r = 0; r < kRouters; ++r) {
    const auto key =
        crypto::schnorr_keygen_from_seed("bench-skq-" + std::to_string(r));
    auto commitment = core::make_commitment(batches[r], key, 5000);
    if (!commitment.ok() || !out.board->publish(commitment.value()).ok()) {
      std::abort();
    }
  }
  out.batches = std::move(batches);
  out.total_records = n + kElephants;
  return out;
}

}  // namespace

int main() {
  const netflow::SketchParams params;  // the chain's defaults: 1024x4, cap 64
  const std::vector<u64> sweep = {1'000, 10'000, 50'000, 200'000};
  std::vector<Cell> cells;

  std::printf("=== sketch query vs exact complete scan (width %u, depth %u, "
              "capacity %u) ===\n",
              params.cm.width, params.cm.depth, params.heavy_capacity);
  std::printf("%8s | %9s | %13s | %12s | %13s | %12s | %5s\n", "N", "agg ms",
              "sk heavy ms", "sk card ms", "exact hh ms", "exact card ms",
              "route");
  std::printf("---------+-----------+---------------+--------------+"
              "---------------+--------------+------\n");

  for (u64 n : sweep) {
    Cell cell;
    cell.n = n;
    // Elephants carry N/20 packets each: far above both the query threshold
    // N/30 and the Space-Saving completeness floor total/capacity ~ N/46.
    cell.elephant_packets = n / 20;
    cell.threshold = n / 30;
    auto workload = make_skewed_workload(n, cell.elephant_packets);

    core::AggregationService service(*workload.board);
    const auto agg_start = std::chrono::steady_clock::now();
    auto round = service.aggregate(workload.batches);
    cell.agg_ms = now_ms_since(agg_start);
    if (!round.ok()) {
      std::printf("aggregation failed at N=%llu: %s\n", (unsigned long long)n,
                  round.error().to_string().c_str());
      return 1;
    }
    cell.total_weight = service.sketch().total();
    cell.floor = cell.total_weight / params.heavy_capacity;
    if (cell.threshold <= cell.floor || cell.elephant_packets < cell.threshold) {
      std::printf("bad sweep geometry at N=%llu (floor %llu, T %llu)\n",
                  (unsigned long long)n, (unsigned long long)cell.floor,
                  (unsigned long long)cell.threshold);
      return 1;
    }

    // --- sketch path: O(width x depth), no dependence on N.
    const auto sh_start = std::chrono::steady_clock::now();
    auto heavy = core::prove_sketch_heavy(round.value().receipt,
                                          service.sketch(), cell.threshold);
    cell.sketch_heavy_ms = now_ms_since(sh_start);
    if (!heavy.ok()) {
      std::printf("sketch heavy proof failed: %s\n",
                  heavy.error().to_string().c_str());
      return 1;
    }
    cell.sketch_heavy_cycles = heavy.value().prove_info.cycles;
    cell.hits = heavy.value().journal.hits.size();

    const auto sc_start = std::chrono::steady_clock::now();
    auto card =
        core::prove_sketch_cardinality(round.value().receipt, service.sketch());
    cell.sketch_card_ms = now_ms_since(sc_start);
    if (!card.ok()) {
      std::printf("sketch cardinality proof failed: %s\n",
                  card.error().to_string().c_str());
      return 1;
    }
    cell.sketch_card_cycles = card.value().prove_info.cycles;
    cell.distinct_flows = card.value().journal.distinct_flows;

    // --- exact path: complete scan, O(N) in-guest.
    core::QueryService queries(service);
    const auto eh_start = std::chrono::steady_clock::now();
    auto exact_heavy = queries.run(core::Query::count().and_where(
        core::QField::packets, core::CmpOp::ge, cell.threshold));
    cell.exact_heavy_ms = now_ms_since(eh_start);
    if (!exact_heavy.ok()) {
      std::printf("exact heavy query failed: %s\n",
                  exact_heavy.error().to_string().c_str());
      return 1;
    }
    cell.exact_heavy_cycles = exact_heavy.value().prove_info.cycles;
    cell.exact_heavy_count = exact_heavy.value().value;

    const auto ec_start = std::chrono::steady_clock::now();
    auto exact_card = queries.run(core::Query::count());
    cell.exact_card_ms = now_ms_since(ec_start);
    if (!exact_card.ok()) {
      std::printf("exact cardinality query failed: %s\n",
                  exact_card.error().to_string().c_str());
      return 1;
    }

    // --- cross-checks: the sketch answers against the exact ones.
    // Completeness above the floor: all elephants are reported hits.
    for (u32 e = 0; e < kElephants; ++e) {
      bool found = false;
      for (const auto& hit : heavy.value().journal.hits) {
        if (hit.key == elephant_key(e)) found = true;
      }
      if (!found) {
        std::printf("elephant %u missing from proven hits at N=%llu\n", e,
                    (unsigned long long)n);
        return 1;
      }
    }
    if (cell.exact_heavy_count != kElephants) {
      std::printf("exact heavy count %llu != %u elephants at N=%llu\n",
                  (unsigned long long)cell.exact_heavy_count, kElephants,
                  (unsigned long long)n);
      return 1;
    }
    // Per-hit brackets and the (width, depth) overestimate bound.
    cell.overshoot_bound = 2 * cell.total_weight / params.cm.width;
    for (const auto& hit : heavy.value().journal.hits) {
      u64 truth = 1;  // a tracked mouse
      for (u32 e = 0; e < kElephants; ++e) {
        if (hit.key == elephant_key(e)) truth = cell.elephant_packets;
      }
      if (hit.count - hit.error > truth || hit.cms_estimate < truth) {
        std::printf("hit bracket violated at N=%llu\n", (unsigned long long)n);
        return 1;
      }
      const u64 overshoot = hit.cms_estimate - truth;
      if (overshoot > cell.max_overshoot) cell.max_overshoot = overshoot;
    }
    if (cell.max_overshoot > cell.overshoot_bound) {
      std::printf("cms overshoot %llu above 2*total/width bound %llu\n",
                  (unsigned long long)cell.max_overshoot,
                  (unsigned long long)cell.overshoot_bound);
      return 1;
    }
    // Cardinality: the sketch guest publishes the exact CLog entry count.
    if (cell.distinct_flows != exact_card.value().value ||
        card.value().journal.cms_lower_bound > cell.distinct_flows) {
      std::printf("cardinality mismatch at N=%llu\n", (unsigned long long)n);
      return 1;
    }

    // --- the router picks the sketch at every N in this sweep.
    auto routed_heavy = queries.heavy_hitters(cell.threshold);
    auto routed_card = queries.cardinality();
    if (!routed_heavy.ok() || !routed_card.ok()) {
      std::printf("routed query failed at N=%llu\n", (unsigned long long)n);
      return 1;
    }
    cell.router_heavy_used_sketch = routed_heavy.value().used_sketch;
    cell.router_card_used_sketch = routed_card.value().used_sketch;

    // --- verifier cost for the two sketch receipts.
    core::Auditor auditor(*workload.board);
    if (!auditor.accept_round(round.value().receipt).ok()) {
      std::printf("auditor rejected the round at N=%llu\n",
                  (unsigned long long)n);
      return 1;
    }
    const auto v_start = std::chrono::steady_clock::now();
    if (!auditor.verify_heavy_hitters(heavy.value().receipt).ok() ||
        !auditor.verify_cardinality(card.value().receipt).ok()) {
      std::printf("sketch receipt verification failed at N=%llu\n",
                  (unsigned long long)n);
      return 1;
    }
    cell.sketch_verify_ms = now_ms_since(v_start);

    cells.push_back(cell);
    std::printf("%8llu | %9.1f | %13.2f | %12.2f | %13.2f | %12.2f | %5s\n",
                (unsigned long long)n, cell.agg_ms, cell.sketch_heavy_ms,
                cell.sketch_card_ms, cell.exact_heavy_ms, cell.exact_card_ms,
                cell.router_heavy_used_sketch ? "sk" : "exact");
  }

  const double flat_ratio =
      cells.back().sketch_heavy_ms / cells.front().sketch_heavy_ms;
  const double growth_ratio =
      cells.back().exact_heavy_ms / cells.front().exact_heavy_ms;
  std::printf("\nshape: sketch query wall time is ~flat across the sweep "
              "(%.2fx from N=1k to N=200k; the guest walks width x depth "
              "counters plus the tracked heavy set, none of which grow with "
              "N), while the exact complete scan grows with N (%.1fx). The "
              "cost estimator routes every cell to the sketch; the exact "
              "path remains the fallback for thresholds under the "
              "Space-Saving floor.\n",
              flat_ratio, growth_ratio);

  std::ofstream out("BENCH_sketch_query.json");
  out << "{\n  \"params\": {\"width\": " << params.cm.width
      << ", \"depth\": " << params.cm.depth
      << ", \"heavy_capacity\": " << params.heavy_capacity
      << ", \"elephants\": " << kElephants
      << "},\n  \"sketch_heavy_flat_ratio\": " << flat_ratio
      << ",\n  \"exact_heavy_growth_ratio\": " << growth_ratio
      << ",\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    out << "    {\"n\": " << c.n
        << ", \"total_weight\": " << c.total_weight
        << ", \"threshold\": " << c.threshold
        << ", \"ss_floor\": " << c.floor
        << ", \"elephant_packets\": " << c.elephant_packets
        << ", \"agg_ms\": " << c.agg_ms
        << ", \"sketch_heavy_ms\": " << c.sketch_heavy_ms
        << ", \"sketch_heavy_cycles\": " << c.sketch_heavy_cycles
        << ", \"sketch_card_ms\": " << c.sketch_card_ms
        << ", \"sketch_card_cycles\": " << c.sketch_card_cycles
        << ", \"exact_heavy_ms\": " << c.exact_heavy_ms
        << ", \"exact_heavy_cycles\": " << c.exact_heavy_cycles
        << ", \"exact_card_ms\": " << c.exact_card_ms
        << ", \"sketch_verify_ms\": " << c.sketch_verify_ms
        << ", \"hits\": " << c.hits
        << ", \"exact_heavy_count\": " << c.exact_heavy_count
        << ", \"distinct_flows\": " << c.distinct_flows
        << ", \"max_cms_overshoot\": " << c.max_overshoot
        << ", \"overshoot_bound\": " << c.overshoot_bound
        << ", \"router_heavy_used_sketch\": "
        << (c.router_heavy_used_sketch ? "true" : "false")
        << ", \"router_card_used_sketch\": "
        << (c.router_card_used_sketch ? "true" : "false") << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (out) {
    std::printf("\nsweep -> BENCH_sketch_query.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_sketch_query.json\n");
    return 1;
  }
  bench::write_metrics_snapshot("sketch_query");
  return 0;
}
