// §6 "verification remains lightweight, completing in 3 ms regardless of the
// number of entries": client-side verification latency vs record count, for
// aggregation and query receipts, both succinct (the deployed path) and
// composite seals.
#include <chrono>
#include <cstdio>

#include "bench_util.h"

using namespace zkt;

namespace {

double time_verify(const zvm::Receipt& receipt, const zvm::ImageID& image,
                   int iters) {
  zvm::Verifier verifier;
  // Warm-up + correctness check.
  if (auto s = verifier.verify(receipt, image); !s.ok()) {
    std::printf("receipt does not verify: %s\n", s.to_string().c_str());
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    (void)verifier.verify(receipt, image);
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count() /
         iters;
}

}  // namespace

int main() {
  std::printf("=== verification latency (ms/verify) ===\n");
  std::printf("%8s | %14s %14s | %14s %14s\n", "records", "agg succinct",
              "agg composite", "query succinct", "query composite");
  std::printf("---------+--------------------------------+------------------"
              "--------------\n");

  const int iters = 50;
  for (u64 n : bench::paper_sweep()) {
    // Succinct receipts (the client-facing artifact).
    auto workload = bench::make_committed_workload(n);
    core::AggregationService aggregation(*workload.board);
    auto round = aggregation.aggregate(workload.batches);
    if (!round.ok()) return 1;
    core::QueryService queries(aggregation);
    auto resp = queries.run(core::Query::sum(core::QField::bytes));
    if (!resp.ok()) return 1;

    // Composite variants of the same computations.
    auto workload2 = bench::make_committed_workload(n);
    zvm::ProveOptions composite;
    composite.seal_kind = zvm::SealKind::composite;
    core::AggregationService aggregation2(*workload2.board,
                                          core::AggregationOptions{composite});
    auto round2 = aggregation2.aggregate(workload2.batches);
    if (!round2.ok()) return 1;
    core::QueryService queries2(aggregation2,
                                core::QueryServiceOptions{composite});
    auto resp2 = queries2.run(core::Query::sum(core::QField::bytes));
    if (!resp2.ok()) return 1;

    const auto images = core::guest_images();
    std::printf("%8llu | %14.3f %14.3f | %14.3f %14.3f\n",
                (unsigned long long)n,
                time_verify(round.value().receipt, images.aggregate, iters),
                time_verify(round2.value().receipt, images.aggregate, iters),
                time_verify(resp.value().receipt, images.query, iters),
                time_verify(resp2.value().receipt, images.query, iters));
  }

  std::printf("\npaper: verification completes in ~3 ms regardless of entry "
              "count. Succinct verification above is size-independent up to "
              "journal hashing; composite adds the Fiat-Shamir openings "
              "(~log n).\n");
  zkt::bench::write_metrics_snapshot("verification");
  return 0;
}
