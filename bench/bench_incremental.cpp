// Incremental-aggregation sweep: full-rebuild guest vs delta guest over
// N ∈ {1k, 10k, 50k} resident flows × k ∈ {16, 512, 4096} touched flows per
// round -> BENCH_incremental.json.
//
// Methodology: a genesis round (full guest, not measured) establishes a CLog
// of N distinct flows; keys are generated in ascending order so the host-side
// state build stays append-only and the sweep reaches 50k entries quickly.
// The measured round merges k existing flows spread evenly across the key
// space (stride N/k — the worst spread for multiproof sibling sharing), and
// is proven twice from an identical restored snapshot: once with
// AggMode::full and once with AggMode::incremental. Both runs must land on
// the same new_root — the equivalence the incremental_test suite checks in
// miniature, asserted here at scale.
//
// The quantity that drives a real STARK prover's latency is traced hashing:
// the full guest re-derives the whole tree (O(N) SHA rows) while the delta
// guest re-hashes only the k touched root-paths plus one deduplicated
// multiproof walk (O(k log N) rows), so the sha_rows / cycles columns shrink
// with k/N exactly as the cost model in docs/PERFORMANCE.md predicts.
// Cells with k > N clamp to touching every entry (the delta opens the whole
// state and the auto-mode cost model would pick full — forced incremental
// here to chart the crossover).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "core/service.h"

using namespace zkt;

namespace {

netflow::FlowKey ascending_key(u64 i) {
  return {.src_ip = 0x0A000000u + static_cast<u32>(i),
          .dst_ip = 0x09090909u,
          .src_port = 1000,
          .dst_port = 443,
          .protocol = 6};
}

netflow::FlowRecord make_record(u64 flow_index, u64 window_id,
                                Xoshiro256& rng) {
  netflow::FlowRecord rec;
  netflow::PacketObservation pkt;
  pkt.key = ascending_key(flow_index);
  pkt.timestamp_ms = window_id * 5000 + (flow_index % 4096);
  pkt.bytes = 800 + static_cast<u32>(rng.uniform(700));
  pkt.hop_count = static_cast<u8>(2 + rng.uniform(10));
  pkt.rtt_us = 10'000 + static_cast<u32>(rng.uniform(50'000));
  pkt.jitter_us = static_cast<u32>(rng.uniform(4'000));
  rec.observe(pkt);
  return rec;
}

constexpr u32 kRouters = 4;

crypto::SchnorrKeyPair router_key(u32 r) {
  return crypto::schnorr_keygen_from_seed("bench-inc-router-" +
                                          std::to_string(r));
}

/// Commit + publish `batches` (one per router) for `window_id`.
void publish_window(core::CommitmentBoard& board,
                    std::vector<netflow::RLogBatch>& batches, u64 window_id) {
  for (u32 r = 0; r < kRouters; ++r) {
    batches[r].router_id = r;
    batches[r].window_id = window_id;
    auto commitment =
        core::make_commitment(batches[r], router_key(r), window_id * 5000);
    if (!commitment.ok() || !board.publish(commitment.value()).ok()) {
      std::abort();
    }
  }
}

/// Genesis window: N distinct ascending flows, router r holding the r-th
/// contiguous chunk so (window, router)-ordered application is append-only.
std::vector<netflow::RLogBatch> genesis_window(u64 n, Xoshiro256& rng) {
  std::vector<netflow::RLogBatch> batches(kRouters);
  for (u64 i = 0; i < n; ++i) {
    const u32 r = static_cast<u32>(i * kRouters / n);
    batches[r].records.push_back(make_record(i, /*window_id=*/1, rng));
  }
  return batches;
}

/// Measured window: k flows at stride n/k (all merges into existing entries).
std::vector<netflow::RLogBatch> touch_window(u64 n, u64 k, u64 window_id,
                                             Xoshiro256& rng) {
  std::vector<netflow::RLogBatch> batches(kRouters);
  const u64 stride = n / k;
  for (u64 j = 0; j < k; ++j) {
    batches[j % kRouters].records.push_back(
        make_record(j * stride, window_id, rng));
  }
  return batches;
}

struct ModeResult {
  double wall_ms = 0;
  zvm::ProveInfo info;
  core::AggJournal journal;
};

bool run_mode(const core::CommitmentBoard& board, const core::CLogState& base,
              const zvm::Receipt& receipt, core::AggMode mode,
              std::span<const netflow::RLogBatch> batches, ModeResult& out) {
  core::AggregationService service(
      board, {.prove_options = {}, .mode = mode});
  if (!service.restore(base, receipt, /*rounds_completed=*/1).ok()) {
    return false;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto round = service.aggregate(batches);
  out.wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  if (!round.ok()) {
    std::fprintf(stderr, "aggregate failed: %s\n",
                 round.error().to_string().c_str());
    return false;
  }
  out.info = round.value().prove_info;
  out.journal = round.value().journal;
  return true;
}

struct Cell {
  u64 n = 0, k = 0, k_eff = 0;
  ModeResult full, inc;
};

}  // namespace

int main() {
  const std::vector<u64> n_sweep = {1'000, 10'000, 50'000};
  const std::vector<u64> k_sweep = {16, 512, 4096};

  std::printf("=== incremental vs full aggregation rounds ===\n");
  std::printf("%7s %6s | %10s %12s %12s | %10s %12s %12s | %8s %7s %9s\n", "N",
              "k", "full ms", "full sha", "full cyc", "inc ms", "inc sha",
              "inc cyc", "speedup", "guest", "siblings");

  std::vector<Cell> cells;
  for (u64 n : n_sweep) {
    Xoshiro256 rng(n);
    core::CommitmentBoard board;
    auto genesis = genesis_window(n, rng);
    publish_window(board, genesis, /*window_id=*/1);

    core::AggregationService bootstrap(
        board, {.prove_options = {}, .mode = core::AggMode::full});
    if (!bootstrap.aggregate(genesis).ok()) {
      std::fprintf(stderr, "genesis failed at N=%llu\n",
                   (unsigned long long)n);
      return 1;
    }
    const core::CLogState base = bootstrap.state();
    const zvm::Receipt receipt = bootstrap.last_receipt();

    for (size_t ki = 0; ki < k_sweep.size(); ++ki) {
      const u64 k = k_sweep[ki];
      const u64 window_id = 2 + ki;
      Cell cell;
      cell.n = n;
      cell.k = k;
      cell.k_eff = std::min(k, n);
      auto window = touch_window(n, cell.k_eff, window_id, rng);
      publish_window(board, window, window_id);
      if (!run_mode(board, base, receipt, core::AggMode::full, window,
                    cell.full) ||
          !run_mode(board, base, receipt, core::AggMode::incremental, window,
                    cell.inc)) {
        return 1;
      }
      if (cell.full.journal.new_root != cell.inc.journal.new_root) {
        std::fprintf(stderr, "root mismatch at N=%llu k=%llu\n",
                     (unsigned long long)n, (unsigned long long)k);
        return 1;
      }
      const double speedup = cell.inc.wall_ms > 0
                                 ? cell.full.wall_ms / cell.inc.wall_ms
                                 : 0.0;
      std::printf(
          "%7llu %6llu | %10.2f %12llu %12llu | %10.2f %12llu %12llu | "
          "%7.2fx %7s %9llu\n",
          (unsigned long long)n, (unsigned long long)cell.k_eff,
          cell.full.wall_ms, (unsigned long long)cell.full.info.sha_rows,
          (unsigned long long)cell.full.info.cycles, cell.inc.wall_ms,
          (unsigned long long)cell.inc.info.sha_rows,
          (unsigned long long)cell.inc.info.cycles, speedup,
          cell.inc.journal.kind == core::RoundKind::incremental ? "delta"
                                                                : "full",
          (unsigned long long)cell.inc.journal.multiproof_siblings);
      cells.push_back(cell);
    }
  }

  std::ofstream out("BENCH_incremental.json");
  out << "{\n  \"cells\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    const double speedup =
        c.inc.wall_ms > 0 ? c.full.wall_ms / c.inc.wall_ms : 0.0;
    out << "    {\"n\": " << c.n << ", \"k\": " << c.k
        << ", \"k_eff\": " << c.k_eff
        << ", \"full_ms\": " << c.full.wall_ms
        << ", \"full_sha_rows\": " << c.full.info.sha_rows
        << ", \"full_cycles\": " << c.full.info.cycles
        << ", \"incremental_ms\": " << c.inc.wall_ms
        << ", \"incremental_sha_rows\": " << c.inc.info.sha_rows
        << ", \"incremental_cycles\": " << c.inc.info.cycles
        << ", \"incremental_guest\": \""
        << (c.inc.journal.kind == core::RoundKind::incremental ? "incremental"
                                                               : "full")
        << "\", \"touched_entries\": " << c.inc.journal.touched_entries
        << ", \"multiproof_siblings\": " << c.inc.journal.multiproof_siblings
        << ", \"speedup\": " << speedup << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  if (out) {
    std::printf("\nsweep -> BENCH_incremental.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_incremental.json\n");
    return 1;
  }
  zkt::bench::write_metrics_snapshot("incremental");
  return 0;
}
