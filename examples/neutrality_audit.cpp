// Network-neutrality audit scenario (§2.1): a regulator asks an edge
// operator to prove that traffic toward two content providers receives
// statistically equivalent treatment (latency and loss), without the
// operator revealing flows or topology.
//
// The example runs the audit twice: once against a neutral network and once
// against a network that throttles provider B, showing that the proven
// aggregates expose the discrimination while revealing nothing else.
#include <cstdio>
#include <vector>

#include "core/zkt.h"
#include "sim/simulator.h"

using namespace zkt;

namespace {

struct ProviderStats {
  u64 flows = 0;
  u64 rtt_sum_us = 0;
  u64 rtt_samples = 0;
  u64 packets = 0;
  u64 lost = 0;

  double avg_rtt_ms() const {
    return rtt_samples == 0
               ? 0.0
               : static_cast<double>(rtt_sum_us) / rtt_samples / 1000.0;
  }
  double loss_pct() const {
    const u64 total = packets + lost;
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(lost) / total;
  }
};

/// Run verified queries for one provider's /16 prefix. Every number below is
/// extracted from a proof the auditor checked.
bool audit_provider(core::QueryService& queries, core::Auditor& auditor,
                    u32 prefix, ProviderStats& out) {
  const u32 lo = prefix;
  const u32 hi = prefix | 0xFFFF;
  auto ranged = [&](core::Query q) {
    return q.and_where(core::QField::dst_ip, core::CmpOp::ge, lo)
        .and_where(core::QField::dst_ip, core::CmpOp::le, hi);
  };

  struct Item {
    core::Query query;
    u64* slot;
    bool use_matched;
  };
  core::Query q_flows = ranged(core::Query::count());
  core::Query q_rtt_sum = ranged(core::Query::sum(core::QField::rtt_sum_us));
  core::Query q_rtt_cnt = ranged(core::Query::sum(core::QField::rtt_count));
  core::Query q_pkts = ranged(core::Query::sum(core::QField::packets));
  core::Query q_lost = ranged(core::Query::sum(core::QField::lost_packets));
  const Item items[] = {
      {q_flows, &out.flows, true},
      {q_rtt_sum, &out.rtt_sum_us, false},
      {q_rtt_cnt, &out.rtt_samples, false},
      {q_pkts, &out.packets, false},
      {q_lost, &out.lost, false},
  };
  for (const auto& item : items) {
    auto resp = queries.run(item.query);
    if (!resp.ok()) {
      std::printf("query failed: %s\n", resp.error().to_string().c_str());
      return false;
    }
    auto verified = auditor.verify_query(resp.value().receipt, {.expected_query = &item.query});
    if (!verified.ok()) {
      std::printf("verification failed: %s\n",
                  verified.error().to_string().c_str());
      return false;
    }
    *item.slot = item.use_matched ? verified.value().result.matched
                                  : verified.value().result.sum;
  }
  return true;
}

int run_audit(bool discriminate) {
  std::printf("=== audit of a %s network ===\n",
              discriminate ? "DISCRIMINATING" : "neutral");

  store::LogStore logs;
  core::CommitmentBoard board;
  sim::SimConfig sim_config;
  sim::NetFlowSimulator simulator(sim_config, logs, board);

  sim::NeutralityWorkloadConfig workload_config;
  workload_config.flows_per_provider = 60;
  workload_config.discriminate_b = discriminate;
  auto workload = sim::neutrality_workload(workload_config, 15'000);
  const u32 prefix_a = workload.provider_a_prefix;
  const u32 prefix_b = workload.provider_b_prefix;

  if (auto s = simulator.run(std::move(workload.packets)); !s.ok()) {
    std::printf("simulation failed: %s\n", s.to_string().c_str());
    return 1;
  }

  core::AggregationService aggregation(board);
  core::Auditor auditor(board);
  for (u64 window : simulator.committed_windows()) {
    auto batches = simulator.batches_for_window(window);
    if (!batches.ok()) return 1;
    auto round = aggregation.aggregate(batches.value());
    if (!round.ok()) {
      std::printf("aggregation failed: %s\n",
                  round.error().to_string().c_str());
      return 1;
    }
    if (auto accepted = auditor.accept_round(round.value().receipt);
        !accepted.ok()) {
      std::printf("auditor rejected round: %s\n",
                  accepted.error().to_string().c_str());
      return 1;
    }
  }

  core::QueryService queries(aggregation);
  ProviderStats a, b;
  if (!audit_provider(queries, auditor, prefix_a, a)) return 1;
  if (!audit_provider(queries, auditor, prefix_b, b)) return 1;

  std::printf("provider A: %4llu flows, avg RTT %6.2f ms, loss %.2f%%\n",
              (unsigned long long)a.flows, a.avg_rtt_ms(), a.loss_pct());
  std::printf("provider B: %4llu flows, avg RTT %6.2f ms, loss %.2f%%\n",
              (unsigned long long)b.flows, b.avg_rtt_ms(), b.loss_pct());

  // A simple equivalence criterion for the audit verdict.
  const bool rtt_equiv =
      std::abs(a.avg_rtt_ms() - b.avg_rtt_ms()) <
      0.25 * std::max(a.avg_rtt_ms(), b.avg_rtt_ms());
  const bool loss_equiv =
      std::abs(a.loss_pct() - b.loss_pct()) < 1.0;
  std::printf("verdict: %s\n\n", rtt_equiv && loss_equiv
                                     ? "neutrality COMPLIANT"
                                     : "neutrality VIOLATION detected");
  return 0;
}

}  // namespace

int main() {
  if (int rc = run_audit(false); rc != 0) return rc;
  return run_audit(true);
}
