// Tamper-detection walkthrough (Figure 3 / §5 of the paper): what happens
// when a malicious service provider modifies telemetry after committing.
//
// Four attacks, each caught by a different layer:
//   1. post-commitment RLog edit        -> in-guest hash check aborts proving
//   2. equivocating commitment          -> bulletin board rejects
//   3. forged commitment signature      -> signature verification rejects
//   4. tampered receipt journal         -> auditor proof verification rejects
#include <cstdio>

#include "core/zkt.h"

using namespace zkt;

namespace {

netflow::RLogBatch make_batch(u32 router, u64 window) {
  netflow::RLogBatch batch;
  batch.router_id = router;
  batch.window_id = window;
  netflow::FlowRecord rec;
  for (int i = 0; i < 20; ++i) {
    netflow::PacketObservation pkt;
    pkt.key = {0x01010101, 0x09090909, 1234, 443, 6};
    pkt.timestamp_ms = 1000 + i * 10;
    pkt.bytes = 1000;
    pkt.hop_count = 7;
    pkt.rtt_us = 95'000;  // embarrassing: the operator is violating its SLA
    rec.observe(pkt);
  }
  batch.records.push_back(rec);
  return batch;
}

}  // namespace

int main() {
  core::CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("tamper-router");
  auto batch = make_batch(0, 1);
  auto commitment = core::make_commitment(batch, key, 5000);
  if (!commitment.ok() || !board.publish(commitment.value()).ok()) {
    std::printf("setup failed\n");
    return 1;
  }
  std::printf("router committed to its (high-RTT) telemetry: %s...\n\n",
              commitment.value().rlog_hash.hex().substr(0, 16).c_str());

  // --- Attack 1: rewrite history ------------------------------------------
  std::printf("[1] provider rewrites RTT to look compliant, then aggregates\n");
  {
    auto doctored = batch;
    doctored.records[0].rtt_sum_us /= 10;  // 95 ms -> 9.5 ms
    core::AggregationService aggregation(board);
    auto round = aggregation.aggregate({doctored});
    const std::string outcome =
        round.ok() ? "SUCCEEDED (BUG!)"
                   : "FAILED as designed — " + round.error().to_string();
    std::printf("    proof generation: %s\n", outcome.c_str());
    if (round.ok()) return 1;
  }

  // --- Attack 2: equivocate ------------------------------------------------
  std::printf("[2] provider publishes a second commitment for the window\n");
  {
    auto doctored = batch;
    doctored.records[0].rtt_sum_us /= 10;
    auto second = core::make_commitment(doctored, key, 5001);
    auto published = board.publish(second.value());
    const std::string outcome =
        published.ok() ? "ACCEPTED (BUG!)"
                       : "REJECTED — " + published.to_string();
    std::printf("    board: %s\n", outcome.c_str());
    if (published.ok()) return 1;
  }

  // --- Attack 3: forge another router's commitment --------------------------
  std::printf("[3] provider forges a commitment for router 1 with its own key\n");
  {
    const auto router1_key = crypto::schnorr_keygen_from_seed("router-1-real");
    board.register_router(1, router1_key.public_key);
    auto fake_batch = make_batch(1, 1);
    auto forged = core::make_commitment(fake_batch, key, 5002);  // wrong key
    forged.value().router_pubkey = key.public_key;
    auto published = board.publish(forged.value());
    const std::string outcome =
        published.ok() ? "ACCEPTED (BUG!)"
                       : "REJECTED — " + published.to_string();
    std::printf("    board: %s\n", outcome.c_str());
    if (published.ok()) return 1;
  }

  // --- Attack 4: doctor the published result --------------------------------
  std::printf("[4] provider doctors a query receipt's journal after proving\n");
  {
    core::AggregationService aggregation(board);
    auto round = aggregation.aggregate({batch});
    if (!round.ok()) {
      std::printf("    honest aggregation unexpectedly failed\n");
      return 1;
    }
    core::QueryService queries(aggregation);
    core::Query q = core::Query::max(core::QField::rtt_avg_us);
    auto resp = queries.run(q);
    if (!resp.ok()) return 1;

    core::Auditor auditor(board);
    if (!auditor.accept_round(round.value().receipt).ok()) return 1;

    zvm::Receipt doctored = resp.value().receipt;
    auto journal = resp.value().journal;
    journal.result.max = 9'500;  // pretend max avg-RTT is 9.5 ms
    Writer w;
    journal.write(w);
    doctored.journal = std::move(w).take();

    auto verified = auditor.verify_query(doctored, {.expected_query = &q});
    const std::string outcome =
        verified.ok() ? "ACCEPTED (BUG!)"
                      : "REJECTED — " + verified.error().to_string();
    std::printf("    auditor: %s\n", outcome.c_str());
    if (verified.ok()) return 1;

    auto honest = auditor.verify_query(resp.value().receipt, {.expected_query = &q});
    if (honest.ok()) {
      std::printf("    honest receipt verifies: max avg RTT = %.1f ms\n",
                  static_cast<double>(honest.value().result.max) / 1000.0);
    }
  }

  std::printf("\nall four tampering attempts were detected\n");
  return 0;
}
