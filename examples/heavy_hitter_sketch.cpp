// Sketch-based verifiable telemetry: a router keeps a Count-Min sketch per
// commitment window (instead of, or alongside, full per-flow records),
// publishes the sketch hash, and the provider later proves point estimates
// from the committed sketch — the client learns one flow's estimate, nothing
// else. A Space-Saving tracker picks which flows are worth asking about.
//
// This exercises the paper's claim that the design "can use any logging or
// sketching algorithm" (§1).
#include <cstdio>

#include "core/sketch_query.h"
#include "sim/workload.h"

using namespace zkt;

int main() {
  // --- Router side: meter a Zipf workload into a sketch ------------------
  sim::ZipfWorkloadConfig workload_config;
  workload_config.flow_count = 2000;
  workload_config.zipf_s = 1.2;
  auto packets = sim::zipf_workload(workload_config, 100'000);

  netflow::CountMinSketch sketch(
      netflow::CountMinParams{.width = 2048, .depth = 4, .seed = 2026});
  netflow::SpaceSaving tracker(32);
  std::map<netflow::FlowKey, u64> truth;  // only for reporting accuracy
  for (const auto& pkt : packets) {
    if (pkt.dropped) continue;
    sketch.update(pkt.key, 1);
    tracker.update(pkt.key, 1);
    ++truth[pkt.key];
  }
  std::printf("router metered %zu packets into a %ux%u Count-Min sketch "
              "(%zu B serialized)\n",
              packets.size(), sketch.params().width, sketch.params().depth,
              sketch.canonical_bytes().size());

  // Publish the sketch commitment.
  core::CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("sketch-router");
  auto commitment = core::make_commitment_raw(
      /*router=*/0, /*window=*/1, sketch.hash(), sketch.total_updates(), key,
      5000);
  if (!commitment.ok() || !board.publish(commitment.value()).ok()) {
    std::printf("commitment failed\n");
    return 1;
  }
  const core::CommitmentRef ref{0, 1, sketch.hash(), sketch.total_updates()};
  std::printf("published sketch commitment %s... over %llu updates\n\n",
              sketch.hash().hex().substr(0, 16).c_str(),
              (unsigned long long)sketch.total_updates());

  // --- Heavy hitters (tracked locally, proven from the sketch) -----------
  const u64 threshold = sketch.total_updates() / 100;  // >1% of traffic
  auto hitters = tracker.heavy_hitters(threshold);
  std::printf("flows above 1%% of traffic (per Space-Saving): %zu\n",
              hitters.size());
  std::printf("%-44s | %8s | %8s | %8s | %s\n", "flow", "proven", "true",
              "err %", "verify");
  for (size_t i = 0; i < std::min<size_t>(hitters.size(), 8); ++i) {
    const auto& hh = hitters[i];
    auto response = core::prove_sketch_query(ref, sketch, hh.key);
    if (!response.ok()) {
      std::printf("proof failed: %s\n", response.error().to_string().c_str());
      return 1;
    }
    auto verified =
        core::verify_sketch_query(response.value().receipt, board, &hh.key);
    const u64 actual = truth[hh.key];
    const double err =
        actual == 0 ? 0.0
                    : 100.0 *
                          (static_cast<double>(response.value().journal.estimate) -
                           static_cast<double>(actual)) /
                          static_cast<double>(actual);
    std::printf("%-44s | %8llu | %8llu | %7.2f%% | %s\n",
                hh.key.to_string().c_str(),
                (unsigned long long)response.value().journal.estimate,
                (unsigned long long)actual, err,
                verified.ok() ? "OK" : "REJECTED");
    if (!verified.ok()) return 1;
  }

  // --- Tamper check --------------------------------------------------------
  netflow::CountMinSketch doctored = sketch;
  doctored.update(hitters[0].key, 1);  // post-commitment change
  auto bad = core::prove_sketch_query(ref, doctored, hitters[0].key);
  std::printf("\nproving against a modified sketch: %s\n",
              bad.ok() ? "SUCCEEDED (BUG!)" : "fails as designed");
  return bad.ok() ? 1 : 0;
}
