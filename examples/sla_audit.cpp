// SLA verification scenario (§2.1 of the paper): an operator proves that at
// least 90% of flows meet "avg RTT < 50 ms" without exposing any telemetry.
//
// The operator runs the SLA workload through the 4-router simulator, commits
// every window, aggregates with chained proofs, then answers two queries:
//   COUNT(*)                                -> total flows
//   COUNT(*) WHERE rtt_avg_us < 50'000      -> compliant flows
// The auditor verifies the full receipt chain plus both query receipts and
// computes the compliance ratio from proven numbers only.
#include <cstdio>
#include <vector>

#include "core/describe.h"
#include "core/histogram_query.h"
#include "core/zkt.h"
#include "sim/simulator.h"

using namespace zkt;

int main() {
  // --- Network simulation: 4 routers, 5 s commitment windows ------------
  store::LogStore logs;
  core::CommitmentBoard board;
  sim::SimConfig sim_config;
  sim_config.router_count = 4;
  sim_config.window_ms = 5'000;
  sim::NetFlowSimulator simulator(sim_config, logs, board);

  sim::SlaWorkloadConfig workload_config;
  workload_config.flow_count = 120;
  workload_config.violating_fraction = 0.05;  // the operator is compliant
  workload_config.compliant_rtt_us = 18'000;
  workload_config.violating_rtt_us = 90'000;
  auto workload = sim::sla_workload(workload_config, 20'000);
  std::printf("workload: %zu packets, %llu compliant / %llu violating flows\n",
              workload.packets.size(),
              (unsigned long long)workload.compliant_flows,
              (unsigned long long)workload.violating_flows);

  // The router also maintains a per-packet RTT histogram for the window
  // (committed like any log object) — used below for the distributional
  // form of the SLA claim.
  netflow::LatencyHistogram rtt_histogram;
  for (const auto& pkt : workload.packets) {
    if (!pkt.dropped && pkt.rtt_us > 0) rtt_histogram.add(pkt.rtt_us);
  }

  if (auto s = simulator.run(std::move(workload.packets)); !s.ok()) {
    std::printf("simulation failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("committed windows: %zu, commitments on board: %zu\n",
              simulator.committed_windows().size(), board.size());

  // --- Provider aggregates every window with chained proofs --------------
  core::AggregationService aggregation(board);
  std::vector<zvm::Receipt> round_receipts;  // published alongside the board
  for (u64 window : simulator.committed_windows()) {
    auto batches = simulator.batches_for_window(window);
    if (!batches.ok()) {
      std::printf("bad window %llu: %s\n", (unsigned long long)window,
                  batches.error().to_string().c_str());
      return 1;
    }
    auto round = aggregation.aggregate(batches.value());
    if (!round.ok()) {
      std::printf("aggregation failed: %s\n",
                  round.error().to_string().c_str());
      return 1;
    }
    std::printf("  window %llu: %zu batches -> %llu entries (%.1f ms, %llu cycles)\n",
                (unsigned long long)window,
                round.value().journal.commitments.size(),
                (unsigned long long)round.value().journal.new_entry_count,
                round.value().prove_info.total_ms,
                (unsigned long long)round.value().prove_info.cycles);
    round_receipts.push_back(std::move(round.value().receipt));
  }

  // --- SLA queries --------------------------------------------------------
  constexpr u64 kSlaRttUs = 50'000;
  core::Query total = core::Query::count();
  core::Query compliant = core::Query::count().and_where(
      core::QField::rtt_avg_us, core::CmpOp::lt, kSlaRttUs);

  core::QueryService queries(aggregation);
  auto total_resp = queries.run(total);
  auto compliant_resp = queries.run(compliant);
  if (!total_resp.ok() || !compliant_resp.ok()) {
    std::printf("query proving failed\n");
    return 1;
  }

  // --- Auditor: verify the chain, then the query proofs -------------------
  core::Auditor auditor(board);
  for (const auto& receipt : round_receipts) {
    if (auto accepted = auditor.accept_round(receipt); !accepted.ok()) {
      std::printf("auditor rejected a round: %s\n",
                  accepted.error().to_string().c_str());
      return 1;
    }
  }
  std::printf("auditor accepted %llu aggregation rounds (root %s...)\n",
              (unsigned long long)auditor.rounds_accepted(),
              auditor.current_root().hex().substr(0, 16).c_str());

  auto total_verified = auditor.verify_query(total_resp.value().receipt, {.expected_query = &total});
  auto compliant_verified =
      auditor.verify_query(compliant_resp.value().receipt, {.expected_query = &compliant});
  if (!total_verified.ok() || !compliant_verified.ok()) {
    std::printf("auditor rejected a query proof\n");
    return 1;
  }

  const u64 total_flows = total_verified.value().result.matched;
  const u64 compliant_flows = compliant_verified.value().result.matched;
  const double ratio =
      total_flows == 0 ? 0.0
                       : 100.0 * static_cast<double>(compliant_flows) /
                             static_cast<double>(total_flows);
  std::printf("proven: %llu of %llu flows have avg RTT < %llu us (%.1f%%)\n",
              (unsigned long long)compliant_flows,
              (unsigned long long)total_flows,
              (unsigned long long)kSlaRttUs, ratio);
  std::printf("SLA (>= 90%% compliant): %s\n",
              ratio >= 90.0 ? "SATISFIED" : "VIOLATED");

  // --- Distributional form: per-PACKET percentile from a committed
  // histogram (not just per-flow averages) -------------------------------
  const auto hist_key = crypto::schnorr_keygen_from_seed("sla-histogram");
  auto hist_commitment = core::make_commitment_raw(
      /*router=*/100, /*window=*/1, rtt_histogram.hash(),
      rtt_histogram.total(), hist_key, 5000);
  if (!hist_commitment.ok() ||
      !board.publish(hist_commitment.value()).ok()) {
    std::printf("histogram commitment failed\n");
    return 1;
  }
  const core::CommitmentRef hist_ref{100, 1, rtt_histogram.hash(),
                                     rtt_histogram.total()};
  const u64 bound_us = (1ULL << 16) - 1;  // ~65.5 ms, bucket-aligned
  auto hist_proof =
      core::prove_histogram_query(hist_ref, rtt_histogram, bound_us);
  if (!hist_proof.ok()) {
    std::printf("histogram proof failed: %s\n",
                hist_proof.error().to_string().c_str());
    return 1;
  }
  auto hist_verified = core::verify_histogram_query(
      hist_proof.value().receipt, board, &bound_us);
  if (!hist_verified.ok()) {
    std::printf("histogram proof rejected: %s\n",
                hist_verified.error().to_string().c_str());
    return 1;
  }
  std::printf("proven (distribution): %llu of %llu RTT samples < %.1f ms "
              "(%.2f%%), without revealing the distribution\n",
              (unsigned long long)hist_verified.value().count_below,
              (unsigned long long)hist_verified.value().total,
              static_cast<double>(bound_us) / 1000.0,
              100.0 * core::fraction_below(hist_verified.value()));

  return ratio >= 90.0 ? 0 : 2;
}
