// Quickstart: the smallest end-to-end zktel flow.
//
//   1. a router meters traffic and commits to its NetFlow log,
//   2. the provider aggregates the committed log inside the zkVM,
//   3. a client queries SUM(hop_count) for one flow pair — the exact example
//      query from the paper's §6 — and receives a proof,
//   4. an independent auditor verifies everything without seeing the logs.
#include <cstdio>

#include "core/zkt.h"

using namespace zkt;

int main() {
  // --- Router side -----------------------------------------------------
  // Meter a handful of packets for two flows through a NetFlow cache.
  netflow::FlowCache cache;
  const auto src = netflow::parse_ipv4("1.1.1.1").value();
  const auto dst = netflow::parse_ipv4("9.9.9.9").value();
  const auto other = netflow::parse_ipv4("8.8.8.8").value();
  for (int i = 0; i < 10; ++i) {
    netflow::PacketObservation pkt;
    pkt.key = {src, dst, 5555, 443, 6};
    pkt.timestamp_ms = 1000 + i * 50;
    pkt.bytes = 1200;
    pkt.hop_count = 7;
    pkt.rtt_us = 21'000;
    cache.observe(pkt);

    pkt.key = {other, dst, 4444, 443, 6};
    pkt.hop_count = 3;
    cache.observe(pkt);
  }

  netflow::RLogBatch batch;
  batch.router_id = 0;
  batch.window_id = 1;
  batch.records = cache.flush();
  std::printf("router 0 exported %zu flow records\n", batch.records.size());

  // Publish the signed hash commitment (the paper's H_i).
  core::CommitmentBoard board;
  const auto key = crypto::schnorr_keygen_from_seed("quickstart-router");
  auto commitment = core::make_commitment(batch, key, /*published_at_ms=*/5000);
  if (!commitment.ok()) {
    std::printf("commitment failed: %s\n", commitment.error().to_string().c_str());
    return 1;
  }
  if (auto s = board.publish(commitment.value()); !s.ok()) {
    std::printf("publish failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("published commitment %s\n",
              commitment.value().rlog_hash.hex().substr(0, 16).c_str());

  // --- Provider (Prover) side -------------------------------------------
  core::AggregationService aggregation(board);
  auto round = aggregation.aggregate({batch});
  if (!round.ok()) {
    std::printf("aggregation failed: %s\n", round.error().to_string().c_str());
    return 1;
  }
  std::printf("aggregation round proven: %llu entries, %llu zkVM cycles, "
              "%.2f ms, proof %zu bytes\n",
              (unsigned long long)round.value().journal.new_entry_count,
              (unsigned long long)round.value().prove_info.cycles,
              round.value().prove_info.total_ms,
              round.value().receipt.proof_size_bytes());

  // SELECT SUM(hop_count) FROM clogs WHERE src_ip="1.1.1.1" AND dst_ip="9.9.9.9"
  core::Query query = core::Query::sum(core::QField::hop_sum)
                          .and_where(core::QField::src_ip, core::CmpOp::eq, src)
                          .and_where(core::QField::dst_ip, core::CmpOp::eq, dst);
  std::printf("query: %s\n", query.to_string().c_str());

  core::QueryService queries(aggregation);
  auto response = queries.run(query);
  if (!response.ok()) {
    std::printf("query failed: %s\n", response.error().to_string().c_str());
    return 1;
  }
  std::printf("proven result: %llu (journal %zu bytes, receipt %zu bytes)\n",
              (unsigned long long)response.value().value,
              response.value().receipt.journal.size(),
              response.value().receipt.receipt_size_bytes());

  // --- Client (Verifier) side --------------------------------------------
  core::Auditor auditor(board);
  if (auto s = auditor.accept_round(round.value().receipt); !s.ok()) {
    std::printf("auditor rejected round: %s\n", s.error().to_string().c_str());
    return 1;
  }
  auto verified = auditor.verify_query(response.value().receipt, {.expected_query = &query});
  if (!verified.ok()) {
    std::printf("auditor rejected query: %s\n",
                verified.error().to_string().c_str());
    return 1;
  }
  std::printf("auditor verified: SUM(hop_count) = %llu over %llu flows "
              "(without seeing any log)\n",
              (unsigned long long)verified.value().result.sum,
              (unsigned long long)verified.value().result.scanned);
  return 0;
}
