// Full pipeline mirroring the paper's evaluation setup (§6): 4 routers on
// dedicated threads, Zipf traffic, NetFlow v9 export into a shared log store
// with WAL persistence, 5 s commitment windows, chained aggregation rounds,
// and an auditor replaying the whole public transcript:
//
//   packets -> FlowCache -> v9 wire -> LogStore (+WAL)        [per router]
//           -> signed commitments -> CommitmentBoard           [per window]
//   batches -> Algorithm-1 zkVM rounds -> receipts             [prover]
//   receipts + board -> chain verification -> verified queries [auditor]
#include <cstdio>
#include <vector>

#include "core/grouped_query.h"
#include "core/zkt.h"
#include "sim/simulator.h"

using namespace zkt;

int main() {
  // Shared backend with durability (the paper's PostgreSQL role).
  const std::string wal_path = "/tmp/zktel_pipeline.wal";
  std::remove(wal_path.c_str());
  store::LogStore logs(store::StoreConfig{.wal_path = wal_path});
  if (auto s = logs.recover(); !s.ok()) {
    std::printf("store recovery failed: %s\n", s.to_string().c_str());
    return 1;
  }

  core::CommitmentBoard board;
  sim::SimConfig sim_config;
  sim_config.router_count = 4;
  sim_config.window_ms = 5'000;
  sim_config.path_length = 2;  // each flow crosses 2 routers
  sim::NetFlowSimulator simulator(sim_config, logs, board);

  sim::ZipfWorkloadConfig workload;
  workload.flow_count = 150;
  workload.duration_ms = 25'000;  // 5 commitment windows
  auto packets = sim::zipf_workload(workload, 30'000);
  std::printf("generated %zu packets over %llu ms across %llu flows\n",
              packets.size(), (unsigned long long)workload.duration_ms,
              (unsigned long long)workload.flow_count);

  if (auto s = simulator.run(std::move(packets)); !s.ok()) {
    std::printf("simulation failed: %s\n", s.to_string().c_str());
    return 1;
  }
  for (u32 r = 0; r < simulator.router_count(); ++r) {
    const auto& st = simulator.router_stats()[r];
    std::printf("router %u: %llu packets -> %llu records in %llu batches "
                "(%llu v9 packets)\n",
                r, (unsigned long long)st.packets,
                (unsigned long long)st.records,
                (unsigned long long)st.batches,
                (unsigned long long)st.v9_packets);
  }
  std::printf("store: %llu rlog rows, WAL %llu bytes; board: %zu commitments\n",
              (unsigned long long)logs.row_count(store::kTableRlogs),
              (unsigned long long)logs.stats().wal_bytes, board.size());

  // Prover: one chained aggregation round per window.
  core::AggregationService aggregation(board);
  std::vector<zvm::Receipt> receipts;
  for (u64 window : simulator.committed_windows()) {
    auto batches = simulator.batches_for_window(window);
    if (!batches.ok()) return 1;
    auto round = aggregation.aggregate(batches.value());
    if (!round.ok()) {
      std::printf("aggregation failed at window %llu: %s\n",
                  (unsigned long long)window,
                  round.error().to_string().c_str());
      return 1;
    }
    const auto& r = round.value();
    std::printf("round %llu (window %llu): %llu entries, %llu updates, "
                "%llu cycles, prove %.1f ms, receipt %zu B (proof %zu B)\n",
                (unsigned long long)r.round_id, (unsigned long long)window,
                (unsigned long long)r.journal.new_entry_count,
                (unsigned long long)r.journal.update_count,
                (unsigned long long)r.prove_info.cycles,
                r.prove_info.total_ms, r.receipt.receipt_size_bytes(),
                r.receipt.proof_size_bytes());
    receipts.push_back(round.value().receipt);
  }

  // Auditor replays the public transcript.
  core::Auditor auditor(board);
  for (const auto& receipt : receipts) {
    if (auto accepted = auditor.accept_round(receipt); !accepted.ok()) {
      std::printf("auditor rejected: %s\n",
                  accepted.error().to_string().c_str());
      return 1;
    }
  }
  std::printf("auditor accepted all %llu rounds; final root %s..., %llu entries\n",
              (unsigned long long)auditor.rounds_accepted(),
              auditor.current_root().hex().substr(0, 16).c_str(),
              (unsigned long long)auditor.current_entry_count());

  // A few verified queries over the final state.
  core::QueryService queries(aggregation);
  struct Named {
    const char* label;
    core::Query query;
  };
  const Named examples[] = {
      {"total flows", core::Query::count()},
      {"total packets", core::Query::sum(core::QField::packets)},
      {"total bytes", core::Query::sum(core::QField::bytes)},
      {"TCP flows", core::Query::count().and_where(core::QField::protocol,
                                                   core::CmpOp::eq, 6)},
      {"max avg RTT (us)", core::Query::max(core::QField::rtt_avg_us)},
      {"flows with loss",
       core::Query::count().and_where(core::QField::lost_packets,
                                      core::CmpOp::gt, 0)},
  };
  for (const auto& [label, query] : examples) {
    auto resp = queries.run(query);
    if (!resp.ok()) {
      std::printf("query '%s' failed: %s\n", label,
                  resp.error().to_string().c_str());
      return 1;
    }
    auto verified = auditor.verify_query(resp.value().receipt, {.expected_query = &query});
    if (!verified.ok()) {
      std::printf("query '%s' rejected: %s\n", label,
                  verified.error().to_string().c_str());
      return 1;
    }
    std::printf("verified  %-20s = %llu  (prove %.1f ms, verify receipt %zu B)\n",
                label,
                (unsigned long long)verified.value().result.value(
                    resp.value().journal.query.agg),
                resp.value().prove_info.total_ms,
                resp.value().receipt.receipt_size_bytes());
  }

  // One grouped proof: per-protocol traffic report in a single receipt.
  {
    core::Query q = core::Query::sum(core::QField::bytes);
    auto grouped = core::run_grouped_query(aggregation, q,
                                           core::QField::protocol);
    if (!grouped.ok()) {
      std::printf("grouped query failed: %s\n",
                  grouped.error().to_string().c_str());
      return 1;
    }
    auto verified = core::verify_grouped_query(grouped.value().receipt,
                                               auditor, &q);
    if (!verified.ok()) {
      std::printf("grouped query rejected: %s\n",
                  verified.error().to_string().c_str());
      return 1;
    }
    std::printf("verified GROUP BY protocol (one receipt, %zu B):\n",
                grouped.value().receipt.receipt_size_bytes());
    for (const auto& group : verified.value().groups) {
      std::printf("  protocol %3llu: %llu flows, %llu bytes\n",
                  (unsigned long long)group.group_value,
                  (unsigned long long)group.stats.matched,
                  (unsigned long long)group.stats.sum);
    }
  }

  std::remove(wal_path.c_str());
  return 0;
}
