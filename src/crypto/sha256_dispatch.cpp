// Runtime backend selection and the generic batched-hashing drivers.
//
// Build-time: sha256_shani.cpp / sha256_avx2.cpp are compiled (with their
// ISA flags) only when the toolchain supports them, and define
// ZKT_HAVE_SHA256_SHANI / ZKT_HAVE_SHA256_AVX2 for this TU. Runtime: CPUID
// gates which compiled backends may actually execute, so a portable binary
// carrying SIMD code still runs correctly on CPUs without it.
#include "crypto/sha256_backend.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define ZKT_SHA256_X86 1
#if defined(__GNUC__) || defined(__clang__)
#include <cpuid.h>
#endif
#endif

namespace zkt::crypto {

void sha256_compress_many_scalar(Sha256State* states,
                                 const std::array<u8, 64>* blocks, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    states[i] = sha256_compress(states[i], blocks[i]);
  }
}

#if defined(ZKT_HAVE_SHA256_SHANI)
void sha256_compress_many_shani(Sha256State* states,
                                const std::array<u8, 64>* blocks, size_t n);
#endif
#if defined(ZKT_HAVE_SHA256_AVX2)
void sha256_compress_many_avx2(Sha256State* states,
                               const std::array<u8, 64>* blocks, size_t n);
#endif

namespace {

struct CpuSupport {
  bool shani = false;
  bool avx2 = false;
};

#if defined(ZKT_SHA256_X86) && (defined(__GNUC__) || defined(__clang__))
CpuSupport detect_cpu() {
  CpuSupport support;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) < 7) return support;
  __cpuid_count(1, 0, eax, ebx, ecx, edx);
  const bool ssse3 = (ecx >> 9) & 1u;
  const bool sse41 = (ecx >> 19) & 1u;
  const bool osxsave = (ecx >> 27) & 1u;
  bool ymm_enabled = false;
  if (osxsave) {
    // XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled for ymm use.
    // Inline asm instead of _xgetbv: the intrinsic needs -mxsave, and this
    // TU must compile with portable flags.
    unsigned xcr0_lo = 0, xcr0_hi = 0;
    __asm__ volatile("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
    ymm_enabled = (xcr0_lo & 0x6u) == 0x6u;
  }
  __cpuid_count(7, 0, eax, ebx, ecx, edx);
  const bool sha_ext = (ebx >> 29) & 1u;
  const bool avx2_ext = (ebx >> 5) & 1u;
  support.shani = sha_ext && ssse3 && sse41;
  support.avx2 = avx2_ext && ymm_enabled;
  return support;
}
#else
CpuSupport detect_cpu() { return {}; }
#endif

const CpuSupport& cpu_support() {
  static const CpuSupport support = detect_cpu();
  return support;
}

// 0..2 = forced backend, kAuto = automatic selection.
constexpr u8 kAuto = 0xff;

std::atomic<u8>& forced_backend() {
  static std::atomic<u8> forced = [] {
    u8 initial = kAuto;
    if (const char* env = std::getenv("ZKT_SHA256_BACKEND")) {
      if (auto parsed = sha256_backend_from_name(env);
          parsed.has_value() && sha256_backend_available(*parsed)) {
        initial = static_cast<u8>(*parsed);
      }
    }
    return std::atomic<u8>(initial);
  }();
  return forced;
}

struct BackendCounters {
  std::atomic<u64> blocks{0};
  std::atomic<u64> batches{0};
};

BackendCounters& counters(Sha256Backend backend) {
  static BackendCounters all[kSha256BackendCount];
  return all[static_cast<size_t>(backend)];
}

/// Fill `block` with 64-byte block `index` of the FIPS 180-4 padded message
/// (tag ? tag || msg : msg), without materializing the padded message. Lane
/// drivers call this per active block step.
void padded_block_at(std::optional<u8> tag, BytesView msg, u64 index,
                     std::array<u8, 64>& block) {
  const u64 tag_len = tag.has_value() ? 1 : 0;
  const u64 msg_len = tag_len + msg.size();
  const u64 total_blocks = sha256_compression_count(msg_len);
  const u64 begin = index * 64;

  block.fill(0);
  // Message bytes overlapping [begin, begin + 64).
  if (begin < msg_len) {
    u64 pos = begin;
    u64 out = 0;
    if (tag.has_value() && pos == 0) {
      block[out++] = *tag;
      ++pos;
    }
    if (pos < msg_len) {
      const u64 take = std::min<u64>(64 - out, msg_len - pos);
      std::memcpy(block.data() + out, msg.data() + (pos - tag_len), take);
      out += take;
    }
    if (out < 64) block[out] = 0x80;  // padding starts in this block
  } else if (begin == msg_len) {
    block[0] = 0x80;  // message ended exactly on a block boundary
  }
  if (index + 1 == total_blocks) {
    const u64 bit_len = msg_len * 8;
    for (int i = 0; i < 8; ++i) {
      block[56 + i] = static_cast<u8>(bit_len >> (56 - 8 * i));
    }
  }
}

}  // namespace

const char* sha256_backend_name(Sha256Backend backend) {
  switch (backend) {
    case Sha256Backend::scalar:
      return "scalar";
    case Sha256Backend::shani:
      return "shani";
    case Sha256Backend::avx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Sha256Backend> sha256_backend_from_name(std::string_view name) {
  if (name == "scalar") return Sha256Backend::scalar;
  if (name == "shani") return Sha256Backend::shani;
  if (name == "avx2") return Sha256Backend::avx2;
  return std::nullopt;
}

bool sha256_backend_compiled(Sha256Backend backend) {
  switch (backend) {
    case Sha256Backend::scalar:
      return true;
    case Sha256Backend::shani:
#if defined(ZKT_HAVE_SHA256_SHANI)
      return true;
#else
      return false;
#endif
    case Sha256Backend::avx2:
#if defined(ZKT_HAVE_SHA256_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool sha256_backend_available(Sha256Backend backend) {
  if (!sha256_backend_compiled(backend)) return false;
  switch (backend) {
    case Sha256Backend::scalar:
      return true;
    case Sha256Backend::shani:
      return cpu_support().shani;
    case Sha256Backend::avx2:
      return cpu_support().avx2;
  }
  return false;
}

Sha256Backend sha256_active_backend() {
  const u8 forced = forced_backend().load(std::memory_order_relaxed);
  if (forced != kAuto) return static_cast<Sha256Backend>(forced);
  // SHA-NI beats the 8-way AVX2 interleave per block on every CPU shipping
  // both, so prefer it even for wide batches.
  if (sha256_backend_available(Sha256Backend::shani)) {
    return Sha256Backend::shani;
  }
  if (sha256_backend_available(Sha256Backend::avx2)) {
    return Sha256Backend::avx2;
  }
  return Sha256Backend::scalar;
}

bool sha256_force_backend(std::optional<Sha256Backend> backend) {
  if (!backend.has_value()) {
    forced_backend().store(kAuto, std::memory_order_relaxed);
    return true;
  }
  if (!sha256_backend_available(*backend)) return false;
  forced_backend().store(static_cast<u8>(*backend),
                         std::memory_order_relaxed);
  return true;
}

Sha256BackendStats sha256_backend_stats(Sha256Backend backend) {
  const BackendCounters& c = counters(backend);
  return Sha256BackendStats{c.blocks.load(std::memory_order_relaxed),
                            c.batches.load(std::memory_order_relaxed)};
}

void sha256_compress_many(std::span<Sha256State> states,
                          std::span<const std::array<u8, 64>> blocks) {
  const size_t n = std::min(states.size(), blocks.size());
  if (n == 0) return;
  const Sha256Backend backend = sha256_active_backend();
  switch (backend) {
#if defined(ZKT_HAVE_SHA256_SHANI)
    case Sha256Backend::shani:
      sha256_compress_many_shani(states.data(), blocks.data(), n);
      break;
#endif
#if defined(ZKT_HAVE_SHA256_AVX2)
    case Sha256Backend::avx2:
      sha256_compress_many_avx2(states.data(), blocks.data(), n);
      break;
#endif
    default:
      sha256_compress_many_scalar(states.data(), blocks.data(), n);
      break;
  }
  BackendCounters& c = counters(backend);
  c.blocks.fetch_add(n, std::memory_order_relaxed);
  c.batches.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Digest32> sha256_many(std::span<const BytesView> msgs,
                                  std::optional<u8> tag) {
  const size_t n = msgs.size();
  std::vector<Digest32> out(n);
  if (n == 0) return out;

  const u64 tag_len = tag.has_value() ? 1 : 0;
  std::vector<Sha256State> states(n, Sha256State::initial());
  std::vector<u64> total_blocks(n);
  u64 max_blocks = 0;
  for (size_t i = 0; i < n; ++i) {
    total_blocks[i] = sha256_compression_count(tag_len + msgs[i].size());
    max_blocks = std::max(max_blocks, total_blocks[i]);
  }

  // Step block-by-block: at step j, every lane that still has a block j
  // compresses in one batch. Lanes chain their own state across steps; the
  // batch at each step is over *independent* lanes, which is exactly the
  // shape the SIMD backends want.
  std::vector<Sha256State> active_states;
  std::vector<std::array<u8, 64>> active_blocks;
  std::vector<size_t> active_lanes;
  active_states.reserve(n);
  active_blocks.reserve(n);
  active_lanes.reserve(n);
  for (u64 j = 0; j < max_blocks; ++j) {
    active_states.clear();
    active_blocks.clear();
    active_lanes.clear();
    for (size_t i = 0; i < n; ++i) {
      if (j >= total_blocks[i]) continue;
      active_lanes.push_back(i);
      active_states.push_back(states[i]);
      active_blocks.emplace_back();
      padded_block_at(tag, msgs[i], j, active_blocks.back());
    }
    sha256_compress_many(active_states, active_blocks);
    for (size_t k = 0; k < active_lanes.size(); ++k) {
      states[active_lanes[k]] = active_states[k];
    }
  }
  for (size_t i = 0; i < n; ++i) out[i] = states[i].to_digest();
  return out;
}

}  // namespace zkt::crypto
