#include "crypto/chacha20.h"

#include <cstring>

#include "crypto/sha256.h"

namespace zkt::crypto {

namespace {

constexpr u32 rotl(u32 x, int n) { return (x << n) | (x >> (32 - n)); }

void quarter_round(u32& a, u32& b, u32& c, u32& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

u32 load_le32(const u8* p) {
  return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
         (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

void store_le32(u8* p, u32 v) {
  p[0] = static_cast<u8>(v);
  p[1] = static_cast<u8>(v >> 8);
  p[2] = static_cast<u8>(v >> 16);
  p[3] = static_cast<u8>(v >> 24);
}

}  // namespace

std::array<u8, 64> chacha20_block(const std::array<u8, 32>& key,
                                  const std::array<u8, 12>& nonce,
                                  u32 counter) {
  u32 state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load_le32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load_le32(nonce.data() + 4 * i);

  u32 working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }

  std::array<u8, 64> out;
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, working[i] + state[i]);
  }
  return out;
}

Bytes chacha20_xor(const std::array<u8, 32>& key,
                   const std::array<u8, 12>& nonce, u32 initial_counter,
                   BytesView message) {
  Bytes out(message.begin(), message.end());
  u32 counter = initial_counter;
  for (size_t pos = 0; pos < out.size(); pos += 64) {
    const auto ks = chacha20_block(key, nonce, counter++);
    const size_t n = std::min<size_t>(64, out.size() - pos);
    for (size_t i = 0; i < n; ++i) out[pos + i] ^= ks[i];
  }
  return out;
}

ChaChaDrbg::ChaChaDrbg(BytesView seed) {
  const Digest32 d = sha256(seed);
  std::memcpy(key_.data(), d.bytes.data(), 32);
  // nonce_ stays zero; the counter provides the stream position.
}

void ChaChaDrbg::refill() {
  block_ = chacha20_block(key_, nonce_, counter_++);
  offset_ = 0;
}

void ChaChaDrbg::fill(std::span<u8> out) {
  size_t pos = 0;
  while (pos < out.size()) {
    if (offset_ >= 64) refill();
    const size_t take = std::min<size_t>(64 - offset_, out.size() - pos);
    std::memcpy(out.data() + pos, block_.data() + offset_, take);
    offset_ += take;
    pos += take;
  }
}

Bytes ChaChaDrbg::bytes(size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

u64 ChaChaDrbg::next_u64() {
  std::array<u8, 8> b;
  fill(b);
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(b[i]) << (8 * i);
  return v;
}

Digest32 ChaChaDrbg::next_digest() {
  Digest32 d;
  fill(d.bytes);
  return d;
}

u64 ChaChaDrbg::uniform(u64 bound) {
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    const u64 r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace zkt::crypto
