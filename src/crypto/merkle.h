// Merkle tree over 32-byte digests with inclusion proofs, O(log n) leaf
// updates, and appends.
//
// Used in two places, exactly as in the paper:
//   * the aggregate-log (CLog) authentication structure maintained across
//     aggregation rounds (Figure 2), and
//   * the zkVM trace commitment that the prover opens at Fiat–Shamir-chosen
//     indices.
//
// Leaves are padded to a power of two with a distinguished empty digest.
// Leaf and internal node hashes are domain-separated (0x00 / 0x01 prefixes)
// so a leaf can never be confused with an interior node.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"

namespace zkt::crypto {

struct MerkleProof {
  u64 leaf_index = 0;
  u64 leaf_count = 0;              ///< number of real (unpadded) leaves
  std::vector<Digest32> siblings;  ///< bottom-up sibling digests

  void serialize(Writer& w) const;
  static Result<MerkleProof> deserialize(Reader& r);

  /// Serialized size in bytes.
  size_t byte_size() const { return 16 + 2 + siblings.size() * 32; }
};

/// Accounting for batched path verification (verify_batch): how many
/// hash_node applications ran, and how many were avoided because converging
/// paths produced an identical (left, right) input that was computed once
/// and shared. Callers (the zvm verifier, the auditor) publish these into
/// obs themselves — crypto stays obs-free per the module DAG.
struct PathBatchStats {
  u64 node_hashes = 0;         ///< hash_node applications computed
  u64 node_hashes_shared = 0;  ///< applications deduplicated away
};

/// One (leaf digest, inclusion proof) item for MerkleTree::verify_batch.
/// Non-owning: both pointers must outlive the call.
struct LeafProof {
  const Digest32* leaf = nullptr;
  const MerkleProof* proof = nullptr;
};

/// Batch inclusion proof for several leaves at once: stores only the
/// sibling digests not derivable from the opened leaves themselves, so
/// proving k leaves costs far less than k single proofs (shared path
/// prefixes are deduplicated). Used to compress multi-entry openings.
struct MerkleMultiProof {
  u64 leaf_count = 0;
  std::vector<u64> indices;          ///< sorted, unique leaf indices
  std::vector<Digest32> siblings;    ///< bottom-up, left-to-right order

  void serialize(Writer& w) const;
  static Result<MerkleMultiProof> deserialize(Reader& r);
  size_t byte_size() const { return 16 + 4 + indices.size() * 8 + 2 + siblings.size() * 32; }
};

class MerkleTree {
 public:
  MerkleTree() = default;
  /// Build from pre-hashed leaf digests.
  explicit MerkleTree(std::vector<Digest32> leaves);

  /// Domain-separated leaf hash of raw data.
  static Digest32 hash_leaf(BytesView data);
  /// Domain-separated internal node hash.
  static Digest32 hash_node(const Digest32& left, const Digest32& right);
  /// Batched hash_leaf over independent messages: out[i] = hash_leaf(datas[i]).
  /// Dispatches to the fastest available SHA-256 backend (crypto/
  /// sha256_backend.h); bit-identical to the per-leaf form.
  static std::vector<Digest32> hash_leaves(std::span<const BytesView> datas);
  /// Batched hash_node over consecutive pairs: out[i] = hash_node(
  /// nodes[2i], nodes[2i+1]). nodes.size() must be even and out.size() ==
  /// nodes.size() / 2. Bit-identical to the per-pair form.
  static void hash_pairs(std::span<const Digest32> nodes,
                         std::span<Digest32> out);
  /// The digest used to pad the leaf layer to a power of two.
  static const Digest32& empty_leaf();
  /// Root of the all-empty subtree of the given height (height 0 is the
  /// empty leaf itself). Doubling a tree's capacity maps its root r to
  /// hash_node(r, empty_subtree_root(old_depth)).
  static Digest32 empty_subtree_root(u32 height);

  /// Root digest. For an empty tree, returns the hash of the empty leaf.
  Digest32 root() const;

  u64 leaf_count() const { return leaf_count_; }
  u32 depth() const;
  const Digest32& leaf(u64 index) const { return levels_[0][index]; }

  /// Inclusion proof for leaf `index` (must be < leaf_count()).
  MerkleProof prove(u64 index) const;

  /// Replace the leaf at `index` and recompute the path to the root.
  void update_leaf(u64 index, const Digest32& new_leaf);

  /// Append a leaf; returns its index. Doubles capacity when full.
  u64 append_leaf(const Digest32& leaf);

  /// Insert a leaf at `index` (<= leaf_count()), shifting later leaves one
  /// slot right — the sorted-order insert used by the key-ordered CLog.
  /// Doubles capacity when full; costs O(leaf_count - index) suffix hashes
  /// per level, so front inserts are the expensive case.
  void insert_leaf(u64 index, const Digest32& leaf);

  /// Grow the padded leaf layer to at least `min_slots` slots (rounded up
  /// to a power of two) without changing leaf_count(). Growing changes
  /// root(): each doubling maps r to hash_node(r, empty_subtree). Used on
  /// throwaway copies to build multiproofs that open the empty slots a
  /// delta round is about to fill.
  void grow_capacity(u64 min_slots);

  /// Number of padded leaf slots (power of two; >= leaf_count()).
  u64 capacity() const { return levels_.empty() ? 0 : levels_[0].size(); }

  /// Verify an inclusion proof against a root.
  static Status verify(const Digest32& root, const Digest32& leaf,
                       const MerkleProof& proof);

  /// Verify many inclusion proofs against ONE root, level-synchronously:
  /// every level's hash_node applications across all proofs go through one
  /// hash_pairs call (full SIMD lanes), and identical (left, right) inputs —
  /// paths converging toward the root, or sibling openings hashing the same
  /// pair from both sides — are computed once and shared. Accepts exactly
  /// when verify() accepts every item; on rejection the error is one of the
  /// failing items' (the reported item may differ from the sequential
  /// first-failure under multi-item tampering, the decision never does).
  static Status verify_batch(const Digest32& root,
                             std::span<const LeafProof> items,
                             PathBatchStats* stats = nullptr);

  /// Batch inclusion proof for `indices` (each < leaf_count(); duplicates
  /// ignored).
  MerkleMultiProof prove_multi(std::span<const u64> indices) const;

  /// Verify a batch proof. `leaves` must be the (index, digest) pairs for
  /// exactly the proof's indices, sorted ascending by index.
  static Status verify_multi(
      const Digest32& root,
      std::span<const std::pair<u64, Digest32>> leaves,
      const MerkleMultiProof& proof);

  /// Number of node hashes needed to build a tree of n leaves (the hash-cost
  /// model used by the specialized-proof-system ablation, §7 of the paper).
  static u64 build_hash_count(u64 leaf_count);

 private:
  void rebuild();
  void build_above();
  void recompute_from(u64 leaf_index);

  // levels_[0] = padded leaves, levels_.back() = {root}.
  std::vector<std::vector<Digest32>> levels_;
  u64 leaf_count_ = 0;
};

}  // namespace zkt::crypto
