#include "crypto/u256.h"

#include <cassert>

namespace zkt::crypto {

U256 U256::from_be_bytes(BytesView b32) {
  assert(b32.size() == 32);
  U256 v;
  for (int limb = 0; limb < 4; ++limb) {
    u64 x = 0;
    for (int i = 0; i < 8; ++i) {
      x = (x << 8) | b32[(3 - limb) * 8 + i];
    }
    v.w[limb] = x;
  }
  return v;
}

void U256::to_be_bytes(std::span<u8> out32) const {
  assert(out32.size() == 32);
  for (int limb = 0; limb < 4; ++limb) {
    const u64 x = w[3 - limb];
    for (int i = 0; i < 8; ++i) {
      out32[limb * 8 + i] = static_cast<u8>(x >> (56 - 8 * i));
    }
  }
}

std::array<u8, 32> U256::be_bytes() const {
  std::array<u8, 32> out;
  to_be_bytes(out);
  return out;
}

U256 U256::from_hex(std::string_view hex) {
  Bytes b = hex_bytes(hex);
  assert(b.size() <= 32);
  Bytes padded(32 - b.size(), 0);
  padded.insert(padded.end(), b.begin(), b.end());
  return from_be_bytes(padded);
}

std::string U256::hex() const { return to_hex(be_bytes()); }

U256 add_carry(const U256& a, const U256& b, u64& carry_out) {
  U256 r;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(a.w[i]) + b.w[i] + carry;
    r.w[i] = static_cast<u64>(s);
    carry = s >> 64;
  }
  carry_out = static_cast<u64>(carry);
  return r;
}

U256 sub_borrow(const U256& a, const U256& b, u64& borrow_out) {
  U256 r;
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 d = static_cast<unsigned __int128>(a.w[i]) -
                                b.w[i] - borrow;
    r.w[i] = static_cast<u64>(d);
    borrow = (d >> 64) & 1;
  }
  borrow_out = static_cast<u64>(borrow);
  return r;
}

std::array<u64, 8> mul_wide(const U256& a, const U256& b) {
  std::array<u64, 8> r{};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 t =
          static_cast<unsigned __int128>(a.w[i]) * b.w[j] + r[i + j] + carry;
      r[i + j] = static_cast<u64>(t);
      carry = static_cast<u64>(t >> 64);
    }
    r[i + 4] += carry;
  }
  return r;
}

U256 shr(const U256& a, unsigned s) {
  assert(s < 64);
  if (s == 0) return a;
  U256 r;
  for (int i = 0; i < 4; ++i) {
    r.w[i] = a.w[i] >> s;
    if (i + 1 < 4) r.w[i] |= a.w[i + 1] << (64 - s);
  }
  return r;
}

}  // namespace zkt::crypto
