// Fiat–Shamir transcript: a hash-chained absorb/squeeze sponge over SHA-256.
//
// Prover and verifier both run the transcript over the same public values
// (image id, journal digest, trace commitment); the squeezed challenges are
// therefore reproducible by the verifier, which is what makes the zvm seal
// non-interactive. Domain-separation labels prevent cross-protocol collisions.
#pragma once

#include <string_view>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace zkt::crypto {

class Transcript {
 public:
  explicit Transcript(std::string_view domain);

  /// Absorb a labelled byte string.
  void absorb(std::string_view label, BytesView data);
  void absorb(std::string_view label, const Digest32& d) {
    absorb(label, d.view());
  }
  void absorb_u64(std::string_view label, u64 v);

  /// Squeeze a 32-byte challenge bound to everything absorbed so far.
  Digest32 challenge(std::string_view label);

  /// Squeeze a u64 challenge.
  u64 challenge_u64(std::string_view label);

  /// Squeeze an index uniform in [0, bound); bound > 0.
  u64 challenge_index(std::string_view label, u64 bound);

 private:
  void ratchet(std::string_view label, BytesView data, u8 op);

  Digest32 state_;
  u64 ops_ = 0;
};

}  // namespace zkt::crypto
