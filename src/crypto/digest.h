// 32-byte digest value type shared by every hash-consuming component
// (commitments, Merkle trees, zkVM trace rows, receipts).
#pragma once

#include <array>
#include <compare>
#include <cstring>
#include <functional>
#include <string>

#include "common/bytes.h"

namespace zkt::crypto {

struct Digest32 {
  std::array<u8, 32> bytes{};

  auto operator<=>(const Digest32&) const = default;

  BytesView view() const { return {bytes.data(), bytes.size()}; }
  std::string hex() const { return to_hex(view()); }
  bool is_zero() const {
    for (u8 b : bytes)
      if (b != 0) return false;
    return true;
  }

  static Digest32 from_bytes(BytesView data) {
    Digest32 d;
    if (data.size() == 32) std::memcpy(d.bytes.data(), data.data(), 32);
    return d;
  }

  static Digest32 from_hex(std::string_view h) {
    return from_bytes(hex_bytes(h));
  }
};

struct Digest32Hasher {
  size_t operator()(const Digest32& d) const {
    u64 v;
    std::memcpy(&v, d.bytes.data(), sizeof(v));
    return static_cast<size_t>(v);
  }
};

}  // namespace zkt::crypto
