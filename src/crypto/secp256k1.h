// secp256k1 group arithmetic from scratch: prime-field element (fast
// reduction exploiting p = 2^256 - 2^32 - 977), scalar field mod the group
// order, Jacobian point arithmetic, and scalar multiplication.
//
// This backs the Schnorr signatures routers use to sign their periodic hash
// commitments, making the commitment bulletin board publicly attributable.
#pragma once

#include <optional>

#include "crypto/u256.h"

namespace zkt::crypto {

/// The field prime p and group order n of secp256k1.
const U256& secp_p();
const U256& secp_n();

/// Element of GF(p). Always stored fully reduced.
struct Fe {
  U256 v;

  constexpr Fe() = default;
  explicit Fe(u64 x) : v(x) {}
  explicit Fe(const U256& x);  // reduces mod p

  friend bool operator==(const Fe&, const Fe&) = default;
  bool is_zero() const { return v.is_zero(); }
  bool is_odd() const { return v.is_odd(); }
};

Fe fe_add(const Fe& a, const Fe& b);
Fe fe_sub(const Fe& a, const Fe& b);
Fe fe_mul(const Fe& a, const Fe& b);
Fe fe_sqr(const Fe& a);
Fe fe_neg(const Fe& a);
Fe fe_pow(const Fe& a, const U256& e);
Fe fe_inv(const Fe& a);                   // a != 0
std::optional<Fe> fe_sqrt(const Fe& a);   // p ≡ 3 (mod 4)

/// Scalar mod the group order n. Stored fully reduced.
struct Scalar {
  U256 v;

  constexpr Scalar() = default;
  explicit Scalar(u64 x) : v(x) {}
  explicit Scalar(const U256& x);  // reduces mod n

  /// Interpret 32 big-endian bytes as an integer and reduce mod n.
  static Scalar from_be_bytes(BytesView b32);

  friend bool operator==(const Scalar&, const Scalar&) = default;
  bool is_zero() const { return v.is_zero(); }
};

Scalar sc_add(const Scalar& a, const Scalar& b);
Scalar sc_mul(const Scalar& a, const Scalar& b);
Scalar sc_neg(const Scalar& a);

/// Point in Jacobian coordinates; the identity has z == 0.
struct Point {
  Fe x, y, z;

  static Point infinity() { return Point{}; }
  bool is_infinity() const { return z.is_zero(); }
};

/// Affine coordinates (never the identity).
struct Affine {
  Fe x, y;
};

/// The standard generator G.
const Point& secp_g();

Point point_double(const Point& p);
Point point_add(const Point& a, const Point& b);
Point point_add_affine(const Point& a, const Affine& b);
Point point_neg(const Point& p);
/// k * P via MSB-first double-and-add.
Point point_mul(const Scalar& k, const Point& p);
/// k * G.
Point point_mul_g(const Scalar& k);

/// Convert to affine; nullopt for the identity.
std::optional<Affine> to_affine(const Point& p);

/// Lift an x coordinate to the curve point with even y (BIP340 lift_x).
std::optional<Affine> lift_x(const U256& x);

/// Check y^2 == x^3 + 7.
bool on_curve(const Affine& a);

}  // namespace zkt::crypto
