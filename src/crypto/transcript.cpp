#include "crypto/transcript.h"

#include "crypto/sha256.h"

namespace zkt::crypto {

namespace {
constexpr u8 kOpAbsorb = 1;
constexpr u8 kOpChallenge = 2;
}  // namespace

Transcript::Transcript(std::string_view domain) {
  Sha256 h;
  h.update("zkt.transcript.v1");
  h.update(domain);
  state_ = h.finalize();
}

void Transcript::ratchet(std::string_view label, BytesView data, u8 op) {
  Sha256 h;
  h.update(state_.view());
  h.update(BytesView(&op, 1));
  // Length-prefix the label and data so (label, data) pairs are unambiguous.
  u64 lens[2] = {label.size(), data.size()};
  h.update(as_bytes_view(lens[0]));
  h.update(label);
  h.update(as_bytes_view(lens[1]));
  h.update(data);
  h.update(as_bytes_view(ops_));
  state_ = h.finalize();
  ++ops_;
}

void Transcript::absorb(std::string_view label, BytesView data) {
  ratchet(label, data, kOpAbsorb);
}

void Transcript::absorb_u64(std::string_view label, u64 v) {
  absorb(label, as_bytes_view(v));
}

Digest32 Transcript::challenge(std::string_view label) {
  ratchet(label, {}, kOpChallenge);
  return state_;
}

u64 Transcript::challenge_u64(std::string_view label) {
  const Digest32 d = challenge(label);
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(d.bytes[i]) << (8 * i);
  return v;
}

u64 Transcript::challenge_index(std::string_view label, u64 bound) {
  // Rejection sampling over fresh challenges to avoid modulo bias.
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    const u64 r = challenge_u64(label);
    if (r >= threshold) return r % bound;
  }
}

}  // namespace zkt::crypto
