// x86 SHA-NI backend: hardware SHA-256 rounds, one 64-byte block per call.
//
// Structure follows the canonical public-domain SHA extensions flow: state
// is repacked into the ABEF/CDGH register layout _mm_sha256rnds2_epu32
// expects, the 64 rounds run as 16 four-round groups, and the message
// schedule is extended in-register with _mm_sha256msg1/msg2. This TU is
// compiled with -msha -msse4.1 -mssse3; it is only *called* when CPUID
// reports the extensions (crypto/sha256_dispatch.cpp), so the rest of the
// binary stays portable.
//
// Host-side only; guests never hash through the batch backends (see
// .zkt-lint.toml guest-determinism excludes).
#include <immintrin.h>

#include "crypto/sha256_backend.h"

namespace zkt::crypto {

namespace {

alignas(16) constexpr u32 kRoundK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

void sha256_compress_many_shani(Sha256State* states,
                                const std::array<u8, 64>* blocks, size_t n) {
  // Big-endian 32-bit word swizzle for message loads.
  const __m128i kSwap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  for (size_t lane = 0; lane < n; ++lane) {
    const u8* block = blocks[lane].data();
    u32* h = states[lane].h.data();

    // Pack {a..h} into ABEF / CDGH.
    __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h));
    __m128i state1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + 4));
    tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
    state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
    __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);      // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0);           // CDGH
    const __m128i abef_in = state0;
    const __m128i cdgh_in = state1;

    __m128i m[4];
    for (int i = 0; i < 4; ++i) {
      m[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16 * i)),
          kSwap);
    }

    // Sixteen 4-round groups. Group g consumes m[g & 3]; the schedule
    // extension (msg1 for groups 1..12, msg2+carry for groups 3..14)
    // regenerates each m slot just before its next use.
    for (int g = 0; g < 16; ++g) {
      const __m128i cur = m[g & 3];
      __m128i msg = _mm_add_epi32(
          cur,
          _mm_load_si128(reinterpret_cast<const __m128i*>(kRoundK + 4 * g)));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      if (g >= 3 && g <= 14) {
        const __m128i carry = _mm_alignr_epi8(cur, m[(g + 3) & 3], 4);
        m[(g + 1) & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(m[(g + 1) & 3], carry), cur);
      }
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      if (g >= 1 && g <= 12) {
        m[(g + 3) & 3] = _mm_sha256msg1_epu32(m[(g + 3) & 3], cur);
      }
    }

    state0 = _mm_add_epi32(state0, abef_in);
    state1 = _mm_add_epi32(state1, cdgh_in);

    // Unpack ABEF / CDGH back to {a..h}.
    tmp = _mm_shuffle_epi32(state0, 0x1B);     // FEBA
    state1 = _mm_shuffle_epi32(state1, 0xB1);  // DCHG
    state0 = _mm_blend_epi16(tmp, state1, 0xF0);        // DCBA
    state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
    _mm_storeu_si128(reinterpret_cast<__m128i*>(h), state0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(h + 4), state1);
  }
}

}  // namespace zkt::crypto
