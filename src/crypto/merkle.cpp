#include "crypto/merkle.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <map>

#include "common/thread_pool.h"
#include "crypto/ct.h"
#include "crypto/sha256.h"
#include "crypto/sha256_backend.h"

namespace zkt::crypto {

namespace {

u64 next_pow2(u64 n) {
  if (n <= 1) return 1;
  return std::bit_ceil(n);
}

// Below this many pairs a level is hashed on the calling thread; above it
// the shared pool splits the level. Chosen so the per-chunk batch still
// saturates the 8-wide AVX2 lanes.
constexpr size_t kParallelPairs = 2048;
constexpr size_t kPairGrain = 512;

}  // namespace

void MerkleProof::serialize(Writer& w) const {
  w.u64v(leaf_index);
  w.u64v(leaf_count);
  w.u16v(static_cast<u16>(siblings.size()));
  for (const auto& s : siblings) w.fixed(s.bytes);
}

Result<MerkleProof> MerkleProof::deserialize(Reader& r) {
  MerkleProof p;
  auto idx = r.u64v();
  if (!idx.ok()) return idx.error();
  p.leaf_index = idx.value();
  auto cnt = r.u64v();
  if (!cnt.ok()) return cnt.error();
  p.leaf_count = cnt.value();
  auto n = r.u16v();
  if (!n.ok()) return n.error();
  if (n.value() > 64) return Error{Errc::parse_error, "merkle proof too deep"};
  p.siblings.resize(n.value());
  for (auto& s : p.siblings) {
    ZKT_TRY(r.fixed(s.bytes));
  }
  return p;
}

Digest32 MerkleTree::hash_leaf(BytesView data) {
  Sha256 h;
  const u8 tag = 0x00;
  h.update(BytesView(&tag, 1));
  h.update(data);
  return h.finalize();
}

Digest32 MerkleTree::hash_node(const Digest32& left, const Digest32& right) {
  Sha256 h;
  const u8 tag = 0x01;
  h.update(BytesView(&tag, 1));
  h.update(left.view());
  h.update(right.view());
  return h.finalize();
}

std::vector<Digest32> MerkleTree::hash_leaves(
    std::span<const BytesView> datas) {
  return sha256_many(datas, u8{0x00});
}

void MerkleTree::hash_pairs(std::span<const Digest32> nodes,
                            std::span<Digest32> out) {
  const size_t n = nodes.size() / 2;
  assert(out.size() == n && nodes.size() % 2 == 0);
  if (n == 0) return;
  // hash_node's message is exactly 65 bytes (0x01 || left || right), i.e.
  // two compression blocks per pair; batch each block position across all
  // pairs so the SIMD backends see full lanes.
  std::vector<Sha256State> states(n, Sha256State::initial());
  std::vector<std::array<u8, 64>> blocks(n);
  for (size_t i = 0; i < n; ++i) {
    std::array<u8, 64>& block = blocks[i];
    block[0] = 0x01;
    std::memcpy(block.data() + 1, nodes[2 * i].bytes.data(), 32);
    std::memcpy(block.data() + 33, nodes[2 * i + 1].bytes.data(), 31);
  }
  sha256_compress_many(states, blocks);
  for (size_t i = 0; i < n; ++i) {
    std::array<u8, 64>& block = blocks[i];
    block.fill(0);
    block[0] = nodes[2 * i + 1].bytes[31];
    block[1] = 0x80;
    // 65 bytes = 520 bits, big-endian in the trailing length field.
    block[62] = 0x02;
    block[63] = 0x08;
  }
  sha256_compress_many(states, blocks);
  for (size_t i = 0; i < n; ++i) out[i] = states[i].to_digest();
}

const Digest32& MerkleTree::empty_leaf() {
  static const Digest32 kEmpty = hash_leaf(bytes_of("zkt.merkle.empty"));
  return kEmpty;
}

Digest32 MerkleTree::empty_subtree_root(u32 height) {
  Digest32 e = empty_leaf();
  for (u32 i = 0; i < height; ++i) e = hash_node(e, e);
  return e;
}

MerkleTree::MerkleTree(std::vector<Digest32> leaves)
    : leaf_count_(leaves.size()) {
  levels_.clear();
  levels_.push_back(std::move(leaves));
  rebuild();
}

void MerkleTree::rebuild() {
  auto& leaves = levels_.empty() ? (levels_.emplace_back()) : levels_[0];
  const u64 padded = next_pow2(std::max<u64>(leaf_count_, 1));
  leaves.resize(padded, empty_leaf());
  build_above();
}

void MerkleTree::build_above() {
  levels_.resize(1);
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<Digest32> above(below.size() / 2);
    const std::span<const Digest32> src(below);
    const std::span<Digest32> dst(above);
    if (above.size() >= kParallelPairs &&
        common::ThreadPool::shared().thread_count() > 1) {
      // Level-parallel: disjoint pair ranges, so chunks never overlap and
      // the digests are identical to the sequential build.
      common::ThreadPool::shared().parallel_for(
          above.size(), kPairGrain, [&](size_t begin, size_t end) {
            hash_pairs(src.subspan(2 * begin, 2 * (end - begin)),
                       dst.subspan(begin, end - begin));
          });
    } else {
      hash_pairs(src, dst);
    }
    levels_.push_back(std::move(above));
  }
}

Digest32 MerkleTree::root() const {
  // A tree with zero leaves pads to a single empty leaf, whose root is that
  // leaf itself; keep the default-constructed tree consistent with that.
  if (levels_.empty()) return empty_leaf();
  return levels_.back()[0];
}

u32 MerkleTree::depth() const {
  return levels_.empty() ? 0 : static_cast<u32>(levels_.size() - 1);
}

MerkleProof MerkleTree::prove(u64 index) const {
  // The index must address a slot in the padded leaf layer (the || form this
  // replaced was a tautology for padded trees: leaf_count_ <= levels_[0]
  // .size() always).
  assert(!levels_.empty() && index < levels_[0].size());
  MerkleProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count_;
  u64 idx = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const u64 sibling = idx ^ 1;
    proof.siblings.push_back(levels_[level][sibling]);
    idx >>= 1;
  }
  return proof;
}

void MerkleTree::update_leaf(u64 index, const Digest32& new_leaf) {
  assert(!levels_.empty() && index < levels_[0].size());
  levels_[0][index] = new_leaf;
  u64 idx = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const u64 parent = idx >> 1;
    levels_[level + 1][parent] =
        hash_node(levels_[level][parent * 2], levels_[level][parent * 2 + 1]);
    idx = parent;
  }
}

u64 MerkleTree::append_leaf(const Digest32& leaf) {
  const u64 index = leaf_count_;
  if (levels_.empty() || index >= levels_[0].size()) {
    // Capacity exhausted: grow the padded layer and rebuild. Amortized O(1)
    // appends since capacity doubles.
    if (levels_.empty()) levels_.emplace_back();
    ++leaf_count_;
    levels_[0].resize(index + 1, empty_leaf());
    levels_[0][index] = leaf;
    rebuild();
  } else {
    ++leaf_count_;
    update_leaf(index, leaf);
  }
  return index;
}

void MerkleTree::grow_capacity(u64 min_slots) {
  const u64 padded = next_pow2(std::max<u64>(min_slots, 1));
  if (!levels_.empty() && levels_[0].size() >= padded) return;
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].resize(padded, empty_leaf());
  build_above();
}

void MerkleTree::insert_leaf(u64 index, const Digest32& leaf) {
  assert(index <= leaf_count_);
  if (levels_.empty() || leaf_count_ >= levels_[0].size()) {
    grow_capacity(leaf_count_ + 1);
  }
  auto& leaves = levels_[0];
  // Shift the suffix right by one inside the padded layer; the slot that
  // falls off the end is guaranteed padding because capacity was ensured.
  for (u64 i = leaf_count_; i > index; --i) leaves[i] = leaves[i - 1];
  leaves[index] = leaf;
  ++leaf_count_;
  recompute_from(index);
}

void MerkleTree::recompute_from(u64 leaf_index) {
  // Every node covering a slot >= leaf_index is stale: recompute the suffix
  // of each level. O(capacity - leaf_index) hashes in total (geometric sum),
  // batched through hash_pairs so the SIMD backends see full lanes.
  u64 from = leaf_index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const u64 pfrom = from >> 1;
    const std::span<const Digest32> below(levels_[level]);
    const std::span<Digest32> above(levels_[level + 1]);
    hash_pairs(below.subspan(2 * pfrom), above.subspan(pfrom));
    from = pfrom;
  }
}

Status MerkleTree::verify(const Digest32& root, const Digest32& leaf,
                          const MerkleProof& proof) {
  const u64 padded = next_pow2(std::max<u64>(proof.leaf_count, 1));
  const u32 expect_depth =
      static_cast<u32>(std::countr_zero(padded));
  if (proof.siblings.size() != expect_depth) {
    return Error{Errc::merkle_mismatch, "proof depth mismatch"};
  }
  if (proof.leaf_index >= padded) {
    return Error{Errc::merkle_mismatch, "leaf index out of range"};
  }
  Digest32 acc = leaf;
  u64 idx = proof.leaf_index;
  for (const auto& sibling : proof.siblings) {
    acc = (idx & 1) ? hash_node(sibling, acc) : hash_node(acc, sibling);
    idx >>= 1;
  }
  if (!ct_equal(acc, root)) {
    return Error{Errc::merkle_mismatch, "recomputed root does not match"};
  }
  return {};
}

Status MerkleTree::verify_batch(const Digest32& root,
                                std::span<const LeafProof> items,
                                PathBatchStats* stats) {
  // Shape checks for every item first (all cheap, no hashing); the walk
  // below may then assume per-item sibling vectors are exactly path-deep.
  struct Lane {
    u64 idx = 0;
    u32 depth = 0;
    Digest32 acc;
  };
  std::vector<Lane> lanes(items.size());
  u32 max_depth = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    const MerkleProof& proof = *items[i].proof;
    const u64 padded = next_pow2(std::max<u64>(proof.leaf_count, 1));
    const u32 expect_depth = static_cast<u32>(std::countr_zero(padded));
    if (proof.siblings.size() != expect_depth) {
      return Error{Errc::merkle_mismatch, "proof depth mismatch"};
    }
    if (proof.leaf_index >= padded) {
      return Error{Errc::merkle_mismatch, "leaf index out of range"};
    }
    lanes[i] = {proof.leaf_index, expect_depth, *items[i].leaf};
    max_depth = std::max(max_depth, expect_depth);
  }

  // Level-synchronous walk. At each level, collect every active lane's
  // (left, right) input, deduplicate identical inputs (identical inputs
  // yield identical digests, so sharing cannot change any decision), batch
  // the unique ones through hash_pairs, and scatter the parents back.
  std::vector<Digest32> nodes;                  // unique pairs, interleaved
  std::vector<Digest32> parents;
  std::vector<size_t> slot_of_lane(lanes.size());
  std::map<std::array<u8, 64>, size_t> unique;  // pair bytes -> slot
  for (u32 level = 0; level < max_depth; ++level) {
    nodes.clear();
    unique.clear();
    for (size_t i = 0; i < lanes.size(); ++i) {
      Lane& lane = lanes[i];
      if (level >= lane.depth) continue;
      const Digest32& sibling = items[i].proof->siblings[level];
      const Digest32& left = (lane.idx & 1) ? sibling : lane.acc;
      const Digest32& right = (lane.idx & 1) ? lane.acc : sibling;
      std::array<u8, 64> pair_bytes;
      std::memcpy(pair_bytes.data(), left.bytes.data(), 32);
      std::memcpy(pair_bytes.data() + 32, right.bytes.data(), 32);
      const auto [it, inserted] =
          unique.try_emplace(pair_bytes, unique.size());
      if (inserted) {
        nodes.push_back(left);
        nodes.push_back(right);
      } else if (stats != nullptr) {
        ++stats->node_hashes_shared;
      }
      slot_of_lane[i] = it->second;
    }
    parents.assign(nodes.size() / 2, Digest32{});
    hash_pairs(nodes, parents);
    if (stats != nullptr) stats->node_hashes += parents.size();
    for (size_t i = 0; i < lanes.size(); ++i) {
      Lane& lane = lanes[i];
      if (level >= lane.depth) continue;
      lane.acc = parents[slot_of_lane[i]];
      lane.idx >>= 1;
    }
  }

  for (const Lane& lane : lanes) {
    if (!ct_equal(lane.acc, root)) {
      return Error{Errc::merkle_mismatch, "recomputed root does not match"};
    }
  }
  return {};
}

void MerkleMultiProof::serialize(Writer& w) const {
  w.u64v(leaf_count);
  w.u32v(static_cast<u32>(indices.size()));
  for (u64 i : indices) w.u64v(i);
  w.u16v(static_cast<u16>(siblings.size()));
  for (const auto& s : siblings) w.fixed(s.bytes);
}

Result<MerkleMultiProof> MerkleMultiProof::deserialize(Reader& r) {
  MerkleMultiProof p;
  auto count = r.u64v();
  if (!count.ok()) return count.error();
  p.leaf_count = count.value();
  auto n = r.u32v();
  if (!n.ok()) return n.error();
  if (n.value() > (1u << 24)) {
    return Error{Errc::parse_error, "too many multiproof indices"};
  }
  p.indices.resize(n.value());
  for (auto& i : p.indices) {
    auto v = r.u64v();
    if (!v.ok()) return v.error();
    i = v.value();
  }
  auto ns = r.u16v();
  if (!ns.ok()) return ns.error();
  p.siblings.resize(ns.value());
  for (auto& s : p.siblings) {
    ZKT_TRY(r.fixed(s.bytes));
  }
  return p;
}

MerkleMultiProof MerkleTree::prove_multi(std::span<const u64> indices) const {
  MerkleMultiProof proof;
  proof.leaf_count = leaf_count_;
  proof.indices.assign(indices.begin(), indices.end());
  std::sort(proof.indices.begin(), proof.indices.end());
  proof.indices.erase(
      std::unique(proof.indices.begin(), proof.indices.end()),
      proof.indices.end());

  // Walk levels bottom-up: a sibling is emitted only when it cannot be
  // recomputed from nodes the verifier already knows.
  std::vector<u64> known = proof.indices;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    std::vector<u64> parents;
    for (size_t i = 0; i < known.size(); ++i) {
      const u64 idx = known[i];
      const u64 sibling = idx ^ 1;
      const bool sibling_known =
          (i + 1 < known.size() && known[i + 1] == sibling);
      if (sibling_known) {
        ++i;  // consume the pair
      } else {
        proof.siblings.push_back(levels_[level][sibling]);
      }
      parents.push_back(idx >> 1);
    }
    known = std::move(parents);
  }
  return proof;
}

Status MerkleTree::verify_multi(
    const Digest32& root, std::span<const std::pair<u64, Digest32>> leaves,
    const MerkleMultiProof& proof) {
  if (leaves.size() != proof.indices.size()) {
    return Error{Errc::merkle_mismatch, "leaf count vs proof indices"};
  }
  const u64 padded = next_pow2(std::max<u64>(proof.leaf_count, 1));
  const u32 depth = static_cast<u32>(std::countr_zero(padded));

  std::vector<std::pair<u64, Digest32>> known(leaves.begin(), leaves.end());
  for (size_t i = 0; i < known.size(); ++i) {
    if (known[i].first != proof.indices[i]) {
      return Error{Errc::merkle_mismatch, "leaves not sorted to indices"};
    }
    if (i > 0 && known[i].first <= known[i - 1].first) {
      return Error{Errc::merkle_mismatch, "indices not strictly ascending"};
    }
    if (known[i].first >= padded) {
      return Error{Errc::merkle_mismatch, "index out of range"};
    }
  }
  if (known.empty()) {
    return Error{Errc::merkle_mismatch, "empty multiproof"};
  }

  size_t next_sibling = 0;
  for (u32 level = 0; level < depth; ++level) {
    std::vector<std::pair<u64, Digest32>> parents;
    for (size_t i = 0; i < known.size(); ++i) {
      const u64 idx = known[i].first;
      const u64 sibling_idx = idx ^ 1;
      Digest32 sibling;
      if (i + 1 < known.size() && known[i + 1].first == sibling_idx) {
        sibling = known[i + 1].second;
        parents.emplace_back(idx >> 1,
                             hash_node(known[i].second, sibling));
        ++i;
        continue;
      }
      if (next_sibling >= proof.siblings.size()) {
        return Error{Errc::merkle_mismatch, "multiproof ran out of siblings"};
      }
      sibling = proof.siblings[next_sibling++];
      parents.emplace_back(idx >> 1,
                           (idx & 1) ? hash_node(sibling, known[i].second)
                                     : hash_node(known[i].second, sibling));
    }
    known = std::move(parents);
  }
  if (next_sibling != proof.siblings.size()) {
    return Error{Errc::merkle_mismatch, "unused multiproof siblings"};
  }
  if (known.size() != 1 || !ct_equal(known[0].second, root)) {
    return Error{Errc::merkle_mismatch, "recomputed root does not match"};
  }
  return {};
}

u64 MerkleTree::build_hash_count(u64 leaf_count) {
  const u64 padded = next_pow2(std::max<u64>(leaf_count, 1));
  return padded - 1;  // internal nodes of a full binary tree
}

}  // namespace zkt::crypto
