// AVX2 8-way multi-buffer SHA-256: eight independent (state, block) lanes
// compressed in one instruction stream.
//
// Classic interleaved layout: word t of all eight lanes lives in one ymm
// register (lane l in 32-bit element l), so the 64 rounds and the message
// schedule run as straight-line vector arithmetic with no cross-lane
// shuffles. Remainder lanes (< 8) fall back to the scalar compressor —
// results are bit-identical either way. Compiled with -mavx2 and called only
// when CPUID reports AVX2 (crypto/sha256_dispatch.cpp).
//
// Host-side only; guests never hash through the batch backends (see
// .zkt-lint.toml guest-determinism excludes).
#include <immintrin.h>

#include <cstring>

#include "crypto/sha256_backend.h"

namespace zkt::crypto {

// Defined in sha256_dispatch.cpp.
void sha256_compress_many_scalar(Sha256State* states,
                                 const std::array<u8, 64>* blocks, size_t n);

namespace {

constexpr u32 kRoundK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline __m256i rotr32(__m256i x, int r) {
  return _mm256_or_si256(_mm256_srli_epi32(x, r),
                         _mm256_slli_epi32(x, 32 - r));
}

inline __m256i xor3(__m256i a, __m256i b, __m256i c) {
  return _mm256_xor_si256(_mm256_xor_si256(a, b), c);
}

void compress_8x(Sha256State* states, const std::array<u8, 64>* blocks) {
  // Transpose message words: w[t] element l = big-endian word t of lane l.
  __m256i w[16];
  alignas(32) u32 lane_words[8];
  for (int t = 0; t < 16; ++t) {
    for (int l = 0; l < 8; ++l) {
      u32 v;
      std::memcpy(&v, blocks[l].data() + 4 * t, 4);
      lane_words[l] = __builtin_bswap32(v);
    }
    w[t] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_words));
  }

  // Transpose chaining states: s[j] element l = states[l].h[j].
  __m256i s[8];
  for (int j = 0; j < 8; ++j) {
    for (int l = 0; l < 8; ++l) lane_words[l] = states[l].h[j];
    s[j] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lane_words));
  }

  __m256i a = s[0], b = s[1], c = s[2], d = s[3];
  __m256i e = s[4], f = s[5], g = s[6], h = s[7];

  for (int t = 0; t < 64; ++t) {
    __m256i wt;
    if (t < 16) {
      wt = w[t];
    } else {
      const __m256i w15 = w[(t - 15) & 15];
      const __m256i w2 = w[(t - 2) & 15];
      const __m256i s0 =
          xor3(rotr32(w15, 7), rotr32(w15, 18), _mm256_srli_epi32(w15, 3));
      const __m256i s1 =
          xor3(rotr32(w2, 17), rotr32(w2, 19), _mm256_srli_epi32(w2, 10));
      wt = _mm256_add_epi32(_mm256_add_epi32(w[(t - 16) & 15], s0),
                            _mm256_add_epi32(w[(t - 7) & 15], s1));
      w[t & 15] = wt;
    }
    const __m256i big_s1 = xor3(rotr32(e, 6), rotr32(e, 11), rotr32(e, 25));
    const __m256i ch = _mm256_xor_si256(_mm256_and_si256(e, f),
                                        _mm256_andnot_si256(e, g));
    const __m256i t1 = _mm256_add_epi32(
        _mm256_add_epi32(_mm256_add_epi32(h, big_s1),
                         _mm256_add_epi32(ch, _mm256_set1_epi32(
                                                  static_cast<int>(
                                                      kRoundK[t])))),
        wt);
    const __m256i big_s0 = xor3(rotr32(a, 2), rotr32(a, 13), rotr32(a, 22));
    const __m256i maj = xor3(_mm256_and_si256(a, b), _mm256_and_si256(a, c),
                             _mm256_and_si256(b, c));
    const __m256i t2 = _mm256_add_epi32(big_s0, maj);
    h = g;
    g = f;
    f = e;
    e = _mm256_add_epi32(d, t1);
    d = c;
    c = b;
    b = a;
    a = _mm256_add_epi32(t1, t2);
  }

  const __m256i outv[8] = {
      _mm256_add_epi32(s[0], a), _mm256_add_epi32(s[1], b),
      _mm256_add_epi32(s[2], c), _mm256_add_epi32(s[3], d),
      _mm256_add_epi32(s[4], e), _mm256_add_epi32(s[5], f),
      _mm256_add_epi32(s[6], g), _mm256_add_epi32(s[7], h)};
  for (int j = 0; j < 8; ++j) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane_words), outv[j]);
    for (int l = 0; l < 8; ++l) states[l].h[j] = lane_words[l];
  }
}

}  // namespace

void sha256_compress_many_avx2(Sha256State* states,
                               const std::array<u8, 64>* blocks, size_t n) {
  while (n >= 8) {
    compress_8x(states, blocks);
    states += 8;
    blocks += 8;
    n -= 8;
  }
  if (n > 0) sha256_compress_many_scalar(states, blocks, n);
}

}  // namespace zkt::crypto
