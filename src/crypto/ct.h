// Constant-time comparison for secret-dependent material.
//
// Branching comparisons (memcmp, operator==) short-circuit on the first
// differing byte, so their timing leaks how much of a digest or key an
// attacker has matched. Every comparison of digests, MACs, keys or roots
// inside src/crypto must go through ct_equal (rule secret-hygiene). The
// byte-level implementation lives in common/bytes.cpp; this header adds the
// Digest32 overload crypto code actually uses.
#pragma once

#include "common/bytes.h"
#include "crypto/digest.h"

namespace zkt::crypto {

using zkt::ct_equal;

inline bool ct_equal(const Digest32& a, const Digest32& b) {
  return zkt::ct_equal(a.view(), b.view());
}

}  // namespace zkt::crypto
