// ChaCha20 block function (RFC 8439) and a deterministic random bit
// generator built on it. The DRBG backs cryptographic randomness: router
// keypairs in the simulator and prover nonce derivation. It is NOT used for
// Fiat–Shamir challenges (see transcript.h, which is hash-chain based so
// verifiers can recompute challenges).
#pragma once

#include <array>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace zkt::crypto {

/// The ChaCha20 block function: 32-byte key, 12-byte nonce, 32-bit counter
/// -> 64 bytes of keystream.
std::array<u8, 64> chacha20_block(const std::array<u8, 32>& key,
                                  const std::array<u8, 12>& nonce,
                                  u32 counter);

/// XOR a message with the ChaCha20 keystream (encrypt == decrypt).
Bytes chacha20_xor(const std::array<u8, 32>& key,
                   const std::array<u8, 12>& nonce, u32 initial_counter,
                   BytesView message);

/// Deterministic random generator seeded from arbitrary bytes via SHA-256.
class ChaChaDrbg {
 public:
  explicit ChaChaDrbg(BytesView seed);
  explicit ChaChaDrbg(std::string_view seed)
      : ChaChaDrbg(BytesView(reinterpret_cast<const u8*>(seed.data()),
                             seed.size())) {}

  void fill(std::span<u8> out);
  Bytes bytes(size_t n);
  u64 next_u64();
  Digest32 next_digest();

  /// Uniform in [0, bound), bound > 0, via rejection sampling.
  u64 uniform(u64 bound);

 private:
  void refill();

  std::array<u8, 32> key_{};
  std::array<u8, 12> nonce_{};
  u32 counter_ = 0;
  std::array<u8, 64> block_{};
  size_t offset_ = 64;  // force refill on first use
};

}  // namespace zkt::crypto
