// Batched SHA-256 with runtime CPU dispatch.
//
// Every phase of zktel — segment commitment, Merkle rebuilds, commitment
// checks — bottoms out in the SHA-256 compression function, and the lanes
// are almost always *independent*: thousands of trace-row leaves, or every
// (left, right) pair of a Merkle level. This layer exposes that batch shape
// directly and dispatches it to the fastest compressor the CPU offers:
//
//   scalar  — the portable FIPS 180-4 implementation in sha256.cpp
//   shani   — x86 SHA-NI single-block fast path (one block per call,
//             hardware rounds; ~5-10x the scalar rate)
//   avx2    — 8-way interleaved multi-buffer compressor (eight independent
//             lanes per instruction stream)
//
// All backends are bit-identical: digests, guest trace rows, receipts and
// claim digests do not change with the backend, so the choice is purely a
// host-side throughput decision. Backends are selected at runtime via CPUID
// (never by -march of the build), so one binary runs everywhere; the
// ZKT_SHA256_BACKEND environment variable or sha256_force_backend() pin a
// specific backend for tests and benchmarks.
//
// Host-side only: guests hash through zvm::Env one traced compression at a
// time and never reach this header (see .zkt-lint.toml guest-determinism
// excludes).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace zkt::crypto {

enum class Sha256Backend : u8 { scalar = 0, shani = 1, avx2 = 2 };
inline constexpr size_t kSha256BackendCount = 3;

/// Stable lowercase name ("scalar", "shani", "avx2").
const char* sha256_backend_name(Sha256Backend backend);
/// Parse a backend name; nullopt for unknown strings.
std::optional<Sha256Backend> sha256_backend_from_name(std::string_view name);

/// Backend was compiled into this binary (build-time capability).
bool sha256_backend_compiled(Sha256Backend backend);
/// Backend is usable here: compiled in AND supported by this CPU.
bool sha256_backend_available(Sha256Backend backend);
/// The backend sha256_compress_many() currently dispatches to.
Sha256Backend sha256_active_backend();

/// Test/bench hook: pin dispatch to `backend` (must be available), or pass
/// nullopt to restore automatic selection. Returns false — leaving the
/// selection unchanged — if the requested backend is not available.
bool sha256_force_backend(std::optional<Sha256Backend> backend);

/// Apply one compression per independent lane:
///   states[i] <- compress(states[i], blocks[i])
/// states and blocks must have equal length. Bit-identical to calling
/// sha256_compress() per lane, on every backend.
void sha256_compress_many(std::span<Sha256State> states,
                          std::span<const std::array<u8, 64>> blocks);

/// One-shot SHA-256 of many independent messages, batched across lanes:
///   out[i] = SHA256(tag ? *tag || msgs[i] : msgs[i])
/// The optional one-byte tag supports the Merkle domain separation without
/// materializing prefixed copies of every message.
std::vector<Digest32> sha256_many(std::span<const BytesView> msgs,
                                  std::optional<u8> tag);

/// Cumulative dispatch accounting since process start, per backend. The obs
/// layer sits above crypto in the module DAG, so callers (prover, sharded
/// service, benches) publish these into obs::Registry themselves.
struct Sha256BackendStats {
  u64 blocks = 0;   ///< compression-function applications
  u64 batches = 0;  ///< sha256_compress_many() calls
};
Sha256BackendStats sha256_backend_stats(Sha256Backend backend);

}  // namespace zkt::crypto
