// 256-bit unsigned integer arithmetic (4×64-bit limbs, little-endian limb
// order) — the substrate for secp256k1 field and scalar arithmetic.
#pragma once

#include <array>
#include <compare>

#include "common/bytes.h"

namespace zkt::crypto {

struct U256 {
  // w[0] is the least-significant limb.
  std::array<u64, 4> w{};

  constexpr U256() = default;
  constexpr explicit U256(u64 v) : w{v, 0, 0, 0} {}
  constexpr U256(u64 w0, u64 w1, u64 w2, u64 w3) : w{w0, w1, w2, w3} {}

  static U256 from_be_bytes(BytesView b32);
  void to_be_bytes(std::span<u8> out32) const;
  std::array<u8, 32> be_bytes() const;
  static U256 from_hex(std::string_view hex);
  std::string hex() const;

  bool is_zero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  bool bit(unsigned i) const { return (w[i >> 6] >> (i & 63)) & 1; }
  bool is_odd() const { return w[0] & 1; }

  friend constexpr auto operator<=>(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i) {
      if (a.w[i] != b.w[i]) return a.w[i] <=> b.w[i];
    }
    return std::strong_ordering::equal;
  }
  friend constexpr bool operator==(const U256&, const U256&) = default;
};

/// a + b; carry_out receives the carry bit.
U256 add_carry(const U256& a, const U256& b, u64& carry_out);
/// a - b; borrow_out receives the borrow bit.
U256 sub_borrow(const U256& a, const U256& b, u64& borrow_out);
/// Full 256×256 -> 512-bit product, little-endian limbs.
std::array<u64, 8> mul_wide(const U256& a, const U256& b);
/// Logical shift right by s (< 64) bits.
U256 shr(const U256& a, unsigned s);

}  // namespace zkt::crypto
