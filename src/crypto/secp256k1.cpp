#include "crypto/secp256k1.h"

#include <cassert>

namespace zkt::crypto {

namespace {

// p = 2^256 - 2^32 - 977, so 2^256 ≡ kC (mod p) with kC = 2^32 + 977.
constexpr u64 kC = 0x1000003D1ULL;

const U256 kP = U256::from_hex(
    "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
const U256 kN = U256::from_hex(
    "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");

U256 add_small(const U256& a, unsigned __int128 extra, u64& carry_out) {
  U256 r = a;
  unsigned __int128 carry = extra;
  for (int i = 0; i < 4 && carry != 0; ++i) {
    const unsigned __int128 s = static_cast<unsigned __int128>(r.w[i]) +
                                static_cast<u64>(carry);
    r.w[i] = static_cast<u64>(s);
    carry = (carry >> 64) + (s >> 64);
  }
  carry_out = static_cast<u64>(carry);
  return r;
}

/// Reduce a 512-bit value mod p using 2^256 ≡ kC.
U256 reduce_p(const std::array<u64, 8>& t) {
  const U256 lo{t[0], t[1], t[2], t[3]};
  const U256 hi{t[4], t[5], t[6], t[7]};

  // m = hi * kC, a 289-bit value: 256-bit m_lo plus small m_hi.
  U256 m_lo;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(hi.w[i]) * kC + m_lo.w[i] + carry;
    m_lo.w[i] = static_cast<u64>(prod);
    carry = static_cast<u64>(prod >> 64);
    if (i + 1 < 4) {
      // carry folds into the next limb's addition via `carry` above.
    }
  }
  const u64 m_hi = carry;

  // r = lo + m_lo, with carry c1.
  u64 c1 = 0;
  U256 r = add_carry(lo, m_lo, c1);

  // Fold (m_hi + c1) * kC back in.
  const unsigned __int128 extra =
      (static_cast<unsigned __int128>(m_hi) + c1) * kC;
  u64 c2 = 0;
  r = add_small(r, extra, c2);
  if (c2) {
    u64 c3 = 0;
    r = add_small(r, kC, c3);
    assert(c3 == 0);
  }

  u64 borrow = 0;
  const U256 reduced = sub_borrow(r, kP, borrow);
  return borrow ? r : reduced;
}

/// Generic 512-bit mod m via bitwise long division. Slow but only used on
/// the scalar field (one multiply per signature).
U256 reduce_generic(const std::array<u64, 8>& t, const U256& m) {
  U256 rem;
  for (int bit = 511; bit >= 0; --bit) {
    // rem = rem << 1 | bit; track the bit shifted out of rem.
    const u64 top = rem.w[3] >> 63;
    for (int i = 3; i > 0; --i) rem.w[i] = (rem.w[i] << 1) | (rem.w[i - 1] >> 63);
    rem.w[0] = (rem.w[0] << 1) | ((t[bit >> 6] >> (bit & 63)) & 1);
    if (top || rem >= m) {
      u64 borrow = 0;
      rem = sub_borrow(rem, m, borrow);
      (void)borrow;
    }
  }
  return rem;
}

U256 mod_reduce_u256(const U256& x, const U256& m) {
  if (x < m) return x;
  u64 borrow = 0;
  U256 r = sub_borrow(x, m, borrow);
  // x < 2^256 < 2m for both our moduli, so one subtraction suffices.
  assert(borrow == 0);
  return r;
}

}  // namespace

const U256& secp_p() { return kP; }
const U256& secp_n() { return kN; }

Fe::Fe(const U256& x) : v(mod_reduce_u256(x, kP)) {}

Fe fe_add(const Fe& a, const Fe& b) {
  u64 carry = 0;
  U256 r = add_carry(a.v, b.v, carry);
  if (carry) {
    u64 c2 = 0;
    r = add_small(r, kC, c2);
    assert(c2 == 0);
  }
  Fe out;
  out.v = mod_reduce_u256(r, kP);
  return out;
}

Fe fe_sub(const Fe& a, const Fe& b) { return fe_add(a, fe_neg(b)); }

Fe fe_neg(const Fe& a) {
  if (a.v.is_zero()) return a;
  u64 borrow = 0;
  Fe out;
  out.v = sub_borrow(kP, a.v, borrow);
  assert(borrow == 0);
  return out;
}

Fe fe_mul(const Fe& a, const Fe& b) {
  Fe out;
  out.v = reduce_p(mul_wide(a.v, b.v));
  return out;
}

Fe fe_sqr(const Fe& a) { return fe_mul(a, a); }

Fe fe_pow(const Fe& a, const U256& e) {
  Fe result(1);
  Fe base = a;
  for (int i = 0; i < 256; ++i) {
    if (e.bit(i)) result = fe_mul(result, base);
    base = fe_sqr(base);
  }
  return result;
}

Fe fe_inv(const Fe& a) {
  assert(!a.is_zero());
  u64 borrow = 0;
  const U256 p_minus_2 = sub_borrow(kP, U256(2), borrow);
  return fe_pow(a, p_minus_2);
}

std::optional<Fe> fe_sqrt(const Fe& a) {
  // p ≡ 3 (mod 4): candidate = a^((p+1)/4).
  u64 carry = 0;
  U256 e = add_carry(kP, U256(1), carry);
  // (p+1) overflows 256 bits by exactly the carry; (p+1)/4 = (p>>2) + 2^254·carry
  // Since p + 1 = 2^256 - 2^32 - 976, dividing by 4: handle via shifting with carry.
  U256 shifted = shr(e, 2);
  if (carry) shifted.w[3] |= (1ULL << 62);
  const Fe candidate = fe_pow(a, shifted);
  if (fe_sqr(candidate) == a) return candidate;
  return std::nullopt;
}

Scalar::Scalar(const U256& x) : v(mod_reduce_u256(x, kN)) {}

Scalar Scalar::from_be_bytes(BytesView b32) {
  return Scalar(U256::from_be_bytes(b32));
}

Scalar sc_add(const Scalar& a, const Scalar& b) {
  u64 carry = 0;
  U256 r = add_carry(a.v, b.v, carry);
  if (carry || r >= kN) {
    u64 borrow = 0;
    r = sub_borrow(r, kN, borrow);
  }
  Scalar out;
  out.v = r;
  return out;
}

Scalar sc_mul(const Scalar& a, const Scalar& b) {
  Scalar out;
  out.v = reduce_generic(mul_wide(a.v, b.v), kN);
  return out;
}

Scalar sc_neg(const Scalar& a) {
  if (a.v.is_zero()) return a;
  u64 borrow = 0;
  Scalar out;
  out.v = sub_borrow(kN, a.v, borrow);
  assert(borrow == 0);
  return out;
}

const Point& secp_g() {
  static const Point g = [] {
    Point p;
    p.x = Fe(U256::from_hex(
        "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"));
    p.y = Fe(U256::from_hex(
        "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"));
    p.z = Fe(1);
    return p;
  }();
  return g;
}

Point point_double(const Point& p) {
  if (p.is_infinity() || p.y.is_zero()) return Point::infinity();
  const Fe y2 = fe_sqr(p.y);
  const Fe s = fe_mul(Fe(4), fe_mul(p.x, y2));
  const Fe m = fe_mul(Fe(3), fe_sqr(p.x));  // a = 0 for secp256k1
  Point r;
  r.x = fe_sub(fe_sqr(m), fe_mul(Fe(2), s));
  r.y = fe_sub(fe_mul(m, fe_sub(s, r.x)), fe_mul(Fe(8), fe_sqr(y2)));
  r.z = fe_mul(Fe(2), fe_mul(p.y, p.z));
  return r;
}

Point point_add(const Point& a, const Point& b) {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  const Fe z1z1 = fe_sqr(a.z);
  const Fe z2z2 = fe_sqr(b.z);
  const Fe u1 = fe_mul(a.x, z2z2);
  const Fe u2 = fe_mul(b.x, z1z1);
  const Fe s1 = fe_mul(a.y, fe_mul(z2z2, b.z));
  const Fe s2 = fe_mul(b.y, fe_mul(z1z1, a.z));
  if (u1 == u2) {
    if (s1 == s2) return point_double(a);
    return Point::infinity();
  }
  const Fe h = fe_sub(u2, u1);
  const Fe r = fe_sub(s2, s1);
  const Fe h2 = fe_sqr(h);
  const Fe h3 = fe_mul(h2, h);
  const Fe u1h2 = fe_mul(u1, h2);
  Point out;
  out.x = fe_sub(fe_sub(fe_sqr(r), h3), fe_mul(Fe(2), u1h2));
  out.y = fe_sub(fe_mul(r, fe_sub(u1h2, out.x)), fe_mul(s1, h3));
  out.z = fe_mul(fe_mul(a.z, b.z), h);
  return out;
}

Point point_add_affine(const Point& a, const Affine& b) {
  Point bp;
  bp.x = b.x;
  bp.y = b.y;
  bp.z = Fe(1);
  return point_add(a, bp);
}

Point point_neg(const Point& p) {
  Point r = p;
  r.y = fe_neg(r.y);
  return r;
}

Point point_mul(const Scalar& k, const Point& p) {
  Point acc = Point::infinity();
  for (int i = 255; i >= 0; --i) {
    acc = point_double(acc);
    if (k.v.bit(static_cast<unsigned>(i))) acc = point_add(acc, p);
  }
  return acc;
}

Point point_mul_g(const Scalar& k) { return point_mul(k, secp_g()); }

std::optional<Affine> to_affine(const Point& p) {
  if (p.is_infinity()) return std::nullopt;
  const Fe zi = fe_inv(p.z);
  const Fe zi2 = fe_sqr(zi);
  Affine a;
  a.x = fe_mul(p.x, zi2);
  a.y = fe_mul(p.y, fe_mul(zi2, zi));
  return a;
}

std::optional<Affine> lift_x(const U256& x) {
  if (x >= kP) return std::nullopt;
  const Fe fx(x);
  const Fe rhs = fe_add(fe_mul(fe_sqr(fx), fx), Fe(7));
  auto y = fe_sqrt(rhs);
  if (!y) return std::nullopt;
  Affine a;
  a.x = fx;
  a.y = y->is_odd() ? fe_neg(*y) : *y;
  return a;
}

bool on_curve(const Affine& a) {
  return fe_sqr(a.y) == fe_add(fe_mul(fe_sqr(a.x), a.x), Fe(7));
}

}  // namespace zkt::crypto
