#include "crypto/sha256.h"

#include <cstring>

namespace zkt::crypto {

namespace {

constexpr std::array<u32, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr u32 rotr(u32 x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

Digest32 Sha256State::to_digest() const {
  Digest32 d;
  for (int i = 0; i < 8; ++i) {
    d.bytes[4 * i + 0] = static_cast<u8>(h[i] >> 24);
    d.bytes[4 * i + 1] = static_cast<u8>(h[i] >> 16);
    d.bytes[4 * i + 2] = static_cast<u8>(h[i] >> 8);
    d.bytes[4 * i + 3] = static_cast<u8>(h[i]);
  }
  return d;
}

Sha256State Sha256State::from_digest(const Digest32& d) {
  Sha256State s;
  for (int i = 0; i < 8; ++i) {
    s.h[i] = (static_cast<u32>(d.bytes[4 * i + 0]) << 24) |
             (static_cast<u32>(d.bytes[4 * i + 1]) << 16) |
             (static_cast<u32>(d.bytes[4 * i + 2]) << 8) |
             static_cast<u32>(d.bytes[4 * i + 3]);
  }
  return s;
}

Sha256State Sha256State::initial() {
  return Sha256State{{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                      0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19}};
}

Sha256State sha256_compress(const Sha256State& state,
                            const std::array<u8, 64>& block) {
  u32 w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<u32>(block[4 * i + 0]) << 24) |
           (static_cast<u32>(block[4 * i + 1]) << 16) |
           (static_cast<u32>(block[4 * i + 2]) << 8) |
           static_cast<u32>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  u32 a = state.h[0], b = state.h[1], c = state.h[2], d = state.h[3];
  u32 e = state.h[4], f = state.h[5], g = state.h[6], h = state.h[7];

  for (int i = 0; i < 64; ++i) {
    const u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const u32 ch = (e & f) ^ (~e & g);
    const u32 temp1 = h + s1 + ch + kK[i] + w[i];
    const u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const u32 maj = (a & b) ^ (a & c) ^ (b & c);
    const u32 temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }

  Sha256State out;
  out.h = {state.h[0] + a, state.h[1] + b, state.h[2] + c, state.h[3] + d,
           state.h[4] + e, state.h[5] + f, state.h[6] + g, state.h[7] + h};
  return out;
}

void Sha256::update(BytesView data) {
  if (data.empty()) return;  // empty spans may carry a null data()
  total_len_ += data.size();
  size_t offset = 0;
  if (buffer_len_ > 0) {
    const size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      state_ = sha256_compress(state_, buffer_);
      ++compressions_;
      buffer_len_ = 0;
    }
  }
  while (data.size() - offset >= 64) {
    std::array<u8, 64> block;
    std::memcpy(block.data(), data.data() + offset, 64);
    state_ = sha256_compress(state_, block);
    ++compressions_;
    offset += 64;
  }
  const size_t rest = data.size() - offset;
  if (rest > 0) {
    std::memcpy(buffer_.data(), data.data() + offset, rest);
    buffer_len_ = rest;
  }
}

Digest32 Sha256::finalize() {
  const u64 bit_len = total_len_ * 8;
  buffer_[buffer_len_++] = 0x80;
  if (buffer_len_ > 56) {
    std::memset(buffer_.data() + buffer_len_, 0, 64 - buffer_len_);
    state_ = sha256_compress(state_, buffer_);
    ++compressions_;
    buffer_len_ = 0;
  }
  std::memset(buffer_.data() + buffer_len_, 0, 56 - buffer_len_);
  for (int i = 0; i < 8; ++i) {
    buffer_[56 + i] = static_cast<u8>(bit_len >> (56 - 8 * i));
  }
  state_ = sha256_compress(state_, buffer_);
  ++compressions_;
  return state_.to_digest();
}

Digest32 sha256(BytesView data) {
  Sha256 h;
  h.update(data);
  return h.finalize();
}

Digest32 sha256(std::string_view s) {
  Sha256 h;
  h.update(s);
  return h.finalize();
}

Digest32 sha256_pair(const Digest32& left, const Digest32& right) {
  Sha256 h;
  h.update(left.view());
  h.update(right.view());
  return h.finalize();
}

void sha256_padded_blocks(
    BytesView data, const std::function<void(const std::array<u8, 64>&)>& fn) {
  std::array<u8, 64> block;
  size_t pos = 0;
  while (data.size() - pos >= 64) {
    std::memcpy(block.data(), data.data() + pos, 64);
    fn(block);
    pos += 64;
  }
  const size_t rest = data.size() - pos;
  std::memset(block.data(), 0, 64);
  if (rest > 0) std::memcpy(block.data(), data.data() + pos, rest);
  block[rest] = 0x80;
  const u64 bit_len = static_cast<u64>(data.size()) * 8;
  if (rest + 1 > 56) {
    fn(block);
    std::memset(block.data(), 0, 64);
  }
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<u8>(bit_len >> (56 - 8 * i));
  }
  fn(block);
}

Digest32 hmac_sha256(BytesView key, BytesView data) {
  std::array<u8, 64> k{};
  if (key.size() > 64) {
    const Digest32 kd = sha256(key);
    std::memcpy(k.data(), kd.bytes.data(), 32);
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<u8, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad.data(), 64));
  inner.update(data);
  const Digest32 inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(BytesView(opad.data(), 64));
  outer.update(inner_digest.view());
  return outer.finalize();
}

Bytes hkdf_sha256(BytesView ikm, BytesView salt, BytesView info, size_t len) {
  // Extract.
  const Digest32 prk = hmac_sha256(salt, ikm);
  // Expand.
  Bytes okm;
  okm.reserve(len);
  Bytes t;
  u8 counter = 1;
  while (okm.size() < len) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    const Digest32 d = hmac_sha256(prk.view(), block);
    t.assign(d.bytes.begin(), d.bytes.end());
    const size_t take = std::min<size_t>(32, len - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + take);
  }
  return okm;
}

}  // namespace zkt::crypto
