#include "crypto/schnorr.h"

#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace zkt::crypto {

Digest32 tagged_hash(std::string_view tag, BytesView data) {
  const Digest32 tag_hash = sha256(tag);
  Sha256 h;
  h.update(tag_hash.view());
  h.update(tag_hash.view());
  h.update(data);
  return h.finalize();
}

Result<SchnorrKeyPair> schnorr_keygen(const std::array<u8, 32>& secret) {
  const U256 d0 = U256::from_be_bytes({secret.data(), 32});
  if (d0.is_zero() || d0 >= secp_n()) {
    return Error{Errc::invalid_argument, "secret key out of range"};
  }
  Scalar d(d0);
  const auto p = to_affine(point_mul_g(d));
  if (!p) return Error{Errc::invalid_argument, "degenerate public key"};
  // Normalize to the even-y representative.
  if (p->y.is_odd()) d = sc_neg(d);

  SchnorrKeyPair kp;
  d.v.to_be_bytes(kp.secret_key);
  p->x.v.to_be_bytes(kp.public_key);
  return kp;
}

SchnorrKeyPair schnorr_keygen_from_seed(std::string_view seed) {
  // Hash-to-scalar with retry; practically always succeeds on first try.
  Digest32 material = tagged_hash("zkt/keyseed", bytes_of(seed));
  for (;;) {
    std::array<u8, 32> secret;
    std::copy(material.bytes.begin(), material.bytes.end(), secret.begin());
    auto kp = schnorr_keygen(secret);
    if (kp.ok()) return kp.value();
    material = sha256(material.view());
  }
}

Result<SchnorrSignature> schnorr_sign(const SchnorrKeyPair& kp,
                                      const Digest32& msg,
                                      const std::array<u8, 32>& aux_rand) {
  const U256 d_int = U256::from_be_bytes({kp.secret_key.data(), 32});
  if (d_int.is_zero() || d_int >= secp_n()) {
    return Error{Errc::invalid_argument, "bad secret key"};
  }
  const Scalar d(d_int);

  // The stored secret is already normalized to the even-y representative
  // (schnorr_keygen negates if needed), so d signs for pubkey directly.

  // Synthetic nonce (BIP340): t = d XOR H_aux(aux); k = H_nonce(t||pk||m).
  const Digest32 aux_digest =
      tagged_hash("BIP0340/aux", BytesView(aux_rand.data(), 32));
  std::array<u8, 32> t;
  for (int i = 0; i < 32; ++i) t[i] = kp.secret_key[i] ^ aux_digest.bytes[i];

  Bytes nonce_input;
  append(nonce_input, BytesView(t.data(), 32));
  append(nonce_input, kp.pk_view());
  append(nonce_input, msg.view());
  const Digest32 rand = tagged_hash("BIP0340/nonce", nonce_input);

  Scalar k = Scalar::from_be_bytes(rand.view());
  if (k.is_zero()) return Error{Errc::invalid_argument, "zero nonce"};

  const auto r_point = to_affine(point_mul_g(k));
  if (!r_point) return Error{Errc::invalid_argument, "degenerate nonce point"};
  if (r_point->y.is_odd()) k = sc_neg(k);

  SchnorrSignature sig;
  r_point->x.v.to_be_bytes(std::span<u8>(sig.bytes.data(), 32));

  Bytes challenge_input;
  append(challenge_input, BytesView(sig.bytes.data(), 32));
  append(challenge_input, kp.pk_view());
  append(challenge_input, msg.view());
  const Scalar e = Scalar::from_be_bytes(
      tagged_hash("BIP0340/challenge", challenge_input).view());

  const Scalar s = sc_add(k, sc_mul(e, d));
  s.v.to_be_bytes(std::span<u8>(sig.bytes.data() + 32, 32));
  return sig;
}

Status schnorr_verify(BytesView public_key_x, const Digest32& msg,
                      const SchnorrSignature& sig) {
  if (public_key_x.size() != 32) {
    return Error{Errc::signature_invalid, "bad public key length"};
  }
  const auto p = lift_x(U256::from_be_bytes(public_key_x));
  if (!p) return Error{Errc::signature_invalid, "public key not on curve"};

  const U256 r = U256::from_be_bytes({sig.bytes.data(), 32});
  if (r >= secp_p()) return Error{Errc::signature_invalid, "r out of range"};
  const U256 s_int = U256::from_be_bytes({sig.bytes.data() + 32, 32});
  if (s_int >= secp_n()) return Error{Errc::signature_invalid, "s out of range"};
  const Scalar s(s_int);

  Bytes challenge_input;
  append(challenge_input, BytesView(sig.bytes.data(), 32));
  append(challenge_input, public_key_x);
  append(challenge_input, msg.view());
  const Scalar e = Scalar::from_be_bytes(
      tagged_hash("BIP0340/challenge", challenge_input).view());

  // R = s*G - e*P.
  Point pj;
  pj.x = p->x;
  pj.y = p->y;
  pj.z = Fe(1);
  const Point rp =
      point_add(point_mul_g(s), point_mul(sc_neg(e), pj));
  const auto ra = to_affine(rp);
  if (!ra) return Error{Errc::signature_invalid, "R is the identity"};
  if (ra->y.is_odd()) return Error{Errc::signature_invalid, "R has odd y"};
  if (ra->x.v != r) return Error{Errc::signature_invalid, "r mismatch"};
  return {};
}

}  // namespace zkt::crypto
