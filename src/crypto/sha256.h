// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Exposes both the streaming hasher and the raw compression function. The
// compression function matters here: the zkVM records guest hashing at
// compression-call granularity (mirroring RISC Zero's SHA-256 accelerator
// circuit), so trace rows carry (state_in, block) -> state_out triples that a
// verifier can recheck independently.
#pragma once

#include <functional>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace zkt::crypto {

/// SHA-256 chaining state: eight 32-bit words.
struct Sha256State {
  std::array<u32, 8> h;

  auto operator<=>(const Sha256State&) const = default;

  Digest32 to_digest() const;
  static Sha256State from_digest(const Digest32& d);
  static Sha256State initial();
};

/// One application of the SHA-256 compression function on a 64-byte block.
Sha256State sha256_compress(const Sha256State& state,
                            const std::array<u8, 64>& block);

/// Streaming SHA-256.
class Sha256 {
 public:
  Sha256() : state_(Sha256State::initial()) {}

  void update(BytesView data);
  void update(std::string_view s) {
    update(BytesView(reinterpret_cast<const u8*>(s.data()), s.size()));
  }

  /// Finalize and return the digest. The hasher must not be reused after.
  Digest32 finalize();

  /// Number of compression-function calls performed so far (including the
  /// padding block(s) only after finalize()).
  u64 compressions() const { return compressions_; }

 private:
  Sha256State state_;
  std::array<u8, 64> buffer_{};
  size_t buffer_len_ = 0;
  u64 total_len_ = 0;
  u64 compressions_ = 0;
};

/// One-shot SHA-256.
Digest32 sha256(BytesView data);
Digest32 sha256(std::string_view s);

/// Digest of the concatenation of two digests — the Merkle node hash.
Digest32 sha256_pair(const Digest32& left, const Digest32& right);

/// Number of compression calls a streaming SHA-256 of n bytes performs.
constexpr u64 sha256_compression_count(u64 n) {
  return (n + 8) / 64 + 1;  // message blocks + padding/length block
}

/// Invoke fn on every 64-byte block of the FIPS-180-4 padded message.
/// Folding sha256_compress over these blocks from the initial state yields
/// sha256(data); the zkVM uses this to emit one trace row per compression.
void sha256_padded_blocks(BytesView data,
                          const std::function<void(const std::array<u8, 64>&)>& fn);

/// HMAC-SHA256 (RFC 2104).
Digest32 hmac_sha256(BytesView key, BytesView data);

/// HKDF-SHA256 expand-only step (RFC 5869), for deriving subkeys.
Bytes hkdf_sha256(BytesView ikm, BytesView salt, BytesView info, size_t len);

}  // namespace zkt::crypto
