// Schnorr signatures over secp256k1 following the BIP340 construction
// (x-only public keys, tagged hashes, synthetic nonces).
//
// In zktel, each simulated router holds a Schnorr keypair and signs every
// periodic hash commitment it publishes; verifiers check signatures before
// trusting the commitment bulletin board. This closes the loop on the
// paper's threat model: commitments are both tamper-evident (hash) and
// attributable (signature).
#pragma once

#include <array>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/digest.h"

namespace zkt::crypto {

struct SchnorrKeyPair {
  std::array<u8, 32> secret_key{};
  std::array<u8, 32> public_key{};  ///< x-only public key

  BytesView pk_view() const { return {public_key.data(), 32}; }
};

struct SchnorrSignature {
  std::array<u8, 64> bytes{};

  BytesView view() const { return {bytes.data(), 64}; }
};

/// BIP340 tagged hash: SHA256(SHA256(tag) || SHA256(tag) || data).
Digest32 tagged_hash(std::string_view tag, BytesView data);

/// Derive a keypair from 32 bytes of secret material. Returns an error for
/// the (cryptographically negligible) invalid secrets 0 and >= n.
Result<SchnorrKeyPair> schnorr_keygen(const std::array<u8, 32>& secret);

/// Deterministically derive a keypair from a seed string (test/sim helper).
SchnorrKeyPair schnorr_keygen_from_seed(std::string_view seed);

/// Sign a 32-byte message digest. aux_rand adds nonce randomness (may be
/// all-zero for fully deterministic signatures).
Result<SchnorrSignature> schnorr_sign(const SchnorrKeyPair& kp,
                                      const Digest32& msg,
                                      const std::array<u8, 32>& aux_rand);

/// Verify a signature over a 32-byte message digest.
Status schnorr_verify(BytesView public_key_x, const Digest32& msg,
                      const SchnorrSignature& sig);

}  // namespace zkt::crypto
