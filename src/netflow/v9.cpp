#include "netflow/v9.h"

#include <cstring>

namespace zkt::netflow {

namespace {

// Big-endian wire helpers.
void put_be16(Bytes& out, u16 v) {
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v));
}
void put_be32(Bytes& out, u32 v) {
  put_be16(out, static_cast<u16>(v >> 16));
  put_be16(out, static_cast<u16>(v));
}
void put_be64(Bytes& out, u64 v) {
  put_be32(out, static_cast<u32>(v >> 32));
  put_be32(out, static_cast<u32>(v));
}

class BeReader {
 public:
  explicit BeReader(BytesView data) : data_(data) {}

  bool need(size_t n) const { return pos_ + n <= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }

  u16 be16() {
    // zkt-lint: allow(untrusted-taint) every caller gates be16() behind need(2)/remaining(); the check lives one frame up by design
    const u16 v = (static_cast<u16>(data_[pos_]) << 8) | data_[pos_ + 1];
    pos_ += 2;
    return v;
  }
  u32 be32() {
    u32 v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
  }
  u64 be_n(size_t n) {
    u64 v = 0;
    for (size_t i = 0; i < n; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += n;
    return v;
  }
  void skip(size_t n) { pos_ += n; }

 private:
  BytesView data_;
  size_t pos_ = 0;
};

struct FieldSpec {
  u16 type;
  u16 length;
};

// The zktel export template. Order defines the wire layout.
constexpr FieldSpec kTemplateFields[] = {
    {kFieldIpv4SrcAddr, 4}, {kFieldIpv4DstAddr, 4}, {kFieldL4SrcPort, 2},
    {kFieldL4DstPort, 2},   {kFieldProtocol, 1},    {kFieldTcpFlags, 1},
    {kFieldInBytes, 8},     {kFieldInPkts, 8},      {kFieldFirstMs, 8},
    {kFieldLastMs, 8},      {kFieldLostPkts, 8},    {kFieldHopSum, 8},
    {kFieldRttSum, 8},      {kFieldRttCount, 8},    {kFieldRttMax, 8},
    {kFieldJitterSum, 8},   {kFieldJitterCount, 8},
};

constexpr size_t kRecordWireSize = [] {
  size_t total = 0;
  for (const auto& f : kTemplateFields) total += f.length;
  return total;
}();

void encode_record(Bytes& out, const FlowRecord& rec) {
  put_be32(out, rec.key.src_ip);
  put_be32(out, rec.key.dst_ip);
  put_be16(out, rec.key.src_port);
  put_be16(out, rec.key.dst_port);
  out.push_back(rec.key.protocol);
  out.push_back(rec.tcp_flags_or);
  put_be64(out, rec.bytes);
  put_be64(out, rec.packets);
  put_be64(out, rec.first_ms);
  put_be64(out, rec.last_ms);
  put_be64(out, rec.lost_packets);
  put_be64(out, rec.hop_count_sum);
  put_be64(out, rec.rtt_sum_us);
  put_be64(out, rec.rtt_count);
  put_be64(out, rec.rtt_max_us);
  put_be64(out, rec.jitter_sum_us);
  put_be64(out, rec.jitter_count);
}

}  // namespace

Bytes V9Exporter::build_packet(std::span<const FlowRecord> chunk, u64 now_ms,
                               bool include_template) {
  Bytes out;
  // Header (20 bytes). `count` is the total record count across flowsets,
  // templates and options records included.
  u16 count = static_cast<u16>(
      chunk.size() +
      (include_template ? (config_.include_options ? 3 : 1) : 0));
  put_be16(out, 9);  // version
  put_be16(out, count);
  put_be32(out, static_cast<u32>(now_ms));         // sysUptime (ms)
  put_be32(out, static_cast<u32>(now_ms / 1000));  // unix seconds
  put_be32(out, sequence_);
  put_be32(out, config_.source_id);

  if (include_template) {
    // Template flowset (id 0).
    const u16 length = static_cast<u16>(
        4 /*flowset hdr*/ + 4 /*template hdr*/ + 4 * std::size(kTemplateFields));
    put_be16(out, 0);
    put_be16(out, length);
    put_be16(out, config_.template_id);
    put_be16(out, static_cast<u16>(std::size(kTemplateFields)));
    for (const auto& f : kTemplateFields) {
      put_be16(out, f.type);
      put_be16(out, f.length);
    }

    if (config_.include_options) {
      const u16 options_template_id = config_.template_id + 1;
      // Options template flowset (id 1): one scope field (System, the
      // source id) + three option fields.
      put_be16(out, 1);
      put_be16(out, 4 + 6 + 4 /*scope*/ + 12 /*options*/ + 2 /*pad*/);
      put_be16(out, options_template_id);
      put_be16(out, 4);   // option scope length (bytes of field specs)
      put_be16(out, 12);  // option length (bytes of field specs)
      put_be16(out, kScopeSystem);
      put_be16(out, 4);
      put_be16(out, kFieldSamplingInterval);
      put_be16(out, 4);
      put_be16(out, kFieldSamplingAlgorithm);
      put_be16(out, 1);
      put_be16(out, kFieldTotalFlowsExported);
      put_be16(out, 4);
      put_be16(out, 0);  // padding to 32-bit boundary

      // Options data record.
      const u16 data_len = 4 /*hdr*/ + 4 + 4 + 1 + 4;
      const u16 padding = (4 - (data_len % 4)) % 4;
      put_be16(out, options_template_id);
      put_be16(out, data_len + padding);
      put_be32(out, config_.source_id);        // scope: System
      put_be32(out, config_.sampling_interval);
      out.push_back(config_.sampling_algorithm);
      put_be32(out, sequence_);                // total flows exported so far
      for (u16 i = 0; i < padding; ++i) out.push_back(0);
    }
  }

  if (!chunk.empty()) {
    const size_t payload = chunk.size() * kRecordWireSize;
    const size_t padding = (4 - (payload % 4)) % 4;
    put_be16(out, config_.template_id);
    put_be16(out, static_cast<u16>(4 + payload + padding));
    for (const auto& rec : chunk) encode_record(out, rec);
    for (size_t i = 0; i < padding; ++i) out.push_back(0);
  }

  ++sequence_;
  return out;
}

std::vector<Bytes> V9Exporter::export_records(
    std::span<const FlowRecord> records, u64 now_ms) {
  std::vector<Bytes> packets;
  size_t pos = 0;
  do {
    const size_t take =
        std::min(config_.max_records_per_packet, records.size() - pos);
    const bool with_template =
        sequence_ % std::max<u32>(config_.template_refresh_interval, 1) == 0;
    packets.push_back(
        build_packet(records.subspan(pos, take), now_ms, with_template));
    pos += take;
  } while (pos < records.size());
  return packets;
}

Result<std::vector<FlowRecord>> V9Collector::ingest(BytesView packet) {
  BeReader r(packet);
  if (!r.need(20)) return Error{Errc::parse_error, "short v9 header"};
  const u16 version = r.be16();
  if (version != 9) return Error{Errc::parse_error, "not a v9 packet"};
  r.be16();  // count (advisory; we trust flowset lengths)
  r.be32();  // sysUptime
  r.be32();  // unix seconds
  r.be32();  // sequence
  const u32 source_id = r.be32();

  ++stats_.packets;
  std::vector<FlowRecord> out;

  while (r.remaining() >= 4) {
    const u16 flowset_id = r.be16();
    const u16 flowset_len = r.be16();
    if (flowset_len < 4 || static_cast<size_t>(flowset_len - 4) > r.remaining()) {
      return Error{Errc::parse_error, "bad flowset length"};
    }
    const size_t flowset_end = r.position() + (flowset_len - 4);

    if (flowset_id == 0) {
      // Template flowset: one or more templates.
      while (r.position() + 4 <= flowset_end) {
        const u16 template_id = r.be16();
        const u16 field_count = r.be16();
        if (template_id < 256) {
          return Error{Errc::parse_error, "template id below 256"};
        }
        if (r.position() + 4u * field_count > flowset_end) {
          return Error{Errc::parse_error, "truncated template"};
        }
        Template tmpl;
        tmpl.fields.reserve(field_count);
        for (u16 i = 0; i < field_count; ++i) {
          TemplateField f;
          f.type = r.be16();
          f.length = r.be16();
          if (f.length == 0 || f.length > 8) {
            return Error{Errc::parse_error, "unsupported field length"};
          }
          tmpl.fields.push_back(f);
        }
        templates_[{source_id, template_id}] = std::move(tmpl);
        ++stats_.templates_learned;
      }
      r.skip(flowset_end - r.position());
    } else if (flowset_id == 1) {
      // Options template flowset (RFC 3954 §6.5.1): scope specs then option
      // specs, lengths given in bytes of field-spec data.
      while (r.position() + 6 <= flowset_end) {
        const u16 template_id = r.be16();
        const u16 scope_bytes = r.be16();
        const u16 option_bytes = r.be16();
        if (template_id < 256) {
          return Error{Errc::parse_error, "options template id below 256"};
        }
        if (scope_bytes % 4 != 0 || option_bytes % 4 != 0 ||
            r.position() + scope_bytes + option_bytes > flowset_end) {
          return Error{Errc::parse_error, "bad options template lengths"};
        }
        Template tmpl;
        tmpl.is_options = true;
        tmpl.scope_fields = scope_bytes / 4;
        const u16 total_fields =
            static_cast<u16>((scope_bytes + option_bytes) / 4);
        tmpl.fields.reserve(total_fields);
        for (u16 i = 0; i < total_fields; ++i) {
          TemplateField f;
          f.type = r.be16();
          f.length = r.be16();
          if (f.length == 0 || f.length > 8) {
            return Error{Errc::parse_error, "unsupported option length"};
          }
          tmpl.fields.push_back(f);
        }
        templates_[{source_id, template_id}] = std::move(tmpl);
        ++stats_.options_templates_learned;
        // Any remaining bytes before flowset end are padding or another
        // template; the loop condition handles both.
      }
      r.skip(flowset_end - r.position());
    } else if (flowset_id >= 256) {
      auto it = templates_.find({source_id, flowset_id});
      if (it == templates_.end()) {
        // RFC 3954: data for an unknown template must be skipped, not fatal.
        ++stats_.data_flowsets_without_template;
        r.skip(flowset_end - r.position());
        continue;
      }
      if (it->second.is_options) {
        const auto& fields = it->second.fields;
        size_t record_size = 0;
        for (const auto& f : fields) record_size += f.length;
        while (record_size > 0 &&
               flowset_end - r.position() >= record_size) {
          OptionsRecord options;
          options.source_id = source_id;
          for (size_t i = 0; i < fields.size(); ++i) {
            const u64 v = r.be_n(fields[i].length);
            if (i >= it->second.scope_fields) {
              options.values[fields[i].type] = v;
            }
          }
          options_.push_back(std::move(options));
          ++stats_.options_records;
        }
        r.skip(flowset_end - r.position());
        continue;
      }
      const auto& fields = it->second.fields;
      size_t record_size = 0;
      for (const auto& f : fields) record_size += f.length;
      while (flowset_end - r.position() >= record_size && record_size > 0) {
        FlowRecord rec;
        for (const auto& f : fields) {
          const u64 v = r.be_n(f.length);
          switch (f.type) {
            case kFieldIpv4SrcAddr: rec.key.src_ip = static_cast<u32>(v); break;
            case kFieldIpv4DstAddr: rec.key.dst_ip = static_cast<u32>(v); break;
            case kFieldL4SrcPort: rec.key.src_port = static_cast<u16>(v); break;
            case kFieldL4DstPort: rec.key.dst_port = static_cast<u16>(v); break;
            case kFieldProtocol: rec.key.protocol = static_cast<u8>(v); break;
            case kFieldTcpFlags: rec.tcp_flags_or = static_cast<u8>(v); break;
            case kFieldInBytes: rec.bytes = v; break;
            case kFieldInPkts: rec.packets = v; break;
            case kFieldFirstMs: rec.first_ms = v; break;
            case kFieldLastMs: rec.last_ms = v; break;
            case kFieldLostPkts: rec.lost_packets = v; break;
            case kFieldHopSum: rec.hop_count_sum = v; break;
            case kFieldRttSum: rec.rtt_sum_us = v; break;
            case kFieldRttCount: rec.rtt_count = v; break;
            case kFieldRttMax: rec.rtt_max_us = v; break;
            case kFieldJitterSum: rec.jitter_sum_us = v; break;
            case kFieldJitterCount: rec.jitter_count = v; break;
            default: break;  // unknown field: consumed by length above
          }
        }
        out.push_back(rec);
        ++stats_.records;
      }
      r.skip(flowset_end - r.position());  // padding
    } else {
      // Options templates (id 1) and reserved ids: skip.
      r.skip(flowset_end - r.position());
    }
  }
  return out;
}

}  // namespace zkt::netflow
