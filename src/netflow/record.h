// NetFlow record model: the 5-tuple flow key, per-packet observations, and
// the accumulated flow record a router exports (the paper's RLog entries).
//
// Field choice follows NetFlow v9 (RFC 3954) plus the performance fields the
// paper's queries need (hop count, RTT, jitter, loss), which real deployments
// carry as enterprise-specific information elements.
#pragma once

#include <compare>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"

namespace zkt::netflow {

/// IPv4 address in host byte order.
using Ipv4 = u32;

/// Parse dotted-quad "1.2.3.4"; returns error on malformed input.
Result<Ipv4> parse_ipv4(std::string_view s);
std::string format_ipv4(Ipv4 addr);

/// The classic 5-tuple flow key.
struct FlowKey {
  Ipv4 src_ip = 0;
  Ipv4 dst_ip = 0;
  u16 src_port = 0;
  u16 dst_port = 0;
  u8 protocol = 0;  // IPPROTO_TCP=6, UDP=17, ...

  auto operator<=>(const FlowKey&) const = default;

  void serialize(Writer& w) const;
  static Result<FlowKey> deserialize(Reader& r);

  /// Canonical 13-byte encoding (used for hashing and as map keys).
  Bytes canonical_bytes() const;
  std::string to_string() const;
};

struct FlowKeyHasher {
  size_t operator()(const FlowKey& k) const {
    u64 h = 0x9e3779b97f4a7c15ULL;
    auto mix = [&h](u64 v) {
      h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix((static_cast<u64>(k.src_ip) << 32) | k.dst_ip);
    mix((static_cast<u64>(k.src_port) << 32) | (static_cast<u64>(k.dst_port) << 16) |
        k.protocol);
    return static_cast<size_t>(h);
  }
};

/// A single packet as seen by a router's metering process.
struct PacketObservation {
  FlowKey key;
  u64 timestamp_ms = 0;
  u32 bytes = 0;
  u8 tcp_flags = 0;
  u8 hop_count = 0;     ///< TTL-derived hop estimate
  u32 rtt_us = 0;       ///< measured round-trip time (0 if unknown)
  u32 jitter_us = 0;    ///< inter-packet delay variation
  bool dropped = false; ///< packet was dropped at this router
};

/// Accumulated flow record — one RLog entry. All counters are additive
/// except first/last timestamps and the RTT/jitter aggregates, which keep
/// (sum, count) so averages can be recomputed exactly after aggregation.
struct FlowRecord {
  FlowKey key;
  u64 first_ms = 0;
  u64 last_ms = 0;
  u64 packets = 0;
  u64 bytes = 0;
  u64 lost_packets = 0;
  u64 hop_count_sum = 0;  ///< sum over packets (per-flow SUM(hop_count))
  u64 rtt_sum_us = 0;
  u64 rtt_count = 0;
  u64 rtt_max_us = 0;
  u64 jitter_sum_us = 0;
  u64 jitter_count = 0;
  u8 tcp_flags_or = 0;    ///< OR of all TCP flags seen

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;

  /// Fold one packet observation into this record.
  void observe(const PacketObservation& pkt);
  /// Merge another record for the same flow (aggregation across routers or
  /// across export windows).
  void merge(const FlowRecord& other);

  // NOTE: floating-point views (average RTT/jitter, loss rate, throughput)
  // live in netflow/stats.h — this header is guest-reachable and must stay
  // float-free so guest traces remain replayable (rule guest-determinism).

  void serialize(Writer& w) const;
  static Result<FlowRecord> deserialize(Reader& r);
  Bytes canonical_bytes() const;
};

/// A raw-log batch: every flow record a single router exported within one
/// commitment window. Its hash is what the router publishes (the paper's
/// per-router commitments, Figure 1).
struct RLogBatch {
  u32 router_id = 0;
  u64 window_id = 0;  ///< commitment window sequence number
  std::vector<FlowRecord> records;

  void serialize(Writer& w) const;
  static Result<RLogBatch> deserialize(Reader& r);
  Bytes canonical_bytes() const;

  /// The commitment hash H_i over this batch.
  crypto::Digest32 hash() const;
};

}  // namespace zkt::netflow
