#include "netflow/histogram.h"

#include <bit>

#include "crypto/sha256.h"

namespace zkt::netflow {

u32 LatencyHistogram::bucket_of(u64 value_us) {
  if (value_us < 2) return 0;
  const u32 b = 63 - static_cast<u32>(std::countl_zero(value_us));
  return std::min(b, kBuckets - 1);
}

u64 LatencyHistogram::bucket_upper_us(u32 bucket) {
  if (bucket >= 63) return ~0ULL;
  return (1ULL << (bucket + 1)) - 1;
}

void LatencyHistogram::add(u64 value_us, u64 count) {
  buckets_[bucket_of(value_us)] += count;
  total_ += count;
}

u64 LatencyHistogram::count_provably_below(u64 bound_us) const {
  u64 count = 0;
  for (u32 b = 0; b < kBuckets; ++b) {
    if (bucket_upper_us(b) <= bound_us) count += buckets_[b];
  }
  return count;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (u32 b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  total_ += other.total_;
}

void LatencyHistogram::serialize(Writer& w) const {
  w.str("HIST1");
  w.u32v(kBuckets);
  w.u64v(total_);
  for (u64 b : buckets_) w.u64v(b);
}

Result<LatencyHistogram> LatencyHistogram::deserialize(Reader& r) {
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "HIST1") {
    return Error{Errc::parse_error, "bad histogram magic"};
  }
  auto n = r.u32v();
  if (!n.ok()) return n.error();
  if (n.value() != kBuckets) {
    return Error{Errc::parse_error, "histogram bucket count mismatch"};
  }
  LatencyHistogram h;
  auto total = r.u64v();
  if (!total.ok()) return total.error();
  h.total_ = total.value();
  u64 sum = 0;
  for (auto& b : h.buckets_) {
    auto v = r.u64v();
    if (!v.ok()) return v.error();
    b = v.value();
    sum += b;
  }
  if (sum != h.total_) {
    return Error{Errc::parse_error, "histogram total inconsistent"};
  }
  return h;
}

Bytes LatencyHistogram::canonical_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

crypto::Digest32 LatencyHistogram::hash() const {
  return crypto::sha256(canonical_bytes());
}

}  // namespace zkt::netflow
