#include "netflow/stats.h"

namespace zkt::netflow {

double avg_rtt_us(const FlowRecord& r) {
  return r.rtt_count == 0 ? 0.0
                          : static_cast<double>(r.rtt_sum_us) /
                                static_cast<double>(r.rtt_count);
}

double avg_jitter_us(const FlowRecord& r) {
  return r.jitter_count == 0 ? 0.0
                             : static_cast<double>(r.jitter_sum_us) /
                                   static_cast<double>(r.jitter_count);
}

double loss_rate(const FlowRecord& r) {
  const u64 total = r.packets + r.lost_packets;
  return total == 0 ? 0.0
                    : static_cast<double>(r.lost_packets) /
                          static_cast<double>(total);
}

double throughput_bps(const FlowRecord& r) {
  // Zero-duration (single-timestamp) flows count as one millisecond, like
  // the integer duration the query guests expose.
  const u64 duration_ms =
      r.last_ms > r.first_ms ? r.last_ms - r.first_ms : 1;
  return static_cast<double>(r.bytes) * 8.0 * 1000.0 /
         static_cast<double>(duration_ms);
}

}  // namespace zkt::netflow
