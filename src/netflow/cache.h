// Router-side NetFlow metering cache: accumulates per-flow records from
// packet observations and expires them by the standard active/inactive
// timeout rules, producing the records a router exports.
#pragma once

#include <unordered_map>
#include <vector>

#include "netflow/record.h"

namespace zkt::netflow {

struct FlowCacheConfig {
  /// A flow is exported after being active this long, even if still sending
  /// (periodic export of long-lived flows).
  u64 active_timeout_ms = 60'000;
  /// A flow is exported after this long without a packet.
  u64 inactive_timeout_ms = 15'000;
  /// Hard cap on cache entries; when full, the oldest entries are force-
  /// expired (emergency expiration, as real routers do).
  size_t max_entries = 65'536;
};

class FlowCache {
 public:
  struct Stats {
    u64 packets_observed = 0;
    u64 flows_created = 0;
    u64 active_timeouts = 0;
    u64 inactive_timeouts = 0;
    u64 emergency_expirations = 0;
  };

  explicit FlowCache(FlowCacheConfig config = {}) : config_(config) {}

  /// Fold a packet into the cache. Returns records force-expired to make
  /// room (usually empty).
  std::vector<FlowRecord> observe(const PacketObservation& pkt);

  /// Expire flows per the timeout rules at time `now_ms`.
  std::vector<FlowRecord> expire(u64 now_ms);

  /// Drain every entry (end of a measurement window).
  std::vector<FlowRecord> flush();

  size_t size() const { return entries_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    FlowRecord record;
    u64 created_ms = 0;
    u64 last_seen_ms = 0;
  };

  std::vector<FlowRecord> emergency_expire();

  FlowCacheConfig config_;
  std::unordered_map<FlowKey, Entry, FlowKeyHasher> entries_;
  Stats stats_;
};

}  // namespace zkt::netflow
