#include "netflow/sketch.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace zkt::netflow {

CountMinSketch::CountMinSketch(CountMinParams params)
    : params_(params),
      counters_(static_cast<size_t>(std::max<u32>(params.width, 1)) *
                std::max<u32>(params.depth, 1)) {
  params_.width = std::max<u32>(params_.width, 1);
  params_.depth = std::max<u32>(params_.depth, 1);
}

u32 CountMinSketch::index_for(const CountMinParams& params, u32 row,
                              const FlowKey& key) {
  // SHA-256(seed || row || key) mod width: slower than the usual pairwise
  // hashes but recomputable inside the zkVM with the same traced primitive
  // used everywhere else.
  Writer w;
  w.u64v(params.seed);
  w.u32v(row);
  key.serialize(w);
  const crypto::Digest32 d = crypto::sha256(w.bytes());
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(d.bytes[i]) << (8 * i);
  return static_cast<u32>(v % params.width);
}

void CountMinSketch::update(const FlowKey& key, u64 count) {
  for (u32 row = 0; row < params_.depth; ++row) {
    u64& c = counters_[static_cast<size_t>(row) * params_.width +
                       index_for(params_, row, key)];
    c = sat_add(c, count);
  }
  total_updates_ = sat_add(total_updates_, count);
}

u64 CountMinSketch::estimate(const FlowKey& key) const {
  u64 best = ~0ULL;
  for (u32 row = 0; row < params_.depth; ++row) {
    best = std::min(best, counter(row, index_for(params_, row, key)));
  }
  return best;
}

Status CountMinSketch::merge(const CountMinSketch& other) {
  if (!(params_ == other.params_)) {
    return Error{Errc::invalid_argument, "sketch parameter mismatch"};
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] = sat_add(counters_[i], other.counters_[i]);
  }
  total_updates_ = sat_add(total_updates_, other.total_updates_);
  return {};
}

u64 CountMinSketch::nonzero_in_row(u32 row) const {
  u64 n = 0;
  for (u32 i = 0; i < params_.width; ++i) {
    if (counter(row, i) != 0) ++n;
  }
  return n;
}

void CountMinSketch::serialize(Writer& w) const {
  w.str("CMS1");
  w.u32v(params_.width);
  w.u32v(params_.depth);
  w.u64v(params_.seed);
  w.u64v(total_updates_);
  for (u64 c : counters_) w.u64v(c);
}

Result<CountMinSketch> CountMinSketch::deserialize(Reader& r) {
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "CMS1") {
    return Error{Errc::parse_error, "bad sketch magic"};
  }
  CountMinParams params;
  auto width = r.u32v();
  if (!width.ok()) return width.error();
  params.width = width.value();
  auto depth = r.u32v();
  if (!depth.ok()) return depth.error();
  params.depth = depth.value();
  if (params.width == 0 || params.depth == 0 ||
      static_cast<u64>(params.width) * params.depth > (1u << 26)) {
    return Error{Errc::parse_error, "sketch dimensions out of range"};
  }
  auto seed = r.u64v();
  if (!seed.ok()) return seed.error();
  params.seed = seed.value();

  CountMinSketch sketch(params);
  auto total = r.u64v();
  if (!total.ok()) return total.error();
  sketch.total_updates_ = total.value();
  for (auto& c : sketch.counters_) {
    auto v = r.u64v();
    if (!v.ok()) return v.error();
    c = v.value();
  }
  return sketch;
}

Bytes CountMinSketch::canonical_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

crypto::Digest32 CountMinSketch::hash() const {
  return crypto::sha256(canonical_bytes());
}

SpaceSaving::SpaceSaving(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void SpaceSaving::update(const FlowKey& key, u64 count) {
  total_ = sat_add(total_, count);
  auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    entry.count = sat_add(entry.count, count);
    return;
  }
  if (entries_.size() < capacity_) {
    index_.emplace(key, entries_.size());
    entries_.push_back(Entry{key, count, 0});
    return;
  }
  // Replace the minimum entry (Space-Saving eviction).
  size_t min_index = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[min_index].count) min_index = i;
  }
  Entry& victim = entries_[min_index];
  index_.erase(victim.key);
  const u64 base = victim.count;
  victim = Entry{key, sat_add(base, count), base};
  index_.emplace(key, min_index);
}

u64 SpaceSaving::min_count() const {
  if (entries_.size() < capacity_) return 0;
  u64 floor = ~0ULL;
  for (const auto& entry : entries_) floor = std::min(floor, entry.count);
  return floor;
}

Status SpaceSaving::merge(const SpaceSaving& other) {
  if (capacity_ != other.capacity_) {
    return Error{Errc::invalid_argument, "space-saving capacity mismatch"};
  }
  const u64 floor_a = min_count();
  const u64 floor_b = other.min_count();

  // Merge-join the two entry sets by key. A key absent from one side may
  // still have occurred in that side's stream up to its eviction floor, so
  // it is charged the floor as both count and error.
  std::vector<Entry> a = entries_;
  std::vector<Entry> b = other.entries_;
  auto by_key = [](const Entry& x, const Entry& y) { return x.key < y.key; };
  std::sort(a.begin(), a.end(), by_key);
  std::sort(b.begin(), b.end(), by_key);

  std::vector<Entry> merged;
  merged.reserve(a.size() + b.size());
  size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    if (j >= b.size() || (i < a.size() && a[i].key < b[j].key)) {
      merged.push_back(Entry{a[i].key, sat_add(a[i].count, floor_b),
                             sat_add(a[i].error, floor_b)});
      ++i;
    } else if (i >= a.size() || b[j].key < a[i].key) {
      merged.push_back(Entry{b[j].key, sat_add(b[j].count, floor_a),
                             sat_add(b[j].error, floor_a)});
      ++j;
    } else {
      merged.push_back(Entry{a[i].key, sat_add(a[i].count, b[j].count),
                             sat_add(a[i].error, b[j].error)});
      ++i;
      ++j;
    }
  }
  std::sort(merged.begin(), merged.end(), [](const Entry& x, const Entry& y) {
    if (x.count != y.count) return x.count > y.count;
    return x.key < y.key;
  });
  if (merged.size() > capacity_) merged.resize(capacity_);

  entries_ = std::move(merged);
  index_.clear();
  for (size_t k = 0; k < entries_.size(); ++k) {
    index_.emplace(entries_[k].key, k);
  }
  total_ = sat_add(total_, other.total_);
  return {};
}

std::vector<SpaceSaving::Entry> SpaceSaving::heavy_hitters(
    u64 threshold) const {
  std::vector<Entry> out;
  for (const auto& entry : entries_) {
    if (entry.count >= threshold) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

std::optional<SpaceSaving::Entry> SpaceSaving::find(const FlowKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second];
}

void SpaceSaving::serialize(Writer& w) const {
  w.str("SSK1");
  w.u64v(capacity_);
  w.u64v(total_);
  w.varint(entries_.size());
  for (const auto& entry : entries_) {
    entry.key.serialize(w);
    w.u64v(entry.count);
    w.u64v(entry.error);
  }
}

Result<SpaceSaving> SpaceSaving::deserialize(Reader& r) {
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "SSK1") {
    return Error{Errc::parse_error, "bad space-saving magic"};
  }
  auto capacity = r.u64v();
  if (!capacity.ok()) return capacity.error();
  if (capacity.value() == 0 || capacity.value() > (1u << 20)) {
    return Error{Errc::parse_error, "space-saving capacity out of range"};
  }
  SpaceSaving tracker(static_cast<size_t>(capacity.value()));
  auto total = r.u64v();
  if (!total.ok()) return total.error();
  tracker.total_ = total.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > capacity.value()) {
    return Error{Errc::parse_error, "space-saving entry count over capacity"};
  }
  tracker.entries_.reserve(static_cast<size_t>(n.value()));
  for (u64 k = 0; k < n.value(); ++k) {
    Entry entry;
    auto key = FlowKey::deserialize(r);
    if (!key.ok()) return key.error();
    entry.key = key.value();
    auto count = r.u64v();
    if (!count.ok()) return count.error();
    entry.count = count.value();
    auto error = r.u64v();
    if (!error.ok()) return error.error();
    entry.error = error.value();
    if (!tracker.index_.emplace(entry.key, tracker.entries_.size()).second) {
      return Error{Errc::parse_error, "duplicate space-saving key"};
    }
    tracker.entries_.push_back(entry);
  }
  return tracker;
}

RoundSketch::RoundSketch(SketchParams params)
    : params_(params),
      cm_(params.cm),
      heavy_(std::max<u32>(params.heavy_capacity, 1)) {
  params_.cm = cm_.params();
  params_.heavy_capacity = static_cast<u32>(heavy_.capacity());
}

void RoundSketch::update(const FlowKey& key, u64 count) {
  cm_.update(key, count);
  heavy_.update(key, count);
}

Status RoundSketch::merge(const RoundSketch& other) {
  if (!(params_ == other.params_)) {
    return Error{Errc::invalid_argument, "round sketch parameter mismatch"};
  }
  ZKT_TRY(cm_.merge(other.cm_));
  return heavy_.merge(other.heavy_);
}

void RoundSketch::serialize(Writer& w) const {
  w.str("RSK1");
  cm_.serialize(w);
  heavy_.serialize(w);
}

Result<RoundSketch> RoundSketch::deserialize(Reader& r) {
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "RSK1") {
    return Error{Errc::parse_error, "bad round sketch magic"};
  }
  auto cm = CountMinSketch::deserialize(r);
  if (!cm.ok()) return cm.error();
  auto heavy = SpaceSaving::deserialize(r);
  if (!heavy.ok()) return heavy.error();
  RoundSketch sketch(SketchParams{
      cm.value().params(), static_cast<u32>(heavy.value().capacity())});
  sketch.cm_ = std::move(cm.value());
  sketch.heavy_ = std::move(heavy.value());
  return sketch;
}

Bytes RoundSketch::canonical_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

crypto::Digest32 RoundSketch::hash() const {
  return crypto::sha256(canonical_bytes());
}

}  // namespace zkt::netflow
