#include "netflow/sketch.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace zkt::netflow {

CountMinSketch::CountMinSketch(CountMinParams params)
    : params_(params),
      counters_(static_cast<size_t>(std::max<u32>(params.width, 1)) *
                std::max<u32>(params.depth, 1)) {
  params_.width = std::max<u32>(params_.width, 1);
  params_.depth = std::max<u32>(params_.depth, 1);
}

u32 CountMinSketch::index_for(const CountMinParams& params, u32 row,
                              const FlowKey& key) {
  // SHA-256(seed || row || key) mod width: slower than the usual pairwise
  // hashes but recomputable inside the zkVM with the same traced primitive
  // used everywhere else.
  Writer w;
  w.u64v(params.seed);
  w.u32v(row);
  key.serialize(w);
  const crypto::Digest32 d = crypto::sha256(w.bytes());
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(d.bytes[i]) << (8 * i);
  return static_cast<u32>(v % params.width);
}

void CountMinSketch::update(const FlowKey& key, u64 count) {
  for (u32 row = 0; row < params_.depth; ++row) {
    counters_[static_cast<size_t>(row) * params_.width +
              index_for(params_, row, key)] += count;
  }
  total_updates_ += count;
}

u64 CountMinSketch::estimate(const FlowKey& key) const {
  u64 best = ~0ULL;
  for (u32 row = 0; row < params_.depth; ++row) {
    best = std::min(best, counter(row, index_for(params_, row, key)));
  }
  return best;
}

Status CountMinSketch::merge(const CountMinSketch& other) {
  if (!(params_ == other.params_)) {
    return Error{Errc::invalid_argument, "sketch parameter mismatch"};
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_updates_ += other.total_updates_;
  return {};
}

void CountMinSketch::serialize(Writer& w) const {
  w.str("CMS1");
  w.u32v(params_.width);
  w.u32v(params_.depth);
  w.u64v(params_.seed);
  w.u64v(total_updates_);
  for (u64 c : counters_) w.u64v(c);
}

Result<CountMinSketch> CountMinSketch::deserialize(Reader& r) {
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "CMS1") {
    return Error{Errc::parse_error, "bad sketch magic"};
  }
  CountMinParams params;
  auto width = r.u32v();
  if (!width.ok()) return width.error();
  params.width = width.value();
  auto depth = r.u32v();
  if (!depth.ok()) return depth.error();
  params.depth = depth.value();
  if (params.width == 0 || params.depth == 0 ||
      static_cast<u64>(params.width) * params.depth > (1u << 26)) {
    return Error{Errc::parse_error, "sketch dimensions out of range"};
  }
  auto seed = r.u64v();
  if (!seed.ok()) return seed.error();
  params.seed = seed.value();

  CountMinSketch sketch(params);
  auto total = r.u64v();
  if (!total.ok()) return total.error();
  sketch.total_updates_ = total.value();
  for (auto& c : sketch.counters_) {
    auto v = r.u64v();
    if (!v.ok()) return v.error();
    c = v.value();
  }
  return sketch;
}

Bytes CountMinSketch::canonical_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

crypto::Digest32 CountMinSketch::hash() const {
  return crypto::sha256(canonical_bytes());
}

SpaceSaving::SpaceSaving(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void SpaceSaving::update(const FlowKey& key, u64 count) {
  total_ += count;
  auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].count += count;
    return;
  }
  if (entries_.size() < capacity_) {
    index_.emplace(key, entries_.size());
    entries_.push_back(Entry{key, count, 0});
    return;
  }
  // Replace the minimum entry (Space-Saving eviction).
  size_t min_index = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[min_index].count) min_index = i;
  }
  Entry& victim = entries_[min_index];
  index_.erase(victim.key);
  const u64 base = victim.count;
  victim = Entry{key, base + count, base};
  index_.emplace(key, min_index);
}

std::vector<SpaceSaving::Entry> SpaceSaving::heavy_hitters(
    u64 threshold) const {
  std::vector<Entry> out;
  for (const auto& entry : entries_) {
    if (entry.count >= threshold) out.push_back(entry);
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.count > b.count; });
  return out;
}

std::optional<SpaceSaving::Entry> SpaceSaving::find(const FlowKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second];
}

}  // namespace zkt::netflow
