// NetFlow v5: the legacy fixed-format export protocol still spoken by a
// large installed base of routers. zktel accepts v5 input so operators can
// commit telemetry from old equipment; v5 carries no RTT/jitter fields, so
// records imported this way participate in count/bytes/loss queries only.
//
// Wire format (all big-endian): 24-byte header followed by up to 30
// fixed 48-byte records.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "netflow/record.h"

namespace zkt::netflow {

inline constexpr size_t kV5HeaderSize = 24;
inline constexpr size_t kV5RecordSize = 48;
inline constexpr size_t kV5MaxRecords = 30;

struct V5Header {
  u16 count = 0;
  u32 sys_uptime_ms = 0;
  u32 unix_secs = 0;
  u32 unix_nsecs = 0;
  u32 flow_sequence = 0;
  u8 engine_type = 0;
  u8 engine_id = 0;
  u16 sampling_interval = 0;
};

struct V5Config {
  u8 engine_id = 0;
  u16 sampling_interval = 0;
};

/// Encodes flow records into v5 export packets (lossy: 64-bit counters are
/// clamped to 32 bits, the v5 maximum; performance fields are dropped).
class V5Exporter {
 public:
  explicit V5Exporter(V5Config config) : config_(config) {}

  std::vector<Bytes> export_records(std::span<const FlowRecord> records,
                                    u64 now_ms);

  u32 flows_emitted() const { return sequence_; }

 private:
  V5Config config_;
  u32 sequence_ = 0;
};

/// Decodes v5 packets into flow records (RTT/jitter/hop fields zero).
class V5Collector {
 public:
  struct Parsed {
    V5Header header;
    std::vector<FlowRecord> records;
  };

  Result<Parsed> ingest(BytesView packet) const;
};

}  // namespace zkt::netflow
