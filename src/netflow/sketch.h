// Sketch-based telemetry: Count-Min sketch and a Space-Saving heavy-hitter
// tracker.
//
// The paper's design is logging-algorithm agnostic ("can use any logging or
// sketching algorithm", §1) and its lineage is the sketching literature
// (UnivMon, NitroSketch, TrustSketch). This module provides the sketch
// substrate: routers can maintain a Count-Min sketch per commitment window,
// publish its hash exactly like an RLog commitment, and the provider can
// later prove sketch queries inside the zkVM (see core/sketch_query.h).
//
// Both structures have canonical serializations so their hashes are stable
// commitment targets.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"
#include "netflow/record.h"

namespace zkt::netflow {

struct CountMinParams {
  u32 width = 1024;  ///< counters per row (error ~ 2/width of total count)
  u32 depth = 4;     ///< rows (failure prob ~ (1/2)^depth)
  u64 seed = 0;      ///< keyed hashing seed (part of the commitment)

  friend bool operator==(const CountMinParams&, const CountMinParams&) =
      default;
};

/// Count-Min sketch over flow keys. Deterministic given (params, updates):
/// the row hashes are SHA-256 based so that the zkVM guest can recompute
/// them with traced compressions.
class CountMinSketch {
 public:
  explicit CountMinSketch(CountMinParams params);

  /// Row index for a key in row `row` (exposed so the proof guest and the
  /// host agree exactly).
  static u32 index_for(const CountMinParams& params, u32 row,
                       const FlowKey& key);

  void update(const FlowKey& key, u64 count);
  /// Point estimate: min over rows. Never underestimates.
  u64 estimate(const FlowKey& key) const;

  /// Merge a sketch with identical parameters (counter-wise sum).
  Status merge(const CountMinSketch& other);

  const CountMinParams& params() const { return params_; }
  u64 total_updates() const { return total_updates_; }
  u64 counter(u32 row, u32 index) const {
    return counters_[static_cast<size_t>(row) * params_.width + index];
  }

  void serialize(Writer& w) const;
  static Result<CountMinSketch> deserialize(Reader& r);
  Bytes canonical_bytes() const;
  crypto::Digest32 hash() const;

 private:
  CountMinParams params_;
  std::vector<u64> counters_;
  u64 total_updates_ = 0;
};

/// Space-Saving heavy-hitter tracker: maintains at most `capacity`
/// (key, count, error) triples; any flow with true count > N/capacity is
/// guaranteed to be tracked.
class SpaceSaving {
 public:
  struct Entry {
    FlowKey key;
    u64 count = 0;
    u64 error = 0;  ///< overestimation bound for this entry
  };

  explicit SpaceSaving(size_t capacity);

  void update(const FlowKey& key, u64 count);

  /// Entries with count >= threshold, descending by count.
  std::vector<Entry> heavy_hitters(u64 threshold) const;
  std::optional<Entry> find(const FlowKey& key) const;
  size_t size() const { return entries_.size(); }
  u64 total() const { return total_; }

 private:
  size_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<FlowKey, size_t, FlowKeyHasher> index_;
  u64 total_ = 0;
};

}  // namespace zkt::netflow
