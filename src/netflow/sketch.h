// Sketch-based telemetry: Count-Min sketch and a Space-Saving heavy-hitter
// tracker.
//
// The paper's design is logging-algorithm agnostic ("can use any logging or
// sketching algorithm", §1) and its lineage is the sketching literature
// (UnivMon, NitroSketch, TrustSketch). This module provides the sketch
// substrate: routers can maintain a Count-Min sketch per commitment window,
// publish its hash exactly like an RLog commitment, and the provider can
// later prove sketch queries inside the zkVM (see core/sketch_query.h).
//
// Beyond standalone commitments, RoundSketch bundles a Count-Min sketch
// with a Space-Saving tracker into the proof-carrying round state the
// aggregation guests fold every touched flow into: its digest rides in the
// per-round claim next to the CLog root, and the sketch query guests prove
// heavy-hitter / cardinality answers against that digest alone
// (DESIGN.md §10).
//
// All structures have canonical serializations so their hashes are stable
// commitment targets, and all counter arithmetic saturates at 2^64-1 — the
// guests re-do the same additions with traced ALU ops and the two sides
// must agree bit for bit.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"
#include "netflow/record.h"

namespace zkt::netflow {

/// Saturating add shared by every sketch counter (host twin of the guests'
/// traced select-based saturation in core/sketch_fold.h).
inline u64 sat_add(u64 a, u64 b) {
  const u64 s = a + b;
  return s < a ? ~0ULL : s;
}

struct CountMinParams {
  u32 width = 1024;  ///< counters per row (error ~ 2/width of total count)
  u32 depth = 4;     ///< rows (failure prob ~ (1/2)^depth)
  u64 seed = 0;      ///< keyed hashing seed (part of the commitment)

  friend bool operator==(const CountMinParams&, const CountMinParams&) =
      default;
};

/// Count-Min sketch over flow keys. Deterministic given (params, updates):
/// the row hashes are SHA-256 based so that the zkVM guest can recompute
/// them with traced compressions.
class CountMinSketch {
 public:
  explicit CountMinSketch(CountMinParams params);

  /// Row index for a key in row `row` (exposed so the proof guest and the
  /// host agree exactly).
  static u32 index_for(const CountMinParams& params, u32 row,
                       const FlowKey& key);

  void update(const FlowKey& key, u64 count);
  /// Point estimate: min over rows. Never underestimates.
  u64 estimate(const FlowKey& key) const;

  /// Merge a sketch with identical parameters (counter-wise saturating
  /// sum).
  Status merge(const CountMinSketch& other);

  const CountMinParams& params() const { return params_; }
  u64 total_updates() const { return total_updates_; }
  u64 counter(u32 row, u32 index) const {
    return counters_[static_cast<size_t>(row) * params_.width + index];
  }
  /// Raw counter write, for the guests' traced fold (which computes the
  /// saturated sum itself, as ALU trace rows, then stores it here).
  void set_counter(u32 row, u32 index, u64 value) {
    counters_[static_cast<size_t>(row) * params_.width + index] = value;
  }
  void set_total_updates(u64 value) { total_updates_ = value; }
  /// Number of nonzero counters in `row`; max over rows lower-bounds the
  /// distinct keys the sketch absorbed (each key hits one counter per row).
  u64 nonzero_in_row(u32 row) const;

  void serialize(Writer& w) const;
  static Result<CountMinSketch> deserialize(Reader& r);
  Bytes canonical_bytes() const;
  crypto::Digest32 hash() const;

 private:
  CountMinParams params_;
  std::vector<u64> counters_;
  u64 total_updates_ = 0;
};

/// Space-Saving heavy-hitter tracker: maintains at most `capacity`
/// (key, count, error) triples; any flow with true count > N/capacity is
/// guaranteed to be tracked.
class SpaceSaving {
 public:
  struct Entry {
    FlowKey key;
    u64 count = 0;
    u64 error = 0;  ///< overestimation bound for this entry

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  explicit SpaceSaving(size_t capacity);

  void update(const FlowKey& key, u64 count);

  /// Mergeable-summaries combine (Agarwal et al.): keys absent from one
  /// side are charged that side's eviction floor, then the union is
  /// truncated back to capacity by (count desc, key asc). Preserves both
  /// guarantees: count >= truth and count - error <= truth. Rejects
  /// capacity mismatches. Deterministic (never iterates the hash index),
  /// so host and guest replay it identically.
  Status merge(const SpaceSaving& other);

  /// Entries with count >= threshold, descending by count (key ascending
  /// as the tiebreak so the order is canonical).
  std::vector<Entry> heavy_hitters(u64 threshold) const;
  std::optional<Entry> find(const FlowKey& key) const;
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  u64 total() const { return total_; }
  /// The eviction floor: the minimum tracked count when full, else 0. Any
  /// untracked key's true count is <= this.
  u64 min_count() const;
  /// Entries in storage order (the canonical serialization order).
  const std::vector<Entry>& entries() const { return entries_; }

  void serialize(Writer& w) const;
  static Result<SpaceSaving> deserialize(Reader& r);

 private:
  size_t capacity_;
  std::vector<Entry> entries_;
  std::unordered_map<FlowKey, size_t, FlowKeyHasher> index_;
  u64 total_ = 0;
};

/// Parameters of the proof-carrying round sketch: the Count-Min dimensions
/// plus the Space-Saving capacity. Equal params are required for chaining
/// and merging.
struct SketchParams {
  CountMinParams cm;
  u32 heavy_capacity = 64;

  friend bool operator==(const SketchParams&, const SketchParams&) = default;
};

/// The per-round committed sketch state: one Count-Min sketch (point
/// estimates, cardinality lower bound) plus one Space-Saving tracker
/// (heavy-hitter enumeration), updated and hashed together. The
/// aggregation guests fold every record into this and publish
/// hash(canonical_bytes) in the round journal; the sketch query guests
/// answer against that digest alone.
class RoundSketch {
 public:
  explicit RoundSketch(SketchParams params = {});

  void update(const FlowKey& key, u64 count);
  /// Merge same-params round sketches (sharded fold path).
  Status merge(const RoundSketch& other);

  const SketchParams& params() const { return params_; }
  const CountMinSketch& cm() const { return cm_; }
  const SpaceSaving& heavy() const { return heavy_; }
  /// Mutable views for the guests' traced fold.
  CountMinSketch& cm_mut() { return cm_; }
  SpaceSaving& heavy_mut() { return heavy_; }
  u64 total() const { return cm_.total_updates(); }

  void serialize(Writer& w) const;
  static Result<RoundSketch> deserialize(Reader& r);
  Bytes canonical_bytes() const;
  crypto::Digest32 hash() const;

 private:
  SketchParams params_;
  CountMinSketch cm_;
  SpaceSaving heavy_;
};

}  // namespace zkt::netflow
