// Log-scale latency histograms: the per-window distributional summary that
// backs verifiable percentile claims ("at least 90 % of samples saw
// RTT < 50 ms", §2.1's SLA language). Routers maintain one per window,
// commit to its hash like any other log object, and the provider later
// proves quantile bounds from the committed histogram without revealing
// the distribution (see core/histogram_query.h).
#pragma once

#include <array>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"

namespace zkt::netflow {

/// Fixed log₂-bucketed histogram of microsecond latencies. Bucket b holds
/// samples with value in [2^b, 2^(b+1)) µs; bucket 0 additionally holds 0
/// and 1 µs. 40 buckets cover up to ~18 minutes, far beyond any RTT.
class LatencyHistogram {
 public:
  static constexpr u32 kBuckets = 40;

  /// Bucket index for a value (shared with the proof guest).
  static u32 bucket_of(u64 value_us);
  /// Inclusive upper bound (µs) of bucket b: 2^(b+1) - 1.
  static u64 bucket_upper_us(u32 bucket);

  void add(u64 value_us, u64 count = 1);
  u64 total() const { return total_; }
  u64 bucket(u32 index) const { return buckets_[index]; }

  /// Samples whose *bucket upper bound* is <= bound_us — i.e. samples
  /// provably below the bound (the histogram's conservative answer).
  u64 count_provably_below(u64 bound_us) const;

  /// Counter-wise sum.
  void merge(const LatencyHistogram& other);

  void serialize(Writer& w) const;
  static Result<LatencyHistogram> deserialize(Reader& r);
  Bytes canonical_bytes() const;
  crypto::Digest32 hash() const;

  friend bool operator==(const LatencyHistogram&, const LatencyHistogram&) =
      default;

 private:
  std::array<u64, kBuckets> buckets_{};
  u64 total_ = 0;
};

}  // namespace zkt::netflow
