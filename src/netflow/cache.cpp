#include "netflow/cache.h"

#include <algorithm>

namespace zkt::netflow {

std::vector<FlowRecord> FlowCache::observe(const PacketObservation& pkt) {
  ++stats_.packets_observed;
  std::vector<FlowRecord> evicted;
  auto it = entries_.find(pkt.key);
  if (it == entries_.end()) {
    if (entries_.size() >= config_.max_entries) {
      evicted = emergency_expire();
    }
    Entry entry;
    entry.created_ms = pkt.timestamp_ms;
    ++stats_.flows_created;
    it = entries_.emplace(pkt.key, std::move(entry)).first;
  }
  it->second.record.observe(pkt);
  it->second.last_seen_ms = pkt.timestamp_ms;
  return evicted;
}

std::vector<FlowRecord> FlowCache::expire(u64 now_ms) {
  std::vector<FlowRecord> expired;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = it->second;
    const bool inactive =
        now_ms >= e.last_seen_ms + config_.inactive_timeout_ms;
    const bool active_too_long =
        now_ms >= e.created_ms + config_.active_timeout_ms;
    if (inactive || active_too_long) {
      if (inactive) {
        ++stats_.inactive_timeouts;
      } else {
        ++stats_.active_timeouts;
      }
      expired.push_back(e.record);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

std::vector<FlowRecord> FlowCache::flush() {
  std::vector<FlowRecord> all;
  all.reserve(entries_.size());
  for (auto& [key, entry] : entries_) {
    all.push_back(entry.record);
  }
  entries_.clear();
  return all;
}

std::vector<FlowRecord> FlowCache::emergency_expire() {
  // Force out the oldest eighth of the cache (at least one entry) so bursts
  // of new flows do not thrash.
  const size_t target = std::max<size_t>(1, entries_.size() / 8);
  std::vector<std::pair<u64, FlowKey>> by_age;
  by_age.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    by_age.emplace_back(entry.last_seen_ms, key);
  }
  std::nth_element(by_age.begin(), by_age.begin() + target - 1, by_age.end());
  std::vector<FlowRecord> evicted;
  evicted.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    auto it = entries_.find(by_age[i].second);
    evicted.push_back(it->second.record);
    entries_.erase(it);
    ++stats_.emergency_expirations;
  }
  return evicted;
}

}  // namespace zkt::netflow
