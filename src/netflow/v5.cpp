#include "netflow/v5.h"

#include <algorithm>

namespace zkt::netflow {

namespace {

void put_be16(Bytes& out, u16 v) {
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v));
}
void put_be32(Bytes& out, u32 v) {
  put_be16(out, static_cast<u16>(v >> 16));
  put_be16(out, static_cast<u16>(v));
}

u16 be16_at(BytesView data, size_t offset) {
  return static_cast<u16>((data[offset] << 8) | data[offset + 1]);
}
u32 be32_at(BytesView data, size_t offset) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data[offset + i];
  return v;
}

u32 clamp32(u64 v) {
  return static_cast<u32>(std::min<u64>(v, 0xFFFFFFFFULL));
}

}  // namespace

std::vector<Bytes> V5Exporter::export_records(
    std::span<const FlowRecord> records, u64 now_ms) {
  std::vector<Bytes> packets;
  size_t pos = 0;
  do {
    const size_t take = std::min(kV5MaxRecords, records.size() - pos);
    Bytes out;
    out.reserve(kV5HeaderSize + take * kV5RecordSize);
    put_be16(out, 5);
    put_be16(out, static_cast<u16>(take));
    put_be32(out, static_cast<u32>(now_ms));
    put_be32(out, static_cast<u32>(now_ms / 1000));
    put_be32(out, static_cast<u32>((now_ms % 1000) * 1'000'000));
    put_be32(out, sequence_);
    out.push_back(0);  // engine_type: RP
    out.push_back(config_.engine_id);
    put_be16(out, config_.sampling_interval);

    for (size_t i = 0; i < take; ++i) {
      const FlowRecord& rec = records[pos + i];
      put_be32(out, rec.key.src_ip);
      put_be32(out, rec.key.dst_ip);
      put_be32(out, 0);  // nexthop unknown
      put_be16(out, 0);  // input ifindex
      put_be16(out, 0);  // output ifindex
      put_be32(out, clamp32(rec.packets));
      put_be32(out, clamp32(rec.bytes));
      put_be32(out, static_cast<u32>(rec.first_ms));
      put_be32(out, static_cast<u32>(rec.last_ms));
      put_be16(out, rec.key.src_port);
      put_be16(out, rec.key.dst_port);
      out.push_back(0);  // pad1
      out.push_back(rec.tcp_flags_or);
      out.push_back(rec.key.protocol);
      out.push_back(0);  // tos
      put_be16(out, 0);  // src_as
      put_be16(out, 0);  // dst_as
      out.push_back(0);  // src_mask
      out.push_back(0);  // dst_mask
      put_be16(out, 0);  // pad2
      ++sequence_;
    }
    packets.push_back(std::move(out));
    pos += take;
  } while (pos < records.size());
  return packets;
}

Result<V5Collector::Parsed> V5Collector::ingest(BytesView packet) const {
  if (packet.size() < kV5HeaderSize) {
    return Error{Errc::parse_error, "short v5 header"};
  }
  if (be16_at(packet, 0) != 5) {
    return Error{Errc::parse_error, "not a v5 packet"};
  }
  Parsed out;
  out.header.count = be16_at(packet, 2);
  out.header.sys_uptime_ms = be32_at(packet, 4);
  out.header.unix_secs = be32_at(packet, 8);
  out.header.unix_nsecs = be32_at(packet, 12);
  out.header.flow_sequence = be32_at(packet, 16);
  out.header.engine_type = packet[20];
  out.header.engine_id = packet[21];
  out.header.sampling_interval = be16_at(packet, 22);

  if (out.header.count > kV5MaxRecords) {
    return Error{Errc::parse_error, "v5 count exceeds protocol maximum"};
  }
  if (packet.size() != kV5HeaderSize + out.header.count * kV5RecordSize) {
    return Error{Errc::parse_error, "v5 packet size does not match count"};
  }

  out.records.reserve(out.header.count);
  for (u16 i = 0; i < out.header.count; ++i) {
    const size_t base = kV5HeaderSize + i * kV5RecordSize;
    FlowRecord rec;
    rec.key.src_ip = be32_at(packet, base + 0);
    rec.key.dst_ip = be32_at(packet, base + 4);
    rec.packets = be32_at(packet, base + 16);
    rec.bytes = be32_at(packet, base + 20);
    rec.first_ms = be32_at(packet, base + 24);
    rec.last_ms = be32_at(packet, base + 28);
    rec.key.src_port = be16_at(packet, base + 32);
    rec.key.dst_port = be16_at(packet, base + 34);
    rec.tcp_flags_or = packet[base + 37];
    rec.key.protocol = packet[base + 38];
    out.records.push_back(rec);
  }
  return out;
}

}  // namespace zkt::netflow
