// NetFlow v9 export format (RFC 3954): template-described binary export
// packets, big-endian on the wire.
//
// Routers in the simulator serialize their expired flow records through this
// encoder and the collector decodes them on the provider side, so the RLogs
// the system commits to have passed through a faithful NetFlow wire path
// rather than an in-memory shortcut.
//
// The template uses standard IANA field types for the 5-tuple and counters,
// plus vendor-range types (>= 40001) for the performance fields (RTT,
// jitter, hop counts, losses) the paper's SLA/neutrality queries need — the
// same approach real vendors take for non-standard metrics.
#pragma once

#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "netflow/record.h"

namespace zkt::netflow {

// Standard NetFlow v9 field types (RFC 3954 §8).
inline constexpr u16 kFieldInBytes = 1;
inline constexpr u16 kFieldInPkts = 2;
inline constexpr u16 kFieldProtocol = 4;
inline constexpr u16 kFieldTcpFlags = 6;
inline constexpr u16 kFieldL4SrcPort = 7;
inline constexpr u16 kFieldIpv4SrcAddr = 8;
inline constexpr u16 kFieldL4DstPort = 11;
inline constexpr u16 kFieldIpv4DstAddr = 12;
// Option (metadata) field types, RFC 3954 §8.
inline constexpr u16 kScopeSystem = 1;
inline constexpr u16 kFieldSamplingInterval = 34;
inline constexpr u16 kFieldSamplingAlgorithm = 35;
inline constexpr u16 kFieldTotalFlowsExported = 42;
// Vendor-range field types carrying zktel performance metrics.
inline constexpr u16 kFieldFirstMs = 40001;
inline constexpr u16 kFieldLastMs = 40002;
inline constexpr u16 kFieldLostPkts = 40003;
inline constexpr u16 kFieldHopSum = 40004;
inline constexpr u16 kFieldRttSum = 40005;
inline constexpr u16 kFieldRttCount = 40006;
inline constexpr u16 kFieldRttMax = 40007;
inline constexpr u16 kFieldJitterSum = 40008;
inline constexpr u16 kFieldJitterCount = 40009;

struct V9Config {
  u32 source_id = 0;
  u16 template_id = 256;  ///< must be >= 256 per RFC 3954
  size_t max_records_per_packet = 24;
  /// Re-send the template flowset every N packets (RFC 3954 §9 requires
  /// periodic template refresh since transport is unreliable).
  u32 template_refresh_interval = 16;
  /// Emit an options template + data record (RFC 3954 §6.5) alongside each
  /// template refresh, reporting the exporter's sampling configuration.
  bool include_options = true;
  u32 sampling_interval = 1;  ///< 1 = unsampled
  u8 sampling_algorithm = 1;  ///< 1 = deterministic
};

/// Encodes flow records into v9 export packets.
class V9Exporter {
 public:
  explicit V9Exporter(V9Config config) : config_(config) {}

  /// Encode records into one or more export packets. `now_ms` feeds the
  /// header's uptime/time fields.
  std::vector<Bytes> export_records(std::span<const FlowRecord> records,
                                    u64 now_ms);

  u32 packets_emitted() const { return sequence_; }

 private:
  Bytes build_packet(std::span<const FlowRecord> chunk, u64 now_ms,
                     bool include_template);

  V9Config config_;
  u32 sequence_ = 0;
};

/// A decoded options-data record: exporter metadata scoped to a source.
struct OptionsRecord {
  u32 source_id = 0;
  /// (field type -> value) for each option field, e.g.
  /// kFieldSamplingInterval -> 1.
  std::map<u16, u64> values;
};

/// Decodes v9 export packets, maintaining the per-(source, template) cache
/// RFC 3954 requires. Handles both regular and options templates.
class V9Collector {
 public:
  struct Stats {
    u64 packets = 0;
    u64 records = 0;
    u64 templates_learned = 0;
    u64 options_templates_learned = 0;
    u64 options_records = 0;
    u64 data_flowsets_without_template = 0;
  };

  /// Parse one export packet; returns the decoded flow records (empty if the
  /// packet only carried templates/options).
  Result<std::vector<FlowRecord>> ingest(BytesView packet);

  const Stats& stats() const { return stats_; }
  /// Options records decoded so far, in arrival order.
  const std::vector<OptionsRecord>& options() const { return options_; }

 private:
  struct TemplateField {
    u16 type = 0;
    u16 length = 0;
  };
  struct Template {
    bool is_options = false;
    size_t scope_fields = 0;  ///< leading fields that are scope fields
    std::vector<TemplateField> fields;
  };
  using TemplateKey = std::pair<u32, u16>;  // (source_id, template_id)

  std::map<TemplateKey, Template> templates_;
  std::vector<OptionsRecord> options_;
  Stats stats_;
};

}  // namespace zkt::netflow
