#include "netflow/record.h"

#include <charconv>

#include "crypto/sha256.h"

namespace zkt::netflow {

Result<Ipv4> parse_ipv4(std::string_view s) {
  u32 addr = 0;
  size_t pos = 0;
  for (int octet = 0; octet < 4; ++octet) {
    size_t dot = s.find('.', pos);
    if (octet == 3) {
      if (dot != std::string_view::npos) {
        return Error{Errc::parse_error, "too many octets"};
      }
      dot = s.size();
    } else if (dot == std::string_view::npos) {
      return Error{Errc::parse_error, "expected 4 octets"};
    }
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data() + pos, s.data() + dot, value);
    if (ec != std::errc() || ptr != s.data() + dot || value > 255 ||
        dot == pos) {
      return Error{Errc::parse_error, "bad IPv4 octet"};
    }
    addr = (addr << 8) | value;
    pos = dot + 1;
  }
  return addr;
}

std::string format_ipv4(Ipv4 addr) {
  std::string out;
  for (int i = 3; i >= 0; --i) {
    out += std::to_string((addr >> (8 * i)) & 0xff);
    if (i > 0) out += '.';
  }
  return out;
}

void FlowKey::serialize(Writer& w) const {
  w.u32v(src_ip);
  w.u32v(dst_ip);
  w.u16v(src_port);
  w.u16v(dst_port);
  w.u8v(protocol);
}

Result<FlowKey> FlowKey::deserialize(Reader& r) {
  FlowKey k;
  auto a = r.u32v();
  if (!a.ok()) return a.error();
  k.src_ip = a.value();
  auto b = r.u32v();
  if (!b.ok()) return b.error();
  k.dst_ip = b.value();
  auto c = r.u16v();
  if (!c.ok()) return c.error();
  k.src_port = c.value();
  auto d = r.u16v();
  if (!d.ok()) return d.error();
  k.dst_port = d.value();
  auto e = r.u8v();
  if (!e.ok()) return e.error();
  k.protocol = e.value();
  return k;
}

Bytes FlowKey::canonical_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

std::string FlowKey::to_string() const {
  return format_ipv4(src_ip) + ":" + std::to_string(src_port) + " -> " +
         format_ipv4(dst_ip) + ":" + std::to_string(dst_port) + " proto " +
         std::to_string(protocol);
}

void FlowRecord::observe(const PacketObservation& pkt) {
  if (packets == 0 && lost_packets == 0) {
    key = pkt.key;
    first_ms = pkt.timestamp_ms;
    last_ms = pkt.timestamp_ms;
  } else {
    first_ms = std::min(first_ms, pkt.timestamp_ms);
    last_ms = std::max(last_ms, pkt.timestamp_ms);
  }
  if (pkt.dropped) {
    ++lost_packets;
    return;
  }
  ++packets;
  bytes += pkt.bytes;
  hop_count_sum += pkt.hop_count;
  tcp_flags_or |= pkt.tcp_flags;
  if (pkt.rtt_us > 0) {
    rtt_sum_us += pkt.rtt_us;
    ++rtt_count;
    rtt_max_us = std::max<u64>(rtt_max_us, pkt.rtt_us);
  }
  if (pkt.jitter_us > 0) {
    jitter_sum_us += pkt.jitter_us;
    ++jitter_count;
  }
}

void FlowRecord::merge(const FlowRecord& other) {
  if (packets == 0 && lost_packets == 0) {
    *this = other;
    return;
  }
  first_ms = std::min(first_ms, other.first_ms);
  last_ms = std::max(last_ms, other.last_ms);
  packets += other.packets;
  bytes += other.bytes;
  lost_packets += other.lost_packets;
  hop_count_sum += other.hop_count_sum;
  rtt_sum_us += other.rtt_sum_us;
  rtt_count += other.rtt_count;
  rtt_max_us = std::max(rtt_max_us, other.rtt_max_us);
  jitter_sum_us += other.jitter_sum_us;
  jitter_count += other.jitter_count;
  tcp_flags_or |= other.tcp_flags_or;
}

void FlowRecord::serialize(Writer& w) const {
  key.serialize(w);
  w.u64v(first_ms);
  w.u64v(last_ms);
  w.u64v(packets);
  w.u64v(bytes);
  w.u64v(lost_packets);
  w.u64v(hop_count_sum);
  w.u64v(rtt_sum_us);
  w.u64v(rtt_count);
  w.u64v(rtt_max_us);
  w.u64v(jitter_sum_us);
  w.u64v(jitter_count);
  w.u8v(tcp_flags_or);
}

Result<FlowRecord> FlowRecord::deserialize(Reader& r) {
  FlowRecord rec;
  auto k = FlowKey::deserialize(r);
  if (!k.ok()) return k.error();
  rec.key = k.value();
  u64* fields[] = {&rec.first_ms,      &rec.last_ms,     &rec.packets,
                   &rec.bytes,         &rec.lost_packets, &rec.hop_count_sum,
                   &rec.rtt_sum_us,    &rec.rtt_count,   &rec.rtt_max_us,
                   &rec.jitter_sum_us, &rec.jitter_count};
  for (u64* f : fields) {
    auto v = r.u64v();
    if (!v.ok()) return v.error();
    *f = v.value();
  }
  auto flags = r.u8v();
  if (!flags.ok()) return flags.error();
  rec.tcp_flags_or = flags.value();
  return rec;
}

Bytes FlowRecord::canonical_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

void RLogBatch::serialize(Writer& w) const {
  w.str("RLOG1");
  w.u32v(router_id);
  w.u64v(window_id);
  w.varint(records.size());
  for (const auto& rec : records) rec.serialize(w);
}

Result<RLogBatch> RLogBatch::deserialize(Reader& r) {
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "RLOG1") {
    return Error{Errc::parse_error, "bad rlog magic"};
  }
  RLogBatch batch;
  auto rid = r.u32v();
  if (!rid.ok()) return rid.error();
  batch.router_id = rid.value();
  auto wid = r.u64v();
  if (!wid.ok()) return wid.error();
  batch.window_id = wid.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > (1u << 24)) {
    return Error{Errc::parse_error, "rlog too large"};
  }
  batch.records.reserve(n.value());
  for (u64 i = 0; i < n.value(); ++i) {
    auto rec = FlowRecord::deserialize(r);
    if (!rec.ok()) return rec.error();
    batch.records.push_back(std::move(rec.value()));
  }
  return batch;
}

Bytes RLogBatch::canonical_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

crypto::Digest32 RLogBatch::hash() const {
  return crypto::sha256(canonical_bytes());
}

}  // namespace zkt::netflow
