// Verifier-side floating-point views over flow records.
//
// These live OUTSIDE netflow/record.h on purpose: record.h is reachable
// from the zkVM guests, and guest-reachable code must stay float-free
// (floating point is platform/flag-dependent, which would make guest traces
// non-replayable — see docs/ANALYSIS.md, rule guest-determinism). Guests
// compute the same quantities in fixed point over the (sum, count) pairs the
// record carries (e.g. QField::rtt_avg_us uses integer division); these
// helpers are for host-side reporting, dashboards and tests only.
#pragma once

#include "netflow/record.h"

namespace zkt::netflow {

/// Mean RTT in microseconds (0 when no RTT samples were observed).
double avg_rtt_us(const FlowRecord& r);
/// Mean inter-packet jitter in microseconds (0 when unobserved).
double avg_jitter_us(const FlowRecord& r);
/// Fraction of packets lost, in [0, 1].
double loss_rate(const FlowRecord& r);
/// Average throughput over the flow's active interval, bits per second.
double throughput_bps(const FlowRecord& r);

}  // namespace zkt::netflow
