// zkt::obs trace spans — nestable scoped timers on top of the metrics
// registry.
//
// A ScopedSpan measures the wall time of a lexical scope and records it into
// the registry when it closes. Spans nest per thread: a span opened while
// another is active becomes its child, and records under the joined path
//
//   span.<parent>/<child>.ms       (histogram of durations)
//   span.<parent>/<child>.calls    (counter of completions)
//
// so e.g. the prover's commit phase inside an aggregation round shows up as
// `span.prove/commit.ms`. The nesting stack is thread-local: spans on the
// sharded prover's worker threads each root their own path and never contend
// beyond the registry's atomics.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace zkt::obs {

class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name,
                      Registry& registry = Registry::instance());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Slash-joined path from this thread's root span, e.g. "prove/commit".
  const std::string& path() const { return path_; }

  /// Number of spans currently open on the calling thread.
  static u32 depth();

 private:
  Registry* registry_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  ScopedSpan* parent_;
};

#define ZKT_OBS_SPAN_CAT2(a, b) a##b
#define ZKT_OBS_SPAN_CAT(a, b) ZKT_OBS_SPAN_CAT2(a, b)
/// Time the rest of the enclosing scope as an obs span.
#define ZKT_OBS_SPAN(name) \
  ::zkt::obs::ScopedSpan ZKT_OBS_SPAN_CAT(_zkt_obs_span_, __LINE__)(name)

}  // namespace zkt::obs
