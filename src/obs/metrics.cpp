#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace zkt::obs {

namespace {

/// fetch_add for atomic<double> via CAS (portable pre-C++20-atomic-float).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Locale-independent shortest-ish double rendering that is valid JSON.
std::string format_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v >= 1)) return 0;  // negatives and NaN clamp low
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1) -> v in [2^(exp-1), 2^exp)
  return std::clamp(exp, 1, kBuckets - 1);
}

double Histogram::bucket_upper_bound(int i) {
  return i <= 0 ? 1.0 : std::ldexp(1.0, i);
}

void Histogram::record(double v) {
  if (std::isnan(v)) return;
  if (v < 0) v = 0;
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(kMinInit, std::memory_order_relaxed);
  max_.store(kMaxInit, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  u64 cumulative = 0;
  for (const auto& [upper, n] : buckets) {
    if (static_cast<double>(cumulative + n) >= target) {
      const double lower = upper <= 1.0 ? 0.0 : upper / 2.0;
      const double within =
          n == 0 ? 0
                 : (target - static_cast<double>(cumulative)) /
                       static_cast<double>(n);
      const double est = lower + within * (upper - lower);
      return std::clamp(est, min, max);
    }
    cumulative += n;
  }
  return max;
}

const u64* Snapshot::find_counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return &v;
  }
  return nullptr;
}

const double* Snapshot::find_gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return &v;
  }
  return nullptr;
}

const HistogramSnapshot* Snapshot::find_histogram(std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

std::string Snapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + format_double(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + format_double(h.sum);
    out += ", \"min\": " + format_double(h.min);
    out += ", \"max\": " + format_double(h.max);
    out += ", \"p50\": " + format_double(h.p50());
    out += ", \"p90\": " + format_double(h.p90());
    out += ", \"p99\": " + format_double(h.p99());
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [upper, n] : h.buckets) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "{\"le\": " + format_double(upper) +
             ", \"count\": " + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string Snapshot::to_table() const {
  std::string out;
  char line[256];
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters) {
      std::snprintf(line, sizeof(line), "  %-44s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out += line;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, value] : gauges) {
      std::snprintf(line, sizeof(line), "  %-44s %20.3f\n", name.c_str(),
                    value);
      out += line;
    }
  }
  if (!histograms.empty()) {
    out += "histograms:"
           "                                        count       mean        "
           "p50        p90        p99        max\n";
    for (const auto& [name, h] : histograms) {
      std::snprintf(line, sizeof(line),
                    "  %-44s %9llu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                    name.c_str(), static_cast<unsigned long long>(h.count),
                    h.mean(), h.p50(), h.p90(), h.p99(), h.max);
      out += line;
    }
  }
  return out;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count_.load(std::memory_order_relaxed);
    hs.sum = h->sum_.load(std::memory_order_relaxed);
    hs.min = hs.count == 0 ? 0 : h->min_.load(std::memory_order_relaxed);
    hs.max = hs.count == 0 ? 0 : h->max_.load(std::memory_order_relaxed);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const u64 n = h->buckets_[i].load(std::memory_order_relaxed);
      if (n != 0) {
        hs.buckets.emplace_back(Histogram::bucket_upper_bound(i), n);
      }
    }
    snap.histograms.emplace_back(name, std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace zkt::obs
