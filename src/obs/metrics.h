// zkt::obs — lightweight, thread-safe metrics for the proving hot paths.
//
// The paper's evaluation (§6, Fig. 4, Table 1) is entirely about *where
// proving time goes*: cycles, SHA rows, segments, per-phase guest regions.
// This subsystem turns those one-off ProveInfo printouts into a uniform,
// process-wide instrument set:
//
//   Counter    — monotonic u64 (proofs produced, cycles spent, rows pruned)
//   Gauge      — last-set double (entries in the CLog, pending-window lag)
//   Histogram  — log-bucketed distribution (latencies, batch sizes); powers
//                of two, so bucket i ≥ 1 covers [2^(i-1), 2^i)
//
// Instruments live in a Registry (usually Registry::instance()). Lookup
// takes a mutex; updates are lock-free atomics, so instrumented code paths
// — including the sharded prover's per-shard threads — never serialize on
// the registry. References returned by counter()/gauge()/histogram() stay
// valid for the registry's lifetime (reset() zeroes values in place).
//
// Export is snapshot-based: snapshot() captures a consistent, name-sorted
// view which renders to JSON (the schema documented in docs/OBSERVABILITY.md
// and shared by the tools' --metrics-json flags and the bench harness) or a
// human-readable table. No instrument ever performs I/O.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace zkt::obs {

/// Monotonically increasing event/quantity count.
class Counter {
 public:
  void add(u64 n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Log-bucketed distribution of non-negative samples. Bucket 0 holds
/// samples < 1; bucket i ≥ 1 holds [2^(i-1), 2^i). Values beyond the last
/// bucket clamp into it (upper bound ~5.5e11, far past any latency or batch
/// size we record).
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void record(double v);
  u64 count() const { return count_.load(std::memory_order_relaxed); }

  /// Inclusive upper bound of bucket `i` (2^i; 1 for bucket 0).
  static double bucket_upper_bound(int i);
  /// Bucket index a sample lands in.
  static int bucket_index(double v);

  void reset();

 private:
  friend class Registry;

  // Sentinels at the far ends so concurrent first samples need no special
  // casing; snapshots report 0 for min/max while count_ == 0.
  static constexpr double kMinInit = 1e300;
  static constexpr double kMaxInit = -1e300;

  std::atomic<u64> count_{0};
  std::atomic<u64> buckets_[kBuckets] = {};
  // sum/min/max maintained with CAS loops (std::atomic<double> arithmetic
  // is C++20 but min/max exchange is not).
  std::atomic<double> sum_{0};
  std::atomic<double> min_{kMinInit};
  std::atomic<double> max_{kMaxInit};
};

/// Point-in-time copy of one histogram, with quantile estimation.
struct HistogramSnapshot {
  u64 count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  /// (upper_bound, samples) for every non-empty bucket, ascending.
  std::vector<std::pair<double, u64>> buckets;

  double mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
  /// Estimated quantile (q in [0,1]) by linear interpolation inside the
  /// containing bucket, clamped to [min, max].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Consistent, name-sorted view of every instrument in a registry.
struct Snapshot {
  std::vector<std::pair<std::string, u64>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  const u64* find_counter(std::string_view name) const;
  const double* find_gauge(std::string_view name) const;
  const HistogramSnapshot* find_histogram(std::string_view name) const;

  /// Render as JSON (the schema in docs/OBSERVABILITY.md). Deterministic:
  /// names are sorted and formatting is locale-independent.
  std::string to_json() const;
  /// Render as an aligned human-readable table.
  std::string to_table() const;

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// Named instrument registry. Instruments are created on first use and never
/// removed; returned references remain valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the library's instrumentation records into.
  static Registry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  Snapshot snapshot() const;

  /// Zero every instrument's value in place (registrations — and references
  /// held by callers — stay valid). Tests and benches use this to isolate
  /// measurement windows on the shared instance().
  void reset();

 private:
  mutable std::mutex mu_;
  // zkt-lint: guarded_by(mu_) name lookup and snapshot mutate/walk the maps from any thread
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  // zkt-lint: guarded_by(mu_) same registration/snapshot races as counters_
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  // zkt-lint: guarded_by(mu_) same registration/snapshot races as counters_
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace zkt::obs
