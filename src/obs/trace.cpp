#include "obs/trace.h"

namespace zkt::obs {

namespace {

thread_local ScopedSpan* t_current = nullptr;
thread_local u32 t_depth = 0;

}  // namespace

ScopedSpan::ScopedSpan(std::string_view name, Registry& registry)
    : registry_(&registry),
      path_(t_current == nullptr ? std::string(name)
                                 : t_current->path_ + "/" + std::string(name)),
      start_(std::chrono::steady_clock::now()),
      parent_(t_current) {
  t_current = this;
  ++t_depth;
}

ScopedSpan::~ScopedSpan() {
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  registry_->histogram("span." + path_ + ".ms").record(ms);
  registry_->counter("span." + path_ + ".calls").add(1);
  t_current = parent_;
  --t_depth;
}

u32 ScopedSpan::depth() { return t_depth; }

}  // namespace zkt::obs
