#include "zvm/verifier.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "zvm/image.h"
#include "zvm/prover.h"

namespace zkt::zvm {

Status Verifier::verify(const Receipt& receipt,
                        const ImageID& expected_image_id) const {
  if (receipt.claim.image_id != expected_image_id) {
    return Error{Errc::proof_invalid, "receipt is for a different image"};
  }
  // The journal is public: its digest must match the claim regardless of
  // seal kind.
  if (crypto::sha256(receipt.journal) != receipt.claim.journal_digest) {
    return Error{Errc::proof_invalid, "journal digest mismatch"};
  }
  switch (receipt.seal_kind) {
    case SealKind::composite: return verify_composite(receipt);
    case SealKind::succinct: return verify_succinct(receipt);
  }
  return Error{Errc::proof_invalid, "unknown seal kind"};
}

Status Verifier::verify_succinct(const Receipt& receipt) const {
  return receipt.succinct.check(receipt.claim.digest());
}

Status Verifier::verify_composite(const Receipt& receipt) const {
  const auto& seal = receipt.composite;
  if (seal.segments.empty()) {
    return Error{Errc::proof_invalid, "seal has no segments"};
  }
  if (seal.total_rows() != receipt.claim.cycle_count) {
    return Error{Errc::proof_invalid, "cycle count does not match trace"};
  }
  if (receipt.claim.cycle_count == 0) {
    return Error{Errc::proof_invalid, "empty trace"};
  }

  const Digest32 claim_digest = receipt.claim.digest();
  const Digest32 roots_digest = seal.roots_digest();

  for (u64 seg = 0; seg < seal.segments.size(); ++seg) {
    const auto& segment = seal.segments[seg];
    if (segment.row_count == 0) {
      return Error{Errc::proof_invalid, "empty trace segment"};
    }
    // The prover may open more rows than our policy requires, never fewer.
    const u64 required = std::min<u64>(min_queries_, segment.row_count);
    if (segment.openings.size() < required) {
      return Error{Errc::proof_invalid, "too few seal openings"};
    }

    // Recompute the Fiat–Shamir challenges; the prover cannot choose which
    // rows to open.
    const auto expect_indices = derive_query_indices(
        claim_digest, roots_digest, seg, segment.trace_root,
        segment.row_count, static_cast<u32>(segment.openings.size()));
    if (expect_indices.size() != segment.openings.size()) {
      return Error{Errc::proof_invalid, "wrong number of openings"};
    }

    for (size_t i = 0; i < segment.openings.size(); ++i) {
      const auto& opening = segment.openings[i];
      if (opening.row_index != expect_indices[i]) {
        return Error{Errc::proof_invalid, "opening index mismatch"};
      }
      // Inclusion in the committed segment.
      if (opening.proof.leaf_index != opening.row_index ||
          opening.proof.leaf_count != segment.row_count) {
        return Error{Errc::proof_invalid, "opening proof shape mismatch"};
      }
      const Digest32 leaf = crypto::MerkleTree::hash_leaf(opening.row_bytes);
      ZKT_TRY(
          crypto::MerkleTree::verify(segment.trace_root, leaf, opening.proof));

      // Row semantics.
      Reader r(opening.row_bytes);
      auto row = TraceRow::deserialize(r);
      if (!row.ok()) return row.error();
      if (!r.done()) {
        return Error{Errc::proof_invalid, "trailing bytes in trace row"};
      }
      ZKT_TRY(row.value().check());

      // Rows referencing the claim must match it.
      if (const auto* bind = std::get_if<RowBindDigest>(&row.value().op)) {
        const Digest32& expect = bind->target == BindTarget::input
                                     ? receipt.claim.input_digest
                                     : receipt.claim.journal_digest;
        if (bind->computed != expect) {
          return Error{Errc::proof_invalid, "bind row does not match claim"};
        }
      }
      if (const auto* assume = std::get_if<RowAssume>(&row.value().op)) {
        const Assumption a{assume->image_id, assume->claim_digest};
        if (std::find(receipt.claim.assumptions.begin(),
                      receipt.claim.assumptions.end(),
                      a) == receipt.claim.assumptions.end()) {
          return Error{Errc::proof_invalid, "assume row not in claim"};
        }
      }
    }
  }

  // Every claimed assumption must be backed by an embedded receipt that
  // itself verifies.
  for (const auto& assumption : receipt.claim.assumptions) {
    bool matched = false;
    for (const auto& inner : receipt.assumption_receipts) {
      if (inner.claim.image_id == assumption.image_id &&
          inner.claim.digest() == assumption.claim_digest) {
        ZKT_TRY(verify(inner, assumption.image_id));
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Error{Errc::proof_invalid, "unresolved assumption"};
    }
  }
  return {};
}

}  // namespace zkt::zvm
