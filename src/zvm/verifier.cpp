#include "zvm/verifier.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "zvm/image.h"
#include "zvm/prover.h"

namespace zkt::zvm {

void VerifiedCache::add(const Receipt& receipt) {
  by_claim_[receipt.claim.digest().bytes] = receipt.to_bytes();
}

bool VerifiedCache::contains(const Receipt& receipt) const {
  const auto it = by_claim_.find(receipt.claim.digest().bytes);
  if (it == by_claim_.end()) return false;
  // Same claim is not enough: only the byte-identical receipt was verified.
  return receipt.to_bytes() == it->second;
}

Status Verifier::verify(const Receipt& receipt,
                        const ImageID& expected_image_id,
                        const VerifyContext& context) const {
  if (context.stats != nullptr) ++context.stats->receipts;
  if (receipt.claim.image_id != expected_image_id) {
    return Error{Errc::proof_invalid, "receipt is for a different image"};
  }
  // The journal is public: its digest must match the claim regardless of
  // seal kind.
  if (crypto::sha256(receipt.journal) != receipt.claim.journal_digest) {
    return Error{Errc::proof_invalid, "journal digest mismatch"};
  }
  switch (receipt.seal_kind) {
    case SealKind::composite: return verify_composite(receipt, context);
    case SealKind::succinct: return verify_succinct(receipt);
  }
  return Error{Errc::proof_invalid, "unknown seal kind"};
}

Status Verifier::verify_succinct(const Receipt& receipt) const {
  return receipt.succinct.check(receipt.claim.digest());
}

Status Verifier::verify_composite(const Receipt& receipt,
                                  const VerifyContext& context) const {
  const auto& seal = receipt.composite;
  if (seal.segments.empty()) {
    return Error{Errc::proof_invalid, "seal has no segments"};
  }
  if (seal.total_rows() != receipt.claim.cycle_count) {
    return Error{Errc::proof_invalid, "cycle count does not match trace"};
  }
  if (receipt.claim.cycle_count == 0) {
    return Error{Errc::proof_invalid, "empty trace"};
  }

  const Digest32 claim_digest = receipt.claim.digest();
  const Digest32 roots_digest = seal.roots_digest();

  for (u64 seg = 0; seg < seal.segments.size(); ++seg) {
    const auto& segment = seal.segments[seg];
    if (segment.row_count == 0) {
      return Error{Errc::proof_invalid, "empty trace segment"};
    }
    // The prover may open more rows than our policy requires, never fewer.
    const u64 required = std::min<u64>(min_queries_, segment.row_count);
    if (segment.openings.size() < required) {
      return Error{Errc::proof_invalid, "too few seal openings"};
    }

    // Recompute the Fiat–Shamir challenges; the prover cannot choose which
    // rows to open.
    const auto expect_indices = derive_query_indices(
        claim_digest, roots_digest, seg, segment.trace_root,
        segment.row_count, static_cast<u32>(segment.openings.size()));
    if (expect_indices.size() != segment.openings.size()) {
      return Error{Errc::proof_invalid, "wrong number of openings"};
    }

    // Index and proof-shape checks for every opening first...
    for (size_t i = 0; i < segment.openings.size(); ++i) {
      const auto& opening = segment.openings[i];
      if (opening.row_index != expect_indices[i]) {
        return Error{Errc::proof_invalid, "opening index mismatch"};
      }
      if (opening.proof.leaf_index != opening.row_index ||
          opening.proof.leaf_count != segment.row_count) {
        return Error{Errc::proof_invalid, "opening proof shape mismatch"};
      }
    }

    // ...then one batched leaf hash (sha256_many lanes) and one batched
    // Merkle-path pass (hash_pairs + converging-path dedup) over the whole
    // segment, instead of per-opening hashing.
    std::vector<BytesView> row_views(segment.openings.size());
    for (size_t i = 0; i < segment.openings.size(); ++i) {
      row_views[i] = BytesView(segment.openings[i].row_bytes);
    }
    const std::vector<Digest32> leaves =
        crypto::MerkleTree::hash_leaves(row_views);
    std::vector<crypto::LeafProof> path_items(segment.openings.size());
    for (size_t i = 0; i < segment.openings.size(); ++i) {
      path_items[i] = {&leaves[i], &segment.openings[i].proof};
    }
    crypto::PathBatchStats path_stats;
    ZKT_TRY(crypto::MerkleTree::verify_batch(segment.trace_root, path_items,
                                             &path_stats));
    if (context.stats != nullptr) {
      context.stats->openings += segment.openings.size();
      context.stats->node_hashes += path_stats.node_hashes;
      context.stats->node_hashes_shared += path_stats.node_hashes_shared;
    }

    // Row semantics, in opening order.
    for (const auto& opening : segment.openings) {
      Reader r(opening.row_bytes);
      auto row = TraceRow::deserialize(r);
      if (!row.ok()) return row.error();
      if (!r.done()) {
        return Error{Errc::proof_invalid, "trailing bytes in trace row"};
      }
      ZKT_TRY(row.value().check());

      // Rows referencing the claim must match it.
      if (const auto* bind = std::get_if<RowBindDigest>(&row.value().op)) {
        const Digest32& expect = bind->target == BindTarget::input
                                     ? receipt.claim.input_digest
                                     : receipt.claim.journal_digest;
        if (bind->computed != expect) {
          return Error{Errc::proof_invalid, "bind row does not match claim"};
        }
      }
      if (const auto* assume = std::get_if<RowAssume>(&row.value().op)) {
        const Assumption a{assume->image_id, assume->claim_digest};
        if (std::find(receipt.claim.assumptions.begin(),
                      receipt.claim.assumptions.end(),
                      a) == receipt.claim.assumptions.end()) {
          return Error{Errc::proof_invalid, "assume row not in claim"};
        }
      }
    }
  }

  // Every claimed assumption must be backed by an embedded receipt that
  // itself verifies — or that the batch context already verified (a cache
  // hit requires byte-identical receipt content, so skipping is exactly
  // equivalent to re-verifying).
  for (const auto& assumption : receipt.claim.assumptions) {
    bool matched = false;
    for (const auto& inner : receipt.assumption_receipts) {
      if (inner.claim.image_id == assumption.image_id &&
          inner.claim.digest() == assumption.claim_digest) {
        if (context.cache != nullptr && context.cache->contains(inner)) {
          if (context.stats != nullptr) ++context.stats->assumptions_skipped;
        } else {
          ZKT_TRY(verify(inner, assumption.image_id, context));
        }
        matched = true;
        break;
      }
    }
    if (!matched) {
      return Error{Errc::proof_invalid, "unresolved assumption"};
    }
  }
  return {};
}

}  // namespace zkt::zvm
