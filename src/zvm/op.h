// Trace rows: the zvm's unit of provable computation.
//
// A guest execution is recorded as an ordered list of rows. Each row is
// *independently checkable*: given only the row's bytes, a verifier can
// recompute its semantics (e.g. rerun the SHA-256 compression function or the
// ALU op). The prover Merkle-commits to all rows and opens Fiat–Shamir-chosen
// ones; this mirrors how a STARK-based zkVM commits to its execution trace
// and convinces the verifier that sampled constraints hold.
//
// Row kinds:
//   sha256_compress — (state_in, block) -> state_out; the workhorse. All
//       guest hashing (input binding, Merkle checks, journal binding) lowers
//       to these, mirroring RISC Zero's SHA-256 accelerator circuit.
//   alu             — 64-bit arithmetic/logic with a recomputable result.
//   assert_true     — a condition the guest required to be nonzero.
//   assert_eq_digest— equality of two 32-byte digests.
//   bind_digest     — ties a computed digest to a claim field (input digest
//       or journal digest), so the trace is anchored to the public claim.
//   assume          — the guest verified an inner receipt (image id + claim
//       digest); mirrors RISC Zero's env::verify / assumption mechanism.
#pragma once

#include <variant>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"
#include "crypto/sha256.h"

namespace zkt::zvm {

using crypto::Digest32;

enum class OpKind : u8 {
  sha256_compress = 1,
  alu = 2,
  assert_true = 3,
  assert_eq_digest = 4,
  bind_digest = 5,
  assume = 6,
};

enum class AluOp : u8 {
  add = 1,
  sub,
  mul,
  divu,  // division by zero yields 0 (deterministic rule, checked by verifier)
  remu,  // remainder by zero yields the dividend
  and_,
  or_,
  xor_,
  shl,   // shift amount taken mod 64
  shr,
  eq,    // 1 if equal else 0
  ltu,   // unsigned less-than
};

/// Evaluate an ALU op under the zvm's deterministic semantics.
u64 alu_eval(AluOp op, u64 a, u64 b);

/// Which claim field a bind_digest row anchors to.
enum class BindTarget : u8 { input = 1, journal = 2 };

struct RowSha256 {
  crypto::Sha256State state_in;
  std::array<u8, 64> block;
  crypto::Sha256State state_out;
};

struct RowAlu {
  AluOp op;
  u64 a, b, c;
};

struct RowAssert {
  u64 cond;
  Digest32 context;  ///< hash of the guest's assertion message
};

struct RowAssertEqDigest {
  Digest32 a, b;
};

struct RowBindDigest {
  BindTarget target;
  Digest32 computed;
};

struct RowAssume {
  Digest32 image_id;
  Digest32 claim_digest;
};

struct TraceRow {
  std::variant<RowSha256, RowAlu, RowAssert, RowAssertEqDigest, RowBindDigest,
               RowAssume>
      op;

  OpKind kind() const;
  void serialize(Writer& w) const;
  static Result<TraceRow> deserialize(Reader& r);

  /// Leaf digest for the trace Merkle tree.
  Digest32 leaf_digest() const;

  /// Recheck this row's internal semantics (recompute hash/ALU, check
  /// asserted conditions). bind/assume rows are checked against the claim by
  /// the verifier separately.
  Status check() const;
};

}  // namespace zkt::zvm
