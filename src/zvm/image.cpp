#include "zvm/image.h"

#include "common/serial.h"
#include "crypto/sha256.h"

namespace zkt::zvm {

ImageID compute_image_id(std::string_view name, u32 version) {
  Writer w;
  w.str("zkt.image.v1");
  w.str(name);
  w.u32v(version);
  return crypto::sha256(w.bytes());
}

ImageRegistry& ImageRegistry::instance() {
  static ImageRegistry registry;
  return registry;
}

ImageID ImageRegistry::add(std::string name, u32 version, GuestFn fn) {
  const ImageID id = compute_image_id(name, version);
  std::lock_guard<std::mutex> lock(mutex_);
  images_[id.bytes] = Image{std::move(name), version, id, std::move(fn)};
  return id;
}

const Image* ImageRegistry::find(const ImageID& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = images_.find(id.bytes);
  return it == images_.end() ? nullptr : &it->second;
}

}  // namespace zkt::zvm
