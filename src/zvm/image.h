// Guest images: named, versioned guest programs and their identifiers.
//
// Mirrors RISC Zero's image-ID concept — the verifier pins the exact guest
// it expects by its ImageID, so a prover cannot substitute different logic.
// In RISC Zero the ID is a digest of the RISC-V ELF; here (guests are native
// C++ registered at startup) it is a digest of the (name, version) pair, and
// both sides must run the same build of the library — the standard
// assumption for a reproducible guest binary.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/digest.h"

namespace zkt::zvm {

class Env;

using GuestFn = std::function<Status(Env&)>;

using ImageID = crypto::Digest32;

/// Deterministic image identifier for a (name, version) pair.
ImageID compute_image_id(std::string_view name, u32 version);

struct Image {
  std::string name;
  u32 version = 1;
  ImageID id;
  GuestFn fn;
};

/// Process-wide registry of guest images. Thread-safe.
class ImageRegistry {
 public:
  static ImageRegistry& instance();

  /// Register a guest; returns its ImageID. Re-registering the same
  /// (name, version) replaces the function (useful in tests).
  ImageID add(std::string name, u32 version, GuestFn fn);

  /// Find an image by ID; nullptr if unknown.
  const Image* find(const ImageID& id) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::array<u8, 32>, Image> images_;
};

}  // namespace zkt::zvm
