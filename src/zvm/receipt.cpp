#include "zvm/receipt.h"

#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace zkt::zvm {

void Claim::serialize(Writer& w) const {
  w.fixed(image_id.bytes);
  w.fixed(input_digest.bytes);
  w.fixed(journal_digest.bytes);
  w.u64v(cycle_count);
  w.varint(assumptions.size());
  for (const auto& a : assumptions) {
    w.fixed(a.image_id.bytes);
    w.fixed(a.claim_digest.bytes);
  }
}

Result<Claim> Claim::deserialize(Reader& r) {
  Claim c;
  ZKT_TRY(r.fixed(c.image_id.bytes));
  ZKT_TRY(r.fixed(c.input_digest.bytes));
  ZKT_TRY(r.fixed(c.journal_digest.bytes));
  auto cycles = r.u64v();
  if (!cycles.ok()) return cycles.error();
  c.cycle_count = cycles.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > 4096) return Error{Errc::parse_error, "too many assumptions"};
  c.assumptions.resize(n.value());
  for (auto& a : c.assumptions) {
    ZKT_TRY(r.fixed(a.image_id.bytes));
    ZKT_TRY(r.fixed(a.claim_digest.bytes));
  }
  return c;
}

Digest32 Claim::digest() const {
  Writer w;
  w.str("zkt.claim.v1");
  serialize(w);
  return crypto::sha256(w.bytes());
}

void SealOpening::serialize(Writer& w) const {
  w.u64v(row_index);
  w.blob(row_bytes);
  proof.serialize(w);
}

Result<SealOpening> SealOpening::deserialize(Reader& r) {
  SealOpening o;
  auto idx = r.u64v();
  if (!idx.ok()) return idx.error();
  o.row_index = idx.value();
  auto rb = r.blob();
  if (!rb.ok()) return rb.error();
  o.row_bytes = std::move(rb.value());
  auto p = crypto::MerkleProof::deserialize(r);
  if (!p.ok()) return p.error();
  o.proof = std::move(p.value());
  return o;
}

void SegmentSeal::serialize(Writer& w) const {
  w.fixed(trace_root.bytes);
  w.u64v(row_count);
  w.varint(openings.size());
  for (const auto& o : openings) o.serialize(w);
}

Result<SegmentSeal> SegmentSeal::deserialize(Reader& r) {
  SegmentSeal s;
  ZKT_TRY(r.fixed(s.trace_root.bytes));
  auto rc = r.u64v();
  if (!rc.ok()) return rc.error();
  s.row_count = rc.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > 65536) return Error{Errc::parse_error, "too many openings"};
  s.openings.resize(n.value());
  for (auto& o : s.openings) {
    auto parsed = SealOpening::deserialize(r);
    if (!parsed.ok()) return parsed.error();
    o = std::move(parsed.value());
  }
  return s;
}

Digest32 CompositeSeal::roots_digest() const {
  crypto::Sha256 h;
  h.update("zkt.seal.roots.v1");
  const u64 count = segments.size();
  h.update(as_bytes_view(count));
  for (const auto& s : segments) {
    h.update(s.trace_root.view());
    h.update(as_bytes_view(s.row_count));
  }
  return h.finalize();
}

void CompositeSeal::serialize(Writer& w) const {
  w.varint(segments.size());
  for (const auto& s : segments) s.serialize(w);
}

Result<CompositeSeal> CompositeSeal::deserialize(Reader& r) {
  CompositeSeal seal;
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() == 0 || n.value() > 4096) {
    return Error{Errc::parse_error, "bad segment count"};
  }
  seal.segments.resize(n.value());
  for (auto& s : seal.segments) {
    auto parsed = SegmentSeal::deserialize(r);
    if (!parsed.ok()) return parsed.error();
    s = std::move(parsed.value());
  }
  return seal;
}

SuccinctSeal SuccinctSeal::wrap(const Digest32& claim_digest,
                                const Digest32& trace_root) {
  SuccinctSeal seal;
  std::copy(trace_root.bytes.begin(), trace_root.bytes.end(),
            seal.bytes.begin());

  crypto::Sha256 h;
  h.update("zkt.snark.sim.v1");
  h.update(claim_digest.view());
  h.update(trace_root.view());
  const Digest32 binding = h.finalize();
  std::copy(binding.bytes.begin(), binding.bytes.end(),
            seal.bytes.begin() + 32);

  crypto::ChaChaDrbg drbg(binding.view());
  drbg.fill(std::span<u8>(seal.bytes.data() + 64, kSuccinctSealSize - 64));
  return seal;
}

Status SuccinctSeal::check(const Digest32& claim_digest) const {
  Digest32 trace_root;
  std::copy(bytes.begin(), bytes.begin() + 32, trace_root.bytes.begin());
  const SuccinctSeal expect = wrap(claim_digest, trace_root);
  if (!ct_equal(BytesView(bytes.data(), bytes.size()),
                BytesView(expect.bytes.data(), expect.bytes.size()))) {
    return Error{Errc::proof_invalid, "succinct seal binding mismatch"};
  }
  return {};
}

void Receipt::serialize(Writer& w) const {
  w.str("ZKTR1");
  claim.serialize(w);
  w.blob(journal);
  w.u8v(static_cast<u8>(seal_kind));
  if (seal_kind == SealKind::composite) {
    composite.serialize(w);
    w.varint(assumption_receipts.size());
    for (const auto& inner : assumption_receipts) inner.serialize(w);
  } else {
    w.raw(BytesView(succinct.bytes.data(), succinct.bytes.size()));
  }
}

Result<Receipt> Receipt::deserialize(Reader& r) {
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "ZKTR1") {
    return Error{Errc::parse_error, "bad receipt magic"};
  }
  Receipt out;
  auto c = Claim::deserialize(r);
  if (!c.ok()) return c.error();
  out.claim = std::move(c.value());
  auto j = r.blob();
  if (!j.ok()) return j.error();
  out.journal = std::move(j.value());
  auto kind = r.u8v();
  if (!kind.ok()) return kind.error();
  if (kind.value() == static_cast<u8>(SealKind::composite)) {
    out.seal_kind = SealKind::composite;
    auto s = CompositeSeal::deserialize(r);
    if (!s.ok()) return s.error();
    out.composite = std::move(s.value());
    auto n = r.varint();
    if (!n.ok()) return n.error();
    if (n.value() > 1024) {
      return Error{Errc::parse_error, "too many assumption receipts"};
    }
    out.assumption_receipts.reserve(n.value());
    for (u64 i = 0; i < n.value(); ++i) {
      auto inner = Receipt::deserialize(r);
      if (!inner.ok()) return inner.error();
      out.assumption_receipts.push_back(std::move(inner.value()));
    }
  } else if (kind.value() == static_cast<u8>(SealKind::succinct)) {
    out.seal_kind = SealKind::succinct;
    auto raw = r.raw(kSuccinctSealSize);
    if (!raw.ok()) return raw.error();
    std::copy(raw.value().begin(), raw.value().end(),
              out.succinct.bytes.begin());
  } else {
    return Error{Errc::parse_error, "unknown seal kind"};
  }
  return out;
}

Bytes Receipt::to_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

Result<Receipt> Receipt::from_bytes(BytesView data) {
  Reader r(data);
  auto out = deserialize(r);
  if (!out.ok()) return out.error();
  if (!r.done()) return Error{Errc::parse_error, "trailing receipt bytes"};
  return out;
}

size_t Receipt::proof_size_bytes() const {
  return seal_kind == SealKind::succinct ? kSuccinctSealSize
                                         : seal_size_bytes();
}

size_t Receipt::seal_size_bytes() const {
  if (seal_kind == SealKind::succinct) return kSuccinctSealSize;
  Writer w;
  composite.serialize(w);
  return w.size();
}

}  // namespace zkt::zvm
