// Verifier: checks receipts without access to the private input.
//
// Composite receipts: recompute the Fiat–Shamir challenges, check every
// opened row's Merkle inclusion against the trace root and its internal
// semantics (recompute SHA-256 compressions / ALU ops, check asserts), check
// bind rows against the claim, and recursively verify assumption receipts.
//
// Succinct receipts: check the simulated SNARK seal binding (see DESIGN.md)
// and the journal digest. This is the client-side path the paper measures at
// ~3 ms regardless of entry count.
//
// Verification is the side that runs at client scale, so the composite path
// hashes in batch: opened-row leaf digests go through MerkleTree::
// hash_leaves (one sha256_many per segment) and all openings' Merkle paths
// through MerkleTree::verify_batch (level-synchronous hash_pairs with
// converging-path dedup) — the same SIMD backends the prover uses, with
// bit-identical digests and identical accept/reject decisions.
#pragma once

#include <map>

#include "zvm/image.h"
#include "zvm/receipt.h"

namespace zkt::zvm {

/// Accounting from a verification pass. All fields are cumulative across
/// every receipt (including recursively verified assumptions) checked
/// through the same VerifyContext. The obs layer sits above zvm's callers;
/// the auditor publishes these as core.auditor.* metrics.
struct VerifyStats {
  u64 receipts = 0;             ///< receipts verified (incl. assumptions)
  u64 openings = 0;             ///< composite seal openings checked
  u64 node_hashes = 0;          ///< Merkle path hashes actually computed
  u64 node_hashes_shared = 0;   ///< path hashes deduplicated across openings
  u64 assumptions_skipped = 0;  ///< assumption receipts resolved from cache

  void merge(const VerifyStats& other) {
    receipts += other.receipts;
    openings += other.openings;
    node_hashes += other.node_hashes;
    node_hashes_shared += other.node_hashes_shared;
    assumptions_skipped += other.assumptions_skipped;
  }
};

/// Receipts already verified in the current batch, keyed by claim digest.
/// Chained composite receipts embed their predecessor as an assumption
/// receipt, so a sequential chain walk verifies every round TWICE (once
/// standalone, once as the next round's assumption). A batch verifier adds
/// each accepted receipt here and the assumption pass skips re-verifying it.
///
/// A cache hit requires the embedded receipt's serialized bytes to EQUAL the
/// cached receipt's — so a hit is always equivalent to re-verifying the
/// identical receipt, and decisions match the uncached path exactly (a
/// forged seal sharing a verified claim digest is NOT resolved from cache).
/// Equality is a straight byte compare, not a digest compare: chained
/// receipts grow with the rounds they embed, and hashing them to key the
/// cache would cost more than the re-verification the cache avoids.
class VerifiedCache {
 public:
  void add(const Receipt& receipt);
  bool contains(const Receipt& receipt) const;
  size_t size() const { return by_claim_.size(); }

 private:
  /// claim digest -> the receipt's serialized bytes.
  std::map<std::array<u8, 32>, Bytes> by_claim_;
};

/// Per-call knobs for Verifier::verify. Both pointers are optional and
/// non-owning; the defaults reproduce the plain two-argument verify().
struct VerifyContext {
  const VerifiedCache* cache = nullptr;  ///< skip re-verified assumptions
  VerifyStats* stats = nullptr;          ///< accounting sink
};

class Verifier {
 public:
  /// min_queries is the verifier's own soundness policy: a composite seal
  /// must open at least min(min_queries, row_count) Fiat–Shamir-chosen rows.
  /// Without this floor a malicious prover could ship a seal with fewer
  /// (even zero) openings and trivially pass the sampled checks.
  explicit Verifier(u32 min_queries = 32) : min_queries_(min_queries) {}

  /// Verify a receipt against the image the caller expects.
  Status verify(const Receipt& receipt, const ImageID& expected_image_id) const {
    return verify(receipt, expected_image_id, VerifyContext{});
  }

  /// As above, with batch-verification context (assumption dedup cache and
  /// stats accounting). Decisions are identical for every context.
  Status verify(const Receipt& receipt, const ImageID& expected_image_id,
                const VerifyContext& context) const;

 private:
  Status verify_composite(const Receipt& receipt,
                          const VerifyContext& context) const;
  Status verify_succinct(const Receipt& receipt) const;

  u32 min_queries_;
};

}  // namespace zkt::zvm
