// Verifier: checks receipts without access to the private input.
//
// Composite receipts: recompute the Fiat–Shamir challenges, check every
// opened row's Merkle inclusion against the trace root and its internal
// semantics (recompute SHA-256 compressions / ALU ops, check asserts), check
// bind rows against the claim, and recursively verify assumption receipts.
//
// Succinct receipts: check the simulated SNARK seal binding (see DESIGN.md)
// and the journal digest. This is the client-side path the paper measures at
// ~3 ms regardless of entry count.
#pragma once

#include "zvm/image.h"
#include "zvm/receipt.h"

namespace zkt::zvm {

class Verifier {
 public:
  /// min_queries is the verifier's own soundness policy: a composite seal
  /// must open at least min(min_queries, row_count) Fiat–Shamir-chosen rows.
  /// Without this floor a malicious prover could ship a seal with fewer
  /// (even zero) openings and trivially pass the sampled checks.
  explicit Verifier(u32 min_queries = 32) : min_queries_(min_queries) {}

  /// Verify a receipt against the image the caller expects.
  Status verify(const Receipt& receipt, const ImageID& expected_image_id) const;

 private:
  Status verify_composite(const Receipt& receipt) const;
  Status verify_succinct(const Receipt& receipt) const;

  u32 min_queries_;
};

}  // namespace zkt::zvm
