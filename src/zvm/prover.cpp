#include "zvm/prover.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <string>

#include "common/thread_pool.h"
#include "crypto/sha256_backend.h"
#include "crypto/transcript.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "zvm/verifier.h"

namespace zkt::zvm {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Rows serialized and hashed per MerkleTree::hash_leaves() batch. Bounds the
/// transient serialization buffer to a few hundred KiB per worker while still
/// keeping the SIMD lanes of the batched SHA-256 backends full.
constexpr u64 kLeafBatchRows = 512;

/// crypto cannot depend on obs (layer DAG), so backend/pool activity is
/// published into the metrics registry here, by the caller.
void publish_hash_metrics(obs::Registry& metrics) {
  for (u8 b = 0; b < crypto::kSha256BackendCount; ++b) {
    const auto backend = static_cast<crypto::Sha256Backend>(b);
    const auto stats = crypto::sha256_backend_stats(backend);
    if (stats.batches == 0) continue;
    const std::string name = crypto::sha256_backend_name(backend);
    metrics.gauge("crypto.sha256.blocks." + name)
        .set(static_cast<double>(stats.blocks));
    metrics.gauge("crypto.sha256.batches." + name)
        .set(static_cast<double>(stats.batches));
  }
  const auto& pool = common::ThreadPool::shared();
  metrics.gauge("common.pool.threads")
      .set(static_cast<double>(pool.thread_count()));
  metrics.gauge("common.pool.queue_depth")
      .set(static_cast<double>(pool.queue_depth()));
  metrics.gauge("common.pool.tasks_executed")
      .set(static_cast<double>(pool.tasks_executed()));
}

}  // namespace

std::vector<u64> derive_query_indices(const Digest32& claim_digest,
                                      const Digest32& roots_digest,
                                      u64 segment_index,
                                      const Digest32& segment_root,
                                      u64 row_count, u32 num_queries) {
  const u64 count = std::min<u64>(num_queries, row_count);
  std::vector<u64> indices;
  indices.reserve(count);
  crypto::Transcript transcript("zkt.zvm.seal.v2");
  transcript.absorb("claim", claim_digest);
  transcript.absorb("roots", roots_digest);
  transcript.absorb_u64("segment", segment_index);
  transcript.absorb("segment_root", segment_root);
  transcript.absorb_u64("rows", row_count);
  // Dedup against a sorted shadow vector (O(log n) membership) instead of a
  // linear std::find per candidate; `indices` itself keeps draw order so the
  // transcript-derived opening sequence — and thus receipt bytes — are
  // unchanged.
  std::vector<u64> sorted;
  sorted.reserve(count);
  while (indices.size() < count) {
    const u64 idx = transcript.challenge_index("query", row_count);
    const auto pos = std::lower_bound(sorted.begin(), sorted.end(), idx);
    if (pos != sorted.end() && *pos == idx) continue;
    sorted.insert(pos, idx);
    indices.push_back(idx);
  }
  return indices;
}

Result<Receipt> Prover::prove(const ImageID& image_id, BytesView input,
                              const ProveOptions& options,
                              ProveInfo* info) const {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan prove_span("prove");
  std::optional<obs::ScopedSpan> phase;

  const Image* image = registry_->find(image_id);
  if (image == nullptr) {
    return Error{Errc::not_found, "unknown image id"};
  }
  if (options.max_segment_rows == 0) {
    return Error{Errc::invalid_argument, "max_segment_rows must be > 0"};
  }

  // Assumption receipts must themselves verify before the guest may rely on
  // them (mirrors RISC Zero resolving assumptions at prove time). The
  // prover's own policy follows its configured opening count, so chains
  // built with a consistent num_queries setting self-verify.
  Verifier verifier(options.num_queries);
  for (const auto& inner : options.assumptions) {
    ZKT_TRY(verifier.verify(inner, inner.claim.image_id));
  }

  phase.emplace("execute");
  Env env(input, options.assumptions);
  Claim claim;
  claim.image_id = image_id;
  claim.input_digest = env.bind_input();

  if (auto guest = image->fn(env); !guest.ok()) {
    metrics.counter("zvm.prover.guest_aborts").add(1);
    return guest.error();
  }
  env.end_region();  // close any region the guest left open

  claim.journal_digest = env.bind_journal();
  claim.cycle_count = env.cycles();
  claim.assumptions = env.assumptions();
  phase.reset();

  const double execute_ms = ms_since(start);
  const auto commit_start = std::chrono::steady_clock::now();
  phase.emplace("commit");

  const auto& trace = env.trace();
  u64 sha_rows = 0;
  for (const auto& row : trace) {
    if (row.kind() == OpKind::sha256_compress) ++sha_rows;
  }

  // Split into segments and commit each on the shared bounded pool. Leaves
  // are hashed streaming-style: rows are serialized in small batches into a
  // per-segment scratch buffer that is reused, so peak memory is
  // O(kLeafBatchRows * row_size) per worker instead of one retained copy of
  // the entire serialized trace. Rows needed for Fiat–Shamir openings are
  // re-serialized later (serialization is deterministic).
  const u64 total_rows = trace.size();
  const u64 segment_count =
      std::max<u64>(1, (total_rows + options.max_segment_rows - 1) /
                           options.max_segment_rows);
  std::vector<crypto::MerkleTree> trees(segment_count);
  std::vector<u64> seg_start(segment_count), seg_rows(segment_count);
  {
    obs::Histogram& segment_commit_ms =
        metrics.histogram("zvm.prover.segment_commit_ms");
    obs::Histogram& leaf_batch_rows =
        metrics.histogram("zvm.prover.leaf_batch_rows");
    // zkt-lint: shared(writes only segment seg's disjoint slots of trees/seg_start/seg_rows; histogram records are atomic)
    auto build_segment = [&](u64 seg) {
      const auto seg_begin_time = std::chrono::steady_clock::now();
      const u64 begin = seg * options.max_segment_rows;
      const u64 end = std::min(total_rows, begin + options.max_segment_rows);
      seg_start[seg] = begin;
      seg_rows[seg] = end - begin;
      std::vector<Digest32> leaves;
      leaves.reserve(end - begin);
      std::vector<size_t> offsets;
      std::vector<BytesView> views;
      for (u64 batch = begin; batch < end; batch += kLeafBatchRows) {
        const u64 batch_end = std::min(end, batch + kLeafBatchRows);
        Writer scratch;
        offsets.clear();
        for (u64 i = batch; i < batch_end; ++i) {
          offsets.push_back(scratch.bytes().size());
          trace[i].serialize(scratch);
        }
        offsets.push_back(scratch.bytes().size());
        // Views are taken only once the batch buffer has stopped growing.
        const Bytes& buf = scratch.bytes();
        views.clear();
        for (size_t i = 0; i + 1 < offsets.size(); ++i) {
          views.emplace_back(buf.data() + offsets[i],
                             offsets[i + 1] - offsets[i]);
        }
        auto digests = crypto::MerkleTree::hash_leaves(views);
        leaves.insert(leaves.end(), digests.begin(), digests.end());
        leaf_batch_rows.record(static_cast<double>(views.size()));
      }
      trees[seg] = crypto::MerkleTree(std::move(leaves));
      segment_commit_ms.record(ms_since(seg_begin_time));
    };
    if (segment_count > 1) {
      common::ThreadPool::shared().parallel_for(
          segment_count, 1,
          [&](size_t first, size_t last) {
            for (size_t seg = first; seg < last; ++seg) build_segment(seg);
          });
    } else {
      build_segment(0);
    }
  }

  Receipt receipt;
  receipt.claim = claim;
  receipt.journal = env.journal();
  receipt.seal_kind = SealKind::composite;
  receipt.assumption_receipts = options.assumptions;
  receipt.composite.segments.resize(segment_count);
  for (u64 seg = 0; seg < segment_count; ++seg) {
    receipt.composite.segments[seg].trace_root = trees[seg].root();
    receipt.composite.segments[seg].row_count = seg_rows[seg];
  }

  // Fiat–Shamir challenges bind the full root list, then open per segment.
  phase.reset();
  phase.emplace("fs_open");
  const auto fs_start = std::chrono::steady_clock::now();
  const Digest32 claim_digest = claim.digest();
  const Digest32 roots_digest = receipt.composite.roots_digest();
  for (u64 seg = 0; seg < segment_count; ++seg) {
    auto& segment = receipt.composite.segments[seg];
    const auto indices =
        derive_query_indices(claim_digest, roots_digest, seg,
                             segment.trace_root, segment.row_count,
                             options.num_queries);
    segment.openings.reserve(indices.size());
    for (u64 idx : indices) {
      SealOpening opening;
      opening.row_index = idx;
      Writer w;
      trace[seg_start[seg] + idx].serialize(w);
      opening.row_bytes = std::move(w).take();
      opening.proof = trees[seg].prove(idx);
      segment.openings.push_back(std::move(opening));
    }
  }
  metrics.histogram("zvm.prover.fs_derive_ms").record(ms_since(fs_start));
  phase.reset();

  if (options.seal_kind == SealKind::succinct) {
    phase.emplace("wrap");
    // Wrap: self-verify the composite receipt, then emit the constant-size
    // seal. Assumptions are resolved by this step (their receipts were
    // verified above and the wrapper attests to the whole tree).
    ZKT_TRY(verifier.verify(receipt, image_id));
    Receipt wrapped;
    wrapped.claim = receipt.claim;
    wrapped.journal = std::move(receipt.journal);
    wrapped.seal_kind = SealKind::succinct;
    wrapped.succinct = SuccinctSeal::wrap(claim_digest, roots_digest);
    receipt = std::move(wrapped);
    phase.reset();
  }

  metrics.counter("zvm.prover.proofs").add(1);
  metrics.counter("zvm.prover.cycles").add(claim.cycle_count);
  metrics.counter("zvm.prover.sha_rows").add(sha_rows);
  metrics.counter("zvm.prover.segments").add(segment_count);
  metrics.histogram("zvm.prover.execute_ms").record(execute_ms);
  metrics.histogram("zvm.prover.commit_ms").record(ms_since(commit_start));
  metrics.histogram("zvm.prover.total_ms").record(ms_since(start));
  publish_hash_metrics(metrics);

  if (info != nullptr) {
    info->cycles = claim.cycle_count;
    info->sha_rows = sha_rows;
    info->segments = segment_count;
    info->execute_ms = execute_ms;
    info->commit_ms = ms_since(commit_start);
    info->total_ms = ms_since(start);
    info->regions = env.region_cycles();
  }
  return receipt;
}

}  // namespace zkt::zvm
