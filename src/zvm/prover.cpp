#include "zvm/prover.h"

#include <chrono>
#include <optional>
#include <thread>

#include "crypto/transcript.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "zvm/verifier.h"

namespace zkt::zvm {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::vector<u64> derive_query_indices(const Digest32& claim_digest,
                                      const Digest32& roots_digest,
                                      u64 segment_index,
                                      const Digest32& segment_root,
                                      u64 row_count, u32 num_queries) {
  const u64 count = std::min<u64>(num_queries, row_count);
  std::vector<u64> indices;
  indices.reserve(count);
  crypto::Transcript transcript("zkt.zvm.seal.v2");
  transcript.absorb("claim", claim_digest);
  transcript.absorb("roots", roots_digest);
  transcript.absorb_u64("segment", segment_index);
  transcript.absorb("segment_root", segment_root);
  transcript.absorb_u64("rows", row_count);
  while (indices.size() < count) {
    const u64 idx = transcript.challenge_index("query", row_count);
    if (std::find(indices.begin(), indices.end(), idx) == indices.end()) {
      indices.push_back(idx);
    }
  }
  return indices;
}

Result<Receipt> Prover::prove(const ImageID& image_id, BytesView input,
                              const ProveOptions& options,
                              ProveInfo* info) const {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan prove_span("prove");
  std::optional<obs::ScopedSpan> phase;

  const Image* image = registry_->find(image_id);
  if (image == nullptr) {
    return Error{Errc::not_found, "unknown image id"};
  }
  if (options.max_segment_rows == 0) {
    return Error{Errc::invalid_argument, "max_segment_rows must be > 0"};
  }

  // Assumption receipts must themselves verify before the guest may rely on
  // them (mirrors RISC Zero resolving assumptions at prove time). The
  // prover's own policy follows its configured opening count, so chains
  // built with a consistent num_queries setting self-verify.
  Verifier verifier(options.num_queries);
  for (const auto& inner : options.assumptions) {
    ZKT_TRY(verifier.verify(inner, inner.claim.image_id));
  }

  phase.emplace("execute");
  Env env(input, options.assumptions);
  Claim claim;
  claim.image_id = image_id;
  claim.input_digest = env.bind_input();

  if (auto guest = image->fn(env); !guest.ok()) {
    metrics.counter("zvm.prover.guest_aborts").add(1);
    return guest.error();
  }
  env.end_region();  // close any region the guest left open

  claim.journal_digest = env.bind_journal();
  claim.cycle_count = env.cycles();
  claim.assumptions = env.assumptions();
  phase.reset();

  const double execute_ms = ms_since(start);
  const auto commit_start = std::chrono::steady_clock::now();
  phase.emplace("commit");

  // Serialize rows once; segments index into this.
  const auto& trace = env.trace();
  std::vector<Bytes> row_bytes;
  row_bytes.reserve(trace.size());
  u64 sha_rows = 0;
  for (const auto& row : trace) {
    Writer w;
    row.serialize(w);
    row_bytes.push_back(std::move(w).take());
    if (row.kind() == OpKind::sha256_compress) ++sha_rows;
  }

  // Split into segments and commit each (in parallel when several).
  const u64 total_rows = trace.size();
  const u64 segment_count =
      std::max<u64>(1, (total_rows + options.max_segment_rows - 1) /
                           options.max_segment_rows);
  std::vector<crypto::MerkleTree> trees(segment_count);
  std::vector<u64> seg_start(segment_count), seg_rows(segment_count);
  {
    obs::Histogram& segment_commit_ms =
        metrics.histogram("zvm.prover.segment_commit_ms");
    auto build_segment = [&](u64 seg) {
      const auto seg_begin_time = std::chrono::steady_clock::now();
      const u64 begin = seg * options.max_segment_rows;
      const u64 end = std::min(total_rows, begin + options.max_segment_rows);
      seg_start[seg] = begin;
      seg_rows[seg] = end - begin;
      std::vector<Digest32> leaves;
      leaves.reserve(end - begin);
      for (u64 i = begin; i < end; ++i) {
        leaves.push_back(crypto::MerkleTree::hash_leaf(row_bytes[i]));
      }
      trees[seg] = crypto::MerkleTree(std::move(leaves));
      segment_commit_ms.record(ms_since(seg_begin_time));
    };
    if (segment_count > 1) {
      std::vector<std::thread> workers;
      workers.reserve(segment_count);
      for (u64 seg = 0; seg < segment_count; ++seg) {
        workers.emplace_back(build_segment, seg);
      }
      for (auto& w : workers) w.join();
    } else {
      build_segment(0);
    }
  }

  Receipt receipt;
  receipt.claim = claim;
  receipt.journal = env.journal();
  receipt.seal_kind = SealKind::composite;
  receipt.assumption_receipts = options.assumptions;
  receipt.composite.segments.resize(segment_count);
  for (u64 seg = 0; seg < segment_count; ++seg) {
    receipt.composite.segments[seg].trace_root = trees[seg].root();
    receipt.composite.segments[seg].row_count = seg_rows[seg];
  }

  // Fiat–Shamir challenges bind the full root list, then open per segment.
  phase.reset();
  phase.emplace("fs_open");
  const auto fs_start = std::chrono::steady_clock::now();
  const Digest32 claim_digest = claim.digest();
  const Digest32 roots_digest = receipt.composite.roots_digest();
  for (u64 seg = 0; seg < segment_count; ++seg) {
    auto& segment = receipt.composite.segments[seg];
    const auto indices =
        derive_query_indices(claim_digest, roots_digest, seg,
                             segment.trace_root, segment.row_count,
                             options.num_queries);
    segment.openings.reserve(indices.size());
    for (u64 idx : indices) {
      SealOpening opening;
      opening.row_index = idx;
      opening.row_bytes = row_bytes[seg_start[seg] + idx];
      opening.proof = trees[seg].prove(idx);
      segment.openings.push_back(std::move(opening));
    }
  }
  metrics.histogram("zvm.prover.fs_derive_ms").record(ms_since(fs_start));
  phase.reset();

  if (options.seal_kind == SealKind::succinct) {
    phase.emplace("wrap");
    // Wrap: self-verify the composite receipt, then emit the constant-size
    // seal. Assumptions are resolved by this step (their receipts were
    // verified above and the wrapper attests to the whole tree).
    ZKT_TRY(verifier.verify(receipt, image_id));
    Receipt wrapped;
    wrapped.claim = receipt.claim;
    wrapped.journal = std::move(receipt.journal);
    wrapped.seal_kind = SealKind::succinct;
    wrapped.succinct = SuccinctSeal::wrap(claim_digest, roots_digest);
    receipt = std::move(wrapped);
    phase.reset();
  }

  metrics.counter("zvm.prover.proofs").add(1);
  metrics.counter("zvm.prover.cycles").add(claim.cycle_count);
  metrics.counter("zvm.prover.sha_rows").add(sha_rows);
  metrics.counter("zvm.prover.segments").add(segment_count);
  metrics.histogram("zvm.prover.execute_ms").record(execute_ms);
  metrics.histogram("zvm.prover.commit_ms").record(ms_since(commit_start));
  metrics.histogram("zvm.prover.total_ms").record(ms_since(start));

  if (info != nullptr) {
    info->cycles = claim.cycle_count;
    info->sha_rows = sha_rows;
    info->segments = segment_count;
    info->execute_ms = execute_ms;
    info->commit_ms = ms_since(commit_start);
    info->total_ms = ms_since(start);
    info->regions = env.region_cycles();
  }
  return receipt;
}

}  // namespace zkt::zvm
