// Receipts: the zvm's verifiable output object, mirroring RISC Zero's
// receipt = (journal, seal) structure.
//
//   Claim    — public statement: which image ran, digests binding the private
//              input and the public journal, cycle count, and any assumptions
//              (inner receipts the guest verified).
//   Seal     — the cryptographic argument. Two kinds:
//                composite: trace Merkle root + Fiat–Shamir-sampled row
//                           openings (grows ~ queries × log(rows));
//                succinct:  constant 256 bytes, simulating the Groth16
//                           wrapping RISC Zero applies to compress composite
//                           receipts (see DESIGN.md for the soundness caveat).
//   Receipt  — claim + journal + seal (+ embedded assumption receipts in
//              composite mode).
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"
#include "crypto/merkle.h"
#include "zvm/op.h"

namespace zkt::zvm {

struct Assumption {
  Digest32 image_id;
  Digest32 claim_digest;

  friend bool operator==(const Assumption&, const Assumption&) = default;
};

struct Claim {
  Digest32 image_id;
  Digest32 input_digest;    ///< SHA-256 over the (private) guest input
  Digest32 journal_digest;  ///< SHA-256 over the (public) journal bytes
  u64 cycle_count = 0;      ///< trace rows executed
  std::vector<Assumption> assumptions;

  void serialize(Writer& w) const;
  static Result<Claim> deserialize(Reader& r);

  /// Canonical digest binding every claim field.
  Digest32 digest() const;
};

enum class SealKind : u8 { composite = 1, succinct = 2 };

/// One opened trace row: its index, serialized bytes, and inclusion proof
/// against the trace root.
struct SealOpening {
  u64 row_index = 0;
  Bytes row_bytes;
  crypto::MerkleProof proof;

  void serialize(Writer& w) const;
  static Result<SealOpening> deserialize(Reader& r);
};

/// One trace segment's commitment and openings. Long executions are split
/// into segments (RISC Zero's "continuations"): each segment is Merkle-
/// committed and opened independently, so segments can be proven on
/// parallel workers and memory stays bounded regardless of trace length.
struct SegmentSeal {
  Digest32 trace_root;
  u64 row_count = 0;
  std::vector<SealOpening> openings;

  void serialize(Writer& w) const;
  static Result<SegmentSeal> deserialize(Reader& r);
};

struct CompositeSeal {
  std::vector<SegmentSeal> segments;

  u64 total_rows() const {
    u64 total = 0;
    for (const auto& s : segments) total += s.row_count;
    return total;
  }

  /// Digest binding every segment root (what the succinct wrapper signs
  /// over and what anchors the Fiat–Shamir challenges across segments).
  Digest32 roots_digest() const;

  void serialize(Writer& w) const;
  static Result<CompositeSeal> deserialize(Reader& r);
};

/// Fixed-size simulated SNARK seal. Layout:
///   [0,32)    trace root
///   [32,64)   binding = SHA-256("zkt.snark.sim.v1" || claim digest || root)
///   [64,256)  deterministic filler derived from the binding
inline constexpr size_t kSuccinctSealSize = 256;

struct SuccinctSeal {
  std::array<u8, kSuccinctSealSize> bytes{};

  static SuccinctSeal wrap(const Digest32& claim_digest,
                           const Digest32& trace_root);
  Status check(const Digest32& claim_digest) const;
};

struct Receipt {
  Claim claim;
  Bytes journal;
  SealKind seal_kind = SealKind::composite;
  CompositeSeal composite;   ///< valid when seal_kind == composite
  SuccinctSeal succinct;     ///< valid when seal_kind == succinct
  /// Inner receipts backing claim.assumptions (composite mode; succinct
  /// wrapping resolves/drops them, as in RISC Zero).
  std::vector<Receipt> assumption_receipts;

  void serialize(Writer& w) const;
  static Result<Receipt> deserialize(Reader& r);
  Bytes to_bytes() const;
  static Result<Receipt> from_bytes(BytesView data);

  /// "Proof" size as reported in the paper's Table 1: the constant-size
  /// SNARK proof for succinct seals, or the full seal size for composites.
  size_t proof_size_bytes() const;
  /// Seal size (proof + public trace commitment metadata).
  size_t seal_size_bytes() const;
  /// Full serialized receipt size.
  size_t receipt_size_bytes() const { return to_bytes().size(); }
};

}  // namespace zkt::zvm
