#include "zvm/op.h"

#include "crypto/merkle.h"

namespace zkt::zvm {

u64 alu_eval(AluOp op, u64 a, u64 b) {
  switch (op) {
    case AluOp::add: return a + b;
    case AluOp::sub: return a - b;
    case AluOp::mul: return a * b;
    case AluOp::divu: return b == 0 ? 0 : a / b;
    case AluOp::remu: return b == 0 ? a : a % b;
    case AluOp::and_: return a & b;
    case AluOp::or_: return a | b;
    case AluOp::xor_: return a ^ b;
    case AluOp::shl: return a << (b & 63);
    case AluOp::shr: return a >> (b & 63);
    case AluOp::eq: return a == b ? 1 : 0;
    case AluOp::ltu: return a < b ? 1 : 0;
  }
  return 0;
}

OpKind TraceRow::kind() const {
  return static_cast<OpKind>(op.index() + 1);
}

namespace {

void write_state(Writer& w, const crypto::Sha256State& s) {
  for (u32 word : s.h) w.u32v(word);
}

Result<crypto::Sha256State> read_state(Reader& r) {
  crypto::Sha256State s;
  for (auto& word : s.h) {
    auto v = r.u32v();
    if (!v.ok()) return v.error();
    word = v.value();
  }
  return s;
}

}  // namespace

void TraceRow::serialize(Writer& w) const {
  w.u8v(static_cast<u8>(kind()));
  std::visit(
      [&w](const auto& row) {
        using T = std::decay_t<decltype(row)>;
        if constexpr (std::is_same_v<T, RowSha256>) {
          write_state(w, row.state_in);
          w.fixed(row.block);
          write_state(w, row.state_out);
        } else if constexpr (std::is_same_v<T, RowAlu>) {
          w.u8v(static_cast<u8>(row.op));
          w.u64v(row.a);
          w.u64v(row.b);
          w.u64v(row.c);
        } else if constexpr (std::is_same_v<T, RowAssert>) {
          w.u64v(row.cond);
          w.fixed(row.context.bytes);
        } else if constexpr (std::is_same_v<T, RowAssertEqDigest>) {
          w.fixed(row.a.bytes);
          w.fixed(row.b.bytes);
        } else if constexpr (std::is_same_v<T, RowBindDigest>) {
          w.u8v(static_cast<u8>(row.target));
          w.fixed(row.computed.bytes);
        } else if constexpr (std::is_same_v<T, RowAssume>) {
          w.fixed(row.image_id.bytes);
          w.fixed(row.claim_digest.bytes);
        }
      },
      op);
}

Result<TraceRow> TraceRow::deserialize(Reader& r) {
  auto kind_byte = r.u8v();
  if (!kind_byte.ok()) return kind_byte.error();
  TraceRow row;
  switch (static_cast<OpKind>(kind_byte.value())) {
    case OpKind::sha256_compress: {
      RowSha256 x;
      auto sin = read_state(r);
      if (!sin.ok()) return sin.error();
      x.state_in = sin.value();
      ZKT_TRY(r.fixed(x.block));
      auto sout = read_state(r);
      if (!sout.ok()) return sout.error();
      x.state_out = sout.value();
      row.op = x;
      return row;
    }
    case OpKind::alu: {
      RowAlu x;
      auto opb = r.u8v();
      if (!opb.ok()) return opb.error();
      x.op = static_cast<AluOp>(opb.value());
      if (opb.value() < 1 || opb.value() > static_cast<u8>(AluOp::ltu)) {
        return Error{Errc::parse_error, "bad alu op"};
      }
      auto a = r.u64v(), b = r.u64v(), c = r.u64v();
      if (!a.ok()) return a.error();
      if (!b.ok()) return b.error();
      if (!c.ok()) return c.error();
      x.a = a.value();
      x.b = b.value();
      x.c = c.value();
      row.op = x;
      return row;
    }
    case OpKind::assert_true: {
      RowAssert x;
      auto cond = r.u64v();
      if (!cond.ok()) return cond.error();
      x.cond = cond.value();
      ZKT_TRY(r.fixed(x.context.bytes));
      row.op = x;
      return row;
    }
    case OpKind::assert_eq_digest: {
      RowAssertEqDigest x;
      ZKT_TRY(r.fixed(x.a.bytes));
      ZKT_TRY(r.fixed(x.b.bytes));
      row.op = x;
      return row;
    }
    case OpKind::bind_digest: {
      RowBindDigest x;
      auto t = r.u8v();
      if (!t.ok()) return t.error();
      if (t.value() != 1 && t.value() != 2) {
        return Error{Errc::parse_error, "bad bind target"};
      }
      x.target = static_cast<BindTarget>(t.value());
      ZKT_TRY(r.fixed(x.computed.bytes));
      row.op = x;
      return row;
    }
    case OpKind::assume: {
      RowAssume x;
      ZKT_TRY(r.fixed(x.image_id.bytes));
      ZKT_TRY(r.fixed(x.claim_digest.bytes));
      row.op = x;
      return row;
    }
  }
  return Error{Errc::parse_error, "unknown trace row kind"};
}

Digest32 TraceRow::leaf_digest() const {
  Writer w;
  serialize(w);
  return crypto::MerkleTree::hash_leaf(w.bytes());
}

Status TraceRow::check() const {
  return std::visit(
      [](const auto& row) -> Status {
        using T = std::decay_t<decltype(row)>;
        if constexpr (std::is_same_v<T, RowSha256>) {
          if (crypto::sha256_compress(row.state_in, row.block) !=
              row.state_out) {
            return Error{Errc::proof_invalid, "sha256 row mismatch"};
          }
        } else if constexpr (std::is_same_v<T, RowAlu>) {
          if (alu_eval(row.op, row.a, row.b) != row.c) {
            return Error{Errc::proof_invalid, "alu row mismatch"};
          }
        } else if constexpr (std::is_same_v<T, RowAssert>) {
          if (row.cond == 0) {
            return Error{Errc::proof_invalid, "asserted condition is false"};
          }
        } else if constexpr (std::is_same_v<T, RowAssertEqDigest>) {
          if (row.a != row.b) {
            return Error{Errc::proof_invalid, "digest equality assert failed"};
          }
        }
        // bind_digest / assume rows carry claims checked by the verifier
        // against the receipt claim; internally they are always consistent.
        return Status::Ok();
      },
      op);
}

}  // namespace zkt::zvm
