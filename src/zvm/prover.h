// Prover: executes a guest image over private input and produces a Receipt.
//
// Pipeline (mirrors a zkVM prover):
//   1. bind the private input into the claim (traced hashing),
//   2. execute the guest, recording the operation trace,
//   3. bind the public journal into the claim,
//   4. Merkle-commit to the trace,
//   5. derive Fiat–Shamir query indices and open those rows,
//   6. optionally wrap the composite seal into a constant-size succinct seal.
//
// A guest abort (failed assertion — e.g. an RLog hash mismatch during
// aggregation) aborts proving with the guest's error: tampered data makes
// proof generation fail, exactly the behaviour the paper's §5/§6 describe.
#pragma once

#include "zvm/env.h"
#include "zvm/image.h"
#include "zvm/receipt.h"

namespace zkt::zvm {

struct ProveOptions {
  SealKind seal_kind = SealKind::succinct;
  /// Number of Fiat–Shamir row openings per trace segment.
  u32 num_queries = 32;
  /// Maximum rows per trace segment (the continuation size). Long guests
  /// are split into ceil(rows / max_segment_rows) segments, each committed
  /// and opened independently (and in parallel when there are several).
  u64 max_segment_rows = 1ULL << 14;
  /// Receipts backing the guest's verify_assumption calls.
  std::vector<Receipt> assumptions;
};

struct ProveInfo {
  u64 cycles = 0;        ///< trace rows (the zvm cost unit)
  u64 sha_rows = 0;      ///< SHA-256 compression rows
  u64 segments = 0;      ///< trace segments sealed
  double execute_ms = 0; ///< guest execution + trace recording
  double commit_ms = 0;  ///< trace Merkle commitment + openings
  double total_ms = 0;
  /// Per-phase cycle attribution from the guest's profiling regions
  /// (first-seen order; cycles outside any region are not listed).
  std::vector<std::pair<std::string, u64>> regions;

  /// STARK-equivalent cost estimate: a SHA-256 compression circuit costs
  /// ~68 RISC-V-cycle-equivalents in provers like RISC Zero, while our
  /// trace charges every row equally. This reweights accordingly, which is
  /// the right unit when comparing against the paper's proving times.
  u64 weighted_cycles() const {
    return sha_rows * 68 + (cycles - sha_rows);
  }
};

class Prover {
 public:
  explicit Prover(const ImageRegistry& registry = ImageRegistry::instance())
      : registry_(&registry) {}

  Result<Receipt> prove(const ImageID& image_id, BytesView input,
                        const ProveOptions& options = {},
                        ProveInfo* info = nullptr) const;

 private:
  const ImageRegistry* registry_;
};

/// Derive the Fiat–Shamir row-query indices for one trace segment. The
/// challenges bind the claim, the digest of ALL segment roots, this
/// segment's index and its own root — so no segment's openings can be
/// recomputed without fixing the whole seal first. Shared between prover
/// and verifier so challenges are reproducible.
std::vector<u64> derive_query_indices(const Digest32& claim_digest,
                                      const Digest32& roots_digest,
                                      u64 segment_index,
                                      const Digest32& segment_root,
                                      u64 row_count, u32 num_queries);

}  // namespace zkt::zvm
