// Env — the guest's window onto the zkVM, mirroring RISC Zero's guest env:
//
//   env::read / env::commit        -> Env::read_* / Env::commit_*
//   SHA-256 accelerator            -> Env::sha256 (one trace row per
//                                     compression call)
//   env::verify (assumptions)      -> Env::verify_assumption
//
// Every provable operation appends a TraceRow; the final trace is what the
// prover commits to and the verifier samples. Reads consume the private
// input stream (already bound to the claim by traced hashing); commits
// append to the public journal.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/merkle.h"
#include "zvm/op.h"
#include "zvm/receipt.h"

namespace zkt::zvm {

class Env {
 public:
  /// Host-side: construct over the guest input and the receipts backing any
  /// assumptions the guest will make.
  Env(BytesView input, std::span<const Receipt> assumption_receipts);

  // ---- Input (private) ----
  Result<u8> read_u8();
  Result<u32> read_u32();
  Result<u64> read_u64();
  Result<u64> read_varint();
  Result<Bytes> read_blob();
  Result<Bytes> read_bytes(size_t n);
  Result<Digest32> read_digest();
  Result<std::string> read_string();
  size_t input_remaining() const;

  // ---- Journal (public output) ----
  void commit_u8(u8 v);
  void commit_u32(u32 v);
  void commit_u64(u64 v);
  void commit_blob(BytesView data);
  void commit_digest(const Digest32& d);
  void commit_string(std::string_view s);
  /// Append pre-framed bytes verbatim (for canonical journal structs).
  void commit_raw(BytesView data);
  const Bytes& journal() const { return journal_.bytes(); }

  // ---- Provable computation ----
  /// SHA-256 with traced compression rows.
  Digest32 sha256(BytesView data);
  /// Traced Merkle node hash (domain-separated pair hash).
  Digest32 hash_node(const Digest32& left, const Digest32& right);
  /// Traced Merkle leaf hash.
  Digest32 hash_leaf(BytesView data);
  /// Traced ALU operation.
  u64 alu(AluOp op, u64 a, u64 b);
  /// Traced assertion; returns guest_abort if cond is false.
  Status assert_true(bool cond, std::string_view context);
  /// Traced digest equality assertion.
  Status assert_eq(const Digest32& a, const Digest32& b,
                   std::string_view context);
  /// Traced Merkle inclusion verification (lowering to hash + assert rows).
  Status verify_merkle(const Digest32& root, const Digest32& leaf,
                       const crypto::MerkleProof& proof);
  /// Traced batch inclusion verification (shared-path multiproof); `leaves`
  /// must be (index, digest) pairs sorted strictly ascending by index.
  Status verify_merkle_multi(
      const Digest32& root,
      std::span<const std::pair<u64, Digest32>> leaves,
      const crypto::MerkleMultiProof& proof);
  /// Record that this guest relies on an inner receipt with the given image
  /// and claim digest. The host must have supplied a matching (already
  /// proven) receipt, else this fails.
  Status verify_assumption(const Digest32& image_id,
                           const Digest32& claim_digest);

  /// Trace rows executed so far (the zvm's cycle counter).
  u64 cycles() const { return trace_.size(); }

  // ---- Profiling regions (host-side metadata, not part of the proof) ----
  /// Attribute subsequent cycles to a named region until end_region().
  /// Regions may repeat (cycles accumulate) but do not nest. This is how
  /// the guests expose the per-phase cost breakdown the paper profiles
  /// ("the majority of overhead stems from Merkle tree updates").
  void begin_region(std::string_view name);
  void end_region();
  /// Accumulated (region name -> cycles), in first-seen order.
  const std::vector<std::pair<std::string, u64>>& region_cycles() const {
    return regions_;
  }

  // ---- Host-side hooks (used by the Prover) ----
  /// Hash the full input with traced rows and a bind row; returns the digest.
  Digest32 bind_input();
  /// Hash the journal with traced rows and a bind row; returns the digest.
  Digest32 bind_journal();
  const std::vector<TraceRow>& trace() const { return trace_; }
  const std::vector<Assumption>& assumptions() const { return assumptions_; }

 private:
  Digest32 traced_sha256_with_prefix(u8 tag, bool use_tag, BytesView a,
                                     BytesView b);

  Bytes input_;
  Reader reader_;
  Writer journal_;
  std::vector<TraceRow> trace_;
  std::vector<Assumption> assumptions_;
  std::span<const Receipt> assumption_receipts_;
  std::vector<std::pair<std::string, u64>> regions_;
  std::optional<std::pair<std::string, u64>> open_region_;  // (name, start)
};

namespace guest {
/// Convenience wrapper: standard result pattern for guests that read a
/// (root, leaf, proof) triple from the input stream and verify inclusion.
Status read_and_verify_merkle(Env& env, const Digest32& root);
}  // namespace guest

}  // namespace zkt::zvm
