#include "zvm/env.h"

#include <bit>

#include "crypto/sha256.h"

namespace zkt::zvm {

Env::Env(BytesView input, std::span<const Receipt> assumption_receipts)
    : input_(input.begin(), input.end()),
      reader_(BytesView(input_.data(), input_.size())),
      assumption_receipts_(assumption_receipts) {}

Result<u8> Env::read_u8() { return reader_.u8v(); }
Result<u32> Env::read_u32() { return reader_.u32v(); }
Result<u64> Env::read_u64() { return reader_.u64v(); }
Result<u64> Env::read_varint() { return reader_.varint(); }
Result<Bytes> Env::read_blob() { return reader_.blob(); }
Result<Bytes> Env::read_bytes(size_t n) { return reader_.raw(n); }
Result<std::string> Env::read_string() { return reader_.str(); }

Result<Digest32> Env::read_digest() {
  Digest32 d;
  ZKT_TRY(reader_.fixed(d.bytes));
  return d;
}

size_t Env::input_remaining() const { return reader_.remaining(); }

void Env::commit_u8(u8 v) { journal_.u8v(v); }
void Env::commit_u32(u32 v) { journal_.u32v(v); }
void Env::commit_u64(u64 v) { journal_.u64v(v); }
void Env::commit_blob(BytesView data) { journal_.blob(data); }
void Env::commit_digest(const Digest32& d) { journal_.fixed(d.bytes); }
void Env::commit_string(std::string_view s) { journal_.str(s); }
void Env::commit_raw(BytesView data) { journal_.raw(data); }

Digest32 Env::traced_sha256_with_prefix(u8 tag, bool use_tag, BytesView a,
                                        BytesView b) {
  Bytes buf;
  buf.reserve((use_tag ? 1 : 0) + a.size() + b.size());
  if (use_tag) buf.push_back(tag);
  append(buf, a);
  append(buf, b);

  crypto::Sha256State state = crypto::Sha256State::initial();
  crypto::sha256_padded_blocks(buf, [&](const std::array<u8, 64>& block) {
    RowSha256 row;
    row.state_in = state;
    row.block = block;
    state = crypto::sha256_compress(state, block);
    row.state_out = state;
    trace_.push_back(TraceRow{row});
  });
  return state.to_digest();
}

Digest32 Env::sha256(BytesView data) {
  return traced_sha256_with_prefix(0, false, data, {});
}

Digest32 Env::hash_node(const Digest32& left, const Digest32& right) {
  return traced_sha256_with_prefix(0x01, true, left.view(), right.view());
}

Digest32 Env::hash_leaf(BytesView data) {
  return traced_sha256_with_prefix(0x00, true, data, {});
}

u64 Env::alu(AluOp op, u64 a, u64 b) {
  RowAlu row{op, a, b, alu_eval(op, a, b)};
  trace_.push_back(TraceRow{row});
  return row.c;
}

Status Env::assert_true(bool cond, std::string_view context) {
  RowAssert row;
  row.cond = cond ? 1 : 0;
  row.context = crypto::sha256(context);
  trace_.push_back(TraceRow{row});
  if (!cond) {
    return Error{Errc::guest_abort, std::string("assertion failed: ") +
                                        std::string(context)};
  }
  return {};
}

Status Env::assert_eq(const Digest32& a, const Digest32& b,
                      std::string_view context) {
  RowAssertEqDigest row{a, b};
  trace_.push_back(TraceRow{row});
  if (a != b) {
    return Error{Errc::guest_abort,
                 std::string("digest mismatch: ") + std::string(context)};
  }
  return {};
}

Status Env::verify_merkle(const Digest32& root, const Digest32& leaf,
                          const crypto::MerkleProof& proof) {
  // Same layout rules as crypto::MerkleTree::verify, but every hash and the
  // final comparison are traced so the check is part of the proven execution.
  const u64 padded = std::bit_ceil(std::max<u64>(proof.leaf_count, 1));
  const u32 expect_depth = static_cast<u32>(std::countr_zero(padded));
  ZKT_TRY(assert_true(proof.siblings.size() == expect_depth,
                      "merkle proof depth"));
  ZKT_TRY(assert_true(proof.leaf_index < padded, "merkle leaf index range"));
  Digest32 acc = leaf;
  u64 idx = proof.leaf_index;
  for (const auto& sibling : proof.siblings) {
    acc = (idx & 1) ? hash_node(sibling, acc) : hash_node(acc, sibling);
    idx >>= 1;
  }
  return assert_eq(acc, root, "merkle root");
}

Status Env::verify_merkle_multi(
    const Digest32& root, std::span<const std::pair<u64, Digest32>> leaves,
    const crypto::MerkleMultiProof& proof) {
  // Mirrors crypto::MerkleTree::verify_multi with traced hashing, so batch
  // openings are part of the proven execution.
  ZKT_TRY(assert_true(leaves.size() == proof.indices.size(),
                      "multiproof leaf count"));
  const u64 padded = std::bit_ceil(std::max<u64>(proof.leaf_count, 1));
  const u32 depth = static_cast<u32>(std::countr_zero(padded));
  ZKT_TRY(assert_true(!leaves.empty(), "multiproof must open something"));
  for (size_t i = 0; i < leaves.size(); ++i) {
    ZKT_TRY(assert_true(leaves[i].first == proof.indices[i],
                        "multiproof index alignment"));
    ZKT_TRY(assert_true(i == 0 || leaves[i].first > leaves[i - 1].first,
                        "multiproof indices ascending"));
    ZKT_TRY(assert_true(leaves[i].first < padded, "multiproof index range"));
  }

  std::vector<std::pair<u64, Digest32>> known(leaves.begin(), leaves.end());
  size_t next_sibling = 0;
  for (u32 level = 0; level < depth; ++level) {
    std::vector<std::pair<u64, Digest32>> parents;
    for (size_t i = 0; i < known.size(); ++i) {
      const u64 idx = known[i].first;
      const u64 sibling_idx = idx ^ 1;
      if (i + 1 < known.size() && known[i + 1].first == sibling_idx) {
        parents.emplace_back(idx >> 1,
                             hash_node(known[i].second, known[i + 1].second));
        ++i;
        continue;
      }
      ZKT_TRY(assert_true(next_sibling < proof.siblings.size(),
                          "multiproof sibling supply"));
      const Digest32& sibling = proof.siblings[next_sibling++];
      parents.emplace_back(idx >> 1,
                           (idx & 1) ? hash_node(sibling, known[i].second)
                                     : hash_node(known[i].second, sibling));
    }
    known = std::move(parents);
  }
  ZKT_TRY(assert_true(next_sibling == proof.siblings.size(),
                      "multiproof siblings all consumed"));
  ZKT_TRY(assert_true(known.size() == 1, "multiproof converges to root"));
  return assert_eq(known[0].second, root, "multiproof root");
}

Status Env::verify_assumption(const Digest32& image_id,
                              const Digest32& claim_digest) {
  for (const auto& receipt : assumption_receipts_) {
    if (receipt.claim.image_id == image_id &&
        receipt.claim.digest() == claim_digest) {
      RowAssume row{image_id, claim_digest};
      trace_.push_back(TraceRow{row});
      assumptions_.push_back(Assumption{image_id, claim_digest});
      return {};
    }
  }
  return Error{Errc::proof_invalid,
               "no receipt supplied for required assumption"};
}

void Env::begin_region(std::string_view name) {
  end_region();
  open_region_ = std::make_pair(std::string(name), cycles());
}

void Env::end_region() {
  if (!open_region_.has_value()) return;
  const u64 spent = cycles() - open_region_->second;
  for (auto& [name, total] : regions_) {
    if (name == open_region_->first) {
      total += spent;
      open_region_.reset();
      return;
    }
  }
  regions_.emplace_back(std::move(open_region_->first), spent);
  open_region_.reset();
}

Digest32 Env::bind_input() {
  const Digest32 d = sha256(BytesView(input_.data(), input_.size()));
  RowBindDigest row{BindTarget::input, d};
  trace_.push_back(TraceRow{row});
  return d;
}

Digest32 Env::bind_journal() {
  const Digest32 d = sha256(journal_.bytes());
  RowBindDigest row{BindTarget::journal, d};
  trace_.push_back(TraceRow{row});
  return d;
}

namespace guest {

Status read_and_verify_merkle(Env& env, const Digest32& root) {
  auto leaf = env.read_digest();
  if (!leaf.ok()) return leaf.error();
  Bytes proof_bytes;
  {
    auto b = env.read_blob();
    if (!b.ok()) return b.error();
    proof_bytes = std::move(b.value());
  }
  Reader r(proof_bytes);
  auto proof = crypto::MerkleProof::deserialize(r);
  if (!proof.ok()) return proof.error();
  return env.verify_merkle(root, leaf.value(), proof.value());
}

}  // namespace guest

}  // namespace zkt::zvm
