// NetFlowSimulator: the paper's evaluation substrate — a simplified network
// topology emulated on one machine. N routers (default 4, as in §6) run on
// dedicated threads, meter the packets routed through them in a NetFlow
// cache, and at every commitment-window boundary (default 5 s of simulated
// time) flush the window's records as an RLog batch:
//
//   records --(NetFlow v9 encode/decode)--> shared LogStore  (the paper's
//                                                            PostgreSQL role)
//   batch hash + Schnorr signature        --> CommitmentBoard (published H_i)
//
// Packets are assigned to router paths by flow hash over a simple topology,
// so several routers observe the same flow (which is what makes cross-router
// aggregation meaningful).
#pragma once

#include <vector>

#include "core/commitment.h"
#include "netflow/cache.h"
#include "netflow/v9.h"
#include "sim/workload.h"
#include "store/logstore.h"

namespace zkt::sim {

struct SimConfig {
  u32 router_count = 4;      ///< paper's evaluation uses 4
  u64 window_ms = 5'000;     ///< commitment window (paper: 5 s)
  /// Number of routers on each flow's path (1..router_count).
  u32 path_length = 2;
  netflow::FlowCacheConfig cache;
  /// Pass records through the NetFlow v9 wire format between router and
  /// store (encode + collector decode), as a real deployment would.
  bool use_v9_wire = true;
  u64 key_seed = 1;          ///< seed for router signing keys
};

class NetFlowSimulator {
 public:
  struct RouterStats {
    u64 packets = 0;
    u64 batches = 0;
    u64 records = 0;
    u64 v9_packets = 0;
  };

  NetFlowSimulator(SimConfig config, store::LogStore& store,
                   core::CommitmentBoard& board);

  /// Feed a packet workload through the routers (one thread per router) and
  /// commit every completed window. Timestamps drive the simulated clock;
  /// all windows overlapping the workload are flushed, including the last.
  Status run(std::vector<PacketObservation> packets);

  /// Read back the RLog batches of a window from the shared store.
  Result<std::vector<netflow::RLogBatch>> batches_for_window(
      u64 window_id) const;
  /// All windows that produced at least one batch, ascending.
  std::vector<u64> committed_windows() const;

  u32 router_count() const { return config_.router_count; }
  const crypto::SchnorrKeyPair& router_key(u32 router_id) const {
    return keys_[router_id];
  }
  const std::vector<RouterStats>& router_stats() const { return stats_; }

  /// The routers a flow's packets traverse (deterministic by flow hash).
  std::vector<u32> path_for(const netflow::FlowKey& key) const;

 private:
  Status run_router(u32 router_id,
                    const std::vector<PacketObservation>& packets);

  SimConfig config_;
  store::LogStore* store_;
  core::CommitmentBoard* board_;
  std::vector<crypto::SchnorrKeyPair> keys_;
  std::vector<RouterStats> stats_;
};

}  // namespace zkt::sim
