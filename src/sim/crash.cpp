#include "sim/crash.h"

#include "common/log.h"
#include "core/io.h"
#include "store/fault.h"

namespace zkt::sim {

Result<CrashRestartReport> run_crash_restart(
    const CrashRestartConfig& config) {
  CrashRestartReport report;
  const std::string wal_path = config.data_dir + "/rlogs.wal";
  const std::string commitments_path = config.data_dir + "/commitments.bin";

  core::PipelineOptions pipeline_options = config.pipeline;
  pipeline_options.checkpoint_every_n_rounds = 1;

  // ----- process 1: simulate, then die mid-chain -------------------------
  {
    store::LogStore store(store::StoreConfig{.wal_path = wal_path});
    ZKT_TRY(store.recover());

    core::CommitmentBoard board;
    NetFlowSimulator simulator(config.sim, store, board);
    ZKT_TRY(simulator.run(zipf_workload(config.workload,
                                        config.packet_count)));
    report.windows_committed = simulator.committed_windows().size();
    if (report.windows_committed <= config.crash_after_rounds) {
      return Error{Errc::invalid_argument,
                   "workload produced too few windows to crash mid-chain"};
    }
    ZKT_TRY(core::save_commitments(board, commitments_path));

    // Each round appends one snapshot then one receipt; tearing the
    // snapshot append of round crash_after_rounds+1 kills the prover with
    // exactly crash_after_rounds durable rounds.
    store::FaultInjector faults;
    faults.arm(store::FaultPoint::wal_torn_write,
               config.crash_after_rounds * 2);
    store.set_fault_injector(&faults);

    core::ProviderPipeline pipeline(store, board, pipeline_options);
    auto rounds = pipeline.aggregate_pending();
    if (rounds.ok()) {
      return Error{Errc::invalid_argument,
                   "injected crash never fired (too few windows?)"};
    }
    if (rounds.error().code != Errc::io_error) {
      return rounds.error();  // an unexpected failure, not our crash
    }
    report.rounds_before_crash = pipeline.receipts().size();
    store.set_fault_injector(nullptr);
    // `store` and `pipeline` fall out of scope: the process is dead.
  }

  // ----- process 2: recover and finish the chain -------------------------
  store::LogStore store(store::StoreConfig{.wal_path = wal_path});
  ZKT_TRY(store.recover());
  report.truncated_frames = store.stats().truncated_frames;

  core::CommitmentBoard board;
  ZKT_TRY(core::load_commitments(commitments_path, board));

  core::ProviderPipeline pipeline(store, board, pipeline_options);
  auto recovery = pipeline.recover();
  if (!recovery.ok()) return recovery.error();
  report.recovery = recovery.value();

  auto rounds = pipeline.aggregate_pending();
  if (!rounds.ok()) return rounds.error();
  report.rounds_after_restart = rounds.value().size();
  report.receipts = pipeline.receipts();

  core::Auditor auditor(board);
  report.chain_verified = true;
  for (const auto& receipt : report.receipts) {
    if (!auditor.accept_round(receipt).ok()) {
      report.chain_verified = false;
      break;
    }
  }
  ZKT_LOG(info) << "crash-restart scenario: " << report.rounds_before_crash
                << " rounds before crash, "
                << report.recovery.rounds_restored << " restored, "
                << report.rounds_after_restart << " after restart, chain "
                << (report.chain_verified ? "verified" : "REJECTED");
  return report;
}

}  // namespace zkt::sim
