#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.h"
#include "obs/metrics.h"

namespace zkt::sim {

namespace {

/// Flush a window's cache contents into a committed, stored RLog batch.
Status flush_window(u32 router_id, u64 window_id,
                    std::vector<netflow::FlowRecord> records,
                    const SimConfig& config,
                    const crypto::SchnorrKeyPair& key,
                    store::LogStore& store, core::CommitmentBoard& board,
                    NetFlowSimulator::RouterStats& stats) {
  if (records.empty()) return {};
  const auto flush_start = std::chrono::steady_clock::now();
  // Deterministic record order within a batch.
  std::sort(records.begin(), records.end(),
            [](const netflow::FlowRecord& a, const netflow::FlowRecord& b) {
              return a.key.canonical_bytes() < b.key.canonical_bytes();
            });

  if (config.use_v9_wire) {
    // Round-trip through the NetFlow v9 wire format, as the records would
    // travel from the metering process to the collector.
    netflow::V9Exporter exporter(netflow::V9Config{.source_id = router_id});
    netflow::V9Collector collector;
    std::vector<netflow::FlowRecord> decoded;
    for (const auto& packet :
         exporter.export_records(records, window_id * config.window_ms)) {
      auto got = collector.ingest(packet);
      if (!got.ok()) return got.error();
      for (auto& rec : got.value()) decoded.push_back(std::move(rec));
      ++stats.v9_packets;
    }
    if (decoded.size() != records.size()) {
      return Error{Errc::parse_error, "v9 round-trip lost records"};
    }
    records = std::move(decoded);
  }

  netflow::RLogBatch batch;
  batch.router_id = router_id;
  batch.window_id = window_id;
  batch.records = std::move(records);

  auto appended = store.append(store::kTableRlogs, window_id, router_id,
                               batch.canonical_bytes());
  if (!appended.ok()) return appended.error();

  auto commitment =
      core::make_commitment(batch, key, (window_id + 1) * config.window_ms);
  if (!commitment.ok()) return commitment.error();
  ZKT_TRY(board.publish(commitment.value()));

  ++stats.batches;
  stats.records += batch.records.size();

  obs::Registry& metrics = obs::Registry::instance();
  metrics.counter("sim.windows_committed").add(1);
  metrics.counter("sim.records_committed").add(batch.records.size());
  metrics.histogram("sim.window_flush_ms")
      .record(std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - flush_start)
                  .count());
  metrics.histogram("sim.records_per_window")
      .record(static_cast<double>(batch.records.size()));
  return {};
}

}  // namespace

NetFlowSimulator::NetFlowSimulator(SimConfig config, store::LogStore& store,
                                   core::CommitmentBoard& board)
    : config_(config), store_(&store), board_(&board) {
  config_.router_count = std::max<u32>(config_.router_count, 1);
  config_.path_length =
      std::clamp<u32>(config_.path_length, 1, config_.router_count);
  keys_.reserve(config_.router_count);
  stats_.resize(config_.router_count);
  for (u32 i = 0; i < config_.router_count; ++i) {
    keys_.push_back(crypto::schnorr_keygen_from_seed(
        "zkt.sim.router." + std::to_string(config_.key_seed) + "." +
        std::to_string(i)));
    board_->register_router(i, keys_.back().public_key);
  }
}

std::vector<u32> NetFlowSimulator::path_for(
    const netflow::FlowKey& key) const {
  // First hop by flow hash; the path continues on consecutive routers
  // (a ring topology — simple but gives real cross-router overlap).
  const u64 h = netflow::FlowKeyHasher{}(key);
  std::vector<u32> path;
  path.reserve(config_.path_length);
  for (u32 i = 0; i < config_.path_length; ++i) {
    path.push_back(
        static_cast<u32>((h + i) % config_.router_count));
  }
  return path;
}

Status NetFlowSimulator::run_router(
    u32 router_id, const std::vector<PacketObservation>& packets) {
  netflow::FlowCache cache(config_.cache);
  RouterStats& stats = stats_[router_id];
  std::vector<netflow::FlowRecord> window_records;

  u64 current_window = packets.empty()
                           ? 0
                           : packets.front().timestamp_ms / config_.window_ms;
  for (const auto& pkt : packets) {
    const u64 window = pkt.timestamp_ms / config_.window_ms;
    while (window > current_window) {
      // Window boundary: expire everything and commit the closed window,
      // including any records emergency-evicted during it.
      auto records = cache.flush();
      for (auto& rec : window_records) records.push_back(std::move(rec));
      window_records.clear();
      ZKT_TRY(flush_window(router_id, current_window, std::move(records),
                           config_, keys_[router_id], *store_, *board_,
                           stats));
      ++current_window;
    }
    auto evicted = cache.observe(pkt);
    for (auto& rec : evicted) window_records.push_back(std::move(rec));
    ++stats.packets;
  }
  auto records = cache.flush();
  for (auto& rec : window_records) records.push_back(std::move(rec));
  ZKT_TRY(flush_window(router_id, current_window, std::move(records), config_,
                       keys_[router_id], *store_, *board_, stats));
  return {};
}

Status NetFlowSimulator::run(std::vector<PacketObservation> packets) {
  std::sort(packets.begin(), packets.end(),
            [](const PacketObservation& a, const PacketObservation& b) {
              return a.timestamp_ms < b.timestamp_ms;
            });

  // Replicate each packet onto its path, per router.
  std::vector<std::vector<PacketObservation>> per_router(
      config_.router_count);
  for (const auto& pkt : packets) {
    for (u32 router : path_for(pkt.key)) {
      per_router[router].push_back(pkt);
    }
  }

  // One dedicated thread per router, as in the paper's evaluation setup.
  std::vector<std::thread> threads;
  std::vector<Status> results(config_.router_count);
  threads.reserve(config_.router_count);
  for (u32 i = 0; i < config_.router_count; ++i) {
    threads.emplace_back([this, i, &per_router, &results] {
      results[i] = run_router(i, per_router[i]);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& status : results) {
    if (!status.ok()) return status;
  }
  return {};
}

Result<std::vector<netflow::RLogBatch>> NetFlowSimulator::batches_for_window(
    u64 window_id) const {
  std::vector<netflow::RLogBatch> batches;
  for (const auto& row : store_->scan(store::kTableRlogs, window_id,
                                      window_id)) {
    Reader r(row.payload);
    auto batch = netflow::RLogBatch::deserialize(r);
    if (!batch.ok()) return batch.error();
    batches.push_back(std::move(batch.value()));
  }
  std::sort(batches.begin(), batches.end(),
            [](const netflow::RLogBatch& a, const netflow::RLogBatch& b) {
              return a.router_id < b.router_id;
            });
  return batches;
}

std::vector<u64> NetFlowSimulator::committed_windows() const {
  std::vector<u64> windows;
  for (const auto& row : store_->scan(store::kTableRlogs, 0, ~0ULL)) {
    windows.push_back(row.k1);
  }
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  return windows;
}

}  // namespace zkt::sim
