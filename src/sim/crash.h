// Kill/restart scenario: the provider process dies mid-chain and a new
// process resumes the proof chain from durable state.
//
// The scenario drives the whole paper pipeline twice over one durable
// store directory:
//
//   process 1 — simulate routers (NetFlowSimulator), persist commitments,
//       aggregate windows until an injected torn WAL write "kills" the
//       prover after `crash_after_rounds` completed rounds;
//   process 2 — a fresh LogStore recover()s the WAL (truncating the torn
//       frame), ProviderPipeline::recover() re-adopts the chain, and
//       aggregate_pending() finishes the remaining windows.
//
// The report carries the full receipt chain plus an end-to-end Auditor
// verdict, so callers (sim tests, zkt-sim) can assert that a crash at the
// worst moment still yields a chain the verifier accepts.
#pragma once

#include <string>

#include "core/auditor.h"
#include "core/pipeline.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace zkt::sim {

struct CrashRestartConfig {
  /// Directory for the durable artifacts (WAL, snapshot, commitments).
  std::string data_dir;
  SimConfig sim;
  ZipfWorkloadConfig workload;
  u64 packet_count = 2'000;
  /// Rounds process 1 completes before the injected crash.
  u64 crash_after_rounds = 2;
  /// Pipeline knobs for both processes. checkpoint_every_n_rounds is
  /// forced to 1 (the crash-offset arithmetic assumes one snapshot per
  /// round).
  core::PipelineOptions pipeline;
};

struct CrashRestartReport {
  u64 windows_committed = 0;
  u64 rounds_before_crash = 0;
  /// Torn frames the restarted store truncated (>= 1: the injected one).
  u64 truncated_frames = 0;
  core::ProviderPipeline::RecoveryInfo recovery;
  u64 rounds_after_restart = 0;
  /// The full chain, as the restarted pipeline sees it.
  std::vector<zvm::Receipt> receipts;
  /// End-to-end Auditor verdict over `receipts`.
  bool chain_verified = false;
};

/// Run the scenario. Fails only on unexpected errors — the injected crash
/// itself is part of the plan and is reported, not returned.
Result<CrashRestartReport> run_crash_restart(const CrashRestartConfig& config);

}  // namespace zkt::sim
