// Synthetic traffic workloads for the NetFlow simulator.
//
// The paper evaluates on a custom NetFlow simulator; real traces are not
// published, so these generators produce the standard synthetic equivalents:
//   * ZipfWorkload       — heavy-tailed flow popularity (the canonical
//                          NetFlow/sketching workload model),
//   * SlaWorkload        — flows split into SLA-compliant and violating
//                          classes with controlled RTT/jitter/loss, for the
//                          §2.1 SLA-verification scenario,
//   * NeutralityWorkload — two content-provider classes with optionally
//                          discriminatory treatment, for the §2.1 network-
//                          neutrality scenario.
// All generators are deterministic given their seed.
#pragma once

#include <vector>

#include "common/rng.h"
#include "netflow/record.h"

namespace zkt::sim {

using netflow::FlowKey;
using netflow::PacketObservation;

/// Derive a deterministic synthetic flow key from a flow index.
FlowKey synth_flow_key(u64 flow_index, u64 seed);

struct ZipfWorkloadConfig {
  u64 seed = 42;
  u64 flow_count = 256;
  double zipf_s = 1.1;
  u64 start_ms = 0;
  u64 duration_ms = 20'000;
  u32 mean_packet_bytes = 900;
  double drop_rate = 0.005;
  u32 base_rtt_us = 20'000;
  u32 rtt_spread_us = 8'000;
  u32 base_jitter_us = 1'500;
  u8 min_hops = 2;
  u8 max_hops = 12;
};

/// Generate `packet_count` packet observations, timestamps increasing
/// (Poisson arrivals over the configured duration).
std::vector<PacketObservation> zipf_workload(const ZipfWorkloadConfig& config,
                                             u64 packet_count);

struct SlaWorkloadConfig {
  u64 seed = 7;
  u64 flow_count = 200;
  /// Fraction of flows violating the SLA (e.g. 0.05 -> 95% compliant).
  double violating_fraction = 0.05;
  u32 compliant_rtt_us = 15'000;   ///< mean RTT of compliant flows
  u32 violating_rtt_us = 80'000;   ///< mean RTT of violating flows
  u32 rtt_spread_us = 3'000;
  double compliant_drop_rate = 0.001;
  double violating_drop_rate = 0.03;
  u64 start_ms = 0;
  u64 duration_ms = 20'000;
};

struct SlaWorkload {
  std::vector<PacketObservation> packets;
  u64 compliant_flows = 0;
  u64 violating_flows = 0;
};

SlaWorkload sla_workload(const SlaWorkloadConfig& config, u64 packet_count);

struct NeutralityWorkloadConfig {
  u64 seed = 13;
  u64 flows_per_provider = 100;
  /// Provider A's traffic signature: dst_ip prefix 10.1.0.0/16.
  /// Provider B's: 10.2.0.0/16.
  u32 base_rtt_us = 25'000;
  u32 rtt_spread_us = 4'000;
  double base_drop_rate = 0.002;
  /// When true, provider B is throttled: extra RTT and loss.
  bool discriminate_b = false;
  u32 throttle_extra_rtt_us = 40'000;
  double throttle_extra_drop = 0.05;
  u64 start_ms = 0;
  u64 duration_ms = 20'000;
};

struct NeutralityWorkload {
  std::vector<PacketObservation> packets;
  /// dst_ip prefixes identifying each provider's traffic (for queries).
  u32 provider_a_prefix = 0;  // 10.1.0.0
  u32 provider_b_prefix = 0;  // 10.2.0.0
};

NeutralityWorkload neutrality_workload(const NeutralityWorkloadConfig& config,
                                       u64 packet_count);

}  // namespace zkt::sim
