#include "sim/workload.h"

#include <algorithm>

namespace zkt::sim {

FlowKey synth_flow_key(u64 flow_index, u64 seed) {
  SplitMix64 sm(seed * 0x9E3779B97F4A7C15ULL + flow_index + 1);
  const u64 a = sm.next();
  const u64 b = sm.next();
  FlowKey key;
  // Private-range src, public-looking dst; ephemeral src port, common dst.
  key.src_ip = 0x0A000000u | static_cast<u32>(a & 0x00FFFFFF);
  key.dst_ip = static_cast<u32>((b >> 32) | 0x01000000u);
  key.src_port = static_cast<u16>(1024 + (a >> 24) % 60000);
  const u16 common_ports[] = {80, 443, 53, 8080, 22, 3478};
  key.dst_port = common_ports[(b >> 8) % std::size(common_ports)];
  key.protocol = (b & 0xff) < 200 ? 6 : 17;  // mostly TCP
  return key;
}

std::vector<PacketObservation> zipf_workload(const ZipfWorkloadConfig& config,
                                             u64 packet_count) {
  Xoshiro256 rng(config.seed);
  ZipfSampler zipf(std::max<u64>(config.flow_count, 1), config.zipf_s,
                   config.seed ^ 0x5A4B5430ULL);
  std::vector<PacketObservation> packets;
  packets.reserve(packet_count);

  // Poisson arrivals: exponential inter-arrival with rate = count/duration.
  const double rate =
      static_cast<double>(packet_count) /
      std::max<double>(1.0, static_cast<double>(config.duration_ms));
  double t = static_cast<double>(config.start_ms);

  // Stable per-flow characteristics (hops, base RTT offset).
  for (u64 i = 0; i < packet_count; ++i) {
    const u64 flow = zipf.sample() - 1;
    SplitMix64 flow_traits(config.seed ^ (flow * 0x632BE59BD9B4E019ULL));
    const u64 traits = flow_traits.next();

    PacketObservation pkt;
    pkt.key = synth_flow_key(flow, config.seed);
    t += rng.exponential(rate);
    pkt.timestamp_ms = static_cast<u64>(t);
    pkt.bytes = static_cast<u32>(std::clamp<double>(
        rng.normal(config.mean_packet_bytes, config.mean_packet_bytes / 4.0),
        64.0, 1500.0));
    pkt.tcp_flags = pkt.key.protocol == 6 ? 0x18 : 0;  // PSH|ACK
    pkt.hop_count = static_cast<u8>(
        config.min_hops + traits % (config.max_hops - config.min_hops + 1));
    const double rtt = rng.normal(
        config.base_rtt_us + static_cast<double>(traits >> 32 & 0x3FFF),
        config.rtt_spread_us);
    pkt.rtt_us = static_cast<u32>(std::max(rtt, 500.0));
    pkt.jitter_us = static_cast<u32>(std::max(
        rng.normal(config.base_jitter_us, config.base_jitter_us / 3.0), 0.0));
    pkt.dropped = rng.uniform01() < config.drop_rate;
    packets.push_back(pkt);
  }
  return packets;
}

SlaWorkload sla_workload(const SlaWorkloadConfig& config, u64 packet_count) {
  SlaWorkload out;
  Xoshiro256 rng(config.seed);
  const u64 violating =
      static_cast<u64>(static_cast<double>(config.flow_count) *
                       config.violating_fraction);
  out.violating_flows = violating;
  out.compliant_flows = config.flow_count - violating;

  const double rate =
      static_cast<double>(packet_count) /
      std::max<double>(1.0, static_cast<double>(config.duration_ms));
  double t = static_cast<double>(config.start_ms);

  out.packets.reserve(packet_count);
  for (u64 i = 0; i < packet_count; ++i) {
    const u64 flow = rng.uniform(std::max<u64>(config.flow_count, 1));
    const bool is_violating = flow < violating;

    PacketObservation pkt;
    pkt.key = synth_flow_key(flow, config.seed);
    t += rng.exponential(rate);
    pkt.timestamp_ms = static_cast<u64>(t);
    pkt.bytes = 1000;
    pkt.tcp_flags = 0x18;
    pkt.hop_count = 5;
    const u32 mean_rtt =
        is_violating ? config.violating_rtt_us : config.compliant_rtt_us;
    pkt.rtt_us = static_cast<u32>(std::max(
        rng.normal(mean_rtt, config.rtt_spread_us), 500.0));
    pkt.jitter_us = static_cast<u32>(pkt.rtt_us / 20);
    const double drop_rate = is_violating ? config.violating_drop_rate
                                          : config.compliant_drop_rate;
    pkt.dropped = rng.uniform01() < drop_rate;
    out.packets.push_back(pkt);
  }
  return out;
}

NeutralityWorkload neutrality_workload(const NeutralityWorkloadConfig& config,
                                       u64 packet_count) {
  NeutralityWorkload out;
  out.provider_a_prefix = 0x0A010000;  // 10.1.0.0
  out.provider_b_prefix = 0x0A020000;  // 10.2.0.0
  Xoshiro256 rng(config.seed);

  const double rate =
      static_cast<double>(packet_count) /
      std::max<double>(1.0, static_cast<double>(config.duration_ms));
  double t = static_cast<double>(config.start_ms);

  out.packets.reserve(packet_count);
  for (u64 i = 0; i < packet_count; ++i) {
    const bool provider_b = rng.uniform(2) == 1;
    const u64 flow = rng.uniform(std::max<u64>(config.flows_per_provider, 1));

    PacketObservation pkt;
    // Clients fetch from the provider's prefix: dst identifies the provider.
    SplitMix64 sm(config.seed ^ (flow * 2 + (provider_b ? 1 : 0)));
    const u64 a = sm.next();
    pkt.key.src_ip = 0x0A000000u | static_cast<u32>(a & 0xFFFFFF);
    pkt.key.dst_ip =
        (provider_b ? out.provider_b_prefix : out.provider_a_prefix) |
        static_cast<u32>(flow & 0xFFFF);
    pkt.key.src_port = static_cast<u16>(1024 + (a >> 24) % 60000);
    pkt.key.dst_port = 443;
    pkt.key.protocol = 6;

    t += rng.exponential(rate);
    pkt.timestamp_ms = static_cast<u64>(t);
    pkt.bytes = 1200;
    pkt.tcp_flags = 0x18;
    pkt.hop_count = 6;
    double rtt = rng.normal(config.base_rtt_us, config.rtt_spread_us);
    double drop = config.base_drop_rate;
    if (provider_b && config.discriminate_b) {
      rtt += config.throttle_extra_rtt_us;
      drop += config.throttle_extra_drop;
    }
    pkt.rtt_us = static_cast<u32>(std::max(rtt, 500.0));
    pkt.jitter_us = static_cast<u32>(pkt.rtt_us / 25);
    pkt.dropped = rng.uniform01() < drop;
    out.packets.push_back(pkt);
  }
  return out;
}

}  // namespace zkt::sim
