#include "core/sharded.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "common/thread_pool.h"
#include "core/auditor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zkt::core {

namespace {

using netflow::FlowKeyHasher;
using netflow::RLogBatch;
using zvm::Env;

Status shard_split_guest(Env& env) {
  auto shard_count = env.read_u32();
  if (!shard_count.ok()) return shard_count.error();
  ZKT_TRY(env.assert_true(shard_count.value() >= 1 &&
                              shard_count.value() <= 1024,
                          "shard count range"));

  SplitJournal journal;
  journal.shard_count = shard_count.value();
  auto rid = env.read_u32();
  if (!rid.ok()) return rid.error();
  journal.source.router_id = rid.value();
  auto wid = env.read_u64();
  if (!wid.ok()) return wid.error();
  journal.source.window_id = wid.value();
  auto chash = env.read_digest();
  if (!chash.ok()) return chash.error();
  journal.source.rlog_hash = chash.value();
  auto rcount = env.read_u64();
  if (!rcount.ok()) return rcount.error();
  journal.source.record_count = rcount.value();

  auto rlog_bytes = env.read_blob();
  if (!rlog_bytes.ok()) return rlog_bytes.error();
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in split input"};
  }

  // Verify the batch against its published commitment (traced).
  const Digest32 h = env.sha256(rlog_bytes.value());
  ZKT_TRY(env.assert_eq(h, journal.source.rlog_hash,
                        "RLog hash vs published commitment"));

  Reader br(rlog_bytes.value());
  auto batch = RLogBatch::deserialize(br);
  if (!batch.ok()) return batch.error();
  ZKT_TRY(env.assert_true(batch.value().records.size() ==
                              journal.source.record_count,
                          "record count vs commitment"));

  // Partition deterministically and re-commit each sub-batch (traced).
  u64 total = 0;
  for (u32 s = 0; s < journal.shard_count; ++s) {
    const RLogBatch sub = sub_batch_for(batch.value(), s, journal.shard_count);
    ShardRef ref;
    ref.shard_id = s;
    ref.sub_batch_hash = env.sha256(sub.canonical_bytes());
    ref.record_count = sub.records.size();
    total = env.alu(zvm::AluOp::add, total, ref.record_count);
    journal.shards.push_back(ref);
  }
  ZKT_TRY(env.assert_true(total == journal.source.record_count,
                          "partition must be complete"));

  Writer jw;
  journal.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace

void SplitJournal::write(Writer& w) const {
  w.str("SPLIT1");
  w.u32v(source.router_id);
  w.u64v(source.window_id);
  w.fixed(source.rlog_hash.bytes);
  w.u64v(source.record_count);
  w.u32v(shard_count);
  w.varint(shards.size());
  for (const auto& s : shards) {
    w.u32v(s.shard_id);
    w.fixed(s.sub_batch_hash.bytes);
    w.u64v(s.record_count);
  }
}

Result<SplitJournal> SplitJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "SPLIT1") {
    return Error{Errc::parse_error, "bad split journal magic"};
  }
  SplitJournal j;
  auto rid = r.u32v();
  if (!rid.ok()) return rid.error();
  j.source.router_id = rid.value();
  auto wid = r.u64v();
  if (!wid.ok()) return wid.error();
  j.source.window_id = wid.value();
  ZKT_TRY(r.fixed(j.source.rlog_hash.bytes));
  auto rcount = r.u64v();
  if (!rcount.ok()) return rcount.error();
  j.source.record_count = rcount.value();
  auto sc = r.u32v();
  if (!sc.ok()) return sc.error();
  j.shard_count = sc.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() != j.shard_count || n.value() > 1024) {
    return Error{Errc::parse_error, "shard list size mismatch"};
  }
  j.shards.resize(n.value());
  for (auto& s : j.shards) {
    auto sid = r.u32v();
    if (!sid.ok()) return sid.error();
    s.shard_id = sid.value();
    ZKT_TRY(r.fixed(s.sub_batch_hash.bytes));
    auto c = r.u64v();
    if (!c.ok()) return c.error();
    s.record_count = c.value();
  }
  if (!r.done()) return Error{Errc::parse_error, "trailing split journal"};
  return j;
}

zvm::ImageID shard_split_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.shard_split", 1, shard_split_guest);
  return id;
}

u32 shard_of(const netflow::FlowKey& key, u32 shard_count) {
  return static_cast<u32>(FlowKeyHasher{}(key) % std::max<u32>(shard_count, 1));
}

netflow::RLogBatch sub_batch_for(const netflow::RLogBatch& batch,
                                 u32 shard_id, u32 shard_count) {
  netflow::RLogBatch sub;
  sub.router_id = batch.router_id;
  sub.window_id = batch.window_id;
  for (const auto& record : batch.records) {
    if (shard_of(record.key, shard_count) == shard_id) {
      sub.records.push_back(record);
    }
  }
  return sub;
}

AdaptiveShardController::AdaptiveShardController(u32 current,
                                                 AdaptiveShardOptions options)
    : options_(options), recommended_(current) {
  options_.min_shards = std::max<u32>(options_.min_shards, 1);
  options_.max_shards = std::max(options_.max_shards, options_.min_shards);
  options_.patience = std::max<u32>(options_.patience, 1);
  recommended_ =
      std::clamp(recommended_, options_.min_shards, options_.max_shards);
}

void AdaptiveShardController::observe(double imbalance) {
  ++observations_;
  if (imbalance >= options_.split_above) {
    ++high_streak_;
    low_streak_ = 0;
  } else if (imbalance <= options_.merge_below) {
    ++low_streak_;
    high_streak_ = 0;
  } else {
    high_streak_ = 0;
    low_streak_ = 0;
  }
  if (high_streak_ >= options_.patience) {
    recommended_ = std::min<u32>(options_.max_shards, recommended_ * 2);
    high_streak_ = 0;
  } else if (low_streak_ >= options_.patience) {
    recommended_ = std::max<u32>(options_.min_shards, recommended_ / 2);
    low_streak_ = 0;
  }
}

ShardedAggregationService::ShardedAggregationService(
    const CommitmentBoard& board, ShardedOptions options)
    : board_(&board),
      options_(std::move(options)),
      shard_count_(std::max<u32>(options_.shard_count, 1)) {
  if (options_.adaptive_shards.has_value()) {
    adaptive_.emplace(shard_count_, *options_.adaptive_shards);
  }
  for (u32 s = 0; s < shard_count_; ++s) {
    shard_boards_.push_back(std::make_unique<CommitmentBoard>());
    shards_.push_back(std::make_unique<AggregationService>(
        *shard_boards_.back(),
        AggregationOptions{.prove_options = options_.prove_options,
                           .mode = options_.agg_mode,
                           .sketch = options_.sketch}));
    // Prover-internal keys for the shard boards' plumbing; external trust
    // rests on the split receipts, not these signatures.
    shard_keys_.push_back(crypto::schnorr_keygen_from_seed(
        "zkt.shard.board." + std::to_string(s)));
  }
}

Result<ShardedAggregationService::StagedRound> ShardedAggregationService::
    stage(std::span<const netflow::RLogBatch> batches) const {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("sharded_stage");
  obs::Histogram& split_ms = metrics.histogram("core.sharded.split_ms");

  StagedRound staged;
  staged.shard_batches.resize(shard_count_);
  staged.sub_commitments.resize(shard_count_);
  zvm::Prover prover;
  for (const auto& batch : batches) {
    const auto split_start = std::chrono::steady_clock::now();
    auto commitment = board_->get(batch.router_id, batch.window_id);
    if (!commitment.has_value()) {
      return Error{Errc::commitment_missing,
                   "no published commitment for router " +
                       std::to_string(batch.router_id)};
    }
    Writer input;
    input.u32v(shard_count_);
    input.u32v(batch.router_id);
    input.u64v(batch.window_id);
    input.fixed(commitment->rlog_hash.bytes);
    input.u64v(commitment->record_count);
    input.blob(batch.canonical_bytes());

    zvm::ProveInfo info;
    auto receipt = prover.prove(shard_split_image(), input.bytes(),
                                options_.prove_options, &info);
    if (!receipt.ok()) return receipt.error();
    staged.split_cycles += info.cycles;

    auto journal = SplitJournal::parse(receipt.value().journal);
    if (!journal.ok()) return journal.error();

    for (u32 s = 0; s < shard_count_; ++s) {
      netflow::RLogBatch sub = sub_batch_for(batch, s, shard_count_);
      if (sub.hash() != journal.value().shards[s].sub_batch_hash) {
        return Error{Errc::hash_mismatch, "host/guest shard split diverged"};
      }
      auto sub_commitment = make_commitment(sub, shard_keys_[s],
                                            commitment->published_at_ms);
      if (!sub_commitment.ok()) return sub_commitment.error();
      staged.sub_commitments[s].push_back(std::move(sub_commitment.value()));
      staged.shard_batches[s].push_back(std::move(sub));
    }
    staged.split_receipts.push_back(std::move(receipt.value()));
    split_ms.record(std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - split_start)
                        .count());
  }
  staged.split_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return staged;
}

Status ShardedAggregationService::commit_staged(const StagedRound& staged) {
  if (staged.sub_commitments.size() != shard_count_) {
    return Error{Errc::invalid_argument,
                 "staged round has the wrong shard count"};
  }
  for (u32 s = 0; s < shard_count_; ++s) {
    for (const auto& commitment : staged.sub_commitments[s]) {
      ZKT_TRY(shard_boards_[s]->publish(commitment));
    }
  }
  return {};
}

Result<RoundResult> ShardedAggregationService::prove_shards(
    // zkt-lint: shared(workers only read their own shard's sub-batches; not mutated during the parallel_for)
    StagedRound staged) {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("sharded_prove");

  RoundResult round;
  round.round_id = rounds_ + 1;
  round.shard_count = shard_count_;
  round.split_receipts = std::move(staged.split_receipts);
  round.total_cycles = staged.split_cycles;

  // Aggregate shards in parallel on the shared bounded pool (§7's parallel
  // proof generation). The pool caps concurrency at its worker count
  // instead of spawning one kernel thread per shard.
  // zkt-lint: shared(one slot per shard; workers write disjoint indices, read after join)
  std::vector<Result<AggregationRound>> results(
      shard_count_, Result<AggregationRound>(Errc::unsupported));
  // zkt-lint: shared(one slot per shard; disjoint writes, reduced after join)
  std::vector<double> shard_wall_ms(shard_count_, 0);
  // zkt-lint: shared(Histogram::record is atomic; concurrent records are safe)
  obs::Histogram& shard_wall_hist =
      metrics.histogram("core.sharded.shard_wall_ms");
  common::ThreadPool& pool = common::ThreadPool::shared();
  pool.parallel_for(shard_count_, 1, [&](size_t first, size_t last) {
    for (size_t s = first; s < last; ++s) {
      const auto shard_start = std::chrono::steady_clock::now();
      results[s] = shards_[s]->aggregate(staged.shard_batches[s]);
      shard_wall_ms[s] = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - shard_start)
                             .count();
      shard_wall_hist.record(shard_wall_ms[s]);
    }
  });
  metrics.gauge("common.pool.threads")
      .set(static_cast<double>(pool.thread_count()));
  metrics.gauge("common.pool.queue_depth")
      .set(static_cast<double>(pool.queue_depth()));

  for (u32 s = 0; s < shard_count_; ++s) {
    if (!results[s].ok()) return results[s].error();
    round.total_cycles += results[s].value().prove_info.cycles;
    round.shard_rounds.push_back(std::move(results[s].value()));
    // Snapshot the shard's post-round sketch now: a pipelined fold_round of
    // this window must not read shard state window i+1 already advanced.
    if (options_.sketch.has_value()) {
      round.shard_sketches.push_back(shards_[s]->sketch());
    }
  }
  round.wall_ms = staged.split_ms +
                  std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  rounds_ = round.round_id;

  // Shard imbalance: slowest shard over the mean — 1.0 means a perfectly
  // balanced round, larger means stragglers dominate the §7 speedup.
  const double max_wall =
      *std::max_element(shard_wall_ms.begin(), shard_wall_ms.end());
  double sum_wall = 0;
  for (double w : shard_wall_ms) sum_wall += w;
  const double mean_wall = sum_wall / static_cast<double>(shard_count_);
  if (mean_wall > 0) {
    const double imbalance = max_wall / mean_wall;
    metrics.gauge("core.sharded.imbalance").set(imbalance);
    if (adaptive_.has_value()) {
      adaptive_->observe(imbalance);
      metrics.gauge("core.sharded.recommended_shards")
          .set(static_cast<double>(adaptive_->recommended()));
    }
  }
  metrics.histogram("core.sharded.round_wall_ms").record(round.wall_ms);
  metrics.counter("core.sharded.rounds").add(1);
  return round;
}

Status ShardedAggregationService::fold_round(RoundResult& round) const {
  if (!fold_enabled() || round.shard_rounds.size() < 2) return {};
  std::vector<zvm::Receipt> leaves;
  leaves.reserve(round.shard_rounds.size());
  for (const auto& shard_round : round.shard_rounds) {
    leaves.push_back(shard_round.receipt);
  }
  FoldOptions fold_options;
  fold_options.fanout = options_.join_fanout;
  fold_options.prove_options = options_.prove_options;
  fold_options.prove_options.assumptions.clear();
  fold_options.leaf_sketches = round.shard_sketches;
  auto folded = fold_receipts(leaves, fold_options);
  if (!folded.ok()) return folded.error();
  round.total_cycles += folded.value().total_cycles;
  round.wall_ms += folded.value().wall_ms;
  round.tree_seal = std::move(folded.value().root);
  round.round_sketch = std::move(folded.value().sketch);
  return {};
}

Result<RoundResult> ShardedAggregationService::aggregate(
    std::span<const netflow::RLogBatch> batches) {
  obs::ScopedSpan span("sharded_round");
  auto staged = stage(batches);
  if (!staged.ok()) return staged.error();
  ZKT_TRY(commit_staged(staged.value()));
  auto round = prove_shards(std::move(staged.value()));
  if (!round.ok()) return round.error();
  ZKT_TRY(fold_round(round.value()));
  return round;
}

Status ShardedAggregationService::restore(
    const ShardedChainSnapshot& snap,
    std::vector<zvm::Receipt> shard_receipts) {
  if (rounds_ != 0) {
    return Error{Errc::invalid_argument,
                 "restore() requires a fresh sharded service"};
  }
  if (snap.shard_count != shard_count_ ||
      snap.shards.size() != shard_count_) {
    return Error{Errc::invalid_argument,
                 "sharded snapshot shard count does not match the service "
                 "(recovering with a different --shards value?)"};
  }
  if (shard_receipts.size() != shard_count_) {
    return Error{Errc::invalid_argument,
                 "restore() needs one receipt per shard"};
  }
  for (u32 s = 0; s < shard_count_; ++s) {
    if (snap.shards[s].claim_digest != shard_receipts[s].claim.digest()) {
      return Error{Errc::chain_broken,
                   "sharded snapshot does not match shard " +
                       std::to_string(s) + "'s stored receipt"};
    }
    auto state = snap.shards[s].restore_state();
    if (!state.ok()) return state.error();
    auto sketch = snap.shards[s].restore_sketch();
    if (!sketch.ok()) return sketch.error();
    ZKT_TRY(shards_[s]->restore(std::move(state.value()),
                                std::move(shard_receipts[s]),
                                snap.round_id,
                                std::move(sketch.value())));
  }
  rounds_ = snap.round_id;
  return {};
}

Status ShardedAggregationService::replay_round(
    std::span<const netflow::RLogBatch> batches,
    std::span<const zvm::Receipt> shard_receipts) {
  if (shard_receipts.size() != shard_count_) {
    return Error{Errc::invalid_argument,
                 "replay_round() needs one receipt per shard"};
  }
  for (u32 s = 0; s < shard_count_; ++s) {
    std::vector<netflow::RLogBatch> subs;
    subs.reserve(batches.size());
    for (const auto& batch : batches) {
      subs.push_back(sub_batch_for(batch, s, shard_count_));
    }
    ZKT_TRY(shards_[s]->replay_round(subs, shard_receipts[s]));
  }
  ++rounds_;
  return {};
}

u64 ShardedAggregationService::total_entries() const {
  u64 total = 0;
  for (u32 s = 0; s < shard_count_; ++s) total += shards_[s]->state().entry_count();
  return total;
}

ShardedAuditor::ShardedAuditor(const CommitmentBoard& board, u32 shard_count)
    : board_(&board),
      shard_count_(std::max<u32>(shard_count, 1)),
      last_claims_(shard_count_),
      roots_(shard_count_, crypto::MerkleTree::empty_leaf()),
      entry_counts_(shard_count_, 0),
      genesis_done_(shard_count_, false),
      shard_sketch_digests_(shard_count_) {}

/// Chain-link fields of one shard's round, whichever proof object carried
/// them (a per-shard AggJournal or a tree seal's leaf ShardLink).
struct ShardedAuditor::ShardChainFields {
  Digest32 claim_digest;
  bool has_prev = false;
  Digest32 prev_claim_digest;
  Digest32 prev_root;
  Digest32 new_root;
  u64 prev_entry_count = 0;
  u64 new_entry_count = 0;
  const std::vector<CommitmentRef>* commitments = nullptr;
  /// Sketch chaining fields; params come from the carrying journal (the
  /// tree seal's JoinJournal, or the shard's own AggJournal).
  bool has_sketch = false;
  Digest32 prev_sketch_digest;
  Digest32 sketch_digest;
  netflow::SketchParams sketch_params;
};

Status ShardedAuditor::verify_splits(
    const RoundResult& round,
    std::map<std::tuple<u32, u64, u32>, ShardRef>& expected) {
  // Split proofs are independent of each other, so they fan out over the
  // shared pool (each lane still hashes through the batched SHA-256
  // backends); outcomes are consumed in input order, so the first error
  // reported matches the sequential walk.
  // zkt-lint: shared(one slot per split receipt; workers write disjoint indices, read after join)
  std::vector<Status> split_outcomes(round.split_receipts.size());
  common::ThreadPool::shared().parallel_for(
      round.split_receipts.size(), 1, [&](size_t first, size_t last) {
        for (size_t i = first; i < last; ++i) {
          split_outcomes[i] =
              verifier_.verify(round.split_receipts[i], shard_split_image());
        }
      });

  // Anchor every split to the real board and index the per-shard
  // sub-commitments it attests to.
  for (size_t i = 0; i < round.split_receipts.size(); ++i) {
    const auto& receipt = round.split_receipts[i];
    ZKT_TRY(split_outcomes[i]);
    auto journal = SplitJournal::parse(receipt.journal);
    if (!journal.ok()) return journal.error();
    const SplitJournal& j = journal.value();
    if (j.shard_count != shard_count_) {
      return Error{Errc::proof_invalid, "split proof has wrong shard count"};
    }
    auto published = board_->get(j.source.router_id, j.source.window_id);
    if (!published.has_value() ||
        published->rlog_hash != j.source.rlog_hash ||
        published->record_count != j.source.record_count) {
      return Error{Errc::commitment_missing,
                   "split proof does not match the bulletin board"};
    }
    for (const auto& shard : j.shards) {
      expected[{j.source.router_id, j.source.window_id, shard.shard_id}] =
          shard;
    }
  }
  return {};
}

Status ShardedAuditor::accept_shard_link(
    u32 shard, const ShardChainFields& fields, size_t source_batches,
    const std::map<std::tuple<u32, u64, u32>, ShardRef>& expected) {
  if (!genesis_done_[shard]) {
    if (fields.has_prev || fields.prev_entry_count != 0) {
      return Error{Errc::chain_broken, "shard genesis mismatch"};
    }
  } else {
    if (!fields.has_prev || fields.prev_claim_digest != last_claims_[shard] ||
        fields.prev_root != roots_[shard] ||
        fields.prev_entry_count != entry_counts_[shard]) {
      return Error{Errc::chain_broken, "shard chain mismatch"};
    }
  }
  // Sketch continuity, chained per shard exactly like prev_root.
  if (!genesis_done_[shard]) {
    if (fields.has_sketch) {
      const netflow::RoundSketch empty{fields.sketch_params};
      if (fields.prev_sketch_digest != empty.hash()) {
        return Error{Errc::chain_broken,
                     "shard genesis does not start from the empty sketch"};
      }
    }
  } else {
    if (fields.has_sketch != sketch_present_) {
      return Error{Errc::chain_broken,
                   "shard disagrees with its chain about sketch carriage"};
    }
    if (fields.has_sketch) {
      if (fields.sketch_params != sketch_params_) {
        return Error{Errc::chain_broken,
                     "shard sketch params changed mid-chain"};
      }
      if (fields.prev_sketch_digest != shard_sketch_digests_[shard]) {
        return Error{Errc::chain_broken,
                     "shard does not chain onto its accepted sketch"};
      }
    }
  }
  if (fields.commitments->size() != source_batches) {
    return Error{Errc::proof_invalid,
                 "shard must consume one sub-batch per source batch"};
  }
  // Every consumed commitment must be the split output for THIS shard —
  // the position check is what catches swapped shard receipts/links.
  for (const auto& ref : *fields.commitments) {
    auto it = expected.find({ref.router_id, ref.window_id, shard});
    if (it == expected.end() ||
        it->second.sub_batch_hash != ref.rlog_hash ||
        it->second.record_count != ref.record_count) {
      return Error{Errc::hash_mismatch,
                   "shard consumed data not attested by a split proof"};
    }
  }
  last_claims_[shard] = fields.claim_digest;
  roots_[shard] = fields.new_root;
  entry_counts_[shard] = fields.new_entry_count;
  genesis_done_[shard] = true;
  sketch_present_ = fields.has_sketch;
  shard_sketch_digests_[shard] = fields.sketch_digest;
  if (fields.has_sketch) sketch_params_ = fields.sketch_params;
  return {};
}

Status ShardedAuditor::accept_round(const RoundResult& round) {
  std::map<std::tuple<u32, u64, u32>, ShardRef> expected;

  if (round.tree_seal.has_value()) {
    // Tree path: ONE join receipt transitively verifies every shard chain
    // round (composite seals recurse down to the shard receipts; succinct
    // seals are the constant-cost client check). The journal's leaf links
    // carry each shard's chain fields in shard order.
    ZKT_TRY(verify_join_receipt(verifier_, *round.tree_seal));
    auto journal = JoinJournal::parse(round.tree_seal->journal);
    if (!journal.ok()) return journal.error();
    const JoinJournal& j = journal.value();
    if (j.leaf_count != shard_count_ || j.links.size() != shard_count_) {
      return Error{Errc::proof_invalid, "tree seal has wrong shard count"};
    }
    // When the round also carries the shard receipts, they must be the
    // ones the seal folded — a mismatched assembly is rejected rather than
    // silently trusting either side.
    if (!round.shard_rounds.empty()) {
      if (round.shard_rounds.size() != shard_count_) {
        return Error{Errc::proof_invalid, "wrong number of shard rounds"};
      }
      for (u32 s = 0; s < shard_count_; ++s) {
        if (round.shard_rounds[s].receipt.claim.digest() !=
            j.links[s].claim_digest) {
          return Error{Errc::proof_invalid,
                       "shard receipt does not match the tree seal's leaf"};
        }
      }
    }
    ZKT_TRY(verify_splits(round, expected));
    for (u32 s = 0; s < shard_count_; ++s) {
      const ShardLink& link = j.links[s];
      ShardChainFields fields;
      fields.claim_digest = link.claim_digest;
      fields.has_prev = link.has_prev;
      fields.prev_claim_digest = link.prev_claim_digest;
      fields.prev_root = link.prev_root;
      fields.new_root = link.new_root;
      fields.prev_entry_count = link.prev_entry_count;
      fields.new_entry_count = link.new_entry_count;
      fields.commitments = &link.commitments;
      fields.has_sketch = link.has_sketch;
      fields.prev_sketch_digest = link.prev_sketch_digest;
      fields.sketch_digest = link.sketch_digest;
      fields.sketch_params = j.sketch_params;
      ZKT_TRY(accept_shard_link(s, fields, round.split_receipts.size(),
                                expected));
    }
    // The seal binds the merged round sketch (the join guest summed the
    // shard sketches in trace); remember its digest for query verification.
    round_sketch_known_ = j.has_sketch;
    round_sketch_digest_ = j.sketch_digest;
    ++rounds_;
    return {};
  }

  // Per-shard path (no fold): verify every shard receipt in one pooled
  // batch pass, then chain each on.
  if (round.shard_rounds.size() != shard_count_) {
    return Error{Errc::proof_invalid, "wrong number of shard rounds"};
  }
  std::vector<const zvm::Receipt*> shard_receipts;
  shard_receipts.reserve(round.shard_rounds.size());
  for (const auto& shard_round : round.shard_rounds) {
    shard_receipts.push_back(&shard_round.receipt);
  }
  const std::vector<Status> shard_outcomes =
      batch_.verify_aggregation(shard_receipts);
  ZKT_TRY(verify_splits(round, expected));

  for (u32 s = 0; s < shard_count_; ++s) {
    const auto& shard_round = round.shard_rounds[s];
    ZKT_TRY(shard_outcomes[s]);
    auto journal = AggJournal::parse(shard_round.receipt.journal);
    if (!journal.ok()) return journal.error();
    const AggJournal& j = journal.value();
    ShardChainFields fields;
    fields.claim_digest = shard_round.receipt.claim.digest();
    fields.has_prev = j.has_prev;
    fields.prev_claim_digest = j.prev_claim_digest;
    fields.prev_root = j.prev_root;
    fields.new_root = j.new_root;
    fields.prev_entry_count = j.prev_entry_count;
    fields.new_entry_count = j.new_entry_count;
    fields.commitments = &j.commitments;
    fields.has_sketch = j.has_sketch;
    fields.prev_sketch_digest = j.prev_sketch_digest;
    fields.sketch_digest = j.sketch_digest;
    fields.sketch_params = j.sketch_params;
    ZKT_TRY(accept_shard_link(s, fields, round.split_receipts.size(),
                              expected));
  }
  // No tree seal, so no proven merged round sketch this round.
  round_sketch_known_ = false;
  ++rounds_;
  return {};
}

u64 ShardedAuditor::total_entries() const {
  u64 total = 0;
  for (u64 c : entry_counts_) total += c;
  return total;
}

}  // namespace zkt::core
