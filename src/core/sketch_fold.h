// Traced sketch arithmetic shared by the aggregation guests (per-record
// fold into the proof-carrying RoundSketch), the join guest (shard-sketch
// merge) and the sketch query guests (index recomputation).
//
// Every helper is the guest-side twin of a host operation in
// netflow/sketch.{h,cpp}: same bytes, same saturation, but the hashing and
// the counter arithmetic are trace rows. Host and guest must agree bit for
// bit — the aggregation service cross-checks its mirrored sketch hash
// against the journal digest every round.
//
// Lives in core (not netflow) because the module DAG keeps netflow below
// zvm; this is the only place sketch state meets the Env.
#pragma once

#include "netflow/sketch.h"
#include "zvm/env.h"

namespace zkt::core {

/// Traced saturating add: add + ltu + select, matching netflow::sat_add.
u64 sat_add_traced(zvm::Env& env, u64 a, u64 b);

/// Traced equivalent of CountMinSketch::index_for: same bytes, same hash,
/// but the hashing and the modulo are trace rows.
u32 cms_index_traced(zvm::Env& env, const netflow::CountMinParams& params,
                     u32 row, const netflow::FlowKey& key);

/// Fold one record into the round sketch: depth traced index hashes +
/// saturating counter adds, a traced total update, and the (plain, but
/// digest-bound) Space-Saving update.
void sketch_fold_record_traced(zvm::Env& env, netflow::RoundSketch& sketch,
                               const netflow::FlowKey& key, u64 count);

/// Merge `other` into `sketch` with traced counter adds; asserts parameter
/// equality in-trace. The Space-Saving combine is plain (deterministic and
/// bound by the output digest).
Status sketch_merge_traced(zvm::Env& env, netflow::RoundSketch& sketch,
                           const netflow::RoundSketch& other);

/// Traced Count-Min point estimate: min over rows of the counter at the
/// key's traced index (select-based min, no branches in the trace). Twin of
/// CountMinSketch::estimate.
u64 cms_point_estimate_traced(zvm::Env& env,
                              const netflow::CountMinSketch& cm,
                              const netflow::FlowKey& key);

/// Traced SHA-256 over the sketch's canonical bytes — the digest the round
/// journal carries.
crypto::Digest32 sketch_digest_traced(zvm::Env& env,
                                      const netflow::RoundSketch& sketch);

}  // namespace zkt::core
