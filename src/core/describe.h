// Human-readable receipt introspection: renders any zktel receipt (its
// claim, seal shape, and journal decoded according to the guest that
// produced it) as text. Backs the zkt-inspect tool and debugging output.
#pragma once

#include <string>

#include "zvm/receipt.h"

namespace zkt::core {

/// Multi-line description of a receipt. Never fails: unknown images or
/// malformed journals are described as such.
std::string describe_receipt(const zvm::Receipt& receipt);

/// One-line summary (image name, cycles, sizes).
std::string summarize_receipt(const zvm::Receipt& receipt);

}  // namespace zkt::core
