// Human-readable receipt introspection: renders any zktel receipt (its
// claim, seal shape, and journal decoded according to the guest that
// produced it) as text. Backs the zkt-inspect tool and debugging output.
#pragma once

#include <string>

#include "core/histogram_query.h"
#include "zvm/receipt.h"

namespace zkt::core {

/// Fraction of histogram samples provably below the queried bound, in
/// [0, 1]. Lives here (host-side) rather than on HistogramQueryJournal
/// because that type is guest-reachable and guests must stay float-free;
/// the guest publishes the exact (count_below, total) pair instead.
double fraction_below(const HistogramQueryJournal& j);

/// Multi-line description of a receipt. Never fails: unknown images or
/// malformed journals are described as such.
std::string describe_receipt(const zvm::Receipt& receipt);

/// One-line summary (image name, cycles, sizes).
std::string summarize_receipt(const zvm::Receipt& receipt);

}  // namespace zkt::core
