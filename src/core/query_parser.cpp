#include "core/query_parser.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace zkt::core {

namespace {

struct Token {
  enum Kind { word, number, ip, op, lparen, rparen, end } kind = end;
  std::string text;
};

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '(') {
        tokens.push_back({Token::lparen, "("});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back({Token::rparen, ")"});
        ++pos_;
      } else if (c == '=' || c == '!' || c == '<' || c == '>') {
        std::string op(1, c);
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          op += '=';
          ++pos_;
        }
        if (op == "!") {
          return Error{Errc::parse_error, "lone '!' in query"};
        }
        tokens.push_back({Token::op, op});
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        bool dotted = false;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.')) {
          if (text_[pos_] == '.') dotted = true;
          ++pos_;
        }
        tokens.push_back({dotted ? Token::ip : Token::number,
                          std::string(text_.substr(start, pos_ - start))});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_')) {
          ++pos_;
        }
        tokens.push_back(
            {Token::word, lower(text_.substr(start, pos_ - start))});
      } else {
        return Error{Errc::parse_error,
                     std::string("unexpected character '") + c + "'"};
      }
    }
    tokens.push_back({Token::end, ""});
    return tokens;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Result<QField> field_from_name(const std::string& name) {
  for (u8 f = 1; f <= static_cast<u8>(QField::jitter_avg_us); ++f) {
    if (name == qfield_name(static_cast<QField>(f))) {
      return static_cast<QField>(f);
    }
  }
  return Error{Errc::parse_error, "unknown field: " + name};
}

Result<CmpOp> cmp_from_op(const std::string& op) {
  if (op == "=" || op == "==") return CmpOp::eq;
  if (op == "!=") return CmpOp::ne;
  if (op == "<") return CmpOp::lt;
  if (op == "<=") return CmpOp::le;
  if (op == ">") return CmpOp::gt;
  if (op == ">=") return CmpOp::ge;
  return Error{Errc::parse_error, "unknown comparison: " + op};
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> run() {
    Query query;
    ZKT_TRY(parse_agg(query));
    if (peek().kind == Token::word && peek().text == "where") {
      advance();
      for (;;) {
        auto clause = parse_clause();
        if (!clause.ok()) return clause.error();
        query.where.push_back(std::move(clause.value()));
        if (peek().kind == Token::word && peek().text == "and") {
          advance();
          continue;
        }
        break;
      }
    }
    if (peek().kind != Token::end) {
      return Error{Errc::parse_error, "trailing input: " + peek().text};
    }
    return query;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }

  Status parse_agg(Query& query) {
    if (peek().kind != Token::word) {
      return Error{Errc::parse_error, "expected aggregate"};
    }
    const std::string agg = advance().text;
    if (agg == "count") {
      query.agg = AggKind::count;
      // Optional COUNT(*) style parens.
      if (peek().kind == Token::lparen) {
        advance();
        if (peek().kind == Token::word) advance();  // allow count(packets)
        if (peek().kind != Token::rparen) {
          return Error{Errc::parse_error, "expected ')'"};
        }
        advance();
      }
      return {};
    }
    if (agg == "sum") query.agg = AggKind::sum;
    else if (agg == "min") query.agg = AggKind::min;
    else if (agg == "max") query.agg = AggKind::max;
    else return Error{Errc::parse_error, "unknown aggregate: " + agg};

    if (peek().kind != Token::lparen) {
      return Error{Errc::parse_error, agg + " requires a field argument"};
    }
    advance();
    if (peek().kind != Token::word) {
      return Error{Errc::parse_error, "expected field name"};
    }
    auto field = field_from_name(advance().text);
    if (!field.ok()) return field.error();
    query.agg_field = field.value();
    if (peek().kind != Token::rparen) {
      return Error{Errc::parse_error, "expected ')'"};
    }
    advance();
    return {};
  }

  Result<std::vector<Condition>> parse_clause() {
    const bool parenthesized = peek().kind == Token::lparen;
    if (parenthesized) advance();
    std::vector<Condition> clause;
    for (;;) {
      auto cond = parse_condition();
      if (!cond.ok()) return cond.error();
      clause.push_back(cond.value());
      if (peek().kind == Token::word && peek().text == "or") {
        advance();
        continue;
      }
      break;
    }
    if (parenthesized) {
      if (peek().kind != Token::rparen) {
        return Error{Errc::parse_error, "expected ')' to close clause"};
      }
      advance();
    }
    return clause;
  }

  Result<Condition> parse_condition() {
    if (peek().kind != Token::word) {
      return Error{Errc::parse_error, "expected field name"};
    }
    auto field = field_from_name(advance().text);
    if (!field.ok()) return field.error();
    if (peek().kind != Token::op) {
      return Error{Errc::parse_error, "expected comparison operator"};
    }
    auto op = cmp_from_op(advance().text);
    if (!op.ok()) return op.error();

    u64 value = 0;
    if (peek().kind == Token::number) {
      const std::string& text = advance().text;
      const auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Error{Errc::parse_error, "bad number: " + text};
      }
    } else if (peek().kind == Token::ip) {
      auto ip = netflow::parse_ipv4(advance().text);
      if (!ip.ok()) return ip.error();
      value = ip.value();
    } else {
      return Error{Errc::parse_error, "expected value"};
    }
    return Condition{field.value(), op.value(), value};
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> parse_query(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.run();
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens.value()));
  return parser.run();
}

}  // namespace zkt::core
