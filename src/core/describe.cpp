#include "core/describe.h"

#include <sstream>

#include "core/chain_summary.h"
#include "core/grouped_query.h"
#include "core/histogram_query.h"
#include "core/guests.h"
#include "core/sharded.h"
#include "core/sketch_query.h"

namespace zkt::core {

double fraction_below(const HistogramQueryJournal& j) {
  return j.total == 0 ? 0.0
                      : static_cast<double>(j.count_below) /
                            static_cast<double>(j.total);
}

namespace {

const char* image_name(const zvm::ImageID& id) {
  const auto& images = guest_images();
  if (id == images.aggregate) return "zkt.guest.aggregate";
  if (id == images.aggregate_incremental) {
    return "zkt.guest.aggregate_incremental";
  }
  if (id == images.query) return "zkt.guest.query";
  if (id == images.query_selective) return "zkt.guest.query_selective";
  if (id == grouped_query_image()) return "zkt.guest.query_grouped";
  if (id == shard_split_image()) return "zkt.guest.shard_split";
  if (id == join_image()) return "zkt.guest.join";
  if (id == sketch_query_image()) return "zkt.guest.sketch_query";
  if (id == sketch_heavy_image()) return "zkt.guest.sketch_heavy";
  if (id == sketch_card_image()) return "zkt.guest.sketch_card";
  if (id == chain_summary_image()) return "zkt.guest.chain_summary";
  if (id == histogram_query_image()) return "zkt.guest.histogram_query";
  return nullptr;
}

std::string short_hex(const crypto::Digest32& d) {
  return d.hex().substr(0, 16) + "…";
}

void describe_journal(std::ostringstream& os, const zvm::Receipt& receipt) {
  const char* name = image_name(receipt.claim.image_id);
  if (name == nullptr) {
    os << "  journal: " << receipt.journal.size()
       << " bytes (unknown image; not decoded)\n";
    return;
  }
  const std::string kind = name;
  if (kind == "zkt.guest.aggregate" ||
      kind == "zkt.guest.aggregate_incremental") {
    auto j = AggJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  aggregation round ("
       << (j.value().kind == RoundKind::incremental ? "incremental"
                                                    : "full rebuild")
       << "):\n"
       << "    prev root    " << short_hex(j.value().prev_root)
       << (j.value().has_prev ? "" : " (genesis)") << "\n"
       << "    new root     " << short_hex(j.value().new_root) << "\n"
       << "    entries      " << j.value().prev_entry_count << " -> "
       << j.value().new_entry_count << "\n"
       << "    commitments  " << j.value().commitments.size() << " batch(es)";
    for (const auto& c : j.value().commitments) {
      os << "\n      router " << c.router_id << " window " << c.window_id
         << ": " << c.record_count << " records, H=" << short_hex(c.rlog_hash);
    }
    os << "\n    updates      " << j.value().update_count << " entr"
       << (j.value().update_count == 1 ? "y" : "ies") << " (digest "
       << short_hex(j.value().updates_digest) << ")\n";
    if (j.value().kind == RoundKind::incremental) {
      os << "    delta shape  " << j.value().touched_entries
         << " opened entr"
         << (j.value().touched_entries == 1 ? "y" : "ies") << ", "
         << j.value().multiproof_siblings << " multiproof sibling(s)\n";
    }
    if (j.value().has_sketch) {
      os << "    sketch       " << short_hex(j.value().prev_sketch_digest)
         << " -> " << short_hex(j.value().sketch_digest) << " ("
         << j.value().sketch_params.cm.width << "x"
         << j.value().sketch_params.cm.depth << ", heavy cap "
         << j.value().sketch_params.heavy_capacity << ", "
         << j.value().sketch_total << " updates)\n";
    }
  } else if (kind == "zkt.guest.query" ||
             kind == "zkt.guest.query_selective") {
    auto j = QueryJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  query ("
       << (j.value().mode == QueryMode::complete ? "complete scan"
                                                 : "selective")
       << "):\n"
       << "    " << j.value().query.to_string() << "\n"
       << "    against root " << short_hex(j.value().agg_root) << " ("
       << j.value().entry_count << " entries)\n"
       << "    result: " << j.value().result.value(j.value().query.agg)
       << "  [matched " << j.value().result.matched << ", scanned "
       << j.value().result.scanned << "]\n";
  } else if (kind == "zkt.guest.query_grouped") {
    auto j = GroupedQueryJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  grouped query:\n    " << j.value().query.to_string()
       << " GROUP BY " << qfield_name(j.value().group_field) << "\n"
       << "    " << j.value().groups.size() << " group(s):\n";
    for (const auto& g : j.value().groups) {
      os << "      " << qfield_name(j.value().group_field) << "="
         << g.group_value << " -> "
         << g.stats.value(j.value().query.agg) << " (" << g.stats.matched
         << " flows)\n";
    }
  } else if (kind == "zkt.guest.shard_split") {
    auto j = SplitJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  shard split: router " << j.value().source.router_id
       << " window " << j.value().source.window_id << " ("
       << j.value().source.record_count << " records) -> "
       << j.value().shard_count << " shards\n";
  } else if (kind == "zkt.guest.chain_summary") {
    auto j = ChainSummaryJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  epoch seal: " << j.value().rounds << " round(s)"
       << (j.value().genesis ? " from genesis" : " mid-chain") << ", "
       << j.value().commitment_count << " commitment(s)\n"
       << "    span  " << short_hex(j.value().first_claim_digest) << " -> "
       << short_hex(j.value().final_claim_digest) << "\n"
       << "    final root " << short_hex(j.value().final_root) << " ("
       << j.value().final_entry_count << " entries)\n"
       << "    commitment chain "
       << short_hex(j.value().first_commitments_digest) << " -> "
       << short_hex(j.value().final_commitments_digest) << "\n";
    if (j.value().has_sketch) {
      os << "    sketch chain " << short_hex(j.value().first_sketch_digest)
         << " -> " << short_hex(j.value().final_sketch_digest) << " ("
         << j.value().final_sketch_total << " updates)\n";
    }
  } else if (kind == "zkt.guest.sketch_query") {
    auto j = SketchQueryJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  sketch query: flow " << j.value().key.to_string()
       << "\n    estimate " << j.value().estimate << " (sketch H="
       << short_hex(j.value().commitment.rlog_hash) << ", "
       << j.value().commitment.record_count << " updates)\n";
  } else if (kind == "zkt.guest.join") {
    auto j = JoinJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  join tree: height " << j.value().height << ", "
       << j.value().leaf_count << " leaf (shard) chain(s), "
       << j.value().total_entries << " entries\n"
       << "    fold digest  " << short_hex(j.value().fold_digest) << "\n";
    if (j.value().has_sketch) {
      os << "    round sketch " << short_hex(j.value().sketch_digest) << " ("
         << j.value().sketch_params.cm.width << "x"
         << j.value().sketch_params.cm.depth << ", heavy cap "
         << j.value().sketch_params.heavy_capacity << ", "
         << j.value().sketch_total << " updates)\n";
    }
  } else if (kind == "zkt.guest.sketch_heavy") {
    auto j = SketchHeavyJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  sketch heavy hitters: threshold " << j.value().threshold
       << " over " << j.value().total << " updates (sketch "
       << short_hex(j.value().sketch_digest) << ", round claim "
       << short_hex(j.value().agg_claim_digest) << ")\n"
       << "    " << j.value().hits.size() << " hit(s):\n";
    for (const auto& hit : j.value().hits) {
      os << "      " << hit.key.to_string() << " count " << hit.count
         << " (err<=" << hit.error << ", cms " << hit.cms_estimate << ")\n";
    }
  } else if (kind == "zkt.guest.sketch_card") {
    auto j = SketchCardinalityJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  sketch cardinality: " << j.value().distinct_flows
       << " distinct flow(s), CMS lower bound "
       << j.value().cms_lower_bound << " (sketch "
       << short_hex(j.value().sketch_digest) << ", round claim "
       << short_hex(j.value().agg_claim_digest) << ")\n";
  } else if (kind == "zkt.guest.histogram_query") {
    auto j = HistogramQueryJournal::parse(receipt.journal);
    if (!j.ok()) {
      os << "  journal: MALFORMED (" << j.error().to_string() << ")\n";
      return;
    }
    os << "  histogram quantile bound: " << j.value().count_below << " of "
       << j.value().total << " samples < " << j.value().bound_us << " us ("
       << 100.0 * fraction_below(j.value()) << "%)\n";
  }
}

}  // namespace

std::string summarize_receipt(const zvm::Receipt& receipt) {
  std::ostringstream os;
  const char* name = image_name(receipt.claim.image_id);
  os << (name != nullptr ? name : "unknown-image") << ", "
     << receipt.claim.cycle_count << " cycles, journal "
     << receipt.journal.size() << " B, "
     << (receipt.seal_kind == zvm::SealKind::succinct ? "succinct"
                                                      : "composite")
     << " seal " << receipt.seal_size_bytes() << " B, receipt "
     << receipt.receipt_size_bytes() << " B";
  return os.str();
}

std::string describe_receipt(const zvm::Receipt& receipt) {
  std::ostringstream os;
  os << summarize_receipt(receipt) << "\n";
  os << "  claim " << short_hex(receipt.claim.digest()) << ", input "
     << short_hex(receipt.claim.input_digest) << ", journal "
     << short_hex(receipt.claim.journal_digest) << "\n";
  if (!receipt.claim.assumptions.empty()) {
    os << "  assumptions: " << receipt.claim.assumptions.size()
       << " inner claim(s)\n";
  }
  if (receipt.seal_kind == zvm::SealKind::composite) {
    os << "  segments: " << receipt.composite.segments.size() << " (";
    for (size_t i = 0; i < receipt.composite.segments.size(); ++i) {
      if (i > 0) os << ", ";
      os << receipt.composite.segments[i].row_count << " rows/"
         << receipt.composite.segments[i].openings.size() << " opened";
    }
    os << ")\n";
  }
  describe_journal(os, receipt);
  return os.str();
}

}  // namespace zkt::core
