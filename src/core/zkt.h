// Umbrella header: the public API of the zktel library.
//
// Typical prover-side flow:
//   CommitmentBoard board;                       // public bulletin board
//   ... routers publish signed commitments ...
//   AggregationService agg(board);
//   agg.aggregate(batches);                      // Algorithm-1 round + proof
//   QueryService queries(agg);
//   auto resp = queries.run(Query::sum(QField::hop_sum)
//                               .and_where(QField::src_ip, CmpOp::eq, ip));
//
// Typical verifier-side flow:
//   Auditor auditor(board);
//   auditor.accept_round(round.receipt);         // verify + chain one round
//   auditor.verify_query(resp->receipt,
//                        {.expected_query = &query});  // verify + extract
//
// Catching up on a long chain (receipts saved with save_receipts):
//   auto source = ReceiptFileSource::open("chain.rcpt");
//   auditor.audit(source.value());               // O(1)-memory batch audit
#pragma once

#include "core/auditor.h"
#include "core/batch_verifier.h"
#include "core/clog.h"
#include "core/commitment.h"
#include "core/guests.h"
#include "core/io.h"
#include "core/query.h"
#include "core/service.h"
#include "crypto/merkle.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "netflow/cache.h"
#include "netflow/record.h"
#include "netflow/v9.h"
#include "store/logstore.h"
#include "zvm/prover.h"
#include "zvm/verifier.h"
