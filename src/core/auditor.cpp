#include "core/auditor.h"

#include <vector>

#include "core/io.h"
#include "obs/metrics.h"

namespace zkt::core {

namespace {

/// Overrides batch.min_queries: the auditor's floor is the single source of
/// truth for every verification it performs.
BatchVerifierOptions batch_options(const AuditorOptions& options) {
  BatchVerifierOptions batch = options.batch;
  batch.min_queries = options.min_queries;
  return batch;
}

/// Publish a verification pass to obs (docs/OBSERVABILITY.md catalog).
void publish_verify_metrics(const zvm::VerifyStats& stats) {
  obs::Registry& metrics = obs::Registry::instance();
  metrics.counter("core.auditor.receipts_verified").add(stats.receipts);
  metrics.counter("core.auditor.openings_checked").add(stats.openings);
  metrics.counter("core.auditor.traced_hashes_shared")
      .add(stats.node_hashes_shared);
  metrics.counter("core.auditor.assumptions_skipped")
      .add(stats.assumptions_skipped);
}

}  // namespace

void AcceptedClaimWindow::insert(const Digest32& claim_digest) {
  if (!lookup_.insert(claim_digest.bytes).second) return;  // already present
  order_.push_back(claim_digest.bytes);
  if (capacity_ == 0) return;  // unbounded
  while (order_.size() > capacity_) {
    lookup_.erase(order_.front());
    order_.pop_front();
  }
}

Auditor::Auditor(const CommitmentBoard& board, AuditorOptions options)
    : board_(&board),
      options_(options),
      verifier_(options.min_queries),
      batch_(batch_options(options)),
      claims_(options.accepted_claim_window) {
  if (options_.backend.has_value()) {
    // Best-effort process-global pin; an unavailable backend leaves runtime
    // dispatch in place (see AuditorOptions::backend).
    crypto::sha256_force_backend(*options_.backend);
  }
}

Result<AggJournal> Auditor::accept_round(const zvm::Receipt& receipt) {
  zvm::VerifyStats stats;
  const Status verified = verify_aggregation_receipt(
      verifier_, receipt, zvm::VerifyContext{nullptr, &stats});
  publish_verify_metrics(stats);
  ZKT_TRY(verified);
  return adopt_verified(receipt);
}

Result<AggJournal> Auditor::adopt_verified(const zvm::Receipt& receipt) {
  auto journal = AggJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const AggJournal& j = journal.value();

  // Chain continuity.
  if (rounds_ == 0) {
    if (j.has_prev) {
      return Error{Errc::chain_broken, "first round claims a predecessor"};
    }
    if (j.prev_entry_count != 0 ||
        j.prev_root != crypto::MerkleTree::empty_leaf()) {
      return Error{Errc::chain_broken, "first round does not start empty"};
    }
  } else {
    if (!j.has_prev) {
      return Error{Errc::chain_broken, "non-genesis round without prev"};
    }
    if (j.prev_claim_digest != last_claim_digest_) {
      return Error{Errc::chain_broken,
                   "round does not chain onto the accepted claim"};
    }
    if (j.prev_root != current_root_ ||
        j.prev_entry_count != current_entry_count_) {
      return Error{Errc::chain_broken,
                   "round does not extend the accepted state"};
    }
  }

  // Sketch continuity: chained exactly like the Merkle root. Once a chain
  // carries a sketch every round must keep carrying it with the same
  // params, each round's prev digest must equal the digest we accepted
  // last round, and at genesis it must be the EMPTY sketch's hash — a
  // chain cannot start from seeded counters.
  if (sketch_known_) {
    if (rounds_ == 0) {
      if (j.has_sketch) {
        const netflow::RoundSketch empty{j.sketch_params};
        if (j.prev_sketch_digest != empty.hash()) {
          return Error{Errc::chain_broken,
                       "genesis round does not start from the empty sketch"};
        }
      }
    } else {
      if (j.has_sketch != sketch_present_) {
        return Error{Errc::chain_broken,
                     "round disagrees with the chain about sketch carriage"};
      }
      if (j.has_sketch) {
        if (!(j.sketch_params == sketch_params_)) {
          return Error{Errc::chain_broken, "sketch params changed mid-chain"};
        }
        if (j.prev_sketch_digest != sketch_digest_) {
          return Error{Errc::chain_broken,
                       "round does not chain onto the accepted sketch"};
        }
      }
    }
  }

  // Every commitment consumed must have been published (and thus signed).
  for (const auto& ref : j.commitments) {
    auto published = board_->get(ref.router_id, ref.window_id);
    if (!published.has_value()) {
      return Error{Errc::commitment_missing,
                   "round consumes an unpublished commitment (router " +
                       std::to_string(ref.router_id) + ", window " +
                       std::to_string(ref.window_id) + ")"};
    }
    if (published->rlog_hash != ref.rlog_hash ||
        published->record_count != ref.record_count) {
      return Error{Errc::hash_mismatch,
                   "round consumes a commitment that differs from the board"};
    }
  }

  last_claim_digest_ = receipt.claim.digest();
  claims_.insert(last_claim_digest_);
  current_root_ = j.new_root;
  current_entry_count_ = j.new_entry_count;
  // The first round after a summary re-establishes the sketch position
  // (its in-guest chaining covers the gap the summary skipped).
  sketch_known_ = true;
  sketch_present_ = j.has_sketch;
  if (j.has_sketch) {
    sketch_params_ = j.sketch_params;
    sketch_digest_ = j.sketch_digest;
  }
  ++rounds_;
  obs::Registry::instance().counter("core.auditor.rounds_accepted").add(1);
  return journal;
}

Result<u64> Auditor::accept_rounds(std::span<const zvm::Receipt> receipts,
                                   zvm::VerifyStats* stats) {
  return accept_rounds_impl(receipts, stats);
}

Result<u64> Auditor::accept_rounds_impl(std::span<const zvm::Receipt> receipts,
                                        zvm::VerifyStats* stats) {
  if (receipts.empty()) return u64{0};
  obs::Registry::instance()
      .histogram("core.auditor.batch_size")
      .record(static_cast<double>(receipts.size()));

  zvm::VerifyStats batch_stats;
  const std::vector<Status> outcomes =
      batch_.verify_aggregation(receipts, &batch_stats);
  publish_verify_metrics(batch_stats);
  if (stats != nullptr) stats->merge(batch_stats);

  // Chain on in order; the first failure (verification above, continuity or
  // board mismatch here) stops the walk with the accepted prefix retained —
  // byte-for-byte the state and error a loop over accept_round produces.
  u64 accepted = 0;
  for (size_t i = 0; i < receipts.size(); ++i) {
    if (!outcomes[i].ok()) return outcomes[i].error();
    auto journal = adopt_verified(receipts[i]);
    if (!journal.ok()) return journal.error();
    ++accepted;
  }
  return accepted;
}

Result<AuditReport> Auditor::audit(ReceiptSource& source,
                                   const AuditOptions& options) {
  const u64 window_size = options.batch_size == 0 ? 1 : options.batch_size;
  const u64 before = rounds_;
  std::vector<zvm::Receipt> window;
  window.reserve(window_size);

  bool done = false;
  while (!done) {
    window.clear();
    while (window.size() < window_size) {
      auto next = source.next();
      if (!next.ok()) return next.error();
      if (!next.value().has_value()) {
        done = true;
        break;
      }
      window.push_back(std::move(*next.value()));
    }
    if (window.empty()) break;
    ZKT_TRY(accept_rounds_impl(window, options.stats));
  }
  return AuditReport{rounds_ - before, head()};
}

Status Auditor::adopt_summary(const ChainHead& head) {
  if (rounds_ != 0) {
    return Error{Errc::chain_broken,
                 "cannot adopt a summary after accepting rounds"};
  }
  if (head.rounds == 0) {
    return Error{Errc::invalid_argument, "summary covers no rounds"};
  }
  last_claim_digest_ = head.claim_digest;
  claims_.insert(head.claim_digest);
  current_root_ = head.root;
  current_entry_count_ = head.entry_count;
  rounds_ = head.rounds;
  // Summaries carry no sketch state; the next accepted round re-anchors it.
  sketch_known_ = false;
  sketch_present_ = false;
  return {};
}

Result<QueryJournal> Auditor::verify_query(const zvm::Receipt& receipt,
                                           const VerifyOptions& options) {
  auto journal = QueryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const QueryJournal& j = journal.value();

  // The journal's claimed mode must match the image that actually ran.
  const auto& images = guest_images();
  const zvm::ImageID& expected_image = j.mode == QueryMode::complete
                                           ? images.query
                                           : images.query_selective;
  zvm::VerifyStats stats;
  const Status verified = verifier_.verify(
      receipt, expected_image, zvm::VerifyContext{nullptr, &stats});
  publish_verify_metrics(stats);
  if (options.stats != nullptr) options.stats->merge(stats);
  ZKT_TRY(verified);

  if (!claims_.contains(j.agg_claim_digest)) {
    return Error{Errc::chain_broken,
                 "query targets an aggregation round we never accepted"};
  }
  if (options.expected_query != nullptr &&
      j.query.digest() != options.expected_query->digest()) {
    return Error{Errc::proof_invalid,
                 "receipt proves a different query than requested"};
  }
  if (j.mode == QueryMode::complete && j.result.scanned != j.entry_count) {
    return Error{Errc::proof_invalid,
                 "complete query did not scan the full state"};
  }
  obs::Registry::instance().counter("core.auditor.queries_verified").add(1);
  return journal;
}

Status Auditor::check_sketch_query_binding(
    const Digest32& agg_claim_digest, const Digest32& queried_sketch_digest,
    const netflow::SketchParams& params) {
  if (!claims_.contains(agg_claim_digest)) {
    return Error{Errc::chain_broken,
                 "sketch query targets a round we never accepted"};
  }
  // When the query targets the current head and we track the sketch there,
  // pin it: a receipt answering against a stale or forged sketch digest is
  // rejected even though its seal verifies. (Older in-window rounds keep
  // only their claim digests; the in-guest chaining still binds the sketch
  // to that round's journal.)
  if (agg_claim_digest == last_claim_digest_ && sketch_known_) {
    if (!sketch_present_) {
      return Error{Errc::chain_broken,
                   "sketch query against a chain that carries no sketch"};
    }
    if (!(params == sketch_params_)) {
      return Error{Errc::proof_invalid,
                   "sketch query used different parameters than the chain"};
    }
    if (queried_sketch_digest != sketch_digest_) {
      return Error{Errc::proof_invalid,
                   "sketch query answered against a stale sketch digest"};
    }
  }
  return {};
}

Result<SketchHeavyJournal> Auditor::verify_heavy_hitters(
    const zvm::Receipt& receipt, const VerifyOptions& options) {
  zvm::VerifyStats stats;
  const Status verified = verifier_.verify(
      receipt, sketch_heavy_image(), zvm::VerifyContext{nullptr, &stats});
  publish_verify_metrics(stats);
  if (options.stats != nullptr) options.stats->merge(stats);
  ZKT_TRY(verified);

  auto journal = SketchHeavyJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const SketchHeavyJournal& j = journal.value();
  ZKT_TRY(check_sketch_query_binding(j.agg_claim_digest, j.sketch_digest,
                                     j.params));
  // Re-check the completeness floor the guest proved — belt and braces
  // against a parse/journal bug, and the error clients should understand.
  if (!sketch_heavy_bound_ok(j.threshold, j.params.heavy_capacity, j.total)) {
    return Error{Errc::proof_invalid,
                 "heavy-hitter threshold below the sketch's provable floor"};
  }
  obs::Registry::instance().counter("core.sketch.queries_verified").add(1);
  return journal;
}

Result<SketchCardinalityJournal> Auditor::verify_cardinality(
    const zvm::Receipt& receipt, const VerifyOptions& options) {
  zvm::VerifyStats stats;
  const Status verified = verifier_.verify(
      receipt, sketch_card_image(), zvm::VerifyContext{nullptr, &stats});
  publish_verify_metrics(stats);
  if (options.stats != nullptr) options.stats->merge(stats);
  ZKT_TRY(verified);

  auto journal = SketchCardinalityJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const SketchCardinalityJournal& j = journal.value();
  ZKT_TRY(check_sketch_query_binding(j.agg_claim_digest, j.sketch_digest,
                                     j.params));
  if (j.cms_lower_bound > j.distinct_flows) {
    return Error{Errc::proof_invalid,
                 "cardinality journal's lower bound exceeds its exact count"};
  }
  obs::Registry::instance().counter("core.sketch.queries_verified").add(1);
  return journal;
}

}  // namespace zkt::core
