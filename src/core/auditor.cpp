#include "core/auditor.h"

#include <vector>

#include "core/io.h"
#include "obs/metrics.h"

namespace zkt::core {

namespace {

/// Overrides batch.min_queries: the auditor's floor is the single source of
/// truth for every verification it performs.
BatchVerifierOptions batch_options(const AuditorOptions& options) {
  BatchVerifierOptions batch = options.batch;
  batch.min_queries = options.min_queries;
  return batch;
}

/// Publish a verification pass to obs (docs/OBSERVABILITY.md catalog).
void publish_verify_metrics(const zvm::VerifyStats& stats) {
  obs::Registry& metrics = obs::Registry::instance();
  metrics.counter("core.auditor.receipts_verified").add(stats.receipts);
  metrics.counter("core.auditor.openings_checked").add(stats.openings);
  metrics.counter("core.auditor.traced_hashes_shared")
      .add(stats.node_hashes_shared);
  metrics.counter("core.auditor.assumptions_skipped")
      .add(stats.assumptions_skipped);
}

}  // namespace

void AcceptedClaimWindow::insert(const Digest32& claim_digest) {
  if (!lookup_.insert(claim_digest.bytes).second) return;  // already present
  order_.push_back(claim_digest.bytes);
  if (capacity_ == 0) return;  // unbounded
  while (order_.size() > capacity_) {
    lookup_.erase(order_.front());
    order_.pop_front();
  }
}

Auditor::Auditor(const CommitmentBoard& board, AuditorOptions options)
    : board_(&board),
      options_(options),
      verifier_(options.min_queries),
      batch_(batch_options(options)),
      claims_(options.accepted_claim_window) {
  if (options_.backend.has_value()) {
    // Best-effort process-global pin; an unavailable backend leaves runtime
    // dispatch in place (see AuditorOptions::backend).
    crypto::sha256_force_backend(*options_.backend);
  }
}

Result<AggJournal> Auditor::accept_round(const zvm::Receipt& receipt) {
  zvm::VerifyStats stats;
  const Status verified = verify_aggregation_receipt(
      verifier_, receipt, zvm::VerifyContext{nullptr, &stats});
  publish_verify_metrics(stats);
  ZKT_TRY(verified);
  return adopt_verified(receipt);
}

Result<AggJournal> Auditor::adopt_verified(const zvm::Receipt& receipt) {
  auto journal = AggJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const AggJournal& j = journal.value();

  // Chain continuity.
  if (rounds_ == 0) {
    if (j.has_prev) {
      return Error{Errc::chain_broken, "first round claims a predecessor"};
    }
    if (j.prev_entry_count != 0 ||
        j.prev_root != crypto::MerkleTree::empty_leaf()) {
      return Error{Errc::chain_broken, "first round does not start empty"};
    }
  } else {
    if (!j.has_prev) {
      return Error{Errc::chain_broken, "non-genesis round without prev"};
    }
    if (j.prev_claim_digest != last_claim_digest_) {
      return Error{Errc::chain_broken,
                   "round does not chain onto the accepted claim"};
    }
    if (j.prev_root != current_root_ ||
        j.prev_entry_count != current_entry_count_) {
      return Error{Errc::chain_broken,
                   "round does not extend the accepted state"};
    }
  }

  // Every commitment consumed must have been published (and thus signed).
  for (const auto& ref : j.commitments) {
    auto published = board_->get(ref.router_id, ref.window_id);
    if (!published.has_value()) {
      return Error{Errc::commitment_missing,
                   "round consumes an unpublished commitment (router " +
                       std::to_string(ref.router_id) + ", window " +
                       std::to_string(ref.window_id) + ")"};
    }
    if (published->rlog_hash != ref.rlog_hash ||
        published->record_count != ref.record_count) {
      return Error{Errc::hash_mismatch,
                   "round consumes a commitment that differs from the board"};
    }
  }

  last_claim_digest_ = receipt.claim.digest();
  claims_.insert(last_claim_digest_);
  current_root_ = j.new_root;
  current_entry_count_ = j.new_entry_count;
  ++rounds_;
  obs::Registry::instance().counter("core.auditor.rounds_accepted").add(1);
  return journal;
}

Result<u64> Auditor::accept_rounds(std::span<const zvm::Receipt> receipts,
                                   zvm::VerifyStats* stats) {
  return accept_rounds_impl(receipts, stats);
}

Result<u64> Auditor::accept_rounds_impl(std::span<const zvm::Receipt> receipts,
                                        zvm::VerifyStats* stats) {
  if (receipts.empty()) return u64{0};
  obs::Registry::instance()
      .histogram("core.auditor.batch_size")
      .record(static_cast<double>(receipts.size()));

  zvm::VerifyStats batch_stats;
  const std::vector<Status> outcomes =
      batch_.verify_aggregation(receipts, &batch_stats);
  publish_verify_metrics(batch_stats);
  if (stats != nullptr) stats->merge(batch_stats);

  // Chain on in order; the first failure (verification above, continuity or
  // board mismatch here) stops the walk with the accepted prefix retained —
  // byte-for-byte the state and error a loop over accept_round produces.
  u64 accepted = 0;
  for (size_t i = 0; i < receipts.size(); ++i) {
    if (!outcomes[i].ok()) return outcomes[i].error();
    auto journal = adopt_verified(receipts[i]);
    if (!journal.ok()) return journal.error();
    ++accepted;
  }
  return accepted;
}

Result<AuditReport> Auditor::audit(ReceiptSource& source,
                                   const AuditOptions& options) {
  const u64 window_size = options.batch_size == 0 ? 1 : options.batch_size;
  const u64 before = rounds_;
  std::vector<zvm::Receipt> window;
  window.reserve(window_size);

  bool done = false;
  while (!done) {
    window.clear();
    while (window.size() < window_size) {
      auto next = source.next();
      if (!next.ok()) return next.error();
      if (!next.value().has_value()) {
        done = true;
        break;
      }
      window.push_back(std::move(*next.value()));
    }
    if (window.empty()) break;
    ZKT_TRY(accept_rounds_impl(window, options.stats));
  }
  return AuditReport{rounds_ - before, head()};
}

Status Auditor::adopt_summary(const ChainHead& head) {
  if (rounds_ != 0) {
    return Error{Errc::chain_broken,
                 "cannot adopt a summary after accepting rounds"};
  }
  if (head.rounds == 0) {
    return Error{Errc::invalid_argument, "summary covers no rounds"};
  }
  last_claim_digest_ = head.claim_digest;
  claims_.insert(head.claim_digest);
  current_root_ = head.root;
  current_entry_count_ = head.entry_count;
  rounds_ = head.rounds;
  return {};
}

Result<QueryJournal> Auditor::verify_query(const zvm::Receipt& receipt,
                                           const VerifyOptions& options) {
  auto journal = QueryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const QueryJournal& j = journal.value();

  // The journal's claimed mode must match the image that actually ran.
  const auto& images = guest_images();
  const zvm::ImageID& expected_image = j.mode == QueryMode::complete
                                           ? images.query
                                           : images.query_selective;
  zvm::VerifyStats stats;
  const Status verified = verifier_.verify(
      receipt, expected_image, zvm::VerifyContext{nullptr, &stats});
  publish_verify_metrics(stats);
  if (options.stats != nullptr) options.stats->merge(stats);
  ZKT_TRY(verified);

  if (!claims_.contains(j.agg_claim_digest)) {
    return Error{Errc::chain_broken,
                 "query targets an aggregation round we never accepted"};
  }
  if (options.expected_query != nullptr &&
      j.query.digest() != options.expected_query->digest()) {
    return Error{Errc::proof_invalid,
                 "receipt proves a different query than requested"};
  }
  if (j.mode == QueryMode::complete && j.result.scanned != j.entry_count) {
    return Error{Errc::proof_invalid,
                 "complete query did not scan the full state"};
  }
  obs::Registry::instance().counter("core.auditor.queries_verified").add(1);
  return journal;
}

}  // namespace zkt::core
