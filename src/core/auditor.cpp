#include "core/auditor.h"

namespace zkt::core {

Status verify_aggregation_receipt(zvm::Verifier& verifier,
                                  const zvm::Receipt& receipt) {
  if (!is_aggregation_image(receipt.claim.image_id)) {
    return Error{Errc::proof_invalid,
                 "receipt was not produced by an aggregation guest"};
  }
  return verifier.verify(receipt, receipt.claim.image_id);
}

Result<AggJournal> Auditor::accept_round(const zvm::Receipt& receipt) {
  ZKT_TRY(verify_aggregation_receipt(verifier_, receipt));

  auto journal = AggJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const AggJournal& j = journal.value();

  // Chain continuity.
  if (rounds_ == 0) {
    if (j.has_prev) {
      return Error{Errc::chain_broken, "first round claims a predecessor"};
    }
    if (j.prev_entry_count != 0 ||
        j.prev_root != crypto::MerkleTree::empty_leaf()) {
      return Error{Errc::chain_broken, "first round does not start empty"};
    }
  } else {
    if (!j.has_prev) {
      return Error{Errc::chain_broken, "non-genesis round without prev"};
    }
    if (j.prev_claim_digest != last_claim_digest_) {
      return Error{Errc::chain_broken,
                   "round does not chain onto the accepted claim"};
    }
    if (j.prev_root != current_root_ ||
        j.prev_entry_count != current_entry_count_) {
      return Error{Errc::chain_broken,
                   "round does not extend the accepted state"};
    }
  }

  // Every commitment consumed must have been published (and thus signed).
  for (const auto& ref : j.commitments) {
    auto published = board_->get(ref.router_id, ref.window_id);
    if (!published.has_value()) {
      return Error{Errc::commitment_missing,
                   "round consumes an unpublished commitment (router " +
                       std::to_string(ref.router_id) + ", window " +
                       std::to_string(ref.window_id) + ")"};
    }
    if (published->rlog_hash != ref.rlog_hash ||
        published->record_count != ref.record_count) {
      return Error{Errc::hash_mismatch,
                   "round consumes a commitment that differs from the board"};
    }
  }

  last_claim_digest_ = receipt.claim.digest();
  accepted_claims_.insert(last_claim_digest_.bytes);
  current_root_ = j.new_root;
  current_entry_count_ = j.new_entry_count;
  ++rounds_;
  return journal;
}

Status Auditor::adopt_summary(u64 rounds, const Digest32& final_claim_digest,
                              const Digest32& final_root,
                              u64 final_entry_count) {
  if (rounds_ != 0) {
    return Error{Errc::chain_broken,
                 "cannot adopt a summary after accepting rounds"};
  }
  if (rounds == 0) {
    return Error{Errc::invalid_argument, "summary covers no rounds"};
  }
  last_claim_digest_ = final_claim_digest;
  accepted_claims_.insert(final_claim_digest.bytes);
  current_root_ = final_root;
  current_entry_count_ = final_entry_count;
  rounds_ = rounds;
  return {};
}

Result<QueryJournal> Auditor::verify_query(const zvm::Receipt& receipt,
                                           const Query* expected_query) {
  auto journal = QueryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const QueryJournal& j = journal.value();

  // The journal's claimed mode must match the image that actually ran.
  const auto& images = guest_images();
  const zvm::ImageID& expected_image = j.mode == QueryMode::complete
                                           ? images.query
                                           : images.query_selective;
  ZKT_TRY(verifier_.verify(receipt, expected_image));

  if (accepted_claims_.find(j.agg_claim_digest.bytes) ==
      accepted_claims_.end()) {
    return Error{Errc::chain_broken,
                 "query targets an aggregation round we never accepted"};
  }
  if (expected_query != nullptr &&
      j.query.digest() != expected_query->digest()) {
    return Error{Errc::proof_invalid,
                 "receipt proves a different query than requested"};
  }
  if (j.mode == QueryMode::complete && j.result.scanned != j.entry_count) {
    return Error{Errc::proof_invalid,
                 "complete query did not scan the full state"};
  }
  return journal;
}

}  // namespace zkt::core
