#include "core/sketch_query.h"

#include "core/sketch_fold.h"

namespace zkt::core {

namespace {

using netflow::CountMinSketch;
using netflow::FlowKey;
using netflow::RoundSketch;
using zvm::AluOp;
using zvm::Env;

Status sketch_query_guest(Env& env) {
  SketchQueryJournal journal;
  journal.commitment.kind = CommitmentKind::sketch;
  auto rid = env.read_u32();
  if (!rid.ok()) return rid.error();
  journal.commitment.router_id = rid.value();
  auto wid = env.read_u64();
  if (!wid.ok()) return wid.error();
  journal.commitment.window_id = wid.value();
  auto chash = env.read_digest();
  if (!chash.ok()) return chash.error();
  journal.commitment.rlog_hash = chash.value();
  auto updates = env.read_u64();
  if (!updates.ok()) return updates.error();
  journal.commitment.record_count = updates.value();

  auto sketch_bytes = env.read_blob();
  if (!sketch_bytes.ok()) return sketch_bytes.error();

  auto key_bytes = env.read_bytes(13);
  if (!key_bytes.ok()) return key_bytes.error();
  {
    Reader kr(key_bytes.value());
    auto key = FlowKey::deserialize(kr);
    if (!key.ok()) return key.error();
    journal.key = key.value();
  }
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in sketch query input"};
  }

  // 1. Sketch authenticity.
  const Digest32 h = env.sha256(sketch_bytes.value());
  ZKT_TRY(env.assert_eq(h, journal.commitment.rlog_hash,
                        "sketch hash vs published commitment"));

  Reader sr(sketch_bytes.value());
  auto sketch = CountMinSketch::deserialize(sr);
  if (!sketch.ok()) return sketch.error();
  ZKT_TRY(env.assert_true(
      sketch.value().total_updates() == journal.commitment.record_count,
      "sketch total vs commitment"));

  // 2. Recompute the estimate with traced hashing + arithmetic.
  journal.estimate = cms_point_estimate_traced(env, sketch.value(),
                                               journal.key);

  Writer jw;
  journal.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

/// Shared head of both round-sketch query guests: bind the aggregation
/// receipt, read the sketch blob, authenticate it against the journal's
/// chained sketch digest with ONE traced hash, and check params/total
/// agreement. The k remaining input bytes (if any) belong to the caller.
struct RoundSketchBinding {
  Digest32 agg_claim_digest;
  AggJournal agg;
  RoundSketch sketch{netflow::SketchParams{}};
};

Result<RoundSketchBinding> bind_round_sketch(Env& env) {
  auto bound = detail::bind_aggregation(env);
  if (!bound.ok()) return bound.error();
  RoundSketchBinding binding;
  binding.agg_claim_digest = bound.value().claim_digest;
  binding.agg = std::move(bound.value().journal);
  ZKT_TRY(env.assert_true(binding.agg.has_sketch,
                          "bound aggregation round carries no sketch"));

  auto sketch_bytes = env.read_blob();
  if (!sketch_bytes.ok()) return sketch_bytes.error();
  const Digest32 h = env.sha256(sketch_bytes.value());
  ZKT_TRY(env.assert_eq(h, binding.agg.sketch_digest,
                        "sketch bytes vs the round's chained digest"));

  Reader sr(sketch_bytes.value());
  auto sketch = RoundSketch::deserialize(sr);
  if (!sketch.ok()) return sketch.error();
  if (!sr.done()) {
    return Error{Errc::guest_abort, "trailing bytes in round sketch"};
  }
  binding.sketch = std::move(sketch.value());
  ZKT_TRY(env.assert_true(binding.sketch.params() == binding.agg.sketch_params,
                          "sketch params vs round journal"));
  ZKT_TRY(detail::assert_eq_u64(env, binding.sketch.total(),
                                binding.agg.sketch_total,
                                "sketch total vs round journal"));
  // The two structures absorbed the same stream, so their totals agree.
  ZKT_TRY(detail::assert_eq_u64(env, binding.sketch.heavy().total(),
                                binding.sketch.total(),
                                "tracker total vs sketch total"));
  return binding;
}

Status sketch_heavy_guest(Env& env) {
  auto binding = bind_round_sketch(env);
  if (!binding.ok()) return binding.error();
  const RoundSketch& sketch = binding.value().sketch;

  auto threshold_r = env.read_u64();
  if (!threshold_r.ok()) return threshold_r.error();
  const u64 threshold = threshold_r.value();
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in heavy-hitter input"};
  }
  ZKT_TRY(env.assert_true(threshold >= 1,
                          "heavy-hitter threshold must be positive"));

  // Completeness floor: Space-Saving tracks every key whose true count
  // exceeds total/capacity, so the report is complete iff
  // threshold * capacity > total, i.e. threshold > floor(total/capacity).
  // (Proven in-trace; below the floor the prover must fall back to an
  // exact Merkle-path query.)
  const u64 floor = env.alu(AluOp::divu, sketch.heavy().total(),
                            sketch.heavy().capacity());
  ZKT_TRY(env.assert_true(env.alu(AluOp::ltu, floor, threshold) == 1,
                          "threshold below the sketch's provable floor"));

  SketchHeavyJournal out;
  out.agg_claim_digest = binding.value().agg_claim_digest;
  out.sketch_digest = binding.value().agg.sketch_digest;
  out.params = sketch.params();
  out.total = sketch.total();
  out.threshold = threshold;
  for (const auto& e : sketch.heavy().heavy_hitters(threshold)) {
    ZKT_TRY(env.assert_true(env.alu(AluOp::ltu, e.count, threshold) == 0,
                            "reported hit below threshold"));
    SketchHeavyHit hit;
    hit.key = e.key;
    hit.count = e.count;
    hit.error = e.error;
    hit.cms_estimate = cms_point_estimate_traced(env, sketch.cm(), e.key);
    out.hits.push_back(hit);
  }

  Writer jw;
  out.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

Status sketch_card_guest(Env& env) {
  auto binding = bind_round_sketch(env);
  if (!binding.ok()) return binding.error();
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in cardinality input"};
  }
  const RoundSketch& sketch = binding.value().sketch;
  const AggJournal& agg = binding.value().agg;

  SketchCardinalityJournal out;
  out.agg_claim_digest = binding.value().agg_claim_digest;
  out.sketch_digest = agg.sketch_digest;
  out.params = sketch.params();
  out.total = sketch.total();
  // Exact by construction: the CLog keeps one entry per distinct flow, and
  // the bound journal's entry count is already proven.
  out.distinct_flows = agg.new_entry_count;

  // Count-Min lower bound: every distinct key fills exactly one counter
  // per row, so no row can hold more nonzero counters than there are
  // flows. Max over rows (select-based, in-trace).
  u64 lower = 0;
  for (u32 row = 0; row < sketch.params().cm.depth; ++row) {
    const u64 nz = sketch.cm().nonzero_in_row(row);
    const u64 gt = env.alu(AluOp::ltu, lower, nz);
    const u64 diff = env.alu(AluOp::sub, nz, lower);
    lower = env.alu(AluOp::add, lower, env.alu(AluOp::mul, gt, diff));
  }
  out.cms_lower_bound = lower;
  ZKT_TRY(env.assert_true(
      env.alu(AluOp::ltu, out.distinct_flows, lower) == 0,
      "sketch counters exceed the committed flow count"));

  Writer jw;
  out.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

void write_sketch_params(Writer& w, const netflow::SketchParams& p) {
  w.u32v(p.cm.width);
  w.u32v(p.cm.depth);
  w.u64v(p.cm.seed);
  w.u32v(p.heavy_capacity);
}

Result<netflow::SketchParams> parse_sketch_params(Reader& r) {
  netflow::SketchParams p;
  auto width = r.u32v();
  if (!width.ok()) return width.error();
  p.cm.width = width.value();
  auto depth = r.u32v();
  if (!depth.ok()) return depth.error();
  p.cm.depth = depth.value();
  auto seed = r.u64v();
  if (!seed.ok()) return seed.error();
  p.cm.seed = seed.value();
  auto cap = r.u32v();
  if (!cap.ok()) return cap.error();
  p.heavy_capacity = cap.value();
  if (p.cm.width == 0 || p.cm.depth == 0 || p.heavy_capacity == 0) {
    return Error{Errc::parse_error, "degenerate sketch params"};
  }
  return p;
}

/// Shared prove head for the round-sketch guests: claim + journal + sketch
/// bytes, with the aggregation receipt as the assumption.
Result<std::pair<zvm::Receipt, zvm::ProveInfo>> prove_round_sketch(
    const zvm::ImageID& image, const zvm::Receipt& agg_receipt,
    const RoundSketch& sketch, const zvm::ProveOptions& options,
    const u64* threshold) {
  Writer input;
  agg_receipt.claim.serialize(input);
  input.blob(agg_receipt.journal);
  input.blob(sketch.canonical_bytes());
  if (threshold != nullptr) input.u64v(*threshold);

  zvm::ProveOptions prove = options;
  prove.assumptions.push_back(agg_receipt);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(image, input.bytes(), prove, &info);
  if (!receipt.ok()) return receipt.error();
  return std::make_pair(std::move(receipt.value()), info);
}

}  // namespace

void SketchQueryJournal::write(Writer& w) const {
  w.str("SKQ1");
  write_commitment_ref(w, commitment);
  key.serialize(w);
  w.u64v(estimate);
}

Result<SketchQueryJournal> SketchQueryJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "SKQ1") {
    return Error{Errc::parse_error, "bad sketch query journal magic"};
  }
  SketchQueryJournal j;
  auto commitment = parse_commitment_ref(r, CommitmentKind::sketch);
  if (!commitment.ok()) return commitment.error();
  j.commitment = commitment.value();
  auto key = netflow::FlowKey::deserialize(r);
  if (!key.ok()) return key.error();
  j.key = key.value();
  auto estimate = r.u64v();
  if (!estimate.ok()) return estimate.error();
  j.estimate = estimate.value();
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing sketch query journal"};
  }
  return j;
}

void SketchHeavyJournal::write(Writer& w) const {
  w.str("SKHH");
  w.fixed(agg_claim_digest.bytes);
  w.fixed(sketch_digest.bytes);
  write_sketch_params(w, params);
  w.u64v(total);
  w.u64v(threshold);
  w.varint(hits.size());
  for (const auto& hit : hits) {
    hit.key.serialize(w);
    w.u64v(hit.count);
    w.u64v(hit.error);
    w.u64v(hit.cms_estimate);
  }
}

Result<SketchHeavyJournal> SketchHeavyJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "SKHH") {
    return Error{Errc::parse_error, "bad heavy-hitter journal magic"};
  }
  SketchHeavyJournal j;
  ZKT_TRY(r.fixed(j.agg_claim_digest.bytes));
  ZKT_TRY(r.fixed(j.sketch_digest.bytes));
  auto params = parse_sketch_params(r);
  if (!params.ok()) return params.error();
  j.params = params.value();
  auto total = r.u64v();
  if (!total.ok()) return total.error();
  j.total = total.value();
  auto threshold = r.u64v();
  if (!threshold.ok()) return threshold.error();
  j.threshold = threshold.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > j.params.heavy_capacity) {
    return Error{Errc::parse_error, "more hits than the tracker can hold"};
  }
  j.hits.reserve(n.value());
  for (u64 i = 0; i < n.value(); ++i) {
    SketchHeavyHit hit;
    auto key = netflow::FlowKey::deserialize(r);
    if (!key.ok()) return key.error();
    hit.key = key.value();
    auto count = r.u64v();
    if (!count.ok()) return count.error();
    hit.count = count.value();
    auto error = r.u64v();
    if (!error.ok()) return error.error();
    hit.error = error.value();
    auto est = r.u64v();
    if (!est.ok()) return est.error();
    hit.cms_estimate = est.value();
    j.hits.push_back(hit);
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing heavy-hitter journal bytes"};
  }
  return j;
}

void SketchCardinalityJournal::write(Writer& w) const {
  w.str("SKCD");
  w.fixed(agg_claim_digest.bytes);
  w.fixed(sketch_digest.bytes);
  write_sketch_params(w, params);
  w.u64v(total);
  w.u64v(distinct_flows);
  w.u64v(cms_lower_bound);
}

Result<SketchCardinalityJournal> SketchCardinalityJournal::parse(
    BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "SKCD") {
    return Error{Errc::parse_error, "bad cardinality journal magic"};
  }
  SketchCardinalityJournal j;
  ZKT_TRY(r.fixed(j.agg_claim_digest.bytes));
  ZKT_TRY(r.fixed(j.sketch_digest.bytes));
  auto params = parse_sketch_params(r);
  if (!params.ok()) return params.error();
  j.params = params.value();
  auto total = r.u64v();
  if (!total.ok()) return total.error();
  j.total = total.value();
  auto distinct = r.u64v();
  if (!distinct.ok()) return distinct.error();
  j.distinct_flows = distinct.value();
  auto lower = r.u64v();
  if (!lower.ok()) return lower.error();
  j.cms_lower_bound = lower.value();
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing cardinality journal bytes"};
  }
  return j;
}

zvm::ImageID sketch_query_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.sketch_query", 1, sketch_query_guest);
  return id;
}

zvm::ImageID sketch_heavy_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.sketch_heavy", 1, sketch_heavy_guest);
  return id;
}

zvm::ImageID sketch_card_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.sketch_card", 1, sketch_card_guest);
  return id;
}

Result<SketchQueryResponse> prove_sketch_query(
    const CommitmentRef& ref, const netflow::CountMinSketch& sketch,
    const netflow::FlowKey& key, const zvm::ProveOptions& options) {
  Writer input;
  input.u32v(ref.router_id);
  input.u64v(ref.window_id);
  input.fixed(ref.rlog_hash.bytes);
  input.u64v(ref.record_count);
  input.blob(sketch.canonical_bytes());
  key.serialize(input);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt =
      prover.prove(sketch_query_image(), input.bytes(), options, &info);
  if (!receipt.ok()) return receipt.error();
  auto journal = SketchQueryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  SketchQueryResponse response;
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.prove_info = info;
  return response;
}

Result<SketchQueryJournal> verify_sketch_query(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    const netflow::FlowKey* expected_key) {
  zvm::Verifier verifier;
  ZKT_TRY(verifier.verify(receipt, sketch_query_image()));
  auto journal = SketchQueryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const SketchQueryJournal& j = journal.value();

  auto published = board.get(j.commitment.router_id, j.commitment.window_id);
  if (!published.has_value() ||
      published->rlog_hash != j.commitment.rlog_hash ||
      published->record_count != j.commitment.record_count) {
    return Error{Errc::commitment_missing,
                 "sketch query does not match the bulletin board"};
  }
  if (expected_key != nullptr && !(j.key == *expected_key)) {
    return Error{Errc::proof_invalid,
                 "receipt answers a different flow than requested"};
  }
  return journal;
}

bool sketch_heavy_bound_ok(u64 threshold, u64 capacity, u64 total) {
  // threshold * capacity > total without the overflow:
  // threshold > floor(total / capacity).
  return threshold >= 1 && capacity >= 1 && threshold > total / capacity;
}

Result<SketchHeavyResponse> prove_sketch_heavy(
    const zvm::Receipt& agg_receipt, const netflow::RoundSketch& sketch,
    u64 threshold, const zvm::ProveOptions& options) {
  auto agg = AggJournal::parse(agg_receipt.journal);
  if (!agg.ok()) return agg.error();
  if (!agg.value().has_sketch) {
    return Error{Errc::invalid_argument,
                 "aggregation round carries no sketch"};
  }
  if (!sketch_heavy_bound_ok(threshold, sketch.heavy().capacity(),
                             sketch.heavy().total())) {
    return Error{Errc::invalid_argument,
                 "threshold below the sketch's provable floor"};
  }
  auto proved = prove_round_sketch(sketch_heavy_image(), agg_receipt, sketch,
                                   options, &threshold);
  if (!proved.ok()) return proved.error();
  auto journal = SketchHeavyJournal::parse(proved.value().first.journal);
  if (!journal.ok()) return journal.error();

  SketchHeavyResponse response;
  response.receipt = std::move(proved.value().first);
  response.journal = std::move(journal.value());
  response.prove_info = proved.value().second;
  return response;
}

Result<SketchCardinalityResponse> prove_sketch_cardinality(
    const zvm::Receipt& agg_receipt, const netflow::RoundSketch& sketch,
    const zvm::ProveOptions& options) {
  auto agg = AggJournal::parse(agg_receipt.journal);
  if (!agg.ok()) return agg.error();
  if (!agg.value().has_sketch) {
    return Error{Errc::invalid_argument,
                 "aggregation round carries no sketch"};
  }
  auto proved = prove_round_sketch(sketch_card_image(), agg_receipt, sketch,
                                   options, nullptr);
  if (!proved.ok()) return proved.error();
  auto journal =
      SketchCardinalityJournal::parse(proved.value().first.journal);
  if (!journal.ok()) return journal.error();

  SketchCardinalityResponse response;
  response.receipt = std::move(proved.value().first);
  response.journal = std::move(journal.value());
  response.prove_info = proved.value().second;
  return response;
}

namespace {

/// The common tail of the round-sketch verify helpers: pin the journal to
/// the chain position the caller tracks.
Status check_binding(const Digest32& claim, const Digest32& sketch_digest,
                     const Digest32* expected_agg_claim,
                     const Digest32* expected_sketch_digest) {
  if (expected_agg_claim != nullptr && claim != *expected_agg_claim) {
    return Error{Errc::proof_invalid,
                 "receipt bound a different aggregation round"};
  }
  if (expected_sketch_digest != nullptr &&
      sketch_digest != *expected_sketch_digest) {
    return Error{Errc::proof_invalid,
                 "receipt answered against a different sketch"};
  }
  return {};
}

}  // namespace

Result<SketchHeavyJournal> verify_sketch_heavy(
    const zvm::Receipt& receipt, const Digest32* expected_agg_claim,
    const Digest32* expected_sketch_digest) {
  zvm::Verifier verifier;
  ZKT_TRY(verifier.verify(receipt, sketch_heavy_image()));
  auto journal = SketchHeavyJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  ZKT_TRY(check_binding(journal.value().agg_claim_digest,
                        journal.value().sketch_digest, expected_agg_claim,
                        expected_sketch_digest));
  return journal;
}

Result<SketchCardinalityJournal> verify_sketch_cardinality(
    const zvm::Receipt& receipt, const Digest32* expected_agg_claim,
    const Digest32* expected_sketch_digest) {
  zvm::Verifier verifier;
  ZKT_TRY(verifier.verify(receipt, sketch_card_image()));
  auto journal = SketchCardinalityJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  ZKT_TRY(check_binding(journal.value().agg_claim_digest,
                        journal.value().sketch_digest, expected_agg_claim,
                        expected_sketch_digest));
  return journal;
}

}  // namespace zkt::core
