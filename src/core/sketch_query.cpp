#include "core/sketch_query.h"

namespace zkt::core {

namespace {

using netflow::CountMinParams;
using netflow::CountMinSketch;
using netflow::FlowKey;
using zvm::AluOp;
using zvm::Env;

/// Traced equivalent of CountMinSketch::index_for: same bytes, same hash,
/// but the hashing and modulo are trace rows.
u32 index_for_traced(Env& env, const CountMinParams& params, u32 row,
                     const FlowKey& key) {
  Writer w;
  w.u64v(params.seed);
  w.u32v(row);
  key.serialize(w);
  const Digest32 d = env.sha256(w.bytes());
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(d.bytes[i]) << (8 * i);
  return static_cast<u32>(env.alu(AluOp::remu, v, params.width));
}

Status sketch_query_guest(Env& env) {
  SketchQueryJournal journal;
  auto rid = env.read_u32();
  if (!rid.ok()) return rid.error();
  journal.commitment.router_id = rid.value();
  auto wid = env.read_u64();
  if (!wid.ok()) return wid.error();
  journal.commitment.window_id = wid.value();
  auto chash = env.read_digest();
  if (!chash.ok()) return chash.error();
  journal.commitment.rlog_hash = chash.value();
  auto updates = env.read_u64();
  if (!updates.ok()) return updates.error();
  journal.commitment.record_count = updates.value();

  auto sketch_bytes = env.read_blob();
  if (!sketch_bytes.ok()) return sketch_bytes.error();

  auto key_bytes = env.read_bytes(13);
  if (!key_bytes.ok()) return key_bytes.error();
  {
    Reader kr(key_bytes.value());
    auto key = FlowKey::deserialize(kr);
    if (!key.ok()) return key.error();
    journal.key = key.value();
  }
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in sketch query input"};
  }

  // 1. Sketch authenticity.
  const Digest32 h = env.sha256(sketch_bytes.value());
  ZKT_TRY(env.assert_eq(h, journal.commitment.rlog_hash,
                        "sketch hash vs published commitment"));

  Reader sr(sketch_bytes.value());
  auto sketch = CountMinSketch::deserialize(sr);
  if (!sketch.ok()) return sketch.error();
  ZKT_TRY(env.assert_true(
      sketch.value().total_updates() == journal.commitment.record_count,
      "sketch total vs commitment"));

  // 2. Recompute the estimate with traced hashing + arithmetic.
  const auto& params = sketch.value().params();
  u64 best = ~0ULL;
  for (u32 row = 0; row < params.depth; ++row) {
    const u32 index = index_for_traced(env, params, row, journal.key);
    const u64 c = sketch.value().counter(row, index);
    const u64 lt = env.alu(AluOp::ltu, c, best);
    const u64 diff = env.alu(AluOp::sub, c, best);
    best = env.alu(AluOp::add, best, env.alu(AluOp::mul, lt, diff));
  }
  journal.estimate = best;

  Writer jw;
  journal.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace

void SketchQueryJournal::write(Writer& w) const {
  w.str("SKQ1");
  w.u32v(commitment.router_id);
  w.u64v(commitment.window_id);
  w.fixed(commitment.rlog_hash.bytes);
  w.u64v(commitment.record_count);
  key.serialize(w);
  w.u64v(estimate);
}

Result<SketchQueryJournal> SketchQueryJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "SKQ1") {
    return Error{Errc::parse_error, "bad sketch query journal magic"};
  }
  SketchQueryJournal j;
  auto rid = r.u32v();
  if (!rid.ok()) return rid.error();
  j.commitment.router_id = rid.value();
  auto wid = r.u64v();
  if (!wid.ok()) return wid.error();
  j.commitment.window_id = wid.value();
  ZKT_TRY(r.fixed(j.commitment.rlog_hash.bytes));
  auto count = r.u64v();
  if (!count.ok()) return count.error();
  j.commitment.record_count = count.value();
  auto key = netflow::FlowKey::deserialize(r);
  if (!key.ok()) return key.error();
  j.key = key.value();
  auto estimate = r.u64v();
  if (!estimate.ok()) return estimate.error();
  j.estimate = estimate.value();
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing sketch query journal"};
  }
  return j;
}

zvm::ImageID sketch_query_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.sketch_query", 1, sketch_query_guest);
  return id;
}

Result<SketchQueryResponse> prove_sketch_query(
    const CommitmentRef& ref, const netflow::CountMinSketch& sketch,
    const netflow::FlowKey& key, const zvm::ProveOptions& options) {
  Writer input;
  input.u32v(ref.router_id);
  input.u64v(ref.window_id);
  input.fixed(ref.rlog_hash.bytes);
  input.u64v(ref.record_count);
  input.blob(sketch.canonical_bytes());
  key.serialize(input);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt =
      prover.prove(sketch_query_image(), input.bytes(), options, &info);
  if (!receipt.ok()) return receipt.error();
  auto journal = SketchQueryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  SketchQueryResponse response;
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.prove_info = info;
  return response;
}

Result<SketchQueryJournal> verify_sketch_query(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    const netflow::FlowKey* expected_key) {
  zvm::Verifier verifier;
  ZKT_TRY(verifier.verify(receipt, sketch_query_image()));
  auto journal = SketchQueryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const SketchQueryJournal& j = journal.value();

  auto published = board.get(j.commitment.router_id, j.commitment.window_id);
  if (!published.has_value() ||
      published->rlog_hash != j.commitment.rlog_hash ||
      published->record_count != j.commitment.record_count) {
    return Error{Errc::commitment_missing,
                 "sketch query does not match the bulletin board"};
  }
  if (expected_key != nullptr && !(j.key == *expected_key)) {
    return Error{Errc::proof_invalid,
                 "receipt answers a different flow than requested"};
  }
  return journal;
}

}  // namespace zkt::core
