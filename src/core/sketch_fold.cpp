#include "core/sketch_fold.h"

namespace zkt::core {

using crypto::Digest32;
using netflow::CountMinParams;
using netflow::CountMinSketch;
using netflow::FlowKey;
using netflow::RoundSketch;
using zvm::AluOp;
using zvm::Env;

u64 sat_add_traced(Env& env, u64 a, u64 b) {
  const u64 sum = env.alu(AluOp::add, a, b);
  const u64 overflow = env.alu(AluOp::ltu, sum, a);
  // On overflow, lift the wrapped sum to 2^64-1: sum + overflow*(~0 - sum).
  const u64 gap = env.alu(AluOp::sub, ~0ULL, sum);
  return env.alu(AluOp::add, sum, env.alu(AluOp::mul, overflow, gap));
}

u32 cms_index_traced(Env& env, const CountMinParams& params, u32 row,
                     const FlowKey& key) {
  Writer w;
  w.u64v(params.seed);
  w.u32v(row);
  key.serialize(w);
  const Digest32 d = env.sha256(w.bytes());
  u64 v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<u64>(d.bytes[i]) << (8 * i);
  return static_cast<u32>(env.alu(AluOp::remu, v, params.width));
}

void sketch_fold_record_traced(Env& env, RoundSketch& sketch,
                               const FlowKey& key, u64 count) {
  CountMinSketch& cm = sketch.cm_mut();
  const CountMinParams& params = cm.params();
  for (u32 row = 0; row < params.depth; ++row) {
    const u32 index = cms_index_traced(env, params, row, key);
    cm.set_counter(row, index,
                   sat_add_traced(env, cm.counter(row, index), count));
  }
  cm.set_total_updates(sat_add_traced(env, cm.total_updates(), count));
  sketch.heavy_mut().update(key, count);
}

Status sketch_merge_traced(Env& env, RoundSketch& sketch,
                           const RoundSketch& other) {
  ZKT_TRY(env.assert_true(sketch.params() == other.params(),
                          "round sketch parameter mismatch in merge"));
  CountMinSketch& cm = sketch.cm_mut();
  const CountMinSketch& rhs = other.cm();
  const CountMinParams& params = cm.params();
  for (u32 row = 0; row < params.depth; ++row) {
    for (u32 i = 0; i < params.width; ++i) {
      cm.set_counter(
          row, i, sat_add_traced(env, cm.counter(row, i), rhs.counter(row, i)));
    }
  }
  cm.set_total_updates(
      sat_add_traced(env, cm.total_updates(), rhs.total_updates()));
  return sketch.heavy_mut().merge(other.heavy());
}

u64 cms_point_estimate_traced(Env& env, const CountMinSketch& cm,
                              const FlowKey& key) {
  const CountMinParams& params = cm.params();
  u64 best = ~0ULL;
  for (u32 row = 0; row < params.depth; ++row) {
    const u32 index = cms_index_traced(env, params, row, key);
    const u64 c = cm.counter(row, index);
    const u64 lt = env.alu(AluOp::ltu, c, best);
    const u64 diff = env.alu(AluOp::sub, c, best);
    best = env.alu(AluOp::add, best, env.alu(AluOp::mul, lt, diff));
  }
  return best;
}

Digest32 sketch_digest_traced(Env& env, const RoundSketch& sketch) {
  return env.sha256(sketch.canonical_bytes());
}

}  // namespace zkt::core
