// File formats for moving zktel artifacts between processes: commitment
// board dumps and receipt bundles. Both are length-framed sequences with a
// magic header and per-item CRC, so the CLI tools (zkt-sim, zkt-prove,
// zkt-verify) can hand artifacts to each other — and to auditors — as plain
// files.
#pragma once

#include <string>
#include <vector>

#include "core/commitment.h"
#include "zvm/receipt.h"

namespace zkt::core {

/// Write every commitment on the board to `path`.
Status save_commitments(const CommitmentBoard& board, const std::string& path);

/// Load commitments from `path` and publish them onto `board` (signatures
/// re-verified by the board).
Status load_commitments(const std::string& path, CommitmentBoard& board);

/// Write a sequence of receipts to `path`.
Status save_receipts(const std::vector<zvm::Receipt>& receipts,
                     const std::string& path);

/// Load a sequence of receipts from `path`.
Result<std::vector<zvm::Receipt>> load_receipts(const std::string& path);

/// Raw helpers shared by the formats above.
Status write_file(const std::string& path, BytesView data);
Result<Bytes> read_file(const std::string& path);

}  // namespace zkt::core
