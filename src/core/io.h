// File formats for moving zktel artifacts between processes: commitment
// board dumps and receipt bundles. Both are length-framed sequences with a
// magic header and per-item CRC, so the CLI tools (zkt-sim, zkt-prove,
// zkt-verify) can hand artifacts to each other — and to auditors — as plain
// files.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/commitment.h"
#include "store/fault.h"
#include "zvm/receipt.h"

namespace zkt::core {

/// Write every commitment on the board to `path`.
Status save_commitments(const CommitmentBoard& board, const std::string& path);

/// Load commitments from `path` and publish them onto `board` (signatures
/// re-verified by the board).
Status load_commitments(const std::string& path, CommitmentBoard& board);

/// Write a sequence of receipts to `path`.
Status save_receipts(const std::vector<zvm::Receipt>& receipts,
                     const std::string& path);

/// Load a sequence of receipts from `path`.
Result<std::vector<zvm::Receipt>> load_receipts(const std::string& path);

/// Pull-based receipt iterator: the streaming counterpart of
/// load_receipts(), and the input shape of Auditor::audit. Sources yield
/// receipts one at a time so an arbitrarily long chain can be verified in
/// O(1) memory — no std::vector<Receipt> materialization.
class ReceiptSource {
 public:
  virtual ~ReceiptSource() = default;

  /// The next receipt, or an empty optional at clean end-of-stream. After
  /// an error the source is exhausted (subsequent calls repeat the error).
  virtual Result<std::optional<zvm::Receipt>> next() = 0;
};

/// File-backed source over the ZKTRCPT1 receipt-bundle format: parses the
/// length-framed items incrementally with the same validation as
/// load_receipts (magic, per-item CRC, item-count cap, trailing-byte
/// check), but holds only ONE receipt plus a bounded IO buffer resident —
/// peak memory is the largest single receipt, not the chain length.
class ReceiptFileSource final : public ReceiptSource {
 public:
  struct Options {
    /// Optional deterministic fault hook (mirrors LogStore's read path):
    /// when armed, each item read consults FaultPoint::scan and surfaces
    /// Errc::io_error on fire — so audits can be tested under injected
    /// read failures.
    store::FaultInjector* fault = nullptr;
  };

  /// Open `path` and validate the bundle header. (Two overloads instead of
  /// a defaulted argument: a nested class is incomplete as a default
  /// argument inside its enclosing class.)
  static Result<ReceiptFileSource> open(const std::string& path) {
    return open(path, Options{});
  }
  static Result<ReceiptFileSource> open(const std::string& path,
                                        Options options);

  Result<std::optional<zvm::Receipt>> next() override;

  /// Item count declared by the bundle header (not yet cross-checked
  /// against the actual stream — next() enforces that incrementally).
  u64 declared_count() const { return count_; }
  /// Receipts successfully yielded so far.
  u64 read_count() const { return read_; }

 private:
  ReceiptFileSource(std::FILE* file, Options options)
      : file_(file, &std::fclose), options_(options) {}

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_;
  Options options_;
  u64 count_ = 0;
  u64 read_ = 0;
  std::optional<Error> failed_;
};

/// In-memory adapter over already-loaded receipts (tests, and callers that
/// still materialize). Non-owning: the span must outlive the source.
class ReceiptSpanSource final : public ReceiptSource {
 public:
  explicit ReceiptSpanSource(std::span<const zvm::Receipt> receipts)
      : receipts_(receipts) {}

  Result<std::optional<zvm::Receipt>> next() override {
    if (next_ >= receipts_.size()) return std::optional<zvm::Receipt>{};
    return std::optional<zvm::Receipt>{receipts_[next_++]};
  }

 private:
  std::span<const zvm::Receipt> receipts_;
  size_t next_ = 0;
};

/// Visitor over every receipt in `path`, one at a time (mirrors
/// store::LogStore::for_each): stops and returns the first error from the
/// stream or from `visit`.
Status for_each_receipt(const std::string& path,
                        const std::function<Status(zvm::Receipt&&)>& visit);

/// Raw helpers shared by the formats above.
Status write_file(const std::string& path, BytesView data);
Result<Bytes> read_file(const std::string& path);

}  // namespace zkt::core
