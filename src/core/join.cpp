#include "core/join.h"

#include <algorithm>

#include "core/sketch_fold.h"
#include "zvm/env.h"
#include "zvm/image.h"

namespace zkt::core {

namespace {

using zvm::AluOp;
using zvm::Env;

/// Children per join node (mirrors FoldOptions::fanout's clamp) and the
/// tallest tree a journal may claim. 64^40 leaves is beyond any real round,
/// so the bound only stops forged-journal blowups.
constexpr u32 kMaxJoinChildren = 64;
constexpr u32 kMaxJoinHeight = 40;

/// Read one child's sketch section (u8 has + blob bytes), authenticate the
/// bytes against the digest the child's journal chained (ONE traced hash),
/// and fold them into the running merged sketch with traced saturating
/// adds. `child_has`/`child_digest` come from the child's parsed journal.
Status merge_child_sketch(Env& env, bool child_has,
                          const Digest32& child_digest,
                          std::optional<netflow::RoundSketch>& merged) {
  auto has = env.read_u8();
  if (!has.ok()) return has.error();
  if (has.value() > 1) {
    return Error{Errc::guest_abort, "bad child sketch flag in join input"};
  }
  ZKT_TRY(env.assert_true((has.value() == 1) == child_has,
                          "child sketch bytes vs its journal"));
  if (!child_has) return {};

  auto bytes = env.read_blob();
  if (!bytes.ok()) return bytes.error();
  env.begin_region("sketch_merge");
  const Digest32 h = env.sha256(bytes.value());
  ZKT_TRY(env.assert_eq(h, child_digest,
                        "child sketch bytes vs chained digest"));
  Reader sr(bytes.value());
  auto sketch = netflow::RoundSketch::deserialize(sr);
  if (!sketch.ok()) return sketch.error();
  if (!sr.done()) {
    return Error{Errc::guest_abort, "trailing bytes in child sketch"};
  }
  if (!merged.has_value()) {
    merged = std::move(sketch.value());
    return {};
  }
  return sketch_merge_traced(env, *merged, sketch.value());
}

Status join_guest(Env& env) {
  auto n_children = env.read_u32();
  if (!n_children.ok()) return n_children.error();
  ZKT_TRY(env.assert_true(
      n_children.value() >= 2 && n_children.value() <= kMaxJoinChildren,
      "join child count range"));

  JoinJournal out;
  u32 max_child_height = 0;
  // Child fold values in child order: a leaf contributes its claim digest,
  // a join child its fold_digest. Hashed below into out.fold_digest, which
  // is what makes the tree's shape and child order part of the claim.
  Writer fold_input;
  fold_input.str("zkt.join.fold.v1");
  // Children must agree about sketch carriage (all or none); their round
  // sketches merge left to right so the seal binds one round sketch.
  std::optional<netflow::RoundSketch> merged_sketch;
  bool sketched = false;

  for (u32 i = 0; i < n_children.value(); ++i) {
    auto kind = env.read_u8();
    if (!kind.ok()) return kind.error();
    ZKT_TRY(env.assert_true(kind.value() == kJoinChildAggregation ||
                                kind.value() == kJoinChildJoin,
                            "join child kind"));
    bool child_has = false;
    Digest32 child_sketch_digest;
    if (kind.value() == kJoinChildAggregation) {
      // A per-shard aggregation round: verify it (claim digest recomputed
      // with traced hashing, receipt required via assumption, journal
      // authenticated) and lift its chain-link fields into a leaf link.
      auto bound = detail::bind_receipt(env, is_aggregation_image,
                                        "join leaf must be an aggregation "
                                        "receipt");
      if (!bound.ok()) return bound.error();
      auto j = AggJournal::parse(bound.value().journal);
      if (!j.ok()) return j.error();
      ShardLink link;
      link.claim_digest = bound.value().claim_digest;
      link.has_prev = j.value().has_prev;
      link.prev_claim_digest = j.value().prev_claim_digest;
      link.prev_root = j.value().prev_root;
      link.new_root = j.value().new_root;
      link.prev_entry_count = j.value().prev_entry_count;
      link.new_entry_count = j.value().new_entry_count;
      link.commitments = std::move(j.value().commitments);
      link.has_sketch = j.value().has_sketch;
      link.prev_sketch_digest = j.value().prev_sketch_digest;
      link.sketch_digest = j.value().sketch_digest;
      child_has = j.value().has_sketch;
      child_sketch_digest = j.value().sketch_digest;
      if (child_has && sketched) {
        ZKT_TRY(env.assert_true(
            j.value().sketch_params == merged_sketch->params(),
            "leaf sketch params vs siblings"));
      }
      out.leaf_count = env.alu(AluOp::add, out.leaf_count, 1);
      out.total_entries =
          env.alu(AluOp::add, out.total_entries, link.new_entry_count);
      fold_input.fixed(link.claim_digest.bytes);
      out.links.push_back(std::move(link));
    } else {
      // A lower join node: verify it the same way and splice its leaves in,
      // preserving left-to-right order.
      auto bound = detail::bind_receipt(env, is_join_image,
                                        "join child must be a join receipt");
      if (!bound.ok()) return bound.error();
      auto j = JoinJournal::parse(bound.value().journal);
      if (!j.ok()) return j.error();
      ZKT_TRY(env.assert_true(j.value().height >= 1 &&
                                  j.value().height < kMaxJoinHeight,
                              "join child height range"));
      max_child_height = std::max(max_child_height, j.value().height);
      out.leaf_count =
          env.alu(AluOp::add, out.leaf_count, j.value().leaf_count);
      out.total_entries =
          env.alu(AluOp::add, out.total_entries, j.value().total_entries);
      fold_input.fixed(j.value().fold_digest.bytes);
      child_has = j.value().has_sketch;
      child_sketch_digest = j.value().sketch_digest;
      for (auto& link : j.value().links) out.links.push_back(std::move(link));
    }

    // All-or-none: the first child decides whether this round is sketched.
    if (i == 0) {
      sketched = child_has;
    } else {
      ZKT_TRY(env.assert_true(child_has == sketched,
                              "children disagree about sketch carriage"));
    }
    ZKT_TRY(merge_child_sketch(env, child_has, child_sketch_digest,
                               merged_sketch));
  }
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in join input"};
  }

  out.height = max_child_height + 1;
  // Every leaf under this node contributed exactly one link, in order.
  const u64 links_match =
      env.alu(AluOp::eq, out.leaf_count, out.links.size());
  ZKT_TRY(env.assert_true(links_match == 1, "join links vs leaf count"));
  out.fold_digest = env.sha256(fold_input.bytes());
  if (sketched) {
    out.has_sketch = true;
    out.sketch_params = merged_sketch->params();
    out.sketch_digest = sketch_digest_traced(env, *merged_sketch);
    out.sketch_total = merged_sketch->total();
  }

  Writer jw;
  out.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace

void JoinJournal::write(Writer& w) const {
  w.str("JOIN1");
  w.u32v(height);
  w.u64v(leaf_count);
  w.u64v(total_entries);
  w.fixed(fold_digest.bytes);
  w.varint(links.size());
  for (const auto& link : links) {
    w.fixed(link.claim_digest.bytes);
    w.u8v(link.has_prev ? 1 : 0);
    w.fixed(link.prev_claim_digest.bytes);
    w.fixed(link.prev_root.bytes);
    w.fixed(link.new_root.bytes);
    w.u64v(link.prev_entry_count);
    w.u64v(link.new_entry_count);
    w.varint(link.commitments.size());
    for (const auto& c : link.commitments) write_commitment_ref(w, c);
    w.u8v(link.has_sketch ? 1 : 0);
    if (link.has_sketch) {
      w.fixed(link.prev_sketch_digest.bytes);
      w.fixed(link.sketch_digest.bytes);
    }
  }
  w.u8v(has_sketch ? 1 : 0);
  if (has_sketch) {
    w.u32v(sketch_params.cm.width);
    w.u32v(sketch_params.cm.depth);
    w.u64v(sketch_params.cm.seed);
    w.u32v(sketch_params.heavy_capacity);
    w.fixed(sketch_digest.bytes);
    w.u64v(sketch_total);
  }
}

Result<JoinJournal> JoinJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "JOIN1") {
    return Error{Errc::parse_error, "bad join journal magic"};
  }
  JoinJournal j;
  auto height = r.u32v();
  if (!height.ok()) return height.error();
  j.height = height.value();
  auto leaves = r.u64v();
  if (!leaves.ok()) return leaves.error();
  j.leaf_count = leaves.value();
  auto entries = r.u64v();
  if (!entries.ok()) return entries.error();
  j.total_entries = entries.value();
  ZKT_TRY(r.fixed(j.fold_digest.bytes));
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() != j.leaf_count || n.value() > (1u << 20)) {
    return Error{Errc::parse_error, "join link count mismatch"};
  }
  j.links.resize(n.value());
  for (auto& link : j.links) {
    ZKT_TRY(r.fixed(link.claim_digest.bytes));
    auto has_prev = r.u8v();
    if (!has_prev.ok()) return has_prev.error();
    if (has_prev.value() > 1) {
      return Error{Errc::parse_error, "bad join link has_prev flag"};
    }
    link.has_prev = has_prev.value() == 1;
    ZKT_TRY(r.fixed(link.prev_claim_digest.bytes));
    ZKT_TRY(r.fixed(link.prev_root.bytes));
    ZKT_TRY(r.fixed(link.new_root.bytes));
    auto prev_count = r.u64v();
    if (!prev_count.ok()) return prev_count.error();
    link.prev_entry_count = prev_count.value();
    auto new_count = r.u64v();
    if (!new_count.ok()) return new_count.error();
    link.new_entry_count = new_count.value();
    auto nc = r.varint();
    if (!nc.ok()) return nc.error();
    if (nc.value() > (1u << 20)) {
      return Error{Errc::parse_error, "too many join link commitments"};
    }
    link.commitments.resize(nc.value());
    for (auto& c : link.commitments) {
      auto parsed = parse_commitment_ref(r, CommitmentKind::rlog);
      if (!parsed.ok()) return parsed.error();
      c = std::move(parsed.value());
    }
    auto link_sketch = r.u8v();
    if (!link_sketch.ok()) return link_sketch.error();
    if (link_sketch.value() > 1) {
      return Error{Errc::parse_error, "bad join link sketch flag"};
    }
    link.has_sketch = link_sketch.value() == 1;
    if (link.has_sketch) {
      ZKT_TRY(r.fixed(link.prev_sketch_digest.bytes));
      ZKT_TRY(r.fixed(link.sketch_digest.bytes));
    }
  }
  auto has_sketch = r.u8v();
  if (!has_sketch.ok()) return has_sketch.error();
  if (has_sketch.value() > 1) {
    return Error{Errc::parse_error, "bad join journal sketch flag"};
  }
  j.has_sketch = has_sketch.value() == 1;
  if (j.has_sketch) {
    auto width = r.u32v();
    if (!width.ok()) return width.error();
    j.sketch_params.cm.width = width.value();
    auto depth = r.u32v();
    if (!depth.ok()) return depth.error();
    j.sketch_params.cm.depth = depth.value();
    auto seed = r.u64v();
    if (!seed.ok()) return seed.error();
    j.sketch_params.cm.seed = seed.value();
    auto cap = r.u32v();
    if (!cap.ok()) return cap.error();
    j.sketch_params.heavy_capacity = cap.value();
    if (j.sketch_params.cm.width == 0 || j.sketch_params.cm.depth == 0 ||
        j.sketch_params.heavy_capacity == 0) {
      return Error{Errc::parse_error, "degenerate sketch params"};
    }
    ZKT_TRY(r.fixed(j.sketch_digest.bytes));
    auto total = r.u64v();
    if (!total.ok()) return total.error();
    j.sketch_total = total.value();
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing join journal bytes"};
  }
  return j;
}

zvm::ImageID join_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.join", 1, join_guest);
  return id;
}

bool is_join_image(const zvm::ImageID& image) { return image == join_image(); }

void write_join_child(Writer& input, const zvm::Receipt& child,
                      const Bytes* sketch_bytes) {
  input.u8v(is_join_image(child.claim.image_id) ? kJoinChildJoin
                                                : kJoinChildAggregation);
  child.claim.serialize(input);
  input.blob(child.journal);
  input.u8v(sketch_bytes != nullptr ? 1 : 0);
  if (sketch_bytes != nullptr) input.blob(*sketch_bytes);
}

}  // namespace zkt::core
