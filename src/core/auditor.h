// Auditor: the client/regulator-side verifier (the "Verifier" box of
// Figure 1). Holds no private data — only receipts, their public journals,
// and the public commitment board.
//
// The auditor maintains the verified chain of aggregation rounds: each new
// round's receipt must verify, chain onto the previous round (claim digest
// and Merkle root continuity), and consume only commitments that routers
// actually published (signatures checked by the board). Query receipts are
// then verified against any accepted round.
#pragma once

#include <set>

#include "core/commitment.h"
#include "core/guests.h"
#include "zvm/verifier.h"

namespace zkt::core {

/// Verify `receipt` as an aggregation receipt of EITHER kind: the claim
/// must name one of the two aggregation images (full rebuild or incremental
/// delta) and the receipt must verify against that image. Chains mix the
/// two kinds freely, so every chain consumer goes through this instead of
/// pinning guest_images().aggregate.
Status verify_aggregation_receipt(zvm::Verifier& verifier,
                                  const zvm::Receipt& receipt);

class Auditor {
 public:
  explicit Auditor(const CommitmentBoard& board) : board_(&board) {}

  /// Verify an aggregation receipt and append it to the trusted chain.
  /// Returns the parsed journal on success.
  Result<AggJournal> accept_round(const zvm::Receipt& receipt);

  /// Adopt a chain head from a VERIFIED chain summary (see
  /// core/chain_summary.h — the caller must have run verify_chain_summary
  /// against this auditor's board first). Subsequent rounds chain onto the
  /// summarized head, and queries targeting its final round verify. Only
  /// allowed on a fresh auditor (no rounds accepted yet).
  Status adopt_summary(u64 rounds, const Digest32& final_claim_digest,
                       const Digest32& final_root, u64 final_entry_count);

  /// Verify a query receipt (complete-scan or selective). It must target an
  /// accepted aggregation round, carry the seal of the mode it claims, and
  /// (if `expected_query` is given) prove exactly that query. Returns the
  /// parsed journal — check `.mode` before treating COUNT-style results as
  /// complete.
  Result<QueryJournal> verify_query(const zvm::Receipt& receipt,
                                    const Query* expected_query = nullptr);

  u64 rounds_accepted() const { return rounds_; }
  const Digest32& current_root() const { return current_root_; }
  u64 current_entry_count() const { return current_entry_count_; }
  /// Whether an aggregation receipt with this claim digest was accepted.
  bool is_accepted_claim(const Digest32& claim_digest) const {
    return accepted_claims_.count(claim_digest.bytes) > 0;
  }

 private:
  const CommitmentBoard* board_;
  zvm::Verifier verifier_;
  u64 rounds_ = 0;
  Digest32 last_claim_digest_;
  Digest32 current_root_ = crypto::MerkleTree::empty_leaf();
  u64 current_entry_count_ = 0;
  std::set<std::array<u8, 32>> accepted_claims_;
};

}  // namespace zkt::core
