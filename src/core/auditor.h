// Auditor: the client/regulator-side verifier (the "Verifier" box of
// Figure 1). Holds no private data — only receipts, their public journals,
// and the public commitment board.
//
// The auditor maintains the verified chain of aggregation rounds: each new
// round's receipt must verify, chain onto the previous round (claim digest
// and Merkle root continuity), and consume only commitments that routers
// actually published (signatures checked by the board). Query receipts are
// then verified against any accepted round.
//
// Three ways to feed it, all with byte-identical accept/reject decisions:
//   accept_round()   — one receipt at a time (the original surface);
//   accept_rounds()  — a batch per round-trip, verified through
//                      core::BatchVerifier (pool fan-out + chain dedup);
//   audit()          — a whole chain pulled off a core::ReceiptSource in
//                      bounded windows, so an arbitrarily long receipt file
//                      verifies in O(1) memory.
// Verification work is published to obs as core.auditor.* instruments (see
// docs/OBSERVABILITY.md).
#pragma once

#include <deque>
#include <optional>
#include <set>

#include "core/batch_verifier.h"
#include "core/commitment.h"
#include "core/guests.h"
#include "core/sketch_query.h"
#include "crypto/sha256_backend.h"
#include "zvm/verifier.h"

namespace zkt::core {

class ReceiptSource;  // core/io.h (host-side streaming input)
struct EpochSeal;     // core/epoch.h (ladder seal record)

/// A verified chain head: what a summary hands to an auditor, and what an
/// auditor reports after an audit. Replaces the positional
/// (rounds, claim, root, entries) argument list of adopt_summary.
struct ChainHead {
  u64 rounds = 0;            ///< rounds the chain covers
  Digest32 claim_digest;     ///< claim digest of the last round
  Digest32 root;             ///< Merkle root after the last round
  u64 entry_count = 0;       ///< entries under `root`
};

/// Per-call knobs for the query/summary verification surface. One struct
/// for every verify_* entry point, per the repo's options convention.
struct VerifyOptions {
  /// When set, the receipt must prove exactly this query.
  const Query* expected_query = nullptr;
  /// Optional accounting sink (merged, not overwritten).
  zvm::VerifyStats* stats = nullptr;
};

/// Construction knobs for Auditor.
struct AuditorOptions {
  /// Soundness floor: composite seals must open at least
  /// min(min_queries, row_count) Fiat–Shamir-chosen rows. Overrides
  /// batch.min_queries (the auditor is the single source of truth).
  u32 min_queries = 32;
  /// Accepted-claim window capacity: queries must target one of the last N
  /// accepted rounds; older targets are rejected as chain_broken even
  /// though they once verified. 0 = unbounded (the pre-window behavior —
  /// O(chain length) memory, which defeats streaming audits). The current
  /// head is always retained.
  u64 accepted_claim_window = 1024;
  /// Pin the SHA-256 backend (process-global, like ZKT_SHA256_BACKEND).
  /// Best-effort: an unavailable backend leaves runtime dispatch in place;
  /// callers that must know use crypto::sha256_force_backend directly.
  std::optional<crypto::Sha256Backend> backend;
  /// Batch-verification knobs (pool, parallelism) for accept_rounds/audit.
  BatchVerifierOptions batch;
};

/// Per-call knobs for Auditor::audit.
struct AuditOptions {
  /// Receipts pulled off the source and verified per round-trip. This is
  /// the audit's peak receipt residency — memory is O(batch_size), never
  /// O(chain length). 0 behaves as 1.
  u64 batch_size = 64;
  /// Optional accounting sink (merged, not overwritten).
  zvm::VerifyStats* stats = nullptr;
};

/// What an audit established.
struct AuditReport {
  u64 rounds = 0;   ///< rounds accepted by THIS audit call
  ChainHead head;   ///< chain head after the audit
};

/// What a catch_up() established (see Auditor::catch_up).
struct CatchUpReport {
  u64 seals_adopted = 0;    ///< epoch seals verified and adopted
  u64 seal_rounds = 0;      ///< rounds covered by those seals
  u64 rounds_replayed = 0;  ///< suffix rounds verified individually
  ChainHead head;           ///< chain head after catch-up
};

/// Bounded, insertion-ordered set of accepted aggregation claim digests.
/// The unbounded std::set it replaces grew by 32 bytes per accepted round
/// forever — fine for a demo, wrong for an auditor tracking years of
/// rounds. Capacity 0 means unbounded; otherwise the oldest claims are
/// evicted first, so the chain head is always retained.
class AcceptedClaimWindow {
 public:
  explicit AcceptedClaimWindow(u64 capacity) : capacity_(capacity) {}

  void insert(const Digest32& claim_digest);
  bool contains(const Digest32& claim_digest) const {
    return lookup_.count(claim_digest.bytes) > 0;
  }
  u64 size() const { return order_.size(); }
  u64 capacity() const { return capacity_; }

 private:
  u64 capacity_;
  std::set<std::array<u8, 32>> lookup_;
  std::deque<std::array<u8, 32>> order_;
};

class Auditor {
 public:
  explicit Auditor(const CommitmentBoard& board, AuditorOptions options = {});

  /// Verify an aggregation receipt and append it to the trusted chain.
  /// Returns the parsed journal on success.
  Result<AggJournal> accept_round(const zvm::Receipt& receipt);

  /// Verify a batch of consecutive rounds in one round-trip (BatchVerifier:
  /// pool fan-out, chain-continuity sibling dedup), then chain them on in
  /// order. Stops at the first failure — the already-accepted prefix stays
  /// accepted (exactly as a loop over accept_round would leave it) and the
  /// returned error is the same the sequential walk reports. On success
  /// returns the number of rounds accepted by this call. `stats` (optional)
  /// receives the verification accounting, merged.
  Result<u64> accept_rounds(std::span<const zvm::Receipt> receipts,
                            zvm::VerifyStats* stats = nullptr);

  /// Streaming audit: pull receipts off `source` in batch_size windows and
  /// accept_rounds() each window. Peak memory is O(batch_size) receipts —
  /// independent of chain length — so arbitrarily long receipt files audit
  /// in O(1) memory. Source errors (truncation, CRC, injected faults) and
  /// verification/continuity failures surface unchanged.
  Result<AuditReport> audit(ReceiptSource& source,
                            const AuditOptions& options = {});

  /// Adopt a chain head from a VERIFIED chain summary (see
  /// core/chain_summary.h — the caller must have run verify_chain_summary
  /// against this auditor's board first; its journal's head() is this
  /// argument). Subsequent rounds chain onto the summarized head, and
  /// queries targeting its final round verify. Only allowed on a fresh
  /// auditor (no rounds accepted yet).
  Status adopt_summary(const ChainHead& head);

  /// Cold-verifier catch-up: verify a ladder of epoch seals (chain order,
  /// first one genesis-anchored, consecutive seals spliced host-side on
  /// claim digest / root / entry count / commitment-chain digest / sketch
  /// digest), adopt the resulting head, then accept the unsealed suffix
  /// rounds through the normal batch path. Accept/reject decisions are
  /// byte-identical to a full sequential audit of the same chain; the cost
  /// is O(log T) seal verifications + O(epoch) suffix instead of O(T).
  /// Unlike adopt_summary, the seal journal carries the sketch position, so
  /// sketch queries work immediately after catch-up. Only allowed on a
  /// fresh auditor. Implemented in core/epoch.cpp.
  Result<CatchUpReport> catch_up(std::span<const EpochSeal> seals,
                                 std::span<const zvm::Receipt> suffix,
                                 zvm::VerifyStats* stats = nullptr);

  /// Verify a query receipt (complete-scan or selective). It must target an
  /// accepted aggregation round (within the accepted-claim window), carry
  /// the seal of the mode it claims, and (if options.expected_query is set)
  /// prove exactly that query. Returns the parsed journal — check `.mode`
  /// before treating COUNT-style results as complete.
  Result<QueryJournal> verify_query(const zvm::Receipt& receipt,
                                    const VerifyOptions& options = {});

  /// Verify a sketch heavy-hitters receipt: it must target an accepted
  /// round, and when it targets the current head, answer against exactly
  /// the sketch digest this chain carried there (a stale or forged sketch
  /// digest is rejected even though the receipt itself verifies).
  Result<SketchHeavyJournal> verify_heavy_hitters(
      const zvm::Receipt& receipt, const VerifyOptions& options = {});

  /// Verify a sketch cardinality receipt, with the same binding rules.
  Result<SketchCardinalityJournal> verify_cardinality(
      const zvm::Receipt& receipt, const VerifyOptions& options = {});

  u64 rounds_accepted() const { return rounds_; }
  const Digest32& current_root() const { return current_root_; }
  u64 current_entry_count() const { return current_entry_count_; }
  /// The accepted chain head in adopt_summary form.
  ChainHead head() const {
    return ChainHead{rounds_, last_claim_digest_, current_root_,
                     current_entry_count_};
  }
  /// Whether an aggregation receipt with this claim digest was accepted and
  /// is still inside the accepted-claim window.
  bool is_accepted_claim(const Digest32& claim_digest) const {
    return claims_.contains(claim_digest);
  }
  const AuditorOptions& options() const { return options_; }

  /// Whether the auditor knows the chain's sketch position. True from
  /// genesis on; false after adopt_summary until the next accepted round
  /// re-establishes it (chain summaries do not carry sketch state).
  bool sketch_known() const { return sketch_known_; }
  /// Whether accepted rounds carry the proof-carrying sketch (meaningful
  /// when sketch_known()).
  bool has_sketch() const { return sketch_present_; }
  /// The sketch digest after the last accepted round.
  const Digest32& sketch_digest() const { return sketch_digest_; }
  const netflow::SketchParams& sketch_params() const { return sketch_params_; }

 private:
  /// Chain-continuity + board cross-checks and state update for a receipt
  /// whose SEAL already verified. Shared by the single and batch paths.
  Result<AggJournal> adopt_verified(const zvm::Receipt& receipt);
  Result<u64> accept_rounds_impl(std::span<const zvm::Receipt> receipts,
                                 zvm::VerifyStats* stats);
  /// Shared binding checks for the round-sketch query verifiers.
  Status check_sketch_query_binding(const Digest32& agg_claim_digest,
                                    const Digest32& queried_sketch_digest,
                                    const netflow::SketchParams& params);

  const CommitmentBoard* board_;
  AuditorOptions options_;
  zvm::Verifier verifier_;
  BatchVerifier batch_;
  u64 rounds_ = 0;
  Digest32 last_claim_digest_;
  Digest32 current_root_ = crypto::MerkleTree::empty_leaf();
  u64 current_entry_count_ = 0;
  AcceptedClaimWindow claims_;
  // Sketch continuity (DESIGN.md §10): chained host-side exactly like
  // prev_root. Unknown after adopting a summary (which omits sketch state).
  bool sketch_known_ = true;
  bool sketch_present_ = false;
  netflow::SketchParams sketch_params_;
  Digest32 sketch_digest_;
};

}  // namespace zkt::core
