// Verifiable quantile bounds from committed latency histograms: the SLA
// claim of §2.1 — "at least 90 % of [samples] achieve RTT < X ms" — proven
// without revealing the latency distribution.
//
// The guest checks the histogram bytes against the published commitment,
// recomputes (count of samples provably below the bound, total) with traced
// arithmetic, and publishes only those two numbers plus the bound. The
// verifier derives the fraction; the shape of the distribution stays
// private.
#pragma once

#include "core/commitment.h"
#include "core/guests.h"
#include "netflow/histogram.h"
#include "zvm/prover.h"
#include "zvm/verifier.h"

namespace zkt::core {

struct HistogramQueryJournal {
  /// Published histogram commitment: rlog_hash = histogram hash,
  /// record_count = total samples.
  CommitmentRef commitment;
  u64 bound_us = 0;
  u64 count_below = 0;  ///< samples provably below bound_us
  u64 total = 0;

  // NOTE: the floating-point view (fraction below the bound) lives in
  // core/describe.h as free function fraction_below() — this header is
  // guest-reachable and must stay float-free (rule guest-determinism).

  void write(Writer& w) const;
  static Result<HistogramQueryJournal> parse(BytesView journal);
};

zvm::ImageID histogram_query_image();

struct HistogramQueryResponse {
  zvm::Receipt receipt;
  HistogramQueryJournal journal;
  zvm::ProveInfo prove_info;
};

/// Prove the below-bound count for `bound_us` against `histogram`, whose
/// hash must already be published as `ref`.
Result<HistogramQueryResponse> prove_histogram_query(
    const CommitmentRef& ref, const netflow::LatencyHistogram& histogram,
    u64 bound_us, const zvm::ProveOptions& options = {});

/// Verifier side: check the receipt, match its commitment against the
/// board, and (optionally) the expected bound.
Result<HistogramQueryJournal> verify_histogram_query(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    const u64* expected_bound_us = nullptr);

}  // namespace zkt::core
