// Prover-side services: the service provider's aggregation pipeline and
// query responder (the "Prover" box of Figure 1).
//
// AggregationService owns the CLog state and runs Algorithm-1 rounds inside
// the zkVM; QueryService answers client queries with proofs against the
// latest aggregated state. Both deliberately avoid pre-checking the
// integrity conditions the guest enforces: if the stored logs were tampered
// with after commitment, proof *generation* fails — which is the detection
// mechanism the paper evaluates (§6).
#pragma once

#include <optional>

#include "core/clog.h"
#include "core/commitment.h"
#include "core/guests.h"
#include "zvm/prover.h"

namespace zkt::core {

struct AggregationRound {
  u64 round_id = 0;
  zvm::Receipt receipt;
  AggJournal journal;
  zvm::ProveInfo prove_info;
};

class AggregationService {
 public:
  explicit AggregationService(const CommitmentBoard& board,
                              zvm::ProveOptions prove_options = {})
      : board_(&board), prove_options_(std::move(prove_options)) {}

  /// Run one aggregation round over the given batches. Batches are processed
  /// in (window, router) order to keep rounds deterministic. Fails — without
  /// modifying state — if any batch lacks a published commitment or fails
  /// the in-guest integrity checks.
  Result<AggregationRound> aggregate(
      std::vector<netflow::RLogBatch> batches);

  const CLogState& state() const { return state_; }
  u64 rounds_completed() const { return rounds_; }
  bool has_rounds() const { return last_receipt_.has_value(); }
  const zvm::Receipt& last_receipt() const { return *last_receipt_; }
  Digest32 last_claim_digest() const {
    return last_receipt_ ? last_receipt_->claim.digest() : Digest32{};
  }

 private:
  const CommitmentBoard* board_;
  zvm::ProveOptions prove_options_;
  CLogState state_;
  std::optional<zvm::Receipt> last_receipt_;
  u64 rounds_ = 0;
};

struct QueryResponse {
  zvm::Receipt receipt;
  QueryJournal journal;
  /// Convenience: journal.result.value(journal.query.agg).
  u64 value = 0;
  zvm::ProveInfo prove_info;
};

class QueryService {
 public:
  explicit QueryService(const AggregationService& aggregation,
                        zvm::ProveOptions prove_options = {})
      : aggregation_(&aggregation),
        prove_options_(std::move(prove_options)) {}

  /// Prove a query against the latest aggregated state with a complete scan
  /// (the result provably covers every committed entry).
  Result<QueryResponse> run(const Query& query) const;

  /// Prove a query by opening only the matching entries with Merkle
  /// inclusion proofs — the paper's §4.2 query mechanism. Cheaper
  /// (O(matches · log n) instead of O(state)), but the receipt's
  /// QueryMode::selective tells the verifier that completeness is not
  /// proven.
  Result<QueryResponse> run_selective(const Query& query) const;

 private:
  Result<QueryResponse> finish(Result<zvm::Receipt> receipt,
                               const zvm::ProveInfo& info) const;

  const AggregationService* aggregation_;
  zvm::ProveOptions prove_options_;
};

}  // namespace zkt::core
