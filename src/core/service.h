// Prover-side services: the service provider's aggregation pipeline and
// query responder (the "Prover" box of Figure 1).
//
// AggregationService owns the CLog state and runs Algorithm-1 rounds inside
// the zkVM; QueryService answers client queries with proofs against the
// latest aggregated state. Both deliberately avoid pre-checking the
// integrity conditions the guest enforces: if the stored logs were tampered
// with after commitment, proof *generation* fails — which is the detection
// mechanism the paper evaluates (§6).
//
// Both services record into the process-wide obs::Registry (core.agg.* and
// core.query.* — see docs/OBSERVABILITY.md for the catalog).
#pragma once

#include <initializer_list>
#include <optional>
#include <span>

#include "core/clog.h"
#include "core/commitment.h"
#include "core/guests.h"
#include "core/sketch_query.h"
#include "netflow/sketch.h"
#include "zvm/prover.h"

namespace zkt::core {

struct AggregationRound {
  u64 round_id = 0;
  zvm::Receipt receipt;
  AggJournal journal;
  zvm::ProveInfo prove_info;
};

/// The unified result of one proving round — one shape whether the round
/// ran on the single-chain path, the sharded path, or the sharded path with
/// a join-tree fold (each fills the parts it produced):
///
///   single chain:  shard_rounds = {the round}; no splits, no seal.
///   sharded:       one shard_round per shard + the round's split receipts.
///   sharded+fold:  additionally tree_seal — ONE receipt that transitively
///                  verifies every shard round (see core/join.h).
///
/// Replaces the former ShardedAggregationService::Round and the bare
/// AggregationRound rounds ProviderPipeline used to return.
struct RoundResult {
  u64 round_id = 0;
  /// Shard fan-out this window was proven with, pinned at stage time (1 on
  /// the single-chain path). Split journals bind the same value in-trace,
  /// so adaptive resharding can only take effect where a chain starts —
  /// never mid-window (see ShardedOptions::adaptive_shards).
  u32 shard_count = 1;
  /// Split receipts, one per source batch (sharded path only).
  std::vector<zvm::Receipt> split_receipts;
  /// Per-shard aggregation rounds in shard order; exactly one element on
  /// the single-chain path.
  std::vector<AggregationRound> shard_rounds;
  /// The round's join-tree seal, when folding ran (sharded, >= 2 shards).
  std::optional<zvm::Receipt> tree_seal;
  /// Per-shard round sketches in shard order, captured when the shard
  /// chains carry the proof-carrying sketch (empty otherwise). Snapshotted
  /// at prove time so a pipelined fold of window i is immune to window i+1
  /// advancing the shard services underneath it.
  std::vector<netflow::RoundSketch> shard_sketches;
  /// The whole-round sketch the tree seal binds (fold path only): the
  /// host-merged sum of shard_sketches, matching the root JoinJournal's
  /// sketch_digest.
  std::optional<netflow::RoundSketch> round_sketch;
  double wall_ms = 0;
  u64 total_cycles = 0;

  /// The single-chain round. Only meaningful when shard_rounds has exactly
  /// one element (the unsharded pipeline).
  const AggregationRound& primary() const { return shard_rounds.front(); }
  AggregationRound& primary() { return shard_rounds.front(); }
};

/// How aggregation rounds pick between the full-rebuild guest (O(N) traced
/// hashing) and the incremental delta guest (O(k log N)).
enum class AggMode : u8 {
  /// Estimate both costs per round and prove whichever is cheaper (the
  /// incremental_threshold knob biases the cutover). Genesis and empty-state
  /// rounds always use the full guest.
  auto_select = 0,
  /// Always prove with the full-rebuild guest.
  full = 1,
  /// Prove incrementally whenever a delta round is possible (there is a
  /// previous round and the round touches at least one entry); otherwise
  /// fall back to the full guest.
  incremental = 2,
};

/// Construction-time knobs for AggregationService (and the sharded
/// variant). A struct rather than positional parameters so new knobs don't
/// silently shift argument meanings at call sites.
struct AggregationOptions {
  zvm::ProveOptions prove_options;
  AggMode mode = AggMode::auto_select;
  /// auto_select proves incrementally only while the delta's estimated
  /// traced-hash count stays below this fraction of the full rebuild's —
  /// past it (e.g. an insertion cascade opening most of the state) the full
  /// guest is the better deal.
  double incremental_threshold = 0.75;
  /// Proof-carrying round sketch (DESIGN.md §10): when set, every round
  /// folds its records into a committed RoundSketch whose digest chains
  /// through the journals, and QueryService can answer heavy-hitter /
  /// cardinality queries against it in time flat in the CLog size. nullopt
  /// disables sketches (journals then omit the sketch section entirely).
  std::optional<netflow::SketchParams> sketch = netflow::SketchParams{};
};

class AggregationService {
 public:
  explicit AggregationService(const CommitmentBoard& board,
                              AggregationOptions options = {})
      : board_(&board),
        prove_options_(std::move(options.prove_options)),
        mode_(options.mode),
        incremental_threshold_(options.incremental_threshold),
        sketch_params_(options.sketch),
        sketch_(options.sketch.value_or(netflow::SketchParams{})) {}

  /// Run one aggregation round over the given batches. Batches are processed
  /// in (window, router) order — via a locally sorted index, so the caller's
  /// data is neither copied nor reordered. Fails — without modifying state —
  /// if any batch lacks a published commitment or fails the in-guest
  /// integrity checks.
  Result<AggregationRound> aggregate(
      std::span<const netflow::RLogBatch> batches);

  /// Convenience for literal batch lists: aggregate({a, b}).
  Result<AggregationRound> aggregate(
      std::initializer_list<netflow::RLogBatch> batches) {
    return aggregate(
        std::span<const netflow::RLogBatch>(batches.begin(), batches.size()));
  }

  const CLogState& state() const { return state_; }
  u64 rounds_completed() const { return rounds_; }
  bool has_rounds() const { return last_receipt_.has_value(); }
  const zvm::Receipt& last_receipt() const { return *last_receipt_; }

  /// Claim digest of the last proven round. An error when no round has run,
  /// so a forged all-zero chain head can never be mistaken for genesis.
  Result<Digest32> last_claim_digest() const {
    if (!last_receipt_.has_value()) {
      return Error{Errc::chain_broken, "no aggregation round has run"};
    }
    return last_receipt_->claim.digest();
  }

  /// Adopt a recovered chain position: the CLog state as of `last_receipt`'s
  /// round and the number of rounds completed. Only valid on a fresh service
  /// (no rounds run). Fails with merkle_mismatch unless the state's root and
  /// entry count match the receipt's journal — a snapshot that disagrees
  /// with its receipt cannot be resumed from. When the receipt's journal
  /// chains a sketch, `sketch` must hold the round's recovered RoundSketch
  /// (hash-checked against the journal's sketch digest); the service's
  /// sketch enablement follows the recovered chain either way.
  Status restore(CLogState state, zvm::Receipt last_receipt,
                 u64 rounds_completed,
                 std::optional<netflow::RoundSketch> sketch = std::nullopt);

  /// Roll the chain forward over an ALREADY-PROVEN round whose receipt was
  /// recovered from storage: check the receipt chains onto the current head
  /// (previous claim digest, root, entry count), apply the batches to the
  /// host state, verify the result against the receipt's journal, and adopt
  /// the receipt as the new head — no re-proving. Rejects (chain_broken /
  /// merkle_mismatch) any receipt that does not extend this exact chain.
  Status replay_round(std::span<const netflow::RLogBatch> batches,
                      const zvm::Receipt& receipt);

  /// Which guest proved the last completed round (full until a delta round
  /// runs). Feeds the next round's prev_image_kind.
  RoundKind last_kind() const { return last_kind_; }

  /// Whether rounds carry the proof-carrying sketch.
  bool sketch_enabled() const { return sketch_params_.has_value(); }
  /// The service's host mirror of the round sketch (hash-checked against
  /// every journal's sketch digest). Meaningful only when sketch_enabled().
  const netflow::RoundSketch& sketch() const { return sketch_; }

  /// Build the incremental-guest input for running `batches` against the
  /// CURRENT state: the opened-entry set (merge targets, adjacency
  /// neighbors of new keys, any insertion cascade) and one multiproof over
  /// opened indices ∪ the new-flow slots. Does not modify state. Fails with
  /// invalid_argument when no delta round is possible (no previous round,
  /// empty state, or a round that touches nothing). Exposed for tests and
  /// benchmarks; aggregate() calls it internally per its AggMode.
  Result<DeltaAggregateInput> build_delta_input(
      std::span<const netflow::RLogBatch> batches) const;

 private:
  /// The delta shape of a round: which prev entries must be opened and
  /// which keys are new, in the guest's required orders.
  struct DeltaShape {
    std::vector<u64> opened;               ///< sorted prev-state indices
    std::vector<netflow::FlowKey> fresh;   ///< sorted new flow keys
    u64 records = 0;                       ///< total records in the round
  };
  DeltaShape delta_shape(std::span<const netflow::RLogBatch> batches,
                         std::span<const size_t> order) const;
  Result<DeltaAggregateInput> build_delta_input_ordered(
      std::span<const netflow::RLogBatch> batches,
      std::span<const size_t> order) const;
  bool pick_incremental(const DeltaShape& shape) const;
  Result<AggregationRound> aggregate_impl(
      std::span<const netflow::RLogBatch> batches);

  /// Fold the round's records into a copy of the sketch mirror, in the
  /// guest's exact order (Space-Saving is order-sensitive).
  netflow::RoundSketch folded_sketch(
      std::span<const netflow::RLogBatch> batches,
      std::span<const size_t> order) const;

  const CommitmentBoard* board_;
  zvm::ProveOptions prove_options_;
  AggMode mode_ = AggMode::auto_select;
  double incremental_threshold_ = 0.75;
  CLogState state_;
  std::optional<zvm::Receipt> last_receipt_;
  RoundKind last_kind_ = RoundKind::full;
  u64 rounds_ = 0;
  /// nullopt = sketches disabled; may be adopted from a recovered chain.
  std::optional<netflow::SketchParams> sketch_params_;
  netflow::RoundSketch sketch_;  ///< host mirror of the chained sketch
};

struct QueryResponse {
  zvm::Receipt receipt;
  QueryJournal journal;
  /// Convenience: journal.result.value(journal.query.agg).
  u64 value = 0;
  zvm::ProveInfo prove_info;
};

/// Per-call knobs for QueryService::run — the completeness/cost tradeoff the
/// caller picks, instead of picking between two methods.
struct QueryOptions {
  /// complete: every entry is scanned inside the guest, so the result
  ///   provably covers every committed entry (O(state)).
  /// selective: only the matching entries are opened with Merkle inclusion
  ///   proofs — the paper's §4.2 query mechanism. Cheaper
  ///   (O(matches · log n)), but the receipt's QueryMode::selective tells
  ///   the verifier that completeness is not proven.
  QueryMode mode = QueryMode::complete;
  /// When set, replaces the service's construction-time ProveOptions for
  /// this call (e.g. a composite seal for one audit query).
  std::optional<zvm::ProveOptions> prove_options_override;
};

/// Construction-time knobs for QueryService, mirroring AggregationOptions.
struct QueryServiceOptions {
  /// Default ProveOptions for every run(); QueryOptions::
  /// prove_options_override still wins per call.
  zvm::ProveOptions prove_options;
  /// heavy_hitters()/cardinality() answer from the round sketch only while
  /// the sketch path's estimated traced-hash count stays below this
  /// fraction of the exact complete-scan's — mirroring
  /// AggregationOptions::incremental_threshold. Past it (tiny states where
  /// hashing the sketch costs more than scanning the CLog) the exact query
  /// is the better deal.
  double sketch_threshold = 0.75;
};

/// Answer to a heavy-hitters query: exactly one of the two proof shapes,
/// depending on how QueryService routed it.
///
///   used_sketch: a SketchHeavyResponse against the round sketch — flat in
///       the CLog size, complete above the proven Space-Saving floor, each
///       hit bracketed by [count - error, cms_estimate].
///   otherwise: an exact complete-scan QueryResponse counting the flows
///       with packets >= threshold — O(state), no error bound.
struct HeavyHittersResponse {
  bool used_sketch = false;
  std::optional<SketchHeavyResponse> sketch;
  std::optional<QueryResponse> exact;
};

/// Answer to a distinct-flow cardinality query, same routing shape.
struct CardinalityResponse {
  bool used_sketch = false;
  std::optional<SketchCardinalityResponse> sketch;
  std::optional<QueryResponse> exact;  ///< complete-scan match-all count
};

class QueryService {
 public:
  explicit QueryService(const AggregationService& aggregation,
                        QueryServiceOptions options = {})
      : aggregation_(&aggregation),
        prove_options_(std::move(options.prove_options)),
        sketch_threshold_(options.sketch_threshold) {}

  /// Prove a query against the latest aggregated state. options.mode picks
  /// complete-scan vs. selective proving; see QueryOptions.
  Result<QueryResponse> run(const Query& query,
                            const QueryOptions& options = {}) const;

  /// Prove the flows with total packets >= threshold. Routes to the round
  /// sketch when the chain carries one, the Space-Saving error bound
  /// satisfies the query (threshold above the provable floor), and the
  /// cost estimator favours it; otherwise falls back to an exact
  /// complete-scan proof.
  Result<HeavyHittersResponse> heavy_hitters(
      u64 threshold, const QueryOptions& options = {}) const;

  /// Prove the number of distinct flows, with the same routing.
  Result<CardinalityResponse> cardinality(
      const QueryOptions& options = {}) const;

 private:
  Result<QueryResponse> run_complete(const Query& query,
                                     const zvm::ProveOptions& prove) const;
  Result<QueryResponse> run_selective_impl(
      const Query& query, const zvm::ProveOptions& prove) const;
  Result<QueryResponse> finish(Result<zvm::Receipt> receipt,
                               const zvm::ProveInfo& info) const;
  /// Traced-hash cost estimate: route to the sketch guest? Shared by both
  /// sketch-backed queries (pick_incremental's twin on the query side).
  bool pick_sketch() const;

  const AggregationService* aggregation_;
  zvm::ProveOptions prove_options_;
  double sketch_threshold_ = 0.75;
};

}  // namespace zkt::core
