// Epoch seals: a binary-counter ladder of chain-summary receipts kept
// alongside the live aggregation chain, so a cold verifier catches up on a
// T-round chain by verifying O(log T) seals plus an O(epoch) suffix —
// instead of replaying T receipts or asking the prover for an O(T)
// from-genesis summary.
//
// Ladder invariant (DESIGN.md §11): after U completed epoch units (one unit
// = epoch_every consecutive rounds), the live seals are exactly the binary
// decomposition of U — one seal of 2^k units per set bit k, in chain order
// with strictly decreasing levels. Each new unit is proven as a level-0
// seal and then merged with its left neighbour while the two tails have
// equal levels (the binary-counter carry), so the amortized cost is O(1)
// summary proofs per round and no seal is ever proven from more than two
// children. All ladder proving runs asynchronously on a common::ThreadPool
// so window proving never waits on a seal.
//
// Seals are proven with SUCCINCT receipts: constant 256-byte seal, O(1)
// verification, and the merge guest still binds them as assumptions — which
// is what keeps both the seal size and the catch-up verification cost flat
// in the rounds covered.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/thread_pool.h"
#include "core/chain_summary.h"

namespace zkt::core {

/// One ladder seal: the summary receipt for a power-of-two span of epoch
/// units, plus the out-of-band data a catch-up verifier needs (the ordered
/// CommitmentRef list the constant-size journal only commits to by digest).
struct EpochSeal {
  u32 level = 0;        ///< spans epoch_every * 2^level rounds
  u64 start_round = 0;  ///< 0-based index of the span's first round
  u64 rounds = 0;       ///< rounds covered (epoch_every << level)
  u64 first_window = 0;  ///< window id of the span's first round
  u64 last_window = 0;   ///< window id of the span's last round
  zvm::Receipt receipt;
  ChainSummaryJournal journal;  ///< parsed from receipt.journal
  /// Every commitment the span consumed, in consumption order — hash-chains
  /// from journal.first_commitments_digest to final_commitments_digest.
  std::vector<CommitmentRef> commitments;

  Bytes to_bytes() const;
  static Result<EpochSeal> from_bytes(BytesView data);
};

/// One span of the expected live ladder (epoch_ladder_plan output).
struct EpochSpanSpec {
  u32 level = 0;
  u64 start_round = 0;
  u64 rounds = 0;

  friend bool operator==(const EpochSpanSpec&, const EpochSpanSpec&) = default;
};

/// The live ladder a chain of `rounds` rounds must hold at `epoch_every`:
/// the binary decomposition of rounds / epoch_every, tallest first. Empty
/// when epoch_every == 0. Deterministic — recovery recomputes it from the
/// restored chain length and re-folds whatever the store is missing.
std::vector<EpochSpanSpec> epoch_ladder_plan(u64 rounds, u64 epoch_every);

/// Validate a seal recovered from storage against the live receipt chain:
/// its receipt must verify, its span must lie inside the chain, its journal
/// must match the chain's receipts at both ends (claim digests, genesis
/// flag), and its ref list must reproduce both the chain's per-round
/// journals and the proven commitment-chain digest. Anything short of that
/// is a reason to re-fold, not to adopt.
Status validate_recovered_seal(const EpochSeal& seal,
                               std::span<const zvm::Receipt> chain,
                               u64 epoch_every);

/// Construction-time knobs for EpochLadder.
struct EpochLadderOptions {
  /// Rounds per level-0 seal (the epoch length). Must be >= 1.
  u64 epoch_every = 16;
  /// Proving options for seal proofs. seal_kind is forced to succinct and
  /// assumptions are managed internally — see the header comment.
  zvm::ProveOptions prove_options;
  /// Worker pool for the asynchronous ladder proving; nullptr uses
  /// common::ThreadPool::shared().
  common::ThreadPool* pool = nullptr;
};

/// The provider-side ladder builder. feed() is called once per completed
/// round from the proving thread and never blocks on seal proving: full
/// epochs are handed to a single serialized actor task on the pool (one
/// in-flight dispatch at a time, so ladder state needs no fine-grained
/// locking and pool help-draining cannot deadlock on ladder work).
class EpochLadder {
 public:
  explicit EpochLadder(EpochLadderOptions options);
  ~EpochLadder();  // settles in-flight work (errors already surfaced stick)

  EpochLadder(const EpochLadder&) = delete;
  EpochLadder& operator=(const EpochLadder&) = delete;

  /// Append one completed round (in chain order). Parses the receipt's
  /// AggJournal for the round's commitment refs; proving of any completed
  /// epoch happens asynchronously. A prior asynchronous proving failure is
  /// surfaced here (and from settle()) as a terminal error.
  Status feed(const zvm::Receipt& receipt, u64 window);

  /// Drain seals finished since the last call, in completion order (level-0
  /// seals and every merge — supersets included, so callers can persist
  /// append-only). Non-blocking.
  std::vector<EpochSeal> take_completed();

  /// Wait for all dispatched ladder work and surface the first error.
  Status settle();

  /// The live ladder in chain order (tallest first). Call settle() first
  /// for a quiescent view.
  std::vector<EpochSeal> ladder() const;

  /// Recovery: install an already-validated seal as the next live ladder
  /// entry (chain order, before any feed()). Advances the internal unit
  /// and commitment-chain positions without proving.
  Status adopt(EpochSeal seal);

  u64 rounds_fed() const;
  u64 epoch_every() const { return options_.epoch_every; }
  const EpochLadderOptions& options() const { return options_; }

 private:
  struct PendingUnit {
    u64 start_round = 0;
    std::vector<zvm::Receipt> rounds;
    std::vector<u64> windows;
  };

  /// Actor loop body (runs on the pool; exactly one in flight).
  void drain_units();
  /// Prove one level-0 seal and cascade binary-counter merges. Runs inside
  /// drain_units(); returns the first proving error.
  Status build_unit(PendingUnit unit);
  Status merge_tail_locked_free();

  EpochLadderOptions options_;
  common::ThreadPool* pool_;

  mutable std::mutex mu_;
  std::condition_variable idle_;
  // zkt-lint: guarded_by(mu_) fed by the proving thread, drained by the actor task
  std::deque<PendingUnit> queue_;
  // zkt-lint: guarded_by(mu_) single-flight actor dispatch flag
  bool active_ = false;
  // zkt-lint: guarded_by(mu_) first asynchronous proving error, sticky
  Status error_;
  // zkt-lint: guarded_by(mu_) live seals, chain order
  std::vector<EpochSeal> ladder_;
  // zkt-lint: guarded_by(mu_) finished seals awaiting pickup for persistence
  std::vector<EpochSeal> completed_;
  // zkt-lint: guarded_by(mu_) rounds accepted via feed or adopt
  u64 rounds_fed_ = 0;

  // Feed-side state (proving thread only): the unit being filled.
  PendingUnit buffer_;
  u64 next_start_round_ = 0;

  // Actor-side state (serialized by the single-flight dispatch): the
  // commitment-chain digest after every sealed unit so far.
  Digest32 actor_commitments_digest_;
};

/// Write/read a seal bundle (the ladder) to a file, ZKTEPCH1 framing with
/// per-item CRC — the zkt-prove → zkt-verify hand-off for --catch-up.
Status save_epoch_seals(const std::vector<EpochSeal>& seals,
                        const std::string& path);
Result<std::vector<EpochSeal>> load_epoch_seals(const std::string& path);

}  // namespace zkt::core
