// Verifiable sketch queries: prove answers against a committed sketch
// without revealing the sketch, in time flat in the CLog size.
//
// Three guests share the module:
//
//   sketch_query — point estimate against a standalone published Count-Min
//       commitment (routers may publish sketch commitments exactly as they
//       do RLog hashes; the paper's design is logging-algorithm agnostic).
//       Proves the sketch bytes hash to the commitment and the estimate is
//       min over rows of counter[row][H(seed,row,key) mod w].
//
//   sketch_heavy — heavy hitters above threshold T against the ROUND
//       sketch an aggregation receipt carries (DESIGN.md §10): binds the
//       receipt, authenticates the sketch bytes against the journal's
//       sketch digest, proves in-trace that T clears the Space-Saving
//       completeness floor (T * capacity > total, so no qualifying flow can
//       be missing), and publishes every tracked flow with count >= T plus
//       its Count-Min cross-estimate. Cost O(width * depth + capacity) —
//       flat in the number of flows N.
//
//   sketch_card — distinct-flow cardinality against the round sketch: the
//       exact count is the bound journal's new_entry_count (the CLog holds
//       one entry per flow); the guest additionally derives the Count-Min
//       nonzero-counter lower bound and proves the two consistent.
//
// The client learns only the journal — never the sketch bytes.
#pragma once

#include "core/commitment.h"
#include "core/guests.h"
#include "netflow/sketch.h"
#include "zvm/prover.h"
#include "zvm/verifier.h"

namespace zkt::core {

/// Public journal of a sketch point-query proof.
struct SketchQueryJournal {
  /// The published sketch commitment (kind == CommitmentKind::sketch):
  /// rlog_hash holds the sketch hash and record_count the sketch's total
  /// update count. The serialized form carries the kind tag, so a sketch
  /// journal can never be parsed as an RLog reference or vice versa.
  CommitmentRef commitment;
  netflow::FlowKey key;
  u64 estimate = 0;

  void write(Writer& w) const;
  static Result<SketchQueryJournal> parse(BytesView journal);
};

zvm::ImageID sketch_query_image();

struct SketchQueryResponse {
  zvm::Receipt receipt;
  SketchQueryJournal journal;
  zvm::ProveInfo prove_info;
};

/// Prover side: prove the estimate for `key` against `sketch`, whose hash
/// must already be published as `ref` (taken from the sketch commitment
/// board).
Result<SketchQueryResponse> prove_sketch_query(
    const CommitmentRef& ref, const netflow::CountMinSketch& sketch,
    const netflow::FlowKey& key, const zvm::ProveOptions& options = {});

/// Verifier side: check the receipt, that its commitment matches the given
/// board, and (optionally) that it answers the expected key. Returns the
/// proven journal.
Result<SketchQueryJournal> verify_sketch_query(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    const netflow::FlowKey* expected_key = nullptr);

// ---------------------------------------------------------------------------
// Round-sketch queries (against the sketch digest an aggregation round
// carries in its journal).

/// One reported heavy hitter: the Space-Saving entry plus the Count-Min
/// cross-estimate at the same key. The proven bracket is
///   count - error <= true count <= cms_estimate.
struct SketchHeavyHit {
  netflow::FlowKey key;
  u64 count = 0;         ///< Space-Saving counter (overestimate)
  u64 error = 0;         ///< Space-Saving overestimate bound
  u64 cms_estimate = 0;  ///< Count-Min point estimate (overestimate)

  friend bool operator==(const SketchHeavyHit&,
                         const SketchHeavyHit&) = default;
};

/// Public journal of a heavy-hitters proof ("SKHH").
struct SketchHeavyJournal {
  Digest32 agg_claim_digest;  ///< aggregation receipt the query bound
  Digest32 sketch_digest;     ///< the round sketch digest it queried
  netflow::SketchParams params;
  u64 total = 0;      ///< sketch's total folded weight
  u64 threshold = 0;  ///< the query's T
  /// Every flow with Space-Saving count >= threshold, (count desc, key asc).
  /// Complete by the in-trace floor check threshold * capacity > total.
  std::vector<SketchHeavyHit> hits;

  void write(Writer& w) const;
  static Result<SketchHeavyJournal> parse(BytesView journal);
};

/// Public journal of a distinct-flow cardinality proof ("SKCD").
struct SketchCardinalityJournal {
  Digest32 agg_claim_digest;
  Digest32 sketch_digest;
  netflow::SketchParams params;
  u64 total = 0;            ///< sketch's total folded weight
  u64 distinct_flows = 0;   ///< exact: the bound round's CLog entry count
  u64 cms_lower_bound = 0;  ///< max over rows of nonzero counters (<= exact)

  void write(Writer& w) const;
  static Result<SketchCardinalityJournal> parse(BytesView journal);
};

zvm::ImageID sketch_heavy_image();
zvm::ImageID sketch_card_image();

struct SketchHeavyResponse {
  zvm::Receipt receipt;
  SketchHeavyJournal journal;
  zvm::ProveInfo prove_info;
};

struct SketchCardinalityResponse {
  zvm::Receipt receipt;
  SketchCardinalityJournal journal;
  zvm::ProveInfo prove_info;
};

/// True iff the Space-Saving completeness floor holds for `threshold`
/// against a sketch with the given capacity and total weight — the
/// error-bound gate QueryService's router and the in-guest assert share.
bool sketch_heavy_bound_ok(u64 threshold, u64 capacity, u64 total);

/// Prove the heavy hitters above `threshold` against the round sketch the
/// aggregation receipt committed. `sketch` must be the prover's copy of
/// that round's sketch (its hash must equal the journal's sketch_digest —
/// anything else fails in-guest). Fails fast with invalid_argument when the
/// receipt carries no sketch or `threshold` does not clear the provable
/// floor (callers should fall back to an exact query).
Result<SketchHeavyResponse> prove_sketch_heavy(
    const zvm::Receipt& agg_receipt, const netflow::RoundSketch& sketch,
    u64 threshold, const zvm::ProveOptions& options = {});

/// Prove the distinct-flow cardinality of the round the aggregation receipt
/// committed, against its round sketch.
Result<SketchCardinalityResponse> prove_sketch_cardinality(
    const zvm::Receipt& agg_receipt, const netflow::RoundSketch& sketch,
    const zvm::ProveOptions& options = {});

/// Verifier side: check the receipt against the heavy-hitters image and
/// (optionally) that it bound the expected aggregation claim / sketch
/// digest — pass the chain head the verifier tracks to pin the query to a
/// specific round.
Result<SketchHeavyJournal> verify_sketch_heavy(
    const zvm::Receipt& receipt, const Digest32* expected_agg_claim = nullptr,
    const Digest32* expected_sketch_digest = nullptr);

Result<SketchCardinalityJournal> verify_sketch_cardinality(
    const zvm::Receipt& receipt, const Digest32* expected_agg_claim = nullptr,
    const Digest32* expected_sketch_digest = nullptr);

}  // namespace zkt::core
