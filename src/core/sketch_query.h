// Verifiable sketch queries: prove a Count-Min point estimate against a
// committed sketch without revealing the sketch.
//
// Routers may publish hash commitments over per-window Count-Min sketches
// exactly as they do over RLogs (the paper's design is logging-algorithm
// agnostic). The sketch-query guest then proves, for a client-chosen flow:
//   1. the sketch bytes hash to the published commitment,
//   2. the estimate is min over rows of counter[row][H(seed,row,key) mod w],
//      recomputed with traced hashing and arithmetic.
// The client learns only (key, estimate, commitment) — not the sketch.
#pragma once

#include "core/commitment.h"
#include "core/guests.h"
#include "netflow/sketch.h"
#include "zvm/prover.h"
#include "zvm/verifier.h"

namespace zkt::core {

/// Public journal of a sketch query proof.
struct SketchQueryJournal {
  /// The published sketch commitment: rlog_hash holds the sketch hash and
  /// record_count the sketch's total update count.
  CommitmentRef commitment;
  netflow::FlowKey key;
  u64 estimate = 0;

  void write(Writer& w) const;
  static Result<SketchQueryJournal> parse(BytesView journal);
};

zvm::ImageID sketch_query_image();

struct SketchQueryResponse {
  zvm::Receipt receipt;
  SketchQueryJournal journal;
  zvm::ProveInfo prove_info;
};

/// Prover side: prove the estimate for `key` against `sketch`, whose hash
/// must already be published as `ref` (taken from the sketch commitment
/// board).
Result<SketchQueryResponse> prove_sketch_query(
    const CommitmentRef& ref, const netflow::CountMinSketch& sketch,
    const netflow::FlowKey& key, const zvm::ProveOptions& options = {});

/// Verifier side: check the receipt, that its commitment matches the given
/// board, and (optionally) that it answers the expected key. Returns the
/// proven journal.
Result<SketchQueryJournal> verify_sketch_query(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    const netflow::FlowKey* expected_key = nullptr);

}  // namespace zkt::core
