#include "core/clog.h"

namespace zkt::core {

Digest32 clog_leaf_digest(const CLogEntry& entry) {
  return crypto::MerkleTree::hash_leaf(entry.canonical_bytes());
}

std::optional<u64> CLogState::find(const netflow::FlowKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<CLogUpdate> CLogState::apply_records(
    std::span<const netflow::FlowRecord> records) {
  std::vector<CLogUpdate> updates;
  updates.reserve(records.size());
  for (const auto& record : records) {
    CLogUpdate update;
    auto existing = find(record.key);
    if (existing.has_value()) {
      update.index = *existing;
      update.created = false;
      entries_[*existing].merge(record);
      update.new_leaf = clog_leaf_digest(entries_[*existing]);
      tree_.update_leaf(*existing, update.new_leaf);
    } else {
      update.index = entries_.size();
      update.created = true;
      entries_.push_back(record);
      index_.emplace(record.key, update.index);
      update.new_leaf = clog_leaf_digest(record);
      const u64 appended = tree_.append_leaf(update.new_leaf);
      (void)appended;
    }
    updates.push_back(update);
  }
  return updates;
}

void CLogState::serialize(Writer& w) const {
  w.varint(entries_.size());
  for (const auto& entry : entries_) entry.serialize(w);
}

Result<CLogState> CLogState::deserialize(Reader& r) {
  auto count = r.varint();
  if (!count.ok()) return count.error();
  CLogState state;
  state.entries_.reserve(count.value());
  for (u64 i = 0; i < count.value(); ++i) {
    auto entry = netflow::FlowRecord::deserialize(r);
    if (!entry.ok()) return entry.error();
    if (!state.index_.emplace(entry.value().key, i).second) {
      return Error{Errc::parse_error,
                   "duplicate flow key in serialized CLog state"};
    }
    state.tree_.append_leaf(clog_leaf_digest(entry.value()));
    state.entries_.push_back(std::move(entry.value()));
  }
  return state;
}

std::vector<Bytes> CLogState::entry_bytes() const {
  std::vector<Bytes> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(entry.canonical_bytes());
  }
  return out;
}

}  // namespace zkt::core
