#include "core/clog.h"

#include <algorithm>

#include "crypto/ct.h"

namespace zkt::core {

Digest32 clog_leaf_digest(const CLogEntry& entry) {
  return crypto::MerkleTree::hash_leaf(entry.canonical_bytes());
}

u64 CLogState::lower_bound(const netflow::FlowKey& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CLogEntry& e, const netflow::FlowKey& k) { return e.key < k; });
  return static_cast<u64>(it - entries_.begin());
}

std::optional<u64> CLogState::find(const netflow::FlowKey& key) const {
  const u64 pos = lower_bound(key);
  if (pos < entries_.size() && entries_[pos].key == key) return pos;
  return std::nullopt;
}

std::vector<CLogUpdate> CLogState::apply_records(
    std::span<const netflow::FlowRecord> records) {
  std::vector<CLogUpdate> updates;
  updates.reserve(records.size());
  for (const auto& record : records) {
    CLogUpdate update;
    const u64 pos = lower_bound(record.key);
    if (pos < entries_.size() && entries_[pos].key == record.key) {
      update.index = pos;
      update.created = false;
      entries_[pos].merge(record);
      update.new_leaf = clog_leaf_digest(entries_[pos]);
      tree_.update_leaf(pos, update.new_leaf);
    } else {
      update.index = pos;
      update.created = true;
      entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(pos), record);
      update.new_leaf = clog_leaf_digest(record);
      tree_.insert_leaf(pos, update.new_leaf);
    }
    updates.push_back(update);
  }
  return updates;
}

void CLogState::serialize(Writer& w) const {
  w.varint(entries_.size());
  for (const auto& entry : entries_) entry.serialize(w);
}

Result<CLogState> CLogState::deserialize(Reader& r) {
  auto count = r.varint();
  if (!count.ok()) return count.error();
  CLogState state;
  state.entries_.reserve(count.value());
  for (u64 i = 0; i < count.value(); ++i) {
    auto entry = netflow::FlowRecord::deserialize(r);
    if (!entry.ok()) return entry.error();
    if (!state.entries_.empty() &&
        !(state.entries_.back().key < entry.value().key)) {
      // Strict ascending order doubles as the duplicate-key check and
      // guarantees the implicit key index is valid on adoption.
      return Error{Errc::parse_error,
                   "serialized CLog entries not strictly key-sorted"};
    }
    state.entries_.push_back(std::move(entry.value()));
  }
  std::vector<Digest32> leaves;
  leaves.reserve(state.entries_.size());
  for (const auto& entry : state.entries_) {
    leaves.push_back(clog_leaf_digest(entry));
  }
  state.tree_ = crypto::MerkleTree(std::move(leaves));
  return state;
}

Status CLogState::check_consistency() const {
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (!(entries_[i - 1].key < entries_[i].key)) {
      return Error{Errc::parse_error, "CLog key index out of order"};
    }
  }
  if (tree_.leaf_count() != entries_.size()) {
    return Error{Errc::merkle_mismatch, "CLog tree leaf count vs entries"};
  }
  std::vector<Digest32> leaves;
  leaves.reserve(entries_.size());
  for (const auto& entry : entries_) leaves.push_back(clog_leaf_digest(entry));
  const crypto::MerkleTree fresh(std::move(leaves));
  if (!crypto::ct_equal(fresh.root(), tree_.root())) {
    return Error{Errc::merkle_mismatch, "CLog cached tree diverged"};
  }
  return {};
}

std::vector<Bytes> CLogState::entry_bytes() const {
  std::vector<Bytes> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(entry.canonical_bytes());
  }
  return out;
}

}  // namespace zkt::core
