#include "core/clog.h"

#include <algorithm>

#include "crypto/ct.h"

namespace zkt::core {

Digest32 clog_leaf_digest(const CLogEntry& entry) {
  return crypto::MerkleTree::hash_leaf(entry.canonical_bytes());
}

u64 CLogState::lower_bound(const netflow::FlowKey& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const CLogEntry& e, const netflow::FlowKey& k) { return e.key < k; });
  return static_cast<u64>(it - entries_.begin());
}

std::optional<u64> CLogState::find(const netflow::FlowKey& key) const {
  const u64 pos = lower_bound(key);
  if (pos < entries_.size() && entries_[pos].key == key) return pos;
  return std::nullopt;
}

std::vector<CLogUpdate> CLogState::apply_records(
    std::span<const netflow::FlowRecord> records) {
  // Batched application. The naive per-record form (vector::insert plus
  // MerkleTree::insert_leaf) re-hashes the whole tree suffix for every
  // inserted key — O(n) per record, quadratic over an insert-heavy round,
  // which is exactly the genesis / full-rebuild shape. Instead: merge in
  // place, park created entries on the side, and splice + rebuild the tree
  // once at the end — O((n + k) + k log k) total. The returned updates are
  // bit-identical to sequential application: each index is the entry's
  // position at the moment its record was applied, which is its fixed
  // position among the original entries plus the number of earlier-created
  // batch keys that sort below it (a Fenwick tree over the batch's
  // key-compressed ranks).
  std::vector<CLogUpdate> updates;
  updates.reserve(records.size());
  if (records.empty()) return updates;

  std::vector<netflow::FlowKey> keys;
  keys.reserve(records.size());
  for (const auto& record : records) keys.push_back(record.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const size_t unique_count = keys.size();
  auto rank_of = [&](const netflow::FlowKey& key) {
    return static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  };

  // Original positions never move during the batch: merges edit in place
  // and created entries are spliced in afterwards.
  std::vector<u64> orig_pos(unique_count);
  std::vector<bool> orig_match(unique_count);
  for (size_t r = 0; r < unique_count; ++r) {
    orig_pos[r] = lower_bound(keys[r]);
    orig_match[r] =
        orig_pos[r] < entries_.size() && entries_[orig_pos[r]].key == keys[r];
  }

  // Fenwick tree counting created keys by rank (1-based internally).
  std::vector<u64> fen(unique_count + 1, 0);
  auto fen_add = [&](size_t rank) {
    for (size_t i = rank + 1; i <= unique_count; i += i & (0 - i)) ++fen[i];
  };
  auto fen_count_below = [&](size_t rank) {
    u64 sum = 0;
    for (size_t i = rank; i > 0; i -= i & (0 - i)) sum += fen[i];
    return sum;
  };

  std::vector<std::optional<CLogEntry>> created(unique_count);
  u64 created_count = 0;
  for (const auto& record : records) {
    const size_t r = rank_of(record.key);
    CLogUpdate update;
    update.index = orig_pos[r] + fen_count_below(r);
    if (orig_match[r]) {
      update.created = false;
      entries_[orig_pos[r]].merge(record);
      update.new_leaf = clog_leaf_digest(entries_[orig_pos[r]]);
    } else if (created[r].has_value()) {
      update.created = false;
      created[r]->merge(record);
      update.new_leaf = clog_leaf_digest(*created[r]);
    } else {
      update.created = true;
      created[r] = record;
      fen_add(r);
      ++created_count;
      update.new_leaf = clog_leaf_digest(record);
    }
    updates.push_back(update);
  }

  if (created_count == 0) {
    // Merge-only round: per-leaf path refresh is O(k log n), far cheaper
    // than a rebuild when the round touches a sliver of a large state.
    for (const auto& update : updates) {
      tree_.update_leaf(update.index, update.new_leaf);
    }
    return updates;
  }

  std::vector<CLogEntry> merged;
  merged.reserve(entries_.size() + created_count);
  size_t next_original = 0;
  for (size_t r = 0; r < unique_count; ++r) {
    if (!created[r].has_value()) continue;
    while (next_original < entries_.size() &&
           entries_[next_original].key < keys[r]) {
      merged.push_back(std::move(entries_[next_original++]));
    }
    merged.push_back(std::move(*created[r]));
  }
  while (next_original < entries_.size()) {
    merged.push_back(std::move(entries_[next_original++]));
  }
  entries_ = std::move(merged);

  std::vector<Digest32> leaves;
  leaves.reserve(entries_.size());
  for (const auto& entry : entries_) leaves.push_back(clog_leaf_digest(entry));
  tree_ = crypto::MerkleTree(std::move(leaves));
  return updates;
}

void CLogState::serialize(Writer& w) const {
  w.varint(entries_.size());
  for (const auto& entry : entries_) entry.serialize(w);
}

Result<CLogState> CLogState::deserialize(Reader& r) {
  auto count = r.varint();
  if (!count.ok()) return count.error();
  CLogState state;
  state.entries_.reserve(count.value());
  for (u64 i = 0; i < count.value(); ++i) {
    auto entry = netflow::FlowRecord::deserialize(r);
    if (!entry.ok()) return entry.error();
    if (!state.entries_.empty() &&
        !(state.entries_.back().key < entry.value().key)) {
      // Strict ascending order doubles as the duplicate-key check and
      // guarantees the implicit key index is valid on adoption.
      return Error{Errc::parse_error,
                   "serialized CLog entries not strictly key-sorted"};
    }
    state.entries_.push_back(std::move(entry.value()));
  }
  std::vector<Digest32> leaves;
  leaves.reserve(state.entries_.size());
  for (const auto& entry : state.entries_) {
    leaves.push_back(clog_leaf_digest(entry));
  }
  state.tree_ = crypto::MerkleTree(std::move(leaves));
  return state;
}

Status CLogState::check_consistency() const {
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (!(entries_[i - 1].key < entries_[i].key)) {
      return Error{Errc::parse_error, "CLog key index out of order"};
    }
  }
  if (tree_.leaf_count() != entries_.size()) {
    return Error{Errc::merkle_mismatch, "CLog tree leaf count vs entries"};
  }
  std::vector<Digest32> leaves;
  leaves.reserve(entries_.size());
  for (const auto& entry : entries_) leaves.push_back(clog_leaf_digest(entry));
  const crypto::MerkleTree fresh(std::move(leaves));
  if (!crypto::ct_equal(fresh.root(), tree_.root())) {
    return Error{Errc::merkle_mismatch, "CLog cached tree diverged"};
  }
  return {};
}

std::vector<Bytes> CLogState::entry_bytes() const {
  std::vector<Bytes> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(entry.canonical_bytes());
  }
  return out;
}

}  // namespace zkt::core
