#include "core/histogram_query.h"

namespace zkt::core {

namespace {

using netflow::LatencyHistogram;
using zvm::AluOp;
using zvm::Env;

Status histogram_query_guest(Env& env) {
  HistogramQueryJournal journal;
  auto rid = env.read_u32();
  if (!rid.ok()) return rid.error();
  journal.commitment.router_id = rid.value();
  auto wid = env.read_u64();
  if (!wid.ok()) return wid.error();
  journal.commitment.window_id = wid.value();
  auto chash = env.read_digest();
  if (!chash.ok()) return chash.error();
  journal.commitment.rlog_hash = chash.value();
  auto total = env.read_u64();
  if (!total.ok()) return total.error();
  journal.commitment.record_count = total.value();

  auto histogram_bytes = env.read_blob();
  if (!histogram_bytes.ok()) return histogram_bytes.error();
  auto bound = env.read_u64();
  if (!bound.ok()) return bound.error();
  journal.bound_us = bound.value();
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in histogram input"};
  }

  // Histogram authenticity (Figure 3's check, applied to the histogram).
  const Digest32 h = env.sha256(histogram_bytes.value());
  ZKT_TRY(env.assert_eq(h, journal.commitment.rlog_hash,
                        "histogram hash vs published commitment"));

  Reader hr(histogram_bytes.value());
  auto histogram = LatencyHistogram::deserialize(hr);
  if (!histogram.ok()) return histogram.error();
  ZKT_TRY(env.assert_true(
      histogram.value().total() == journal.commitment.record_count,
      "histogram total vs commitment"));

  // Traced recomputation: sum the buckets whose upper bound clears the
  // threshold, and independently re-sum the total.
  u64 below = 0;
  u64 recomputed_total = 0;
  for (u32 b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const u64 bucket_count = histogram.value().bucket(b);
    recomputed_total = env.alu(AluOp::add, recomputed_total, bucket_count);
    const u64 upper = LatencyHistogram::bucket_upper_us(b);
    // include = (upper <= bound) as 0/1, arithmetically.
    const u64 include =
        env.alu(AluOp::xor_, env.alu(AluOp::ltu, journal.bound_us, upper), 1);
    below = env.alu(AluOp::add, below,
                    env.alu(AluOp::mul, include, bucket_count));
  }
  const u64 total_ok =
      env.alu(AluOp::eq, recomputed_total, histogram.value().total());
  ZKT_TRY(env.assert_true(total_ok == 1, "bucket sum vs declared total"));

  journal.count_below = below;
  journal.total = recomputed_total;

  Writer jw;
  journal.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace

void HistogramQueryJournal::write(Writer& w) const {
  w.str("HQRY1");
  w.u32v(commitment.router_id);
  w.u64v(commitment.window_id);
  w.fixed(commitment.rlog_hash.bytes);
  w.u64v(commitment.record_count);
  w.u64v(bound_us);
  w.u64v(count_below);
  w.u64v(total);
}

Result<HistogramQueryJournal> HistogramQueryJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "HQRY1") {
    return Error{Errc::parse_error, "bad histogram query journal magic"};
  }
  HistogramQueryJournal j;
  auto rid = r.u32v();
  if (!rid.ok()) return rid.error();
  j.commitment.router_id = rid.value();
  auto wid = r.u64v();
  if (!wid.ok()) return wid.error();
  j.commitment.window_id = wid.value();
  ZKT_TRY(r.fixed(j.commitment.rlog_hash.bytes));
  u64* fields[] = {&j.commitment.record_count, &j.bound_us, &j.count_below,
                   &j.total};
  for (u64* f : fields) {
    auto v = r.u64v();
    if (!v.ok()) return v.error();
    *f = v.value();
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing histogram query journal"};
  }
  return j;
}

zvm::ImageID histogram_query_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.histogram_query", 1, histogram_query_guest);
  return id;
}

Result<HistogramQueryResponse> prove_histogram_query(
    const CommitmentRef& ref, const netflow::LatencyHistogram& histogram,
    u64 bound_us, const zvm::ProveOptions& options) {
  Writer input;
  input.u32v(ref.router_id);
  input.u64v(ref.window_id);
  input.fixed(ref.rlog_hash.bytes);
  input.u64v(ref.record_count);
  input.blob(histogram.canonical_bytes());
  input.u64v(bound_us);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt =
      prover.prove(histogram_query_image(), input.bytes(), options, &info);
  if (!receipt.ok()) return receipt.error();
  auto journal = HistogramQueryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  HistogramQueryResponse response;
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.prove_info = info;
  return response;
}

Result<HistogramQueryJournal> verify_histogram_query(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    const u64* expected_bound_us) {
  zvm::Verifier verifier;
  ZKT_TRY(verifier.verify(receipt, histogram_query_image()));
  auto journal = HistogramQueryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const HistogramQueryJournal& j = journal.value();

  auto published = board.get(j.commitment.router_id, j.commitment.window_id);
  if (!published.has_value() ||
      published->rlog_hash != j.commitment.rlog_hash ||
      published->record_count != j.commitment.record_count) {
    return Error{Errc::commitment_missing,
                 "histogram query does not match the bulletin board"};
  }
  if (expected_bound_us != nullptr && j.bound_us != *expected_bound_us) {
    return Error{Errc::proof_invalid,
                 "receipt proves a different bound than requested"};
  }
  return journal;
}

}  // namespace zkt::core
