// core::BatchVerifier — verify many aggregation receipts per round-trip.
//
// Verification is the client-scale side of the protocol: an auditor catching
// up on a chain has N receipts in hand, not one. Verifying them one at a
// time wastes the two structural redundancies batches expose:
//
//   1. Independent receipts: each receipt's seal checks are a pure function
//      of its bytes, so receipts fan out over common::ThreadPool and the
//      per-receipt hashing inside each lane still goes through the batched
//      SHA-256 backends (MerkleTree::hash_leaves / verify_batch).
//   2. Chained receipts: a composite round embeds its predecessor receipt
//      as an assumption receipt, so a sequential chain walk verifies every
//      round TWICE — once standalone, once as the next round's assumption.
//      BatchVerifier seeds each receipt's zvm::VerifiedCache with its
//      predecessor; the assumption pass skips the re-verification when (and
//      only when) the embedded copy is byte-identical.
//
// Decisions are identical to the sequential walk for every receipt whose
// predecessors in the same call verified (a cache hit requires byte-equal
// content, and verification is a deterministic function of those bytes).
// When a predecessor FAILS, its successor's optimistic skip is repaired by
// re-verifying uncached — so every returned outcome is authoritative on its
// own, in input order, across all backends and thread counts.
//
// Host-side only (guests never verify); guest-reachable headers may still
// include this one — it carries no nondeterminism tokens of its own.
#pragma once

#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/guests.h"
#include "zvm/verifier.h"

namespace zkt::core {

/// Verify `receipt` as an aggregation receipt of EITHER kind: the claim
/// must name one of the two aggregation images (full rebuild or incremental
/// delta) and the receipt must verify against that image. Chains mix the
/// two kinds freely, so every chain consumer goes through this instead of
/// pinning guest_images().aggregate.
Status verify_aggregation_receipt(zvm::Verifier& verifier,
                                  const zvm::Receipt& receipt);

/// As above, with batch-verification context (assumption dedup cache and
/// stats accounting — see zvm::VerifyContext). Decisions are identical.
Status verify_aggregation_receipt(zvm::Verifier& verifier,
                                  const zvm::Receipt& receipt,
                                  const zvm::VerifyContext& context);

/// Construction knobs, per the repo's options-struct convention.
struct BatchVerifierOptions {
  /// Soundness floor forwarded to the underlying zvm::Verifier.
  u32 min_queries = 32;
  /// Verify receipts of one call concurrently. Off = same work on the
  /// calling thread (bit-identical outcomes either way).
  bool parallel = true;
  /// Worker pool for the fan-out; nullptr uses common::ThreadPool::shared()
  /// (sized by ZKT_POOL_THREADS). Ignored when `parallel` is false.
  common::ThreadPool* pool = nullptr;
};

class BatchVerifier {
 public:
  explicit BatchVerifier(BatchVerifierOptions options = {})
      : options_(options), verifier_(options.min_queries) {}

  /// Verify every receipt as an aggregation receipt. Outcomes are returned
  /// in input order; a failure does not stop the rest of the batch.
  ///
  /// Chain dedup treats receipts[i-1] as receipt i's candidate predecessor
  /// (and the last receipt that verified OK in the previous call on this
  /// object as receipt 0's) — for unrelated receipts the candidate simply
  /// never matches an embedded assumption and the batch degrades to a pure
  /// pool fan-out.
  std::vector<Status> verify_aggregation(
      std::span<const zvm::Receipt> receipts,
      zvm::VerifyStats* stats = nullptr);

  /// As above over non-contiguous receipts (e.g. one per shard round).
  std::vector<Status> verify_aggregation(
      std::span<const zvm::Receipt* const> receipts,
      zvm::VerifyStats* stats = nullptr);

  /// Cumulative accounting across every call on this object.
  const zvm::VerifyStats& stats() const { return stats_; }

  const BatchVerifierOptions& options() const { return options_; }

 private:
  BatchVerifierOptions options_;
  zvm::Verifier verifier_;
  /// Last receipt that verified OK (cross-call chain head candidate).
  zvm::VerifiedCache head_cache_;
  zvm::VerifyStats stats_;
};

}  // namespace zkt::core
