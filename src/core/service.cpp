#include "core/service.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "zvm/verifier.h"

namespace zkt::core {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<AggregationRound> AggregationService::aggregate(
    std::span<const netflow::RLogBatch> batches) {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("agg_round");

  auto round = aggregate_impl(batches);

  metrics.histogram("core.agg.round_ms").record(ms_since(start));
  metrics.histogram("core.agg.batches_per_round")
      .record(static_cast<double>(batches.size()));
  if (round.ok()) {
    metrics.counter("core.agg.rounds").add(1);
    metrics.counter("core.agg.batches").add(batches.size());
    metrics.gauge("core.agg.entries")
        .set(static_cast<double>(state_.entry_count()));
  } else {
    metrics.counter("core.agg.failed_rounds").add(1);
  }
  return round;
}

Result<AggregationRound> AggregationService::aggregate_impl(
    std::span<const netflow::RLogBatch> batches) {
  // Deterministic (window, router) processing order, via a local index — the
  // caller's batches are borrowed, not copied or reordered.
  std::vector<size_t> order(batches.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::tie(batches[a].window_id, batches[a].router_id) <
           std::tie(batches[b].window_id, batches[b].router_id);
  });

  AggregateInput input;
  input.has_prev = last_receipt_.has_value();
  input.prev_claim_digest =
      last_receipt_.has_value() ? last_receipt_->claim.digest() : Digest32{};
  input.prev_root = state_.root();
  input.prev_entries = state_.entry_bytes();
  input.batches.reserve(batches.size());
  for (size_t idx : order) {
    const netflow::RLogBatch& batch = batches[idx];
    // The *published* commitment is the reference the guest checks the raw
    // bytes against; a batch modified after commitment therefore fails in
    // the guest, not here.
    auto commitment = board_->get(batch.router_id, batch.window_id);
    if (!commitment.has_value()) {
      return Error{Errc::commitment_missing,
                   "no published commitment for router " +
                       std::to_string(batch.router_id) + " window " +
                       std::to_string(batch.window_id)};
    }
    CommitmentRef ref;
    ref.router_id = batch.router_id;
    ref.window_id = batch.window_id;
    ref.rlog_hash = commitment->rlog_hash;
    ref.record_count = commitment->record_count;
    input.batches.emplace_back(ref, batch.canonical_bytes());
  }

  zvm::ProveOptions options = prove_options_;
  if (last_receipt_.has_value()) {
    options.assumptions.push_back(*last_receipt_);
  }

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(guest_images().aggregate, input.to_bytes(),
                              options, &info);
  if (!receipt.ok()) return receipt.error();

  auto journal = AggJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  // Mirror the guest's state transition on the host copy.
  for (size_t idx : order) {
    state_.apply_records(batches[idx].records);
  }
  if (state_.root() != journal.value().new_root ||
      state_.entry_count() != journal.value().new_entry_count) {
    return Error{Errc::merkle_mismatch,
                 "host state diverged from proven aggregation"};
  }

  last_receipt_ = receipt.value();
  AggregationRound round;
  round.round_id = rounds_++;
  round.receipt = std::move(receipt.value());
  round.journal = std::move(journal.value());
  round.prove_info = info;
  ZKT_LOG(info) << "aggregation round " << round.round_id << ": "
                << round.journal.commitments.size() << " batches, "
                << round.journal.new_entry_count << " entries, "
                << info.cycles << " cycles, " << info.total_ms << " ms";
  return round;
}

Status AggregationService::restore(CLogState state, zvm::Receipt last_receipt,
                                   u64 rounds_completed) {
  if (rounds_ != 0 || last_receipt_.has_value()) {
    return Error{Errc::invalid_argument,
                 "restore() requires a fresh aggregation service"};
  }
  if (rounds_completed == 0) {
    return Error{Errc::invalid_argument,
                 "restore() needs at least one completed round"};
  }
  // The recovered receipt must be a genuine aggregation receipt…
  ZKT_TRY(zvm::Verifier().verify(last_receipt, guest_images().aggregate));
  // …and the recovered state must be exactly the state it proved.
  auto journal = AggJournal::parse(last_receipt.journal);
  if (!journal.ok()) return journal.error();
  if (journal.value().new_root != state.root() ||
      journal.value().new_entry_count != state.entry_count()) {
    return Error{Errc::merkle_mismatch,
                 "recovered CLog state does not match the receipt's journal"};
  }
  state_ = std::move(state);
  last_receipt_ = std::move(last_receipt);
  rounds_ = rounds_completed;
  return {};
}

Status AggregationService::replay_round(
    std::span<const netflow::RLogBatch> batches,
    const zvm::Receipt& receipt) {
  ZKT_TRY(zvm::Verifier().verify(receipt, guest_images().aggregate));
  auto parsed = AggJournal::parse(receipt.journal);
  if (!parsed.ok()) return parsed.error();
  const AggJournal& journal = parsed.value();

  // The receipt must extend THIS chain head.
  if (journal.has_prev != last_receipt_.has_value()) {
    return Error{Errc::chain_broken,
                 "replayed receipt disagrees about the chain genesis"};
  }
  if (last_receipt_.has_value() &&
      journal.prev_claim_digest != last_receipt_->claim.digest()) {
    return Error{Errc::chain_broken,
                 "replayed receipt does not chain onto the recovered head"};
  }
  if (journal.prev_root != state_.root() ||
      journal.prev_entry_count != state_.entry_count()) {
    return Error{Errc::merkle_mismatch,
                 "replayed receipt's previous root mismatches host state"};
  }

  // The stored batches must be byte-identical to what the round proved:
  // same (window, router) sequence, same committed hashes. Tampering with
  // raw logs after the fact still halts the chain here, just without the
  // cost of re-proving.
  std::vector<size_t> order(batches.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::tie(batches[a].window_id, batches[a].router_id) <
           std::tie(batches[b].window_id, batches[b].router_id);
  });
  if (order.size() != journal.commitments.size()) {
    return Error{Errc::chain_broken,
                 "replayed round has a different batch count than proven"};
  }
  for (size_t i = 0; i < order.size(); ++i) {
    const netflow::RLogBatch& batch = batches[order[i]];
    const CommitmentRef& ref = journal.commitments[i];
    if (batch.router_id != ref.router_id ||
        batch.window_id != ref.window_id ||
        batch.records.size() != ref.record_count ||
        batch.hash() != ref.rlog_hash) {
      return Error{Errc::hash_mismatch,
                   "stored batch diverged from the proven commitment (router " +
                       std::to_string(batch.router_id) + ", window " +
                       std::to_string(batch.window_id) + ")"};
    }
  }

  // Apply on a scratch copy so a journal mismatch cannot poison the chain.
  CLogState next = state_;
  for (size_t idx : order) {
    next.apply_records(batches[idx].records);
  }
  if (next.root() != journal.new_root ||
      next.entry_count() != journal.new_entry_count) {
    return Error{Errc::merkle_mismatch,
                 "replayed batches do not reproduce the proven root"};
  }

  state_ = std::move(next);
  last_receipt_ = receipt;
  ++rounds_;
  return {};
}

Result<QueryResponse> QueryService::finish(Result<zvm::Receipt> receipt,
                                           const zvm::ProveInfo& info) const {
  if (!receipt.ok()) return receipt.error();
  auto journal = QueryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  QueryResponse response;
  response.value = journal.value().result.value(journal.value().query.agg);
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.prove_info = info;
  return response;
}

Result<QueryResponse> QueryService::run(const Query& query,
                                        const QueryOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  const bool selective = options.mode == QueryMode::selective;
  obs::ScopedSpan span(selective ? "query_selective" : "query_complete");
  const zvm::ProveOptions& prove = options.prove_options_override.has_value()
                                       ? *options.prove_options_override
                                       : prove_options_;

  auto response = selective ? run_selective_impl(query, prove)
                            : run_complete(query, prove);

  metrics
      .histogram(selective ? "core.query.selective_ms"
                           : "core.query.complete_ms")
      .record(ms_since(start));
  metrics
      .counter(selective ? "core.query.selective_runs"
                         : "core.query.complete_runs")
      .add(1);
  if (response.ok()) {
    // Matched/scanned tell the selectivity story: how much of the state a
    // query touched vs. how much it had to prove over.
    metrics.counter("core.query.matched_entries")
        .add(response.value().journal.result.matched);
    metrics.counter("core.query.scanned_entries")
        .add(response.value().journal.result.scanned);
  } else {
    metrics.counter("core.query.failures").add(1);
  }
  return response;
}

Result<QueryResponse> QueryService::run_complete(
    const Query& query, const zvm::ProveOptions& prove) const {
  if (!aggregation_->has_rounds()) {
    return Error{Errc::chain_broken,
                 "no aggregation round to query against"};
  }
  const zvm::Receipt& agg_receipt = aggregation_->last_receipt();

  QueryInput input;
  input.agg_claim = agg_receipt.claim;
  input.agg_journal = agg_receipt.journal;
  input.entries = aggregation_->state().entry_bytes();
  input.query = query;

  zvm::ProveOptions options = prove;
  options.assumptions.push_back(agg_receipt);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(guest_images().query, input.to_bytes(), options,
                              &info);
  return finish(std::move(receipt), info);
}

Result<QueryResponse> QueryService::run_selective_impl(
    const Query& query, const zvm::ProveOptions& prove) const {
  if (!aggregation_->has_rounds()) {
    return Error{Errc::chain_broken,
                 "no aggregation round to query against"};
  }
  const zvm::Receipt& agg_receipt = aggregation_->last_receipt();
  const CLogState& state = aggregation_->state();

  SelectiveQueryInput input;
  input.agg_claim = agg_receipt.claim;
  input.agg_journal = agg_receipt.journal;
  input.query = query;
  std::vector<u64> indices;
  for (u64 i = 0; i < state.entry_count(); ++i) {
    if (!matches(query, state.entry(i))) continue;
    SelectiveQueryInput::OpenedEntry opened;
    opened.index = i;
    opened.entry = state.entry(i).canonical_bytes();
    input.opened.push_back(std::move(opened));
    indices.push_back(i);
  }
  if (!indices.empty()) {
    input.proof = state.prove_multi(indices);
  }

  zvm::ProveOptions options = prove;
  options.assumptions.push_back(agg_receipt);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(guest_images().query_selective,
                              input.to_bytes(), options, &info);
  return finish(std::move(receipt), info);
}

}  // namespace zkt::core
