#include "core/service.h"

#include <algorithm>

#include "common/log.h"

namespace zkt::core {

Result<AggregationRound> AggregationService::aggregate(
    std::vector<netflow::RLogBatch> batches) {
  std::sort(batches.begin(), batches.end(),
            [](const netflow::RLogBatch& a, const netflow::RLogBatch& b) {
              return std::tie(a.window_id, a.router_id) <
                     std::tie(b.window_id, b.router_id);
            });

  AggregateInput input;
  input.has_prev = last_receipt_.has_value();
  input.prev_claim_digest = last_claim_digest();
  input.prev_root = state_.root();
  input.prev_entries = state_.entry_bytes();
  input.batches.reserve(batches.size());
  for (const auto& batch : batches) {
    // The *published* commitment is the reference the guest checks the raw
    // bytes against; a batch modified after commitment therefore fails in
    // the guest, not here.
    auto commitment = board_->get(batch.router_id, batch.window_id);
    if (!commitment.has_value()) {
      return Error{Errc::commitment_missing,
                   "no published commitment for router " +
                       std::to_string(batch.router_id) + " window " +
                       std::to_string(batch.window_id)};
    }
    CommitmentRef ref;
    ref.router_id = batch.router_id;
    ref.window_id = batch.window_id;
    ref.rlog_hash = commitment->rlog_hash;
    ref.record_count = commitment->record_count;
    input.batches.emplace_back(ref, batch.canonical_bytes());
  }

  zvm::ProveOptions options = prove_options_;
  if (last_receipt_.has_value()) {
    options.assumptions.push_back(*last_receipt_);
  }

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(guest_images().aggregate, input.to_bytes(),
                              options, &info);
  if (!receipt.ok()) return receipt.error();

  auto journal = AggJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  // Mirror the guest's state transition on the host copy.
  for (const auto& batch : batches) {
    state_.apply_records(batch.records);
  }
  if (state_.root() != journal.value().new_root ||
      state_.entry_count() != journal.value().new_entry_count) {
    return Error{Errc::merkle_mismatch,
                 "host state diverged from proven aggregation"};
  }

  last_receipt_ = receipt.value();
  AggregationRound round;
  round.round_id = rounds_++;
  round.receipt = std::move(receipt.value());
  round.journal = std::move(journal.value());
  round.prove_info = info;
  ZKT_LOG(info) << "aggregation round " << round.round_id << ": "
                << round.journal.commitments.size() << " batches, "
                << round.journal.new_entry_count << " entries, "
                << info.cycles << " cycles, " << info.total_ms << " ms";
  return round;
}

Result<QueryResponse> QueryService::finish(Result<zvm::Receipt> receipt,
                                           const zvm::ProveInfo& info) const {
  if (!receipt.ok()) return receipt.error();
  auto journal = QueryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  QueryResponse response;
  response.value = journal.value().result.value(journal.value().query.agg);
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.prove_info = info;
  return response;
}

Result<QueryResponse> QueryService::run(const Query& query) const {
  if (!aggregation_->has_rounds()) {
    return Error{Errc::chain_broken,
                 "no aggregation round to query against"};
  }
  const zvm::Receipt& agg_receipt = aggregation_->last_receipt();

  QueryInput input;
  input.agg_claim = agg_receipt.claim;
  input.agg_journal = agg_receipt.journal;
  input.entries = aggregation_->state().entry_bytes();
  input.query = query;

  zvm::ProveOptions options = prove_options_;
  options.assumptions.push_back(agg_receipt);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(guest_images().query, input.to_bytes(), options,
                              &info);
  return finish(std::move(receipt), info);
}

Result<QueryResponse> QueryService::run_selective(const Query& query) const {
  if (!aggregation_->has_rounds()) {
    return Error{Errc::chain_broken,
                 "no aggregation round to query against"};
  }
  const zvm::Receipt& agg_receipt = aggregation_->last_receipt();
  const CLogState& state = aggregation_->state();

  SelectiveQueryInput input;
  input.agg_claim = agg_receipt.claim;
  input.agg_journal = agg_receipt.journal;
  input.query = query;
  std::vector<u64> indices;
  for (u64 i = 0; i < state.entry_count(); ++i) {
    if (!matches(query, state.entry(i))) continue;
    SelectiveQueryInput::OpenedEntry opened;
    opened.index = i;
    opened.entry = state.entry(i).canonical_bytes();
    input.opened.push_back(std::move(opened));
    indices.push_back(i);
  }
  if (!indices.empty()) {
    input.proof = state.prove_multi(indices);
  }

  zvm::ProveOptions options = prove_options_;
  options.assumptions.push_back(agg_receipt);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(guest_images().query_selective,
                              input.to_bytes(), options, &info);
  return finish(std::move(receipt), info);
}

}  // namespace zkt::core
