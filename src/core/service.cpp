#include "core/service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <numeric>

#include "common/log.h"
#include "core/auditor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "zvm/verifier.h"

namespace zkt::core {

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Deterministic (window, router) processing order, via a local index — the
/// caller's batches are borrowed, not copied or reordered.
std::vector<size_t> batch_order(std::span<const netflow::RLogBatch> batches) {
  std::vector<size_t> order(batches.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::tie(batches[a].window_id, batches[a].router_id) <
           std::tie(batches[b].window_id, batches[b].router_id);
  });
  return order;
}

/// Look up the *published* commitment for each batch and pair it with the
/// raw bytes. The commitment is the reference the guest checks the bytes
/// against; a batch modified after commitment therefore fails in the guest,
/// not here.
Result<std::vector<std::pair<CommitmentRef, Bytes>>> committed_batches(
    const CommitmentBoard& board, std::span<const netflow::RLogBatch> batches,
    std::span<const size_t> order) {
  std::vector<std::pair<CommitmentRef, Bytes>> out;
  out.reserve(order.size());
  for (size_t idx : order) {
    const netflow::RLogBatch& batch = batches[idx];
    auto commitment = board.get(batch.router_id, batch.window_id);
    if (!commitment.has_value()) {
      return Error{Errc::commitment_missing,
                   "no published commitment for router " +
                       std::to_string(batch.router_id) + " window " +
                       std::to_string(batch.window_id)};
    }
    CommitmentRef ref;
    ref.router_id = batch.router_id;
    ref.window_id = batch.window_id;
    ref.rlog_hash = commitment->rlog_hash;
    ref.record_count = commitment->record_count;
    out.emplace_back(ref, batch.canonical_bytes());
  }
  return out;
}

u64 tree_depth(u64 leaf_count) {
  return static_cast<u64>(
      std::countr_zero(std::bit_ceil(std::max<u64>(leaf_count, 1))));
}

}  // namespace

Result<AggregationRound> AggregationService::aggregate(
    std::span<const netflow::RLogBatch> batches) {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("agg_round");

  auto round = aggregate_impl(batches);

  metrics.histogram("core.agg.round_ms").record(ms_since(start));
  metrics.histogram("core.agg.batches_per_round")
      .record(static_cast<double>(batches.size()));
  if (round.ok()) {
    metrics.counter("core.agg.rounds").add(1);
    metrics.counter("core.agg.batches").add(batches.size());
    if (round.value().journal.has_sketch) {
      u64 records = 0;
      for (const auto& b : batches) records += b.records.size();
      metrics.counter("core.sketch.rounds").add(1);
      metrics.counter("core.sketch.fold_records").add(records);
      metrics.gauge("core.sketch.total")
          .set(static_cast<double>(round.value().journal.sketch_total));
    }
    metrics.gauge("core.agg.entries")
        .set(static_cast<double>(state_.entry_count()));
    // Delta-shape telemetry: how much of the state a round actually touched
    // and which guest proved it (0 = full rebuild, 1 = incremental).
    const AggJournal& j = round.value().journal;
    const bool inc = j.kind == RoundKind::incremental;
    metrics.gauge("core.agg.mode").set(inc ? 1.0 : 0.0);
    metrics.counter(inc ? "core.agg.rounds_incremental"
                        : "core.agg.rounds_full")
        .add(1);
    metrics.gauge("core.agg.total_entries")
        .set(static_cast<double>(j.new_entry_count));
    metrics.histogram("core.agg.touched_entries")
        .record(static_cast<double>(inc ? j.touched_entries
                                        : j.update_count));
    metrics.histogram("core.agg.multiproof_siblings")
        .record(static_cast<double>(j.multiproof_siblings));
  } else {
    metrics.counter("core.agg.failed_rounds").add(1);
  }
  return round;
}

AggregationService::DeltaShape AggregationService::delta_shape(
    std::span<const netflow::RLogBatch> batches,
    std::span<const size_t> order) const {
  DeltaShape shape;
  std::vector<u64> touched;
  std::vector<netflow::FlowKey> fresh;
  for (size_t idx : order) {
    for (const auto& rec : batches[idx].records) {
      ++shape.records;
      if (auto pos = state_.find(rec.key); pos.has_value()) {
        touched.push_back(*pos);
      } else {
        fresh.push_back(rec.key);
      }
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());

  const u64 n = state_.entry_count();
  std::vector<u64> opened = std::move(touched);
  if (!fresh.empty() && n > 0) {
    const u64 min_pos = state_.lower_bound(fresh.front());
    if (min_pos < n) {
      // Insertion cascade: every entry from just before the first insertion
      // point through the end either shifts or brackets a new key, so the
      // guest must see all of them.
      for (u64 i = min_pos > 0 ? min_pos - 1 : 0; i < n; ++i) {
        opened.push_back(i);
      }
      std::sort(opened.begin(), opened.end());
      opened.erase(std::unique(opened.begin(), opened.end()), opened.end());
    } else if (opened.empty() || opened.back() != n - 1) {
      // Frontier-only inserts: the current maximum key proves every new key
      // lies beyond the old state.
      opened.push_back(n - 1);
    }
  }
  shape.opened = std::move(opened);
  shape.fresh = std::move(fresh);
  return shape;
}

bool AggregationService::pick_incremental(const DeltaShape& shape) const {
  if (shape.opened.empty()) return false;  // nothing to anchor a delta on
  if (mode_ == AggMode::incremental) return true;
  const u64 n = state_.entry_count();
  const u64 k = shape.opened.size() + shape.fresh.size();
  const u64 depth_new = tree_depth(n + shape.fresh.size());
  // Traced-hash estimates; record hashing and merge ALU cost are identical
  // in both guests and cancel out. Full: leaf-hash all N entries, build the
  // prev tree, one path check per record, rebuild the changed subtrees.
  // Incremental: leaf-hash only opened + new entries, then one dual-lane
  // multiproof walk.
  const u64 est_full = n + std::bit_ceil(std::max<u64>(n, 1)) +
                       shape.records * tree_depth(n) + k * (depth_new + 1);
  const u64 est_inc =
      k + shape.fresh.size() + 2 * k * (depth_new + 1) + depth_new;
  return static_cast<double>(est_inc) <
         incremental_threshold_ * static_cast<double>(est_full);
}

Result<DeltaAggregateInput> AggregationService::build_delta_input(
    std::span<const netflow::RLogBatch> batches) const {
  return build_delta_input_ordered(batches, batch_order(batches));
}

Result<DeltaAggregateInput> AggregationService::build_delta_input_ordered(
    std::span<const netflow::RLogBatch> batches,
    std::span<const size_t> order) const {
  if (!last_receipt_.has_value() || state_.entry_count() == 0) {
    return Error{Errc::invalid_argument,
                 "delta rounds need a previous round over non-empty state"};
  }
  DeltaShape shape = delta_shape(batches, order);
  if (shape.opened.empty()) {
    return Error{Errc::invalid_argument,
                 "round touches no entry; nothing to prove incrementally"};
  }
  const u64 n = state_.entry_count();

  DeltaAggregateInput input;
  input.prev_claim_digest = last_receipt_->claim.digest();
  input.prev_image_kind = last_kind_;
  input.prev_root = state_.root();
  if (sketch_params_.has_value()) {
    input.has_sketch = true;
    input.prev_sketch = sketch_.canonical_bytes();
  }
  input.prev_entry_count = n;
  input.opened.reserve(shape.opened.size());
  for (u64 i : shape.opened) {
    DeltaAggregateInput::OpenedEntry opened;
    opened.index = i;
    opened.entry = state_.entry(i).canonical_bytes();
    input.opened.push_back(std::move(opened));
  }

  // One multiproof over the opened indices plus the empty slots the new
  // flows will occupy. If those slots lie beyond current tree capacity,
  // prove against a grown scratch copy — leaf_count (and thus the root the
  // guest checks) is unaffected by capacity padding.
  std::vector<u64> proof_indices = shape.opened;
  for (u64 r = 0; r < shape.fresh.size(); ++r) {
    proof_indices.push_back(n + r);
  }
  const u64 slots = n + shape.fresh.size();
  if (std::bit_ceil(std::max<u64>(slots, 1)) > state_.tree().capacity()) {
    crypto::MerkleTree grown = state_.tree();
    grown.grow_capacity(slots);
    input.proof = grown.prove_multi(proof_indices);
  } else {
    input.proof = state_.prove_multi(proof_indices);
  }

  auto committed = committed_batches(*board_, batches, order);
  if (!committed.ok()) return committed.error();
  input.batches = std::move(committed.value());
  return input;
}

Result<AggregationRound> AggregationService::aggregate_impl(
    std::span<const netflow::RLogBatch> batches) {
  const std::vector<size_t> order = batch_order(batches);

  // Pick the guest for this round. Genesis and empty-state rounds always go
  // through the full rebuild; otherwise mode_ decides (with auto_select
  // comparing estimated traced-hash costs).
  bool incremental = false;
  if (mode_ != AggMode::full && last_receipt_.has_value() &&
      state_.entry_count() > 0) {
    incremental = pick_incremental(delta_shape(batches, order));
  }

  Bytes input_bytes;
  zvm::ImageID image;
  if (incremental) {
    auto delta = build_delta_input_ordered(batches, order);
    if (!delta.ok()) return delta.error();
    input_bytes = delta.value().to_bytes();
    image = guest_images().aggregate_incremental;
  } else {
    AggregateInput input;
    input.has_prev = last_receipt_.has_value();
    input.prev_claim_digest =
        last_receipt_.has_value() ? last_receipt_->claim.digest() : Digest32{};
    input.prev_image_kind = last_kind_;
    input.prev_root = state_.root();
    if (sketch_params_.has_value()) {
      input.has_sketch = true;
      input.prev_sketch = sketch_.canonical_bytes();
    }
    input.prev_entries = state_.entry_bytes();
    auto committed = committed_batches(*board_, batches, order);
    if (!committed.ok()) return committed.error();
    input.batches = std::move(committed.value());
    input_bytes = input.to_bytes();
    image = guest_images().aggregate;
  }

  zvm::ProveOptions options = prove_options_;
  if (last_receipt_.has_value()) {
    options.assumptions.push_back(*last_receipt_);
  }

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(image, input_bytes, options, &info);
  if (!receipt.ok()) return receipt.error();

  auto journal = AggJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  // Mirror the guest's state transition on the host copy.
  for (size_t idx : order) {
    state_.apply_records(batches[idx].records);
  }
  if (state_.root() != journal.value().new_root ||
      state_.entry_count() != journal.value().new_entry_count) {
    return Error{Errc::merkle_mismatch,
                 "host state diverged from proven aggregation"};
  }

  // Mirror the sketch fold and cross-check the chained digests — host and
  // guest must agree bit for bit on the folded sketch bytes.
  if (journal.value().has_sketch != sketch_params_.has_value()) {
    return Error{Errc::proof_invalid,
                 "journal sketch flag disagrees with service options"};
  }
  if (sketch_params_.has_value()) {
    if (journal.value().prev_sketch_digest != sketch_.hash()) {
      return Error{Errc::hash_mismatch,
                   "proven round chained onto a different sketch"};
    }
    netflow::RoundSketch next_sketch = folded_sketch(batches, order);
    if (journal.value().sketch_digest != next_sketch.hash()) {
      return Error{Errc::hash_mismatch,
                   "host sketch diverged from the proven fold"};
    }
    sketch_ = std::move(next_sketch);
  }

  last_receipt_ = receipt.value();
  last_kind_ = journal.value().kind;
  AggregationRound round;
  round.round_id = rounds_++;
  round.receipt = std::move(receipt.value());
  round.journal = std::move(journal.value());
  round.prove_info = info;
  ZKT_LOG(info) << "aggregation round " << round.round_id << " ("
                << (incremental ? "incremental" : "full") << "): "
                << round.journal.commitments.size() << " batches, "
                << round.journal.new_entry_count << " entries, "
                << info.cycles << " cycles, " << info.total_ms << " ms";
  return round;
}

netflow::RoundSketch AggregationService::folded_sketch(
    std::span<const netflow::RLogBatch> batches,
    std::span<const size_t> order) const {
  netflow::RoundSketch next = sketch_;
  for (size_t idx : order) {
    for (const auto& record : batches[idx].records) {
      next.update(record.key, record.packets);
    }
  }
  return next;
}

Status AggregationService::restore(CLogState state, zvm::Receipt last_receipt,
                                   u64 rounds_completed,
                                   std::optional<netflow::RoundSketch> sketch) {
  if (rounds_ != 0 || last_receipt_.has_value()) {
    return Error{Errc::invalid_argument,
                 "restore() requires a fresh aggregation service"};
  }
  if (rounds_completed == 0) {
    return Error{Errc::invalid_argument,
                 "restore() needs at least one completed round"};
  }
  // The recovered receipt must be a genuine aggregation receipt (of either
  // kind — recovered chains may mix full and incremental rounds)…
  zvm::Verifier verifier;
  ZKT_TRY(verify_aggregation_receipt(verifier, last_receipt));
  // …the recovered state must be internally consistent (key-sorted entries,
  // cached tree matching a fresh rebuild — the implicit flow-key index delta
  // rounds depend on)…
  ZKT_TRY(state.check_consistency());
  // …and it must be exactly the state the receipt proved.
  auto journal = AggJournal::parse(last_receipt.journal);
  if (!journal.ok()) return journal.error();
  if (journal.value().new_root != state.root() ||
      journal.value().new_entry_count != state.entry_count()) {
    return Error{Errc::merkle_mismatch,
                 "recovered CLog state does not match the receipt's journal"};
  }
  // The sketch enablement follows the recovered chain: a sketch-carrying
  // receipt needs the matching recovered sketch bytes; a sketch-free chain
  // resets the mirror.
  if (journal.value().has_sketch) {
    if (!sketch.has_value()) {
      return Error{Errc::invalid_argument,
                   "receipt chains a sketch but none was recovered"};
    }
    if (!(sketch->params() == journal.value().sketch_params)) {
      return Error{Errc::invalid_argument,
                   "recovered sketch params mismatch the receipt's journal"};
    }
    if (sketch->hash() != journal.value().sketch_digest) {
      return Error{Errc::hash_mismatch,
                   "recovered sketch does not match the receipt's digest"};
    }
    sketch_params_ = journal.value().sketch_params;
    sketch_ = std::move(*sketch);
  } else {
    if (sketch.has_value()) {
      return Error{Errc::invalid_argument,
                   "recovered sketch for a chain that carries none"};
    }
    sketch_params_.reset();
    sketch_ = netflow::RoundSketch{};
  }
  state_ = std::move(state);
  last_receipt_ = std::move(last_receipt);
  last_kind_ = journal.value().kind;
  rounds_ = rounds_completed;
  return {};
}

Status AggregationService::replay_round(
    std::span<const netflow::RLogBatch> batches,
    const zvm::Receipt& receipt) {
  zvm::Verifier verifier;
  ZKT_TRY(verify_aggregation_receipt(verifier, receipt));
  auto parsed = AggJournal::parse(receipt.journal);
  if (!parsed.ok()) return parsed.error();
  const AggJournal& journal = parsed.value();

  // The receipt must extend THIS chain head.
  if (journal.has_prev != last_receipt_.has_value()) {
    return Error{Errc::chain_broken,
                 "replayed receipt disagrees about the chain genesis"};
  }
  if (last_receipt_.has_value() &&
      journal.prev_claim_digest != last_receipt_->claim.digest()) {
    return Error{Errc::chain_broken,
                 "replayed receipt does not chain onto the recovered head"};
  }
  if (journal.prev_root != state_.root() ||
      journal.prev_entry_count != state_.entry_count()) {
    return Error{Errc::merkle_mismatch,
                 "replayed receipt's previous root mismatches host state"};
  }

  // The stored batches must be byte-identical to what the round proved:
  // same (window, router) sequence, same committed hashes. Tampering with
  // raw logs after the fact still halts the chain here, just without the
  // cost of re-proving.
  const std::vector<size_t> order = batch_order(batches);
  if (order.size() != journal.commitments.size()) {
    return Error{Errc::chain_broken,
                 "replayed round has a different batch count than proven"};
  }
  for (size_t i = 0; i < order.size(); ++i) {
    const netflow::RLogBatch& batch = batches[order[i]];
    const CommitmentRef& ref = journal.commitments[i];
    if (batch.router_id != ref.router_id ||
        batch.window_id != ref.window_id ||
        batch.records.size() != ref.record_count ||
        batch.hash() != ref.rlog_hash) {
      return Error{Errc::hash_mismatch,
                   "stored batch diverged from the proven commitment (router " +
                       std::to_string(batch.router_id) + ", window " +
                       std::to_string(batch.window_id) + ")"};
    }
  }

  // Apply on a scratch copy so a journal mismatch cannot poison the chain.
  CLogState next = state_;
  for (size_t idx : order) {
    next.apply_records(batches[idx].records);
  }
  if (next.root() != journal.new_root ||
      next.entry_count() != journal.new_entry_count) {
    return Error{Errc::merkle_mismatch,
                 "replayed batches do not reproduce the proven root"};
  }

  // Replay the sketch fold the same way: the stored batches must reproduce
  // the exact sketch digest the round proved.
  if (journal.has_sketch != sketch_params_.has_value()) {
    return Error{Errc::chain_broken,
                 "replayed receipt disagrees about sketch carriage"};
  }
  netflow::RoundSketch next_sketch = sketch_;
  if (journal.has_sketch) {
    if (journal.prev_sketch_digest != sketch_.hash()) {
      return Error{Errc::hash_mismatch,
                   "replayed receipt chained onto a different sketch"};
    }
    next_sketch = folded_sketch(batches, order);
    if (journal.sketch_digest != next_sketch.hash()) {
      return Error{Errc::hash_mismatch,
                   "replayed batches do not reproduce the proven sketch"};
    }
  }

  state_ = std::move(next);
  sketch_ = std::move(next_sketch);
  last_receipt_ = receipt;
  last_kind_ = journal.kind;
  ++rounds_;
  return {};
}

Result<QueryResponse> QueryService::finish(Result<zvm::Receipt> receipt,
                                           const zvm::ProveInfo& info) const {
  if (!receipt.ok()) return receipt.error();
  auto journal = QueryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  QueryResponse response;
  response.value = journal.value().result.value(journal.value().query.agg);
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.prove_info = info;
  return response;
}

Result<QueryResponse> QueryService::run(const Query& query,
                                        const QueryOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  const bool selective = options.mode == QueryMode::selective;
  obs::ScopedSpan span(selective ? "query_selective" : "query_complete");
  const zvm::ProveOptions& prove = options.prove_options_override.has_value()
                                       ? *options.prove_options_override
                                       : prove_options_;

  auto response = selective ? run_selective_impl(query, prove)
                            : run_complete(query, prove);

  metrics
      .histogram(selective ? "core.query.selective_ms"
                           : "core.query.complete_ms")
      .record(ms_since(start));
  metrics
      .counter(selective ? "core.query.selective_runs"
                         : "core.query.complete_runs")
      .add(1);
  if (response.ok()) {
    // Matched/scanned tell the selectivity story: how much of the state a
    // query touched vs. how much it had to prove over.
    metrics.counter("core.query.matched_entries")
        .add(response.value().journal.result.matched);
    metrics.counter("core.query.scanned_entries")
        .add(response.value().journal.result.scanned);
  } else {
    metrics.counter("core.query.failures").add(1);
  }
  return response;
}

Result<QueryResponse> QueryService::run_complete(
    const Query& query, const zvm::ProveOptions& prove) const {
  if (!aggregation_->has_rounds()) {
    return Error{Errc::chain_broken,
                 "no aggregation round to query against"};
  }
  const zvm::Receipt& agg_receipt = aggregation_->last_receipt();

  QueryInput input;
  input.agg_claim = agg_receipt.claim;
  input.agg_journal = agg_receipt.journal;
  input.entries = aggregation_->state().entry_bytes();
  input.query = query;

  zvm::ProveOptions options = prove;
  options.assumptions.push_back(agg_receipt);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(guest_images().query, input.to_bytes(), options,
                              &info);
  return finish(std::move(receipt), info);
}

bool QueryService::pick_sketch() const {
  if (!aggregation_->sketch_enabled() || !aggregation_->has_rounds()) {
    return false;
  }
  const netflow::SketchParams& p = aggregation_->sketch().params();
  // Traced-hash estimates, pick_incremental's twin on the query side.
  // Sketch guest: one hash over the sketch bytes (width*depth counters at
  // 8 bytes each, 64 bytes per compression) plus up to capacity reported
  // hits at depth index hashes each. Exact complete scan: leaf-hash every
  // entry, then evaluate it. The sketch cost is FLAT in N — past a few
  // thousand entries it always wins.
  const u64 est_sketch =
      (static_cast<u64>(p.cm.width) * p.cm.depth * 8) / 64 +
      static_cast<u64>(p.heavy_capacity) * p.cm.depth;
  const u64 est_exact = 2 * aggregation_->state().entry_count();
  return static_cast<double>(est_sketch) <
         sketch_threshold_ * static_cast<double>(est_exact);
}

Result<HeavyHittersResponse> QueryService::heavy_hitters(
    u64 threshold, const QueryOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("query_heavy_hitters");
  if (!aggregation_->has_rounds()) {
    return Error{Errc::chain_broken, "no aggregation round to query against"};
  }

  // Route to the sketch only when its error bound can satisfy the query:
  // the Space-Saving floor must prove completeness at this threshold.
  const bool bound_ok =
      aggregation_->sketch_enabled() &&
      sketch_heavy_bound_ok(threshold,
                            aggregation_->sketch().heavy().capacity(),
                            aggregation_->sketch().heavy().total());
  HeavyHittersResponse out;
  if (bound_ok && pick_sketch()) {
    const zvm::ProveOptions& prove = options.prove_options_override.has_value()
                                         ? *options.prove_options_override
                                         : prove_options_;
    auto response = prove_sketch_heavy(aggregation_->last_receipt(),
                                       aggregation_->sketch(), threshold,
                                       prove);
    if (!response.ok()) {
      metrics.counter("core.sketch.query_failures").add(1);
      return response.error();
    }
    out.used_sketch = true;
    out.sketch = std::move(response.value());
    metrics.counter("core.sketch.query_heavy_runs").add(1);
  } else {
    auto response =
        run(Query::count().and_where(QField::packets, CmpOp::ge, threshold),
            options);
    if (!response.ok()) return response.error();
    out.exact = std::move(response.value());
    metrics.counter("core.sketch.exact_fallbacks").add(1);
  }
  metrics.histogram("core.sketch.query_ms").record(ms_since(start));
  return out;
}

Result<CardinalityResponse> QueryService::cardinality(
    const QueryOptions& options) const {
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("query_cardinality");
  if (!aggregation_->has_rounds()) {
    return Error{Errc::chain_broken, "no aggregation round to query against"};
  }

  // The exact distinct count rides in the bound journal, so no error-bound
  // gate here — only the cost estimator.
  CardinalityResponse out;
  if (pick_sketch()) {
    const zvm::ProveOptions& prove = options.prove_options_override.has_value()
                                         ? *options.prove_options_override
                                         : prove_options_;
    auto response = prove_sketch_cardinality(aggregation_->last_receipt(),
                                             aggregation_->sketch(), prove);
    if (!response.ok()) {
      metrics.counter("core.sketch.query_failures").add(1);
      return response.error();
    }
    out.used_sketch = true;
    out.sketch = std::move(response.value());
    metrics.counter("core.sketch.query_card_runs").add(1);
  } else {
    auto response = run(Query::count(), options);
    if (!response.ok()) return response.error();
    out.exact = std::move(response.value());
    metrics.counter("core.sketch.exact_fallbacks").add(1);
  }
  metrics.histogram("core.sketch.query_ms").record(ms_since(start));
  return out;
}

Result<QueryResponse> QueryService::run_selective_impl(
    const Query& query, const zvm::ProveOptions& prove) const {
  if (!aggregation_->has_rounds()) {
    return Error{Errc::chain_broken,
                 "no aggregation round to query against"};
  }
  const zvm::Receipt& agg_receipt = aggregation_->last_receipt();
  const CLogState& state = aggregation_->state();

  SelectiveQueryInput input;
  input.agg_claim = agg_receipt.claim;
  input.agg_journal = agg_receipt.journal;
  input.query = query;
  std::vector<u64> indices;
  for (u64 i = 0; i < state.entry_count(); ++i) {
    if (!matches(query, state.entry(i))) continue;
    SelectiveQueryInput::OpenedEntry opened;
    opened.index = i;
    opened.entry = state.entry(i).canonical_bytes();
    input.opened.push_back(std::move(opened));
    indices.push_back(i);
  }
  if (!indices.empty()) {
    input.proof = state.prove_multi(indices);
  }

  zvm::ProveOptions options = prove;
  options.assumptions.push_back(agg_receipt);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(guest_images().query_selective,
                              input.to_bytes(), options, &info);
  return finish(std::move(receipt), info);
}

}  // namespace zkt::core
