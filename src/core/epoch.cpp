#include "core/epoch.h"

#include <chrono>

#include "core/io.h"
#include "obs/metrics.h"
#include "store/logstore.h"  // crc32
#include "zvm/verifier.h"

namespace zkt::core {

namespace {

constexpr std::string_view kEpochSealMagic = "EPSEAL1";
constexpr std::string_view kEpochFileMagic = "ZKTEPCH1";

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// EpochSeal serialization

Bytes EpochSeal::to_bytes() const {
  Writer w;
  w.str(kEpochSealMagic);
  w.u32v(level);
  w.u64v(start_round);
  w.u64v(rounds);
  w.u64v(first_window);
  w.u64v(last_window);
  w.blob(receipt.to_bytes());
  w.varint(commitments.size());
  for (const auto& ref : commitments) write_commitment_ref(w, ref);
  return std::move(w).take();
}

Result<EpochSeal> EpochSeal::from_bytes(BytesView data) {
  Reader r(data);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != kEpochSealMagic) {
    return Error{Errc::parse_error, "bad epoch seal magic"};
  }
  EpochSeal seal;
  auto level = r.u32v();
  if (!level.ok()) return level.error();
  seal.level = level.value();
  auto start = r.u64v();
  if (!start.ok()) return start.error();
  seal.start_round = start.value();
  auto rounds = r.u64v();
  if (!rounds.ok()) return rounds.error();
  seal.rounds = rounds.value();
  auto first_window = r.u64v();
  if (!first_window.ok()) return first_window.error();
  seal.first_window = first_window.value();
  auto last_window = r.u64v();
  if (!last_window.ok()) return last_window.error();
  seal.last_window = last_window.value();
  auto receipt_bytes = r.blob();
  if (!receipt_bytes.ok()) return receipt_bytes.error();
  auto receipt = zvm::Receipt::from_bytes(receipt_bytes.value());
  if (!receipt.ok()) return receipt.error();
  seal.receipt = std::move(receipt.value());
  auto journal = ChainSummaryJournal::parse(seal.receipt.journal);
  if (!journal.ok()) return journal.error();
  seal.journal = journal.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() != seal.journal.commitment_count) {
    return Error{Errc::parse_error,
                 "epoch seal ref count disagrees with its journal"};
  }
  seal.commitments.reserve(n.value());
  for (u64 i = 0; i < n.value(); ++i) {
    auto ref = parse_commitment_ref(r, CommitmentKind::rlog);
    if (!ref.ok()) return ref.error();
    seal.commitments.push_back(ref.value());
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing epoch seal bytes"};
  }
  return seal;
}

// ---------------------------------------------------------------------------
// Ladder plan + recovery validation

std::vector<EpochSpanSpec> epoch_ladder_plan(u64 rounds, u64 epoch_every) {
  std::vector<EpochSpanSpec> plan;
  if (epoch_every == 0) return plan;
  const u64 units = rounds / epoch_every;
  u64 start = 0;
  for (int bit = 63; bit >= 0; --bit) {
    const u64 span_units = u64{1} << bit;
    if ((units & span_units) == 0) continue;
    EpochSpanSpec spec;
    spec.level = static_cast<u32>(bit);
    spec.start_round = start;
    spec.rounds = span_units * epoch_every;
    plan.push_back(spec);
    start += spec.rounds;
  }
  return plan;
}

Status validate_recovered_seal(const EpochSeal& seal,
                               std::span<const zvm::Receipt> chain,
                               u64 epoch_every) {
  if (epoch_every == 0 || seal.level >= 48) {
    return Error{Errc::proof_invalid, "degenerate epoch seal geometry"};
  }
  const u64 expected_rounds = epoch_every << seal.level;
  if (seal.rounds != expected_rounds ||
      seal.start_round % expected_rounds != 0) {
    return Error{Errc::proof_invalid, "epoch seal span is not ladder-aligned"};
  }
  if (seal.start_round + seal.rounds > chain.size()) {
    return Error{Errc::proof_invalid,
                 "epoch seal extends past the recovered chain"};
  }

  zvm::Verifier verifier;
  ZKT_TRY(verifier.verify(seal.receipt, chain_summary_image(),
                          zvm::VerifyContext{}));
  auto parsed = ChainSummaryJournal::parse(seal.receipt.journal);
  if (!parsed.ok()) return parsed.error();
  const ChainSummaryJournal& j = parsed.value();
  {
    // The stored journal copy must be the receipt's journal, byte for byte.
    Writer stored, live;
    seal.journal.write(stored);
    j.write(live);
    if (!std::equal(stored.bytes().begin(), stored.bytes().end(),
                    live.bytes().begin(), live.bytes().end()) ||
        stored.bytes().size() != live.bytes().size()) {
      return Error{Errc::proof_invalid,
                   "stored epoch seal journal differs from its receipt"};
    }
  }
  if (j.rounds != seal.rounds || j.genesis != (seal.start_round == 0)) {
    return Error{Errc::proof_invalid,
                 "epoch seal journal disagrees with its span"};
  }

  // Anchor both ends of the span to the live receipt chain.
  const zvm::Receipt& first = chain[seal.start_round];
  const zvm::Receipt& last = chain[seal.start_round + seal.rounds - 1];
  auto first_j = AggJournal::parse(first.journal);
  if (!first_j.ok()) return first_j.error();
  auto last_j = AggJournal::parse(last.journal);
  if (!last_j.ok()) return last_j.error();
  if (j.first_claim_digest != first_j.value().prev_claim_digest ||
      j.first_root != first_j.value().prev_root ||
      j.first_entry_count != first_j.value().prev_entry_count ||
      j.final_claim_digest != last.claim.digest() ||
      j.final_root != last_j.value().new_root ||
      j.final_entry_count != last_j.value().new_entry_count) {
    return Error{Errc::proof_invalid,
                 "epoch seal does not match the recovered chain"};
  }
  if (j.has_sketch != first_j.value().has_sketch) {
    return Error{Errc::proof_invalid,
                 "epoch seal disagrees with the chain about sketch carriage"};
  }
  if (j.has_sketch &&
      (j.first_sketch_digest != first_j.value().prev_sketch_digest ||
       j.final_sketch_digest != last_j.value().sketch_digest)) {
    return Error{Errc::proof_invalid,
                 "epoch seal sketch chain does not match the recovered chain"};
  }

  // The stored ref list must be exactly what the span's rounds consumed,
  // and must reproduce the proven commitment-chain digest.
  if (j.genesis && j.first_commitments_digest != epoch_commitments_init()) {
    return Error{Errc::proof_invalid,
                 "recovered genesis seal does not anchor the commitment "
                 "chain"};
  }
  u64 ref_index = 0;
  Digest32 digest = j.first_commitments_digest;
  for (u64 round = seal.start_round;
       round < seal.start_round + seal.rounds; ++round) {
    auto round_j = AggJournal::parse(chain[round].journal);
    if (!round_j.ok()) return round_j.error();
    for (const auto& ref : round_j.value().commitments) {
      if (ref_index >= seal.commitments.size() ||
          !(seal.commitments[ref_index] == ref)) {
        return Error{Errc::hash_mismatch,
                     "epoch seal ref list diverges from the chain"};
      }
      digest = epoch_commitments_fold(digest, ref);
      ++ref_index;
    }
  }
  if (ref_index != seal.commitments.size() ||
      seal.commitments.size() != j.commitment_count ||
      digest != j.final_commitments_digest) {
    return Error{Errc::hash_mismatch,
                 "epoch seal ref list does not reproduce the proven "
                 "commitment chain"};
  }
  return {};
}

// ---------------------------------------------------------------------------
// EpochLadder

EpochLadder::EpochLadder(EpochLadderOptions options)
    : options_(std::move(options)),
      pool_(options_.pool != nullptr ? options_.pool
                                     : &common::ThreadPool::shared()),
      actor_commitments_digest_(epoch_commitments_init()) {
  if (options_.epoch_every == 0) options_.epoch_every = 1;
  // Succinct seals are load-bearing: constant size, O(1) verify, and the
  // merge guest still binds them as assumptions (see header).
  options_.prove_options.seal_kind = zvm::SealKind::succinct;
  options_.prove_options.assumptions.clear();
}

EpochLadder::~EpochLadder() { (void)settle(); }

Status EpochLadder::feed(const zvm::Receipt& receipt, u64 window) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!error_.ok()) return error_;
    ++rounds_fed_;
  }
  // Fail fast on a receipt the seal guest could never fold.
  auto journal = AggJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();

  if (buffer_.rounds.empty()) buffer_.start_round = next_start_round_;
  buffer_.rounds.push_back(receipt);
  buffer_.windows.push_back(window);
  ++next_start_round_;
  if (buffer_.rounds.size() < options_.epoch_every) return {};

  PendingUnit unit = std::move(buffer_);
  buffer_ = PendingUnit{};
  bool dispatch = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(unit));
    if (!active_) {
      active_ = true;
      dispatch = true;
    }
  }
  if (dispatch) pool_->submit([this] { drain_units(); });
  return {};
}

void EpochLadder::drain_units() {
  for (;;) {
    PendingUnit unit;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (queue_.empty() || !error_.ok()) {
        queue_.clear();
        active_ = false;
        idle_.notify_all();
        return;
      }
      unit = std::move(queue_.front());
      queue_.pop_front();
    }
    Status built = build_unit(std::move(unit));
    if (!built.ok()) {
      std::lock_guard<std::mutex> lk(mu_);
      if (error_.ok()) error_ = built;
    }
  }
}

Status EpochLadder::build_unit(PendingUnit unit) {
  auto& metrics = obs::Registry::instance();
  EpochSpanOptions span_options;
  span_options.prove_options = options_.prove_options;
  span_options.first_commitments_digest = actor_commitments_digest_;

  auto started = std::chrono::steady_clock::now();
  auto response = prove_epoch_span(unit.rounds, span_options);
  if (!response.ok()) return response.error();
  metrics.histogram("core.epoch.prove_ms").record(ms_since(started));
  metrics.counter("core.epoch.seals_built").add(1);

  EpochSeal seal;
  seal.level = 0;
  seal.start_round = unit.start_round;
  seal.rounds = response.value().journal.rounds;
  seal.first_window = unit.windows.front();
  seal.last_window = unit.windows.back();
  seal.receipt = std::move(response.value().receipt);
  seal.journal = response.value().journal;
  seal.commitments = std::move(response.value().commitments);
  actor_commitments_digest_ = seal.journal.final_commitments_digest;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ladder_.push_back(seal);
    completed_.push_back(std::move(seal));
  }

  // Binary-counter carry: merge while the two tail seals share a level.
  for (;;) {
    EpochSeal left, right;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (ladder_.size() < 2 ||
          ladder_[ladder_.size() - 2].level != ladder_.back().level) {
        break;
      }
      left = ladder_[ladder_.size() - 2];
      right = ladder_.back();
    }
    const zvm::Receipt children[2] = {left.receipt, right.receipt};
    EpochSpanOptions merge_options;
    merge_options.prove_options = options_.prove_options;
    started = std::chrono::steady_clock::now();
    auto merged = prove_epoch_span(children, merge_options);
    if (!merged.ok()) return merged.error();
    metrics.histogram("core.epoch.prove_ms").record(ms_since(started));
    metrics.counter("core.epoch.seals_built").add(1);
    metrics.counter("core.epoch.merges").add(1);

    EpochSeal parent;
    parent.level = left.level + 1;
    parent.start_round = left.start_round;
    parent.rounds = left.rounds + right.rounds;
    parent.first_window = left.first_window;
    parent.last_window = right.last_window;
    parent.receipt = std::move(merged.value().receipt);
    parent.journal = merged.value().journal;
    parent.commitments = std::move(left.commitments);
    parent.commitments.insert(parent.commitments.end(),
                              right.commitments.begin(),
                              right.commitments.end());
    {
      std::lock_guard<std::mutex> lk(mu_);
      ladder_.pop_back();
      ladder_.pop_back();
      ladder_.push_back(parent);
      completed_.push_back(std::move(parent));
    }
  }

  std::lock_guard<std::mutex> lk(mu_);
  metrics.gauge("core.epoch.ladder_size")
      .set(static_cast<double>(ladder_.size()));
  u64 sealed = 0;
  for (const auto& s : ladder_) sealed += s.rounds;
  metrics.gauge("core.epoch.rounds_sealed").set(static_cast<double>(sealed));
  return {};
}

std::vector<EpochSeal> EpochLadder::take_completed() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<EpochSeal> out = std::move(completed_);
  completed_.clear();
  return out;
}

Status EpochLadder::settle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_.wait(lk, [this] { return !active_; });
  return error_;
}

std::vector<EpochSeal> EpochLadder::ladder() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ladder_;
}

Status EpochLadder::adopt(EpochSeal seal) {
  std::lock_guard<std::mutex> lk(mu_);
  if (active_ || !queue_.empty() || !buffer_.rounds.empty()) {
    return Error{Errc::invalid_argument,
                 "epoch ladder adoption only before feeding"};
  }
  if (seal.start_round != next_start_round_) {
    return Error{Errc::invalid_argument,
                 "adopted epoch seal is out of chain order"};
  }
  if (!ladder_.empty() && ladder_.back().level <= seal.level) {
    return Error{Errc::invalid_argument,
                 "adopted epoch seal breaks the ladder level order"};
  }
  rounds_fed_ += seal.rounds;
  next_start_round_ += seal.rounds;
  actor_commitments_digest_ = seal.journal.final_commitments_digest;
  ladder_.push_back(std::move(seal));
  return {};
}

u64 EpochLadder::rounds_fed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rounds_fed_;
}

// ---------------------------------------------------------------------------
// Seal bundle files

Status save_epoch_seals(const std::vector<EpochSeal>& seals,
                        const std::string& path) {
  Writer w;
  w.str(kEpochFileMagic);
  w.varint(seals.size());
  for (const auto& seal : seals) {
    const Bytes item = seal.to_bytes();
    w.blob(item);
    w.u32v(store::crc32(item));
  }
  return write_file(path, w.bytes());
}

Result<std::vector<EpochSeal>> load_epoch_seals(const std::string& path) {
  auto data = read_file(path);
  if (!data.ok()) return data.error();
  Reader r(data.value());
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != kEpochFileMagic) {
    return Error{Errc::parse_error, "bad epoch seal file magic"};
  }
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > (1u << 16)) {
    return Error{Errc::parse_error, "unreasonable epoch seal count"};
  }
  std::vector<EpochSeal> seals;
  seals.reserve(n.value());
  for (u64 i = 0; i < n.value(); ++i) {
    auto item = r.blob();
    if (!item.ok()) return item.error();
    auto crc = r.u32v();
    if (!crc.ok()) return crc.error();
    if (store::crc32(item.value()) != crc.value()) {
      return Error{Errc::parse_error,
                   "epoch seal " + std::to_string(i) + " failed CRC"};
    }
    auto seal = EpochSeal::from_bytes(item.value());
    if (!seal.ok()) return seal.error();
    seals.push_back(std::move(seal.value()));
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing epoch seal file bytes"};
  }
  return seals;
}

// ---------------------------------------------------------------------------
// Auditor::catch_up (lives here so it can see EpochSeal whole; declared in
// core/auditor.h)

Result<CatchUpReport> Auditor::catch_up(std::span<const EpochSeal> seals,
                                        std::span<const zvm::Receipt> suffix,
                                        zvm::VerifyStats* stats) {
  if (rounds_ != 0) {
    return Error{Errc::chain_broken,
                 "catch-up requires a fresh auditor (no rounds accepted)"};
  }
  CatchUpReport report;

  const ChainSummaryJournal* prev = nullptr;
  std::optional<ChainSummaryJournal> prev_storage;
  u64 covered = 0;
  for (size_t i = 0; i < seals.size(); ++i) {
    const EpochSeal& seal = seals[i];
    auto journal = verify_chain_summary(seal.receipt, *board_,
                                        seal.commitments,
                                        VerifyOptions{nullptr, stats});
    if (!journal.ok()) return journal.error();
    const ChainSummaryJournal& j = journal.value();
    if (seal.start_round != covered || seal.rounds != j.rounds) {
      return Error{Errc::chain_broken,
                   "epoch seal span disagrees with its position"};
    }
    if (prev == nullptr) {
      if (!j.genesis) {
        return Error{Errc::chain_broken,
                     "catch-up must anchor at genesis (first seal is "
                     "mid-chain)"};
      }
      // The guest cannot know the empty sketch's hash; the genesis sketch
      // anchor is checked here, exactly as accept_round checks it per round.
      if (j.has_sketch) {
        const netflow::RoundSketch empty{j.sketch_params};
        if (j.first_sketch_digest != empty.hash()) {
          return Error{Errc::chain_broken,
                       "genesis seal does not start from the empty sketch"};
        }
      }
    } else {
      if (j.genesis) {
        return Error{Errc::chain_broken,
                     "genesis seal spliced after the chain start"};
      }
      if (j.first_claim_digest != prev->final_claim_digest ||
          j.first_root != prev->final_root ||
          j.first_entry_count != prev->final_entry_count ||
          j.first_commitments_digest != prev->final_commitments_digest) {
        return Error{Errc::chain_broken, "epoch seals do not splice"};
      }
      if (j.has_sketch != prev->has_sketch) {
        return Error{Errc::chain_broken,
                     "epoch seals disagree about sketch carriage"};
      }
      if (j.has_sketch && (!(j.sketch_params == prev->sketch_params) ||
                           j.first_sketch_digest != prev->final_sketch_digest)) {
        return Error{Errc::chain_broken,
                     "epoch seals do not splice the sketch chain"};
      }
    }
    covered += j.rounds;
    prev_storage = j;
    prev = &*prev_storage;
    ++report.seals_adopted;
  }
  report.seal_rounds = covered;

  if (prev != nullptr) {
    rounds_ = covered;
    last_claim_digest_ = prev->final_claim_digest;
    claims_.insert(last_claim_digest_);
    current_root_ = prev->final_root;
    current_entry_count_ = prev->final_entry_count;
    // Seals carry the sketch position (unlike bare adopt_summary), so sketch
    // queries bind immediately after catch-up.
    sketch_known_ = true;
    sketch_present_ = prev->has_sketch;
    if (prev->has_sketch) {
      sketch_params_ = prev->sketch_params;
      sketch_digest_ = prev->final_sketch_digest;
    }
    obs::Registry::instance()
        .counter("core.epoch.seals_verified")
        .add(report.seals_adopted);
  }

  auto accepted = accept_rounds(suffix, stats);
  if (!accepted.ok()) return accepted.error();
  report.rounds_replayed = accepted.value();
  report.head = head();
  return report;
}

}  // namespace zkt::core
