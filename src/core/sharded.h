// Verifiable sharded aggregation — the §7 "Proof parallelization" design,
// made sound end to end.
//
// Naively partitioning NetFlow records across shard provers breaks the
// commitment check: routers committed to whole batches, not sub-batches. We
// close that gap with a *split proof*: a zkVM guest that
//   1. verifies the original batch against its published commitment,
//   2. deterministically partitions its records by flow hash into K
//      sub-batches,
//   3. publishes the K sub-batch hashes (+ counts) in its journal.
//
// Each shard then runs the ordinary Algorithm-1 aggregation chain over its
// sub-batches, treating the split journal's hashes as its commitments. The
// verifier checks: split receipts (against the board) + each shard chain
// (against the split outputs). Shards prove independently — on a multicore
// prover they run on dedicated threads, which is exactly the §7 speedup.
#pragma once

#include <memory>

#include "core/auditor.h"
#include "core/service.h"

namespace zkt::core {

/// One sub-batch reference produced by a split proof.
struct ShardRef {
  u32 shard_id = 0;
  Digest32 sub_batch_hash;
  u64 record_count = 0;

  friend bool operator==(const ShardRef&, const ShardRef&) = default;
};

/// Public journal of a split proof.
struct SplitJournal {
  CommitmentRef source;  ///< the original (board-published) commitment
  u32 shard_count = 0;
  std::vector<ShardRef> shards;

  void write(Writer& w) const;
  static Result<SplitJournal> parse(BytesView journal);
};

/// The split guest's image (registered on first use).
zvm::ImageID shard_split_image();

/// Deterministic shard assignment for a flow (shared by host, guest and
/// tests): FlowKeyHasher(key) % shard_count.
u32 shard_of(const netflow::FlowKey& key, u32 shard_count);

/// The canonical serialization of shard `shard_id`'s sub-batch of `batch`.
netflow::RLogBatch sub_batch_for(const netflow::RLogBatch& batch,
                                 u32 shard_id, u32 shard_count);

/// Prover-side sharded pipeline.
class ShardedAggregationService {
 public:
  ShardedAggregationService(const CommitmentBoard& board, u32 shard_count,
                            AggregationOptions options = {});

  /// Deprecated shim (one PR): pass AggregationOptions instead.
  [[deprecated(
      "use ShardedAggregationService(board, n, {.prove_options = ...})")]]
  ShardedAggregationService(const CommitmentBoard& board, u32 shard_count,
                            zvm::ProveOptions prove_options)
      : ShardedAggregationService(
            board, shard_count,
            AggregationOptions{.prove_options = std::move(prove_options)}) {}

  struct Round {
    std::vector<zvm::Receipt> split_receipts;       ///< one per input batch
    std::vector<AggregationRound> shard_rounds;     ///< one per shard
    double wall_ms = 0;
    u64 total_cycles = 0;
  };

  /// Run one round: split-prove every batch, then aggregate all shards in
  /// parallel threads. Batches are borrowed, matching
  /// AggregationService::aggregate.
  Result<Round> aggregate(std::span<const netflow::RLogBatch> batches);

  /// Convenience for literal batch lists: aggregate({a, b}).
  Result<Round> aggregate(std::initializer_list<netflow::RLogBatch> batches) {
    return aggregate(
        std::span<const netflow::RLogBatch>(batches.begin(), batches.size()));
  }

  u32 shard_count() const { return shard_count_; }
  const CLogState& shard_state(u32 shard) const {
    return shards_[shard]->state();
  }
  const AggregationService& shard_service(u32 shard) const {
    return *shards_[shard];
  }

 private:
  const CommitmentBoard* board_;
  u32 shard_count_;
  zvm::ProveOptions prove_options_;
  /// Per-shard boards holding the split-derived sub-commitments, and the
  /// per-shard aggregation chains on top of them.
  std::vector<std::unique_ptr<CommitmentBoard>> shard_boards_;
  std::vector<std::unique_ptr<AggregationService>> shards_;
  std::vector<crypto::SchnorrKeyPair> shard_keys_;
};

/// Verifier-side: checks split receipts against the real board and each
/// shard chain against the split outputs.
class ShardedAuditor {
 public:
  ShardedAuditor(const CommitmentBoard& board, u32 shard_count);

  Status accept_round(const ShardedAggregationService::Round& round);

  u64 rounds_accepted() const { return rounds_; }
  /// Total entries across shard states after the last accepted round.
  u64 total_entries() const;

 private:
  const CommitmentBoard* board_;
  u32 shard_count_;
  zvm::Verifier verifier_;
  /// Pooled fan-out for the round's independent receipts (split proofs and
  /// per-shard aggregation receipts); decisions match the sequential walk.
  BatchVerifier batch_;
  u64 rounds_ = 0;
  /// Chain state per shard.
  std::vector<Digest32> last_claims_;
  std::vector<Digest32> roots_;
  std::vector<u64> entry_counts_;
  std::vector<bool> genesis_done_;
};

}  // namespace zkt::core
