// Verifiable sharded aggregation — the §7 "Proof parallelization" design,
// made sound end to end.
//
// Naively partitioning NetFlow records across shard provers breaks the
// commitment check: routers committed to whole batches, not sub-batches. We
// close that gap with a *split proof*: a zkVM guest that
//   1. verifies the original batch against its published commitment,
//   2. deterministically partitions its records by flow hash into K
//      sub-batches,
//   3. publishes the K sub-batch hashes (+ counts) in its journal.
//
// Each shard then runs the ordinary Algorithm-1 aggregation chain over its
// sub-batches, treating the split journal's hashes as its commitments, and
// the round's K shard receipts fold through a tree of join guests into ONE
// seal (see core/join.h) — so the verifier checks split receipts (against
// the board) plus one tree seal per round instead of O(K) receipts. Shards
// prove in parallel on common::ThreadPool, which is exactly the §7 speedup;
// the fold is log-depth and pool-parallel too.
//
// A round decomposes into stage -> commit_staged -> prove_shards ->
// fold_round so ProviderPipeline can overlap windows: stage() is const and
// thread-safe (window i+1 stages on a worker while window i proves), and
// fold_round() only reads the round's receipts (window i folds while window
// i+1 proves). aggregate() runs all four for callers that don't pipeline.
#pragma once

#include <map>
#include <memory>
#include <tuple>

#include "core/auditor.h"
#include "core/chain_snapshot.h"
#include "core/fold.h"
#include "core/service.h"

namespace zkt::core {

/// One sub-batch reference produced by a split proof.
struct ShardRef {
  u32 shard_id = 0;
  Digest32 sub_batch_hash;
  u64 record_count = 0;

  friend bool operator==(const ShardRef&, const ShardRef&) = default;
};

/// Public journal of a split proof.
struct SplitJournal {
  CommitmentRef source;  ///< the original (board-published) commitment
  u32 shard_count = 0;
  std::vector<ShardRef> shards;

  void write(Writer& w) const;
  static Result<SplitJournal> parse(BytesView journal);
};

/// The split guest's image (registered on first use).
zvm::ImageID shard_split_image();

/// Deterministic shard assignment for a flow (shared by host, guest and
/// tests): FlowKeyHasher(key) % shard_count.
u32 shard_of(const netflow::FlowKey& key, u32 shard_count);

/// The canonical serialization of shard `shard_id`'s sub-batch of `batch`.
netflow::RLogBatch sub_batch_for(const netflow::RLogBatch& batch,
                                 u32 shard_id, u32 shard_count);

/// Construction-time knobs for the sharded proving path, per the repo's
/// options-struct convention (PipelineOptions / AggregationOptions /
/// AuditorOptions). One struct configures the whole path: the service's
/// shard fan-out and fold shape here, and — via PipelineOptions — how many
/// windows ProviderPipeline keeps in flight.
/// Clamp + watermarks for adaptive shard-count advice (ROADMAP item 3
/// headroom: feed the imbalance gauge back into the fan-out choice).
struct AdaptiveShardOptions {
  u32 min_shards = 1;
  u32 max_shards = 16;
  /// Double the recommendation when imbalance (max shard wall / mean) sits
  /// at or above this for `patience` consecutive rounds — hash % K
  /// re-partitions, so a hot bucket under K usually splits under 2K.
  double split_above = 1.5;
  /// Halve it when imbalance sits at or below this for `patience` rounds:
  /// the round is already balanced, and fewer, fatter shards shrink the
  /// split + join-fold overhead per record.
  double merge_below = 1.05;
  /// Consecutive rounds beyond a watermark before the advice moves
  /// (hysteresis against one-off stragglers). Clamped to >= 1.
  u32 patience = 2;
};

/// Halve/double recommendation machine over per-round imbalance readings.
/// Deterministic: the recommendation is a pure function of the observation
/// sequence (clamped to [min_shards, max_shards], watermarked, with
/// `patience` hysteresis), so replaying the same rounds yields the same
/// advice. It only ever *advises* — the live fan-out is pinned per window
/// and applied where a chain legitimately starts (see
/// ShardedOptions::adaptive_shards for why mid-chain resharding is unsound).
class AdaptiveShardController {
 public:
  AdaptiveShardController(u32 current, AdaptiveShardOptions options);

  /// Feed one round's imbalance reading (max shard wall / mean shard wall).
  void observe(double imbalance);

  u32 recommended() const { return recommended_; }
  u64 observations() const { return observations_; }

 private:
  AdaptiveShardOptions options_;
  u32 recommended_;
  u32 high_streak_ = 0;
  u32 low_streak_ = 0;
  u64 observations_ = 0;
};

struct ShardedOptions {
  /// Parallel proof chains per round (clamped to >= 1).
  u32 shard_count = 1;
  /// Adaptive shard counts: when set, every proven round feeds its
  /// `core.sharded.imbalance` reading into an AdaptiveShardController and
  /// the result is published as `core.sharded.recommended_shards` (also
  /// visible via recommended_shard_count()).
  ///
  /// Determinism note — receipts stay valid: the fan-out a window is proven
  /// with is pinned per window (recorded in RoundResult::shard_count and
  /// bound in-trace by every split journal's shard_count field) and NEVER
  /// changes on a live service. Shard chains link round i+1 onto round i
  /// and flows partition by FlowKeyHasher(key) % K, so resharding mid-chain
  /// would scatter one flow's history across shard states and double-count
  /// it in the merged view. The recommendation instead applies where a
  /// chain starts: a fresh service, the next deployment epoch, or recovery
  /// onto an empty store.
  std::optional<AdaptiveShardOptions> adaptive_shards;
  /// Children per join node when folding a round's shard receipts into one
  /// tree seal; < 2 disables the fold (per-shard receipts are then the
  /// round's proof objects — the pre-tree behavior). Ignored when
  /// shard_count == 1: a single chain has nothing to fold.
  u32 join_fanout = 2;
  /// Windows kept in flight by ProviderPipeline when it drives this
  /// service: stage window i+1 (load + split-prove) and fold window i's
  /// tree while the current window's shards prove. 1 = fully sequential.
  /// The service itself is per-round; the knob lives here so one struct
  /// carries the sharded configuration end to end.
  u32 pipeline_depth = 1;
  /// Full-rebuild vs incremental-delta proving per shard chain.
  AggMode agg_mode = AggMode::auto_select;
  zvm::ProveOptions prove_options = {};
  /// Proof-carrying round sketch per shard chain (DESIGN.md §10); the fold
  /// then sums the shard sketches so the tree seal binds ONE round sketch.
  /// nullopt disables sketches on every shard.
  std::optional<netflow::SketchParams> sketch = netflow::SketchParams{};
};

/// Prover-side sharded pipeline.
class ShardedAggregationService {
 public:
  explicit ShardedAggregationService(const CommitmentBoard& board,
                                     ShardedOptions options = {});

  /// A staged-but-unpublished round: the split proofs for one window's
  /// batches plus the per-shard sub-batches and sub-commitments they
  /// attest. Produced by stage(), consumed by commit_staged() +
  /// prove_shards().
  struct StagedRound {
    std::vector<zvm::Receipt> split_receipts;  ///< one per source batch
    /// Sub-batches per shard: shard_batches[s][b] pairs with
    /// sub_commitments[s][b] (split output order = source batch order).
    std::vector<std::vector<netflow::RLogBatch>> shard_batches;
    std::vector<std::vector<Commitment>> sub_commitments;
    u64 split_cycles = 0;
    double split_ms = 0;
  };

  /// Split-prove every batch and derive the per-shard sub-batches and
  /// sub-commitments WITHOUT publishing them. Reads only construction-time
  /// state (the main board, the shard keys) — thread-safe against
  /// commit_staged/prove_shards/fold_round of OTHER windows, which is what
  /// lets the pipeline stage window i+1 on a pool worker.
  Result<StagedRound> stage(std::span<const netflow::RLogBatch> batches) const;

  /// Publish a staged round's sub-commitments to the shard boards. Serial
  /// (call from one thread, in window order).
  Status commit_staged(const StagedRound& staged);

  /// Prove one round over a committed stage: every shard chain advances one
  /// round, in parallel on the shared pool. Serial across windows (shard
  /// chains link round i+1 onto round i). Does NOT fold; the returned
  /// round's tree_seal is empty until fold_round().
  Result<RoundResult> prove_shards(StagedRound staged);

  /// Fold the round's shard receipts into round.tree_seal (no-op unless
  /// fold_enabled()). Reads only the receipts already in `round`, so the
  /// pipeline runs it on a worker while later windows stage and prove.
  Status fold_round(RoundResult& round) const;

  /// stage + commit_staged + prove_shards + fold_round, for callers that
  /// don't pipeline. Batches are borrowed, matching
  /// AggregationService::aggregate.
  Result<RoundResult> aggregate(std::span<const netflow::RLogBatch> batches);

  /// Convenience for literal batch lists: aggregate({a, b}).
  Result<RoundResult> aggregate(
      std::initializer_list<netflow::RLogBatch> batches) {
    return aggregate(
        std::span<const netflow::RLogBatch>(batches.begin(), batches.size()));
  }

  /// Adopt a recovered chain position: restore every shard chain from the
  /// bundle's per-shard snapshots and receipts. Only valid on a fresh
  /// service; snap.shard_count must match this service's.
  Status restore(const ShardedChainSnapshot& snap,
                 std::vector<zvm::Receipt> shard_receipts);

  /// Roll every shard chain forward over an ALREADY-PROVEN round recovered
  /// from storage: recompute each shard's sub-batches from the window's raw
  /// batches (sub_batch_for is deterministic) and replay them against the
  /// shard's stored receipt — verified, never re-proven (see
  /// AggregationService::replay_round).
  Status replay_round(std::span<const netflow::RLogBatch> batches,
                      std::span<const zvm::Receipt> shard_receipts);

  /// Whether rounds fold into a tree seal (>= 2 shards and a fanout).
  bool fold_enabled() const {
    return shard_count_ >= 2 && options_.join_fanout >= 2;
  }

  u32 shard_count() const { return shard_count_; }
  /// The adaptive controller's current advice; == shard_count() when
  /// adaptive mode is off. Advice only — applied at the next chain start,
  /// never mid-chain (see ShardedOptions::adaptive_shards).
  u32 recommended_shard_count() const {
    return adaptive_.has_value() ? adaptive_->recommended() : shard_count_;
  }
  u64 rounds_completed() const { return rounds_; }
  bool has_rounds() const { return rounds_ > 0; }
  const ShardedOptions& options() const { return options_; }
  const CLogState& shard_state(u32 shard) const {
    return shards_[shard]->state();
  }
  const AggregationService& shard_service(u32 shard) const {
    return *shards_[shard];
  }
  /// Total entries across all shard states.
  u64 total_entries() const;

 private:
  const CommitmentBoard* board_;
  ShardedOptions options_;
  u32 shard_count_;
  /// Per-shard boards holding the split-derived sub-commitments, and the
  /// per-shard aggregation chains on top of them.
  std::vector<std::unique_ptr<CommitmentBoard>> shard_boards_;
  // zkt-lint: shared(one chain per shard; parallel_for workers touch disjoint entries only)
  std::vector<std::unique_ptr<AggregationService>> shards_;
  std::vector<crypto::SchnorrKeyPair> shard_keys_;
  std::optional<AdaptiveShardController> adaptive_;
  u64 rounds_ = 0;
};

/// Verifier-side: checks split receipts against the real board and the
/// round's shard chains against the split outputs — through the round's
/// tree seal when present (one join receipt transitively verifies all K
/// shard chains; the journal's leaf links carry each shard's chain fields
/// in shard order), or per-shard receipts otherwise.
class ShardedAuditor {
 public:
  ShardedAuditor(const CommitmentBoard& board, u32 shard_count);

  Status accept_round(const RoundResult& round);

  u64 rounds_accepted() const { return rounds_; }
  /// Total entries across shard states after the last accepted round.
  u64 total_entries() const;
  /// Whether accepted rounds carry the proof-carrying sketch (meaningful
  /// once a round was accepted).
  bool has_sketch() const { return sketch_present_; }
  /// Shard `s`'s sketch digest after the last accepted round.
  const Digest32& shard_sketch_digest(u32 s) const {
    return shard_sketch_digests_[s];
  }
  /// Whether the last accepted round came with a tree seal binding a merged
  /// round sketch, and that sketch's digest.
  bool round_sketch_known() const { return round_sketch_known_; }
  const Digest32& round_sketch_digest() const { return round_sketch_digest_; }
  const netflow::SketchParams& sketch_params() const { return sketch_params_; }

 private:
  struct ShardChainFields;
  Status verify_splits(
      const RoundResult& round,
      std::map<std::tuple<u32, u64, u32>, ShardRef>& expected);
  Status accept_shard_link(u32 shard, const ShardChainFields& fields,
                           size_t source_batches,
                           const std::map<std::tuple<u32, u64, u32>, ShardRef>&
                               expected);

  const CommitmentBoard* board_;
  u32 shard_count_;
  // zkt-lint: shared(Verifier::verify is const and stateless; concurrent calls race nothing)
  zvm::Verifier verifier_;
  /// Pooled fan-out for the round's independent receipts (split proofs and
  /// per-shard aggregation receipts); decisions match the sequential walk.
  BatchVerifier batch_;
  u64 rounds_ = 0;
  /// Chain state per shard.
  std::vector<Digest32> last_claims_;
  std::vector<Digest32> roots_;
  std::vector<u64> entry_counts_;
  std::vector<bool> genesis_done_;
  /// Sketch continuity per shard (chained like prev_root) plus the merged
  /// round-sketch digest bound by the last tree seal.
  bool sketch_present_ = false;
  netflow::SketchParams sketch_params_;
  std::vector<Digest32> shard_sketch_digests_;
  bool round_sketch_known_ = false;
  Digest32 round_sketch_digest_;
};

}  // namespace zkt::core
