// ProviderPipeline: the provider-side orchestration loop — watch the shared
// log store for newly committed windows, aggregate each through the zkVM in
// window order, and persist the receipts back into the store. This is the
// "aggregation phase … runs independently in the background" of §4,
// packaged as a library component (the zkt-prove tool and the simulator
// integration tests drive it).
//
// Sharded mode (options.sharded.shard_count >= 2) routes every window
// through ShardedAggregationService instead: split proofs, K parallel shard
// chains, and (with a join fanout) ONE tree seal per round. With
// options.sharded.pipeline_depth > 1 the pipeline overlaps windows —
// window i+1 loads and split-proves on a pool worker while window i's
// shards prove, and window i's tree folds while window i+1 proves. Chain
// LINKING stays strictly serial (prove_shards runs in window order on the
// caller's thread), so receipts and auditor decisions are byte-identical
// at every depth; depth 1 is exactly the sequential loop.
//
// Crash safety: every checkpoint interval the pipeline appends a
// core::ChainSnapshot (serialized CLog state + round identifiers) to
// store::kTableChainState — sharded rounds append a ShardedChainSnapshot
// to store::kTableShardState instead — and recover() resumes a restarted
// process from the newest snapshot whose receipt(s) check out, rolling
// forward over receipts proven after it without re-proving (see
// docs/RECOVERY.md). Per window the persist order is snapshot, then
// receipt(s), then (sharded) the tree seal: a crash leaves an orphan
// snapshot or a missing seal — never a receipt ahead of a usable
// snapshot — and missing seals are re-folded from the stored shard
// receipts at recovery.
//
// Failure policy: transient store errors (io_error) are retried with
// exponential backoff per RetryPolicy; integrity failures (tampered or
// uncommitted data, broken chains) are terminal and halt the chain, per §6.
#pragma once

#include <chrono>
#include <deque>

#include "core/chain_snapshot.h"
#include "core/epoch.h"
#include "core/service.h"
#include "core/sharded.h"
#include "store/logstore.h"

namespace zkt::core {

/// Bounded retry-with-backoff for transient storage errors.
struct RetryPolicy {
  /// Total attempts per store operation (1 = no retry).
  u32 max_attempts = 3;
  /// First backoff; doubles per retry up to max_backoff.
  std::chrono::milliseconds base_backoff{10};
  std::chrono::milliseconds max_backoff{1'000};
};

/// Construction-time knobs for ProviderPipeline. Growing this struct is the
/// supported way to add knobs — not new positional constructor parameters.
struct PipelineOptions {
  zvm::ProveOptions prove_options;
  /// Full-rebuild vs incremental-delta proving per round (see AggMode).
  AggMode agg_mode = AggMode::auto_select;
  /// Persist a chain snapshot every N rounds (1 = every round). 0 disables
  /// snapshots: recover() then replays the whole receipt chain from the raw
  /// logs, so only use 0 when the store never prunes.
  u64 checkpoint_every_n_rounds = 1;
  RetryPolicy retry;
  /// After a successful aggregate_pending(), drop raw logs for aggregated
  /// windows (the paper's retention model). Leave off when recover() must
  /// be able to roll forward past the last snapshot.
  bool prune_aggregated = false;
  /// Sharded-proving shape: shard_count >= 2 enables sharded mode,
  /// join_fanout >= 2 folds each round into a tree seal, pipeline_depth > 1
  /// overlaps windows (see the header comment). prove_options/agg_mode in
  /// here are IGNORED — the pipeline copies its own prove_options/agg_mode
  /// in, so one knob configures both modes.
  ShardedOptions sharded;
  /// Proof-carrying round sketch (DESIGN.md §10), applied to whichever mode
  /// runs (single chain, or every shard chain). Copied over
  /// sharded.sketch, like prove_options/agg_mode. nullopt disables it.
  std::optional<netflow::SketchParams> sketch = netflow::SketchParams{};
  /// Epoch-seal ladder (DESIGN.md §11): every N rounds a chain-summary seal
  /// is proven asynchronously and merged into a binary-counter ladder, so a
  /// cold verifier catches up via Auditor::catch_up in O(log T) seal
  /// verifications instead of O(T) replay. 0 disables the ladder. Single-
  /// chain mode only — combining it with sharded mode is a terminal error
  /// (shard chains have no single round chain to seal).
  u64 epoch_every = 0;
};

class ProviderPipeline {
 public:
  ProviderPipeline(store::LogStore& store, const CommitmentBoard& board,
                   PipelineOptions options = {});

  /// What recover() found and did.
  struct RecoveryInfo {
    /// False when the store held no usable chain state (fresh start).
    bool resumed = false;
    /// Rounds restored directly from the adopted snapshot.
    u64 rounds_restored = 0;
    /// Rounds rolled forward from receipts proven after that snapshot.
    u64 rounds_replayed = 0;
    /// Snapshots that were skipped (orphaned by a crash before their
    /// receipt was appended, or unreadable).
    u64 snapshots_skipped = 0;
    /// Sharded rounds whose tree seal was missing from the store (crash
    /// after the shard receipts, before the seal) and was re-folded from
    /// the verified shard receipts during recovery.
    u64 seals_refolded = 0;
    /// Epoch seals adopted from the store after validating against the
    /// recovered receipt chain.
    u64 epoch_seals_adopted = 0;
    /// Ladder levels the store was missing (crash mid-ladder-persist, or
    /// validation failure) that were re-folded from the recovered receipts.
    u64 epoch_levels_refolded = 0;
    /// Last aggregated window after recovery, if any.
    std::optional<u64> last_window;
  };

  /// Resume a previous process's chain from the store: adopt the newest
  /// chain snapshot whose receipt verifies (claim digest AND journal root
  /// against the rebuilt state), then roll forward over receipts proven
  /// after it by replaying their raw batches — no re-proving. Only valid
  /// before the first aggregate_pending(). Integrity violations (snapshot/
  /// receipt mismatch, missing raw logs for a later receipt) are terminal
  /// typed errors; a store with no chain state recovers to a fresh start.
  /// The store must match the pipeline's mode: single-chain rows in a
  /// sharded pipeline (or vice versa) are a terminal error, not a fresh
  /// start.
  Result<RecoveryInfo> recover();

  /// Aggregate every committed window newer than the last one processed,
  /// in ascending window order. Each round persists a chain snapshot (per
  /// options.checkpoint_every_n_rounds), then the round's receipt(s), then
  /// (sharded+fold) its tree seal. Returns the rounds proven in this call
  /// (possibly empty). Stops at — and returns — the first terminal failure
  /// (a tampered window blocks the chain, by design); transient store
  /// errors are retried per options.retry first.
  Result<std::vector<RoundResult>> aggregate_pending();

  /// Windows present in the store's rlogs table that have not been
  /// aggregated yet. Store read failures surface as errors (after
  /// retries) — an unreadable store is not "no pending work".
  Result<std::vector<u64>> pending_windows() const;

  bool sharded() const { return sharded_ != nullptr; }
  bool has_rounds() const {
    return sharded_ ? sharded_->has_rounds() : aggregation_.has_rounds();
  }
  /// The single-chain service (plain mode only).
  const AggregationService& aggregation() const { return aggregation_; }
  /// The sharded service; null in plain mode.
  const ShardedAggregationService* sharded_service() const {
    return sharded_.get();
  }
  const PipelineOptions& options() const { return options_; }

  /// All receipts in the chain, in round order — including rounds recovered
  /// from the store by recover(). Plain mode: the aggregation chain.
  /// Sharded mode: empty (per-shard chains live in the store; the seals
  /// below are the round-level proof objects).
  const std::vector<zvm::Receipt>& receipts() const { return receipts_; }

  /// Tree seals of folded sharded rounds, in window order — including seals
  /// recovered (or re-folded) by recover(). Empty unless sharded mode with
  /// a join fanout.
  const std::vector<zvm::Receipt>& tree_seals() const { return tree_seals_; }

  /// The live epoch-seal ladder, settled (waits for in-flight seal proving
  /// and surfaces its first error). Chain order, tallest first — exactly
  /// what Auditor::catch_up and save_epoch_seals take. Empty vector when
  /// options.epoch_every is 0.
  Result<std::vector<EpochSeal>> epoch_seals();
  /// The ladder builder; null unless options.epoch_every > 0 (plain mode).
  const EpochLadder* epoch_ladder() const { return epoch_.get(); }

  /// Drop raw logs whose windows have been aggregated under proof — the
  /// paper's retention model (§2.2: "raw logs are often discarded after a
  /// period of time"; the commitments and receipts keep the history
  /// verifiable). Returns the number of rows dropped. Call
  /// store.checkpoint() afterwards to reclaim durable space.
  u64 prune_aggregated();

 private:
  /// Run `op` (returning Status) with bounded retry on transient errors.
  Status with_retry(const char* what,
                    const std::function<Status()>& op) const;
  Status persist_round(u64 window, const AggregationRound& round);
  Status persist_sharded_round(u64 window, const RoundResult& round);
  Status persist_seal(u64 window, const RoundResult& round);
  Status load_batches(u64 window,
                      std::vector<netflow::RLogBatch>& batches) const;
  Result<std::vector<RoundResult>> aggregate_pending_plain(
      std::vector<u64> windows);
  Result<std::vector<RoundResult>> aggregate_pending_sharded(
      std::vector<u64> windows);
  Result<RecoveryInfo> recover_plain();
  Result<RecoveryInfo> recover_sharded();
  /// Drain finished ladder seals into kTableEpochSeals (append-only).
  Status persist_epoch_seals();
  /// Rebuild the ladder after recover_plain restored the receipt chain:
  /// adopt every stored seal that validates, re-fold missing levels, then
  /// re-feed the unsealed tail into the ladder buffer. `round_windows` maps
  /// round index -> window id (parallel to receipts_).
  Status recover_epoch_ladder(const std::vector<u64>& round_windows,
                              RecoveryInfo& info);

  store::LogStore* store_;
  PipelineOptions options_;
  AggregationService aggregation_;
  /// Non-null iff options.sharded.shard_count >= 2.
  std::unique_ptr<ShardedAggregationService> sharded_;
  std::vector<zvm::Receipt> receipts_;
  std::vector<zvm::Receipt> tree_seals_;
  /// Non-null iff options.epoch_every > 0 (plain mode).
  std::unique_ptr<EpochLadder> epoch_;
  std::optional<u64> last_window_;
  u64 rounds_since_snapshot_ = 0;
};

}  // namespace zkt::core
