// ProviderPipeline: the provider-side orchestration loop — watch the shared
// log store for newly committed windows, aggregate each through the zkVM in
// window order, and persist the receipts back into the store. This is the
// "aggregation phase … runs independently in the background" of §4,
// packaged as a library component (the zkt-prove tool and the simulator
// integration tests drive it).
#pragma once

#include "core/service.h"
#include "store/logstore.h"

namespace zkt::core {

class ProviderPipeline {
 public:
  ProviderPipeline(store::LogStore& store, const CommitmentBoard& board,
                   zvm::ProveOptions prove_options = {})
      : store_(&store), aggregation_(board, std::move(prove_options)) {}

  /// Aggregate every committed window newer than the last one processed,
  /// in ascending window order. Each round's receipt is appended to the
  /// store's receipts table (k1 = window id). Returns the rounds proven in
  /// this call (possibly empty). Stops at — and returns — the first failure
  /// (a tampered window blocks the chain, by design).
  Result<std::vector<AggregationRound>> aggregate_pending();

  /// Windows present in the store's rlogs table that have not been
  /// aggregated yet.
  std::vector<u64> pending_windows() const;

  bool has_rounds() const { return aggregation_.has_rounds(); }
  const AggregationService& aggregation() const { return aggregation_; }

  /// All receipts proven by this pipeline, in round order.
  const std::vector<zvm::Receipt>& receipts() const { return receipts_; }

  /// Drop raw logs whose windows have been aggregated under proof — the
  /// paper's retention model (§2.2: "raw logs are often discarded after a
  /// period of time"; the commitments and receipts keep the history
  /// verifiable). Returns the number of rows dropped. Call
  /// store.checkpoint() afterwards to reclaim durable space.
  u64 prune_aggregated();

 private:
  store::LogStore* store_;
  AggregationService aggregation_;
  std::vector<zvm::Receipt> receipts_;
  std::optional<u64> last_window_;
};

}  // namespace zkt::core
