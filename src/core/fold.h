// Proof-tree aggregation, host side: fold K per-shard aggregation receipts
// into one join-tree seal (see core/join.h for the guest and its journal),
// running the joins of each tree level in parallel on common::ThreadPool.
//
// Host-only: fold_receipts times itself, publishes core.tree.* metrics and
// fans out over the pool, so this header must stay OUT of the guest
// include closure (join.h holds everything guests reach).
#pragma once

#include <optional>
#include <span>

#include "core/join.h"
#include "zvm/prover.h"
#include "zvm/verifier.h"

namespace zkt::common {
class ThreadPool;
}  // namespace zkt::common

namespace zkt::core {

/// Fold-tree knobs.
struct FoldOptions {
  /// Children per join node, clamped to [2, 64]. Wider fanout means fewer,
  /// larger join proofs (a shallower tree); 2 is the classic binary fold.
  u32 fanout = 2;
  /// Proving options for the joins. seal_kind applies to the ROOT join only
  /// (succinct there yields the one constant-size tree seal); interior
  /// joins always prove composite so their receipts can embed the children
  /// they verified as assumption receipts.
  zvm::ProveOptions prove_options;
  /// Worker pool for the per-level parallel joins; nullptr uses
  /// common::ThreadPool::shared().
  common::ThreadPool* pool = nullptr;
  /// Per-shard round sketches, one per leaf in shard order, when the shard
  /// chains carry the proof-carrying sketch (DESIGN.md §10); empty when they
  /// don't. The fold feeds each child's sketch bytes to its join guest and
  /// mirrors the guests' left-to-right merges host-side, so the root journal
  /// binds the sum of all shard sketches.
  std::span<const netflow::RoundSketch> leaf_sketches;
};

/// What a fold produced.
struct FoldResult {
  zvm::Receipt root;     ///< the tree seal
  JoinJournal journal;   ///< root journal, parsed
  u64 joins = 0;         ///< join proofs generated across all levels
  u64 total_cycles = 0;  ///< guest cycles across those joins
  double wall_ms = 0;
  /// Host-merged round sketch matching journal.sketch_digest (set iff
  /// FoldOptions::leaf_sketches was supplied). This is the state the next
  /// round's shards chain from and the sketch query guests open.
  std::optional<netflow::RoundSketch> sketch;
};

/// Fold `leaves` — aggregation receipts in shard order — into one join
/// receipt, level by level: joins within a level prove in parallel on the
/// pool, a trailing group smaller than fanout still joins, and a single
/// leftover child passes through to the next level unchanged. Requires at
/// least 2 leaves (a 1-shard round has nothing to fold). Publishes
/// core.tree.* metrics (see docs/OBSERVABILITY.md).
Result<FoldResult> fold_receipts(std::span<const zvm::Receipt> leaves,
                                 const FoldOptions& options = {});

/// Verify `receipt` as a join receipt: the claim must name the join image
/// and the seal must verify (composite seals recursively verify the
/// embedded subtree down to the shard receipts; succinct seals are the
/// constant-cost client path).
Status verify_join_receipt(zvm::Verifier& verifier,
                           const zvm::Receipt& receipt);

/// As above, with batch-verification context (see zvm::VerifyContext).
Status verify_join_receipt(zvm::Verifier& verifier,
                           const zvm::Receipt& receipt,
                           const zvm::VerifyContext& context);

}  // namespace zkt::core
