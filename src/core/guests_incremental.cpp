// The incremental (delta) aggregation guest.
//
// Where the full guest re-reads all N previous CLog entries and rebuilds the
// whole Merkle tree twice, this guest's input is only the k entries the
// round touches, authenticated against prev_root by ONE deduplicated
// multiproof, so traced hashing is O(k log N) — round cost follows traffic,
// not history.
//
// Soundness rests on the CLog's key-sorted leaf order (an invariant every
// aggregation guest asserts or preserves, anchored at the full-guest
// genesis):
//
//   * Merge targets are authenticated by the multiproof, so counters can
//     only be folded into genuine previous state.
//   * A "new" flow key K is proven absent by ADJACENCY: the opened set must
//     contain the two prev-state neighbors at K's insertion point, with
//     key[p-1] < K < key[p] and old indices exactly p-1 and p. In a sorted
//     state no unopened entry can hold K between adjacent indices, so
//     duplicate insertion is impossible. Inserts past the last key instead
//     require the final entry (index N-1) opened; inserts before the first
//     key need only entry 0 opened (there is no left neighbor).
//   * Inserting at position p shifts every entry in [p, N) one slot right,
//     so the guest demands that whole suffix opened (the "cascade") — the
//     host falls back to the full guest when that gets too wide.
//
// new_root is derived by a DUAL multiproof walk: the opened slot set is
// identical in the old and new trees (touched indices ∪ the empty slots
// [N, N+m) that inserts fill), so one bottom-up traversal carries (old,
// new) digest pairs through the SAME shared siblings, simultaneously
// checking the old lane against prev_root and producing the new root. When
// N+m exceeds the old capacity the guest first "grows" prev_root virtually:
// each capacity doubling maps r -> H(r, empty_subtree), matching
// crypto::MerkleTree's padding exactly.
#include <algorithm>
#include <bit>
#include <vector>

#include "core/guests.h"
#include "core/sketch_fold.h"
#include "crypto/merkle.h"

namespace zkt::core {

namespace {

using netflow::FlowKey;
using netflow::FlowRecord;
using zvm::Env;

/// One previous-state entry opened by the multiproof.
struct OpenedItem {
  FlowRecord entry;
  u64 old_index = 0;
  Digest32 old_leaf;
  bool merged = false;
};

/// A flow first seen this round (kept key-sorted).
struct FreshItem {
  FlowRecord entry;
};

/// One tree slot of the dual walk: the slot's occupant before and after the
/// round. The slot index is the same in both trees.
struct Slot {
  u64 index = 0;
  Digest32 old_digest;
  Digest32 new_digest;
  bool created = false;
  bool record_update = false;  ///< belongs in journal.updates
};

}  // namespace

namespace detail {

Status aggregate_incremental_guest(Env& env) {
  AggJournal journal;
  journal.kind = RoundKind::incremental;
  journal.has_prev = true;

  // ---- Head: previous claim, kind, root, size.
  auto prev_claim = env.read_digest();
  if (!prev_claim.ok()) return prev_claim.error();
  journal.prev_claim_digest = prev_claim.value();

  auto prev_kind = env.read_u8();
  if (!prev_kind.ok()) return prev_kind.error();
  if (prev_kind.value() > 1) {
    return Error{Errc::guest_abort, "bad previous aggregation kind"};
  }

  auto prev_root = env.read_digest();
  if (!prev_root.ok()) return prev_root.error();
  journal.prev_root = prev_root.value();

  // A delta round always extends an existing chain (the claim digest binds
  // the image, so lying about the kind fails the assumption check).
  ZKT_TRY(env.verify_assumption(
      aggregation_image(static_cast<RoundKind>(prev_kind.value())),
      journal.prev_claim_digest));

  // ---- Authenticate the proof-carrying sketch state (when enabled). A
  // delta round never sits at genesis, so no emptiness check here.
  auto sketch_fold = detail::read_sketch_state(env, /*genesis=*/false);
  if (!sketch_fold.ok()) return sketch_fold.error();

  auto prev_count = env.read_u64();
  if (!prev_count.ok()) return prev_count.error();
  journal.prev_entry_count = prev_count.value();
  const u64 n = journal.prev_entry_count;
  ZKT_TRY(env.assert_true(n >= 1,
                          "incremental rounds require existing state"));

  // ---- Opened entries + the multiproof that authenticates them.
  env.begin_region("verify_prev_state");
  auto n_opened_r = env.read_u64();
  if (!n_opened_r.ok()) return n_opened_r.error();
  const u64 n_opened = n_opened_r.value();
  ZKT_TRY(env.assert_true(n_opened >= 1 && n_opened <= n,
                          "opened entry count out of range"));

  std::vector<OpenedItem> opened;
  opened.reserve(n_opened);
  for (u64 i = 0; i < n_opened; ++i) {
    auto idx = env.read_u64();
    if (!idx.ok()) return idx.error();
    auto bytes = env.read_blob();
    if (!bytes.ok()) return bytes.error();
    ZKT_TRY(env.assert_true(idx.value() < n, "opened index out of range"));
    ZKT_TRY(env.assert_true(
        opened.empty() || opened.back().old_index < idx.value(),
        "opened indices must be strictly ascending"));
    OpenedItem item;
    item.old_index = idx.value();
    item.old_leaf = env.hash_leaf(bytes.value());
    Reader er(bytes.value());
    auto entry = FlowRecord::deserialize(er);
    if (!entry.ok()) return entry.error();
    if (!er.done()) {
      return Error{Errc::guest_abort, "trailing bytes in CLog entry"};
    }
    // Key order must match index order — the sorted-state invariant
    // restricted to the opened subset (the multiproof pins the leaves, so a
    // host cannot fake this for genuine state).
    ZKT_TRY(env.assert_true(
        opened.empty() || opened.back().entry.key < entry.value().key,
        "opened entries must be key-sorted"));
    item.entry = std::move(entry.value());
    opened.push_back(std::move(item));
  }

  auto proof_bytes = env.read_blob();
  if (!proof_bytes.ok()) return proof_bytes.error();
  Reader pr(proof_bytes.value());
  auto proof_r = crypto::MerkleMultiProof::deserialize(pr);
  if (!proof_r.ok()) return proof_r.error();
  if (!pr.done()) {
    return Error{Errc::guest_abort, "trailing bytes in multiproof"};
  }
  const crypto::MerkleMultiProof& proof = proof_r.value();
  ZKT_TRY(assert_eq_u64(env, proof.leaf_count, n,
                        "multiproof leaf count vs previous state"));

  // ---- Verify RLog commitments and fold records into the delta set.
  auto n_batches = env.read_u64();
  if (!n_batches.ok()) return n_batches.error();
  std::vector<FreshItem> fresh;  // key-sorted

  for (u64 b = 0; b < n_batches.value(); ++b) {
    auto batch = read_verified_batch(env);
    if (!batch.ok()) return batch.error();
    journal.commitments.push_back(batch.value().first);

    env.begin_region("aggregate_records");
    for (const auto& record : batch.value().second.records) {
      auto it = std::lower_bound(
          opened.begin(), opened.end(), record.key,
          [](const OpenedItem& o, const FlowKey& k) {
            return o.entry.key < k;
          });
      if (it != opened.end() && it->entry.key == record.key) {
        merge_traced(env, it->entry, record);
        it->merged = true;
      } else {
        auto fit = std::lower_bound(
            fresh.begin(), fresh.end(), record.key,
            [](const FreshItem& f, const FlowKey& k) {
              return f.entry.key < k;
            });
        if (fit != fresh.end() && fit->entry.key == record.key) {
          merge_traced(env, fit->entry, record);
        } else {
          fresh.insert(fit, FreshItem{record});
        }
      }
      if (sketch_fold.value().enabled) {
        // Same fold, same order as the full guest: host mirrors must replay
        // records in batch order for the Space-Saving state to match.
        env.begin_region("sketch_fold");
        sketch_fold_record_traced(env, sketch_fold.value().sketch, record.key,
                                  record.packets);
        env.begin_region("aggregate_records");
      }
    }
  }

  // ---- Delta layout: insertion positions, adjacency non-membership,
  // cascade contiguity, and the final slot assignment.
  env.begin_region("delta_layout");
  const u64 m = fresh.size();
  const u64 new_count = n + m;
  journal.new_entry_count = new_count;

  std::vector<u64> pos(m);  // prev-state insertion position per fresh key
  for (u64 r = 0; r < m; ++r) {
    const FlowKey& key = fresh[r].entry.key;
    const auto it = std::lower_bound(
        opened.begin(), opened.end(), key,
        [](const OpenedItem& o, const FlowKey& k) { return o.entry.key < k; });
    const size_t j = static_cast<size_t>(it - opened.begin());
    if (j == opened.size()) {
      // Past every opened key: sound only if the very last state entry is
      // opened, which then proves K exceeds every existing key.
      ZKT_TRY(env.assert_true(opened.back().old_index == n - 1,
                              "frontier insert requires the last entry opened"));
      ZKT_TRY(env.assert_true(opened.back().entry.key < key,
                              "frontier insert must exceed the maximum key"));
      pos[r] = n;
    } else {
      ZKT_TRY(env.assert_true(key < opened[j].entry.key,
                              "new flow key collides with an existing entry"));
      const u64 p = opened[j].old_index;
      if (p > 0) {
        // Adjacency non-membership: the immediate left neighbor (index
        // p-1) must also be opened and precede K; in a key-sorted state no
        // entry can hold K between adjacent indices. p == 0 needs no left
        // neighbor — K precedes the whole state.
        ZKT_TRY(env.assert_true(j >= 1 && opened[j - 1].old_index == p - 1,
                                "non-membership needs adjacent neighbors opened"));
        ZKT_TRY(env.assert_true(opened[j - 1].entry.key < key,
                                "left neighbor must precede the new key"));
      }
      pos[r] = p;
    }
  }

  // Every insert at position p shifts [p, n) right, so the whole suffix
  // from the first insertion point must be opened — its digests are needed
  // at their shifted slots.
  if (m > 0 && pos[0] < n) {
    const auto it = std::lower_bound(
        opened.begin(), opened.end(), pos[0],
        [](const OpenedItem& o, u64 p) { return o.old_index < p; });
    const size_t s = static_cast<size_t>(it - opened.begin());
    ZKT_TRY(env.assert_true(s < opened.size() && opened[s].old_index == pos[0],
                            "insertion cascade start must be opened"));
    for (size_t t = s + 1; t < opened.size(); ++t) {
      ZKT_TRY(env.assert_true(
          opened[t].old_index == opened[t - 1].old_index + 1,
          "insertion cascade must be contiguous"));
    }
    ZKT_TRY(env.assert_true(opened.back().old_index == n - 1,
                            "insertion cascade must extend to the last entry"));
  }

  // The tree slots the round touches: opened old indices ∪ the empty slots
  // [n, n+m). This set is identical in the old and new trees, which is what
  // lets one walk compute both roots.
  std::vector<Slot> slots;
  slots.reserve(n_opened + m);
  for (const auto& o : opened) {
    Slot s;
    s.index = o.old_index;
    s.old_digest = o.old_leaf;
    slots.push_back(s);
  }
  for (u64 r = 0; r < m; ++r) {
    Slot s;
    s.index = n + r;
    s.old_digest = crypto::MerkleTree::empty_leaf();
    slots.push_back(s);
  }

  // Assign final occupants by zip-merging opened entries (final index =
  // old_index + #inserts at or before it) and fresh entries (final index =
  // pos[r] + r) in final-index order; the sequence must cover exactly the
  // slot set, and keys must ascend across every adjacent slot pair so the
  // key-sorted invariant survives the round.
  env.begin_region("delta_root_update");
  {
    size_t oi = 0;
    size_t fi = 0;
    const FlowKey* last_key = nullptr;
    u64 last_final = 0;
    for (size_t si = 0; si < slots.size(); ++si) {
      const u64 f_old =
          oi < opened.size()
              ? opened[oi].old_index +
                    static_cast<u64>(std::upper_bound(pos.begin(), pos.end(),
                                                      opened[oi].old_index) -
                                     pos.begin())
              : ~0ULL;
      const u64 f_new = fi < m ? pos[fi] + fi : ~0ULL;
      const bool take_fresh = f_new < f_old;
      const u64 final_index = take_fresh ? f_new : f_old;
      const FlowRecord& rec =
          take_fresh ? fresh[fi].entry : opened[oi].entry;
      ZKT_TRY(assert_eq_u64(env, final_index, slots[si].index,
                            "delta layout must cover exactly the opened slots"));
      if (last_key != nullptr && final_index == last_final + 1) {
        ZKT_TRY(env.assert_true(*last_key < rec.key,
                                "delta layout breaks key order"));
      }
      if (take_fresh) {
        slots[si].new_digest = env.hash_leaf(rec.canonical_bytes());
        slots[si].created = true;
        slots[si].record_update = true;
        ++fi;
      } else {
        const OpenedItem& src = opened[oi];
        slots[si].new_digest = src.merged
                                   ? env.hash_leaf(rec.canonical_bytes())
                                   : src.old_leaf;
        slots[si].record_update =
            src.merged || final_index != src.old_index;
        ++oi;
      }
      last_key = &rec.key;
      last_final = final_index;
    }
  }

  // The multiproof must open exactly the slot set.
  ZKT_TRY(assert_eq_u64(env, proof.indices.size(), slots.size(),
                        "multiproof indices vs touched slots"));
  for (size_t i = 0; i < slots.size(); ++i) {
    ZKT_TRY(assert_eq_u64(env, proof.indices[i], slots[i].index,
                          "multiproof index vs touched slot"));
  }

  // ---- Virtual capacity growth: when inserts overflow the old padded
  // width, the old root is lifted into the grown tree by hashing with
  // empty-subtree digests — exactly MerkleTree's padding rule.
  u64 capacity = std::bit_ceil(std::max<u64>(n, 1));
  u32 depth = static_cast<u32>(std::countr_zero(capacity));
  Digest32 eff_root = journal.prev_root;
  const u64 target = std::bit_ceil(std::max<u64>(new_count, 1));
  if (capacity < target) {
    Digest32 empty_sub = crypto::MerkleTree::empty_leaf();
    for (u32 d = 0; d < depth; ++d) {
      empty_sub = env.hash_node(empty_sub, empty_sub);
    }
    while (capacity < target) {
      eff_root = env.hash_node(eff_root, empty_sub);
      empty_sub = env.hash_node(empty_sub, empty_sub);
      capacity <<= 1;
      ++depth;
    }
  }

  // ---- Dual multiproof walk: one traversal, two digest lanes sharing the
  // proof's siblings. The old lane must land on (grown) prev_root; the new
  // lane is the round's new root.
  struct Node {
    u64 index;
    Digest32 old_d;
    Digest32 new_d;
  };
  std::vector<Node> known;
  known.reserve(slots.size());
  for (const auto& s : slots) {
    known.push_back(Node{s.index, s.old_digest, s.new_digest});
  }
  size_t next_sib = 0;
  for (u32 level = 0; level < depth; ++level) {
    std::vector<Node> parents;
    parents.reserve((known.size() + 1) / 2);
    for (size_t i = 0; i < known.size(); ++i) {
      const u64 idx = known[i].index;
      const u64 sib = idx ^ 1;
      if (i + 1 < known.size() && known[i + 1].index == sib) {
        parents.push_back(Node{
            idx >> 1, env.hash_node(known[i].old_d, known[i + 1].old_d),
            env.hash_node(known[i].new_d, known[i + 1].new_d)});
        ++i;
        continue;
      }
      if (next_sib >= proof.siblings.size()) {
        return Error{Errc::guest_abort, "multiproof ran out of siblings"};
      }
      const Digest32& sibling = proof.siblings[next_sib++];
      if (idx & 1) {
        parents.push_back(Node{idx >> 1,
                               env.hash_node(sibling, known[i].old_d),
                               env.hash_node(sibling, known[i].new_d)});
      } else {
        parents.push_back(Node{idx >> 1,
                               env.hash_node(known[i].old_d, sibling),
                               env.hash_node(known[i].new_d, sibling)});
      }
    }
    known = std::move(parents);
  }
  if (next_sib != proof.siblings.size()) {
    return Error{Errc::guest_abort, "unused multiproof siblings"};
  }
  if (known.size() != 1) {
    return Error{Errc::guest_abort, "multiproof did not converge"};
  }
  ZKT_TRY(env.assert_eq(known[0].old_d, eff_root,
                        "opened entries vs previous root"));
  journal.new_root = known[0].new_d;
  env.end_region();

  std::vector<UpdateRef> updates;
  for (const auto& s : slots) {
    if (s.record_update) {
      updates.push_back(UpdateRef{s.index, s.created, s.new_digest});
    }
  }
  journal.update_count = updates.size();
  journal.updates_digest = detail::hash_update_refs(env, updates);
  journal.touched_entries = n_opened;
  journal.multiproof_siblings = proof.siblings.size();

  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in delta input"};
  }

  detail::publish_sketch(env, sketch_fold.value(), journal);

  Writer jw;
  journal.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace detail

}  // namespace zkt::core
