#include "core/commitment.h"

#include "crypto/sha256.h"

namespace zkt::core {

Digest32 Commitment::signing_digest() const {
  Writer w;
  w.str("zkt.commitment.v1");
  w.u32v(router_id);
  w.u64v(window_id);
  w.fixed(rlog_hash.bytes);
  w.u64v(record_count);
  w.u64v(published_at_ms);
  w.fixed(router_pubkey);
  return crypto::sha256(w.bytes());
}

void Commitment::serialize(Writer& w) const {
  w.u32v(router_id);
  w.u64v(window_id);
  w.fixed(rlog_hash.bytes);
  w.u64v(record_count);
  w.u64v(published_at_ms);
  w.fixed(router_pubkey);
  w.fixed(signature.bytes);
}

Result<Commitment> Commitment::deserialize(Reader& r) {
  Commitment c;
  auto rid = r.u32v();
  if (!rid.ok()) return rid.error();
  c.router_id = rid.value();
  auto wid = r.u64v();
  if (!wid.ok()) return wid.error();
  c.window_id = wid.value();
  ZKT_TRY(r.fixed(c.rlog_hash.bytes));
  auto count = r.u64v();
  if (!count.ok()) return count.error();
  c.record_count = count.value();
  auto ts = r.u64v();
  if (!ts.ok()) return ts.error();
  c.published_at_ms = ts.value();
  ZKT_TRY(r.fixed(c.router_pubkey));
  ZKT_TRY(r.fixed(c.signature.bytes));
  return c;
}

Bytes Commitment::to_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

Result<Commitment> make_commitment(const netflow::RLogBatch& batch,
                                   const crypto::SchnorrKeyPair& key,
                                   u64 published_at_ms) {
  return make_commitment_raw(batch.router_id, batch.window_id, batch.hash(),
                             batch.records.size(), key, published_at_ms);
}

Result<Commitment> make_commitment_raw(u32 router_id, u64 window_id,
                                       const Digest32& payload_hash,
                                       u64 record_count,
                                       const crypto::SchnorrKeyPair& key,
                                       u64 published_at_ms) {
  Commitment c;
  c.router_id = router_id;
  c.window_id = window_id;
  c.rlog_hash = payload_hash;
  c.record_count = record_count;
  c.published_at_ms = published_at_ms;
  c.router_pubkey = key.public_key;
  auto sig = crypto::schnorr_sign(key, c.signing_digest(), {});
  if (!sig.ok()) return sig.error();
  c.signature = sig.value();
  return c;
}

Status verify_commitment(const Commitment& c) {
  return crypto::schnorr_verify(BytesView(c.router_pubkey.data(), 32),
                                c.signing_digest(), c.signature);
}

Status CommitmentBoard::publish(const Commitment& c) {
  ZKT_TRY(verify_commitment(c));
  std::lock_guard<std::mutex> lock(mutex_);
  auto pinned = pinned_keys_.find(c.router_id);
  if (pinned == pinned_keys_.end()) {
    pinned_keys_[c.router_id] = c.router_pubkey;
  } else if (pinned->second != c.router_pubkey) {
    return Error{Errc::signature_invalid,
                 "commitment signed by unregistered key for router " +
                     std::to_string(c.router_id)};
  }
  const auto key = std::make_pair(c.router_id, c.window_id);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.rlog_hash != c.rlog_hash) {
      return Error{Errc::duplicate,
                   "equivocating commitment for router " +
                       std::to_string(c.router_id) + " window " +
                       std::to_string(c.window_id)};
    }
    return {};  // idempotent republish
  }
  entries_.emplace(key, c);
  return {};
}

std::optional<Commitment> CommitmentBoard::get(u32 router_id,
                                               u64 window_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find({router_id, window_id});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<Commitment> CommitmentBoard::window(u64 window_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Commitment> out;
  for (const auto& [key, c] : entries_) {
    if (key.second == window_id) out.push_back(c);
  }
  return out;
}

std::vector<Commitment> CommitmentBoard::all() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Commitment> out;
  out.reserve(entries_.size());
  for (const auto& [key, c] : entries_) out.push_back(c);
  return out;
}

size_t CommitmentBoard::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void CommitmentBoard::register_router(u32 router_id,
                                      const std::array<u8, 32>& pubkey) {
  std::lock_guard<std::mutex> lock(mutex_);
  pinned_keys_[router_id] = pubkey;
}

}  // namespace zkt::core
