// Query model: filtered aggregates over the CLog, the verifiable analogue of
//
//   SELECT SUM(hop_count) FROM clogs
//   WHERE src_ip = "1.1.1.1" AND dst_ip = "9.9.9.9";
//
// A query is a predicate in conjunctive normal form (AND of OR-clauses over
// field comparisons) plus an aggregate (COUNT / SUM / MIN / MAX over a
// numeric field). AVG is computed client-side from SUM and COUNT of the same
// run. The query guest evaluates the predicate over *every* CLog entry —
// completeness is part of what the proof shows — and the query itself is
// committed to the journal, so the verifier knows exactly what was asked.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"
#include "netflow/record.h"

namespace zkt::core {

/// Queryable fields of a CLog entry. Values are u64-encoded.
enum class QField : u8 {
  src_ip = 1,
  dst_ip,
  src_port,
  dst_port,
  protocol,
  packets,
  bytes,
  lost_packets,
  hop_sum,
  rtt_sum_us,
  rtt_count,
  rtt_max_us,
  jitter_sum_us,
  jitter_count,
  first_ms,
  last_ms,
  duration_ms,   ///< last_ms - first_ms
  rtt_avg_us,    ///< rtt_sum / rtt_count (integer division, 0 if no samples)
  jitter_avg_us,
};

const char* qfield_name(QField f);

/// Extract a field value from an entry (shared by guest and reference
/// evaluator so both agree exactly).
u64 extract_field(const netflow::FlowRecord& entry, QField field);

enum class CmpOp : u8 { eq = 1, ne, lt, le, gt, ge };

struct Condition {
  QField field = QField::packets;
  CmpOp op = CmpOp::eq;
  u64 value = 0;
};

enum class AggKind : u8 { count = 1, sum, min, max };

struct Query {
  /// CNF: outer vector is ANDed; each inner vector is an ORed clause.
  std::vector<std::vector<Condition>> where;
  AggKind agg = AggKind::count;
  QField agg_field = QField::packets;  ///< ignored for count

  void serialize(Writer& w) const;
  static Result<Query> deserialize(Reader& r);
  Bytes to_bytes() const;
  crypto::Digest32 digest() const;
  std::string to_string() const;

  // -- Fluent builders -----------------------------------------------------
  static Query count() {
    Query q;
    q.agg = AggKind::count;
    return q;
  }
  static Query sum(QField field) {
    Query q;
    q.agg = AggKind::sum;
    q.agg_field = field;
    return q;
  }
  static Query min(QField field) {
    Query q;
    q.agg = AggKind::min;
    q.agg_field = field;
    return q;
  }
  static Query max(QField field) {
    Query q;
    q.agg = AggKind::max;
    q.agg_field = field;
    return q;
  }
  /// AND a single condition.
  Query& and_where(QField field, CmpOp op, u64 value) {
    where.push_back({Condition{field, op, value}});
    return *this;
  }
  /// AND a clause of ORed conditions.
  Query& and_any(std::vector<Condition> clause) {
    where.push_back(std::move(clause));
    return *this;
  }
};

/// Aggregate accumulator shared by the guest and the reference evaluator.
struct QueryResult {
  u64 matched = 0;   ///< entries matching the predicate
  u64 scanned = 0;   ///< total entries scanned (completeness witness)
  u64 sum = 0;
  u64 min = ~0ULL;   ///< meaningful only if matched > 0
  u64 max = 0;

  /// The headline value for the query's aggregate kind.
  u64 value(AggKind kind) const;

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

/// Plain (non-proving) reference evaluator; the proof-generating guest must
/// produce exactly this result. Used by tests and by operators previewing
/// queries before paying for proof generation.
QueryResult evaluate_query(const Query& q,
                           std::span<const netflow::FlowRecord> entries);

/// Predicate-only evaluation of one entry.
bool matches(const Query& q, const netflow::FlowRecord& entry);

}  // namespace zkt::core
