// The two zkVM guest programs of the paper's system, plus the host-side
// input builders and journal schemas they share with verifiers.
//
//   aggregate guest — Algorithm 1: verify the previous round's proof
//       (assumption), verify every RLog hash against its published
//       commitment, verify the previous CLog state against the previous
//       Merkle root, merge the new records, rebuild the Merkle tree, and
//       publish (prev_root -> new_root, commitments used, entry updates) in
//       the journal.
//
//   query guest — bind to an aggregation receipt's claim, re-authenticate
//       the full CLog state against that round's root, evaluate the query
//       predicate over EVERY entry (completeness), aggregate with traced
//       arithmetic, and publish (claim, root, query, result) in the journal.
//
// Journal layouts are canonical Writer/Reader structs so host, guest and
// clients cannot disagree about framing.
#pragma once

#include "core/clog.h"
#include "core/query.h"
#include "zvm/env.h"
#include "zvm/image.h"

namespace zkt::core {

struct GuestImages {
  zvm::ImageID aggregate;
  zvm::ImageID query;            ///< complete-scan query (proves completeness)
  zvm::ImageID query_selective;  ///< paper-style selective query (§4.2)
};

/// Registers both guests (idempotent) and returns their image IDs.
const GuestImages& guest_images();

// ---------------------------------------------------------------------------
// Aggregation

/// Reference to one committed RLog batch consumed by a round.
struct CommitmentRef {
  u32 router_id = 0;
  u64 window_id = 0;
  Digest32 rlog_hash;
  u64 record_count = 0;

  friend bool operator==(const CommitmentRef&, const CommitmentRef&) = default;
};

/// One CLog entry touched by a round (public part: index + new leaf digest).
struct UpdateRef {
  u64 index = 0;
  bool created = false;
  Digest32 new_leaf;

  friend bool operator==(const UpdateRef&, const UpdateRef&) = default;
};

/// Public journal of an aggregation round.
struct AggJournal {
  bool has_prev = false;
  Digest32 prev_claim_digest;  ///< zero when has_prev is false
  Digest32 prev_root;
  Digest32 new_root;
  u64 prev_entry_count = 0;
  u64 new_entry_count = 0;
  std::vector<CommitmentRef> commitments;
  std::vector<UpdateRef> updates;

  void write(Writer& w) const;
  static Result<AggJournal> parse(BytesView journal);
};

/// Host-side input to the aggregation guest.
struct AggregateInput {
  bool has_prev = false;
  Digest32 prev_claim_digest;
  Digest32 prev_root;  ///< empty-tree root when has_prev is false
  std::vector<Bytes> prev_entries;  ///< canonical CLog entry bytes, in order
  /// (commitment metadata, serialized RLogBatch bytes), in aggregation order.
  std::vector<std::pair<CommitmentRef, Bytes>> batches;

  Bytes to_bytes() const;
};

// ---------------------------------------------------------------------------
// Query

/// How a query proof covered the CLog state.
enum class QueryMode : u8 {
  /// Every entry was scanned inside the guest; the result is complete (no
  /// matching entry can have been omitted). Costs O(state size).
  complete = 0,
  /// Only prover-selected entries were opened with Merkle inclusion proofs,
  /// as §4.2 of the paper describes. Sound for what it proves ("these
  /// committed entries aggregate to X") but does NOT prove that no other
  /// entry matches — cheaper, O(matches · log n).
  selective = 1,
};

/// Public journal of a query proof.
struct QueryJournal {
  QueryMode mode = QueryMode::complete;
  Digest32 agg_claim_digest;  ///< aggregation receipt this query ran against
  Digest32 agg_root;
  u64 entry_count = 0;
  Query query;
  QueryResult result;

  void write(Writer& w) const;
  static Result<QueryJournal> parse(BytesView journal);
};

/// Host-side input to the complete-scan query guest.
struct QueryInput {
  zvm::Claim agg_claim;      ///< claim of the aggregation receipt
  Bytes agg_journal;         ///< that receipt's journal bytes
  std::vector<Bytes> entries;  ///< full CLog state, canonical bytes in order
  Query query;

  Bytes to_bytes() const;
};

/// Host-side input to the selective query guest: only the matching entries,
/// authenticated together by ONE Merkle multiproof against the aggregation
/// root (shared path prefixes deduplicated — far cheaper than per-entry
/// proofs when matches cluster or are numerous).
struct SelectiveQueryInput {
  zvm::Claim agg_claim;
  Bytes agg_journal;
  struct OpenedEntry {
    u64 index = 0;
    Bytes entry;  ///< canonical CLog entry bytes
  };
  /// Must be strictly ascending by index.
  std::vector<OpenedEntry> opened;
  /// Batch inclusion proof for exactly the opened indices (ignored when
  /// `opened` is empty).
  crypto::MerkleMultiProof proof;
  Query query;

  Bytes to_bytes() const;
};

/// Traced Merkle-root computation over leaf digests (pads to a power of two
/// with the empty leaf, like crypto::MerkleTree). Exposed for tests.
Digest32 merkle_root_traced(zvm::Env& env, std::vector<Digest32> leaves);

namespace detail {
/// Shared head of every query-flavoured guest: read the aggregation
/// receipt's claim + journal from the input stream, recompute the claim
/// digest with traced hashing, require a verified receipt for it, and
/// authenticate the journal. Returns the claim digest and parsed journal.
struct AggBinding {
  Digest32 claim_digest;
  AggJournal journal;
};
Result<AggBinding> bind_aggregation(zvm::Env& env);

/// Traced condition evaluation (0/1) and field extraction used by the query
/// guests.
u64 eval_condition_traced(zvm::Env& env, const Condition& c,
                          const netflow::FlowRecord& e);
u64 extract_field_traced(zvm::Env& env, const netflow::FlowRecord& e,
                         QField field);
}  // namespace detail

}  // namespace zkt::core
