// The zkVM guest programs of the paper's system, plus the host-side
// input builders and journal schemas they share with verifiers.
//
//   aggregate guest — Algorithm 1: verify the previous round's proof
//       (assumption), verify every RLog hash against its published
//       commitment, verify the previous CLog state against the previous
//       Merkle root, merge the new records, rebuild the Merkle tree, and
//       publish (prev_root -> new_root, commitments used, entry updates) in
//       the journal. Cost: O(N) traced hashes per round.
//
//   aggregate_incremental guest — the delta variant: its input is only the
//       k CLog entries a round touches plus one deduplicated Merkle
//       multiproof authenticating them against prev_root. It verifies the
//       multiproof, merges records, and recomputes only the touched
//       root-paths (reusing the proof's untouched sibling digests) to
//       derive new_root — O(k log N) traced hashes. New flows insert at
//       their key-sorted position, proven fresh by an adjacency
//       (non-membership) check against the opened neighbors. Chains
//       interchangeably with the full guest (see RoundKind).
//
//   query guest — bind to an aggregation receipt's claim, re-authenticate
//       the full CLog state against that round's root, evaluate the query
//       predicate over EVERY entry (completeness), aggregate with traced
//       arithmetic, and publish (claim, root, query, result) in the journal.
//
// Journal layouts are canonical Writer/Reader structs so host, guest and
// clients cannot disagree about framing.
#pragma once

#include "core/clog.h"
#include "core/query.h"
#include "netflow/sketch.h"
#include "zvm/env.h"
#include "zvm/image.h"

namespace zkt::core {

struct GuestImages {
  zvm::ImageID aggregate;              ///< full-rebuild round (Algorithm 1)
  zvm::ImageID aggregate_incremental;  ///< delta round (multiproof-based)
  zvm::ImageID query;            ///< complete-scan query (proves completeness)
  zvm::ImageID query_selective;  ///< paper-style selective query (§4.2)
};

/// Registers all guests (idempotent) and returns their image IDs.
const GuestImages& guest_images();

/// Which aggregation guest produced a round.
enum class RoundKind : u8 {
  full = 0,         ///< full-state rebuild (zkt.guest.aggregate)
  incremental = 1,  ///< delta round (zkt.guest.aggregate_incremental)
};

/// True iff `image` is one of the two aggregation guest images. Rounds of
/// either kind chain interchangeably; verifiers accept both.
bool is_aggregation_image(const zvm::ImageID& image);

/// The image that corresponds to an RoundKind.
const zvm::ImageID& aggregation_image(RoundKind kind);

// ---------------------------------------------------------------------------
// Aggregation

/// What a serialized CommitmentRef commits to. RLog-batch references and
/// sketch references share the struct but live in separate commitment
/// spaces; the serialized form carries this tag so one can never be parsed
/// as the other (a sketch hash is not an RLog hash).
enum class CommitmentKind : u8 {
  rlog = 0,    ///< hash of a router's canonical RLogBatch bytes
  sketch = 1,  ///< hash of committed sketch bytes
};

/// Reference to one committed batch (or sketch) consumed by a round. The
/// `kind` field defaults to rlog and sits last so positional initializers
/// predating the tag keep working.
struct CommitmentRef {
  u32 router_id = 0;
  u64 window_id = 0;
  Digest32 rlog_hash;  ///< batch hash (kind=rlog) or sketch hash (kind=sketch)
  u64 record_count = 0;
  CommitmentKind kind = CommitmentKind::rlog;

  friend bool operator==(const CommitmentRef&, const CommitmentRef&) = default;
};

/// Canonical serialized form of a CommitmentRef, kind tag included. Every
/// journal that embeds commitment references uses these (AGG1/AGGI,
/// SPLIT1, JOIN1, CHAIN1 expect rlog; SKQ1 expects sketch); parse rejects
/// a reference whose tag differs from `expected`, separating the two
/// commitment spaces at the wire level.
void write_commitment_ref(Writer& w, const CommitmentRef& ref);
Result<CommitmentRef> parse_commitment_ref(Reader& r, CommitmentKind expected);

/// One CLog entry touched by a round (public part: index + new leaf digest).
struct UpdateRef {
  u64 index = 0;
  bool created = false;
  Digest32 new_leaf;

  friend bool operator==(const UpdateRef&, const UpdateRef&) = default;
};

/// Public journal of an aggregation round. Both aggregation guests commit
/// this schema ("AGG1" magic for full rounds, "AGGI" for incremental ones —
/// the incremental form carries two extra delta-shape stats); parse()
/// accepts either, so auditors and query guests handle mixed chains
/// uniformly.
struct AggJournal {
  RoundKind kind = RoundKind::full;
  bool has_prev = false;
  Digest32 prev_claim_digest;  ///< zero when has_prev is false
  Digest32 prev_root;
  Digest32 new_root;
  u64 prev_entry_count = 0;
  u64 new_entry_count = 0;
  std::vector<CommitmentRef> commitments;
  // The touched-entry list is committed by digest, not carried inline: a
  // round touches O(N) entries, and every downstream guest that binds to
  // this journal re-hashes its bytes in-trace. Inlining the list made that
  // binding — and therefore every sketch/exact query proof — grow with N.
  // The digest keeps the journal constant-size while still committing to
  // the full ordered list (hash_update_refs), so an auditor holding the
  // list out-of-band can check it against the claim.
  u64 update_count = 0;     ///< entries touched this round
  Digest32 updates_digest;  ///< hash_update_refs over the ordered list
  // Delta-shape stats, only serialized for incremental rounds.
  u64 touched_entries = 0;      ///< opened prev entries (k)
  u64 multiproof_siblings = 0;  ///< deduplicated sibling digests shipped
  // Proof-carrying sketch state (DESIGN.md §10): when the round folds its
  // records into a committed RoundSketch, the journal chains its digest
  // exactly like the Merkle root (prev digest -> new digest) and publishes
  // the parameters so verifiers can check continuity without the bytes.
  bool has_sketch = false;
  netflow::SketchParams sketch_params;
  Digest32 prev_sketch_digest;  ///< hash of the empty sketch at genesis
  Digest32 sketch_digest;       ///< hash of the round's folded sketch bytes
  u64 sketch_total = 0;         ///< folded sketch total after this round

  void write(Writer& w) const;
  static Result<AggJournal> parse(BytesView journal);
};

/// Host-side input to the full-rebuild aggregation guest.
struct AggregateInput {
  bool has_prev = false;
  Digest32 prev_claim_digest;
  /// Which guest produced the previous round (selects the assumption image;
  /// ignored when has_prev is false).
  RoundKind prev_image_kind = RoundKind::full;
  Digest32 prev_root;  ///< empty-tree root when has_prev is false
  /// Canonical CLog entry bytes, in key-sorted index order.
  std::vector<Bytes> prev_entries;
  /// Proof-carrying sketch state: when set, `prev_sketch` holds the
  /// previous round's canonical RoundSketch bytes (the empty sketch at
  /// genesis); the guest hashes them, folds every record in, and publishes
  /// prev/new sketch digests in the journal.
  bool has_sketch = false;
  Bytes prev_sketch;
  /// (commitment metadata, serialized RLogBatch bytes), in aggregation order.
  std::vector<std::pair<CommitmentRef, Bytes>> batches;

  Bytes to_bytes() const;
};

/// Host-side input to the incremental (delta) aggregation guest: only the
/// entries the round touches — merge targets plus the adjacency neighbors
/// that prove new keys absent plus the shifted suffix of any insertion
/// cascade — authenticated together by ONE deduplicated Merkle multiproof
/// against prev_root. The proof additionally opens the empty slots
/// [prev_entry_count, prev_entry_count + new_flows) that inserts will
/// occupy, so the guest can derive new_root from the same shared siblings.
struct DeltaAggregateInput {
  Digest32 prev_claim_digest;
  RoundKind prev_image_kind = RoundKind::full;
  Digest32 prev_root;
  u64 prev_entry_count = 0;
  struct OpenedEntry {
    u64 index = 0;  ///< index in the previous (key-sorted) state
    Bytes entry;    ///< canonical CLog entry bytes
  };
  /// Strictly ascending by index (hence also by flow key).
  std::vector<OpenedEntry> opened;
  /// Batch proof for opened indices ∪ the new-flow slots. When the round
  /// grows tree capacity, the proof is generated against a grown copy
  /// (MerkleTree::grow_capacity) but leaf_count stays prev_entry_count.
  crypto::MerkleMultiProof proof;
  /// Previous round's sketch bytes (same contract as AggregateInput).
  bool has_sketch = false;
  Bytes prev_sketch;
  /// (commitment metadata, serialized RLogBatch bytes), in aggregation order.
  std::vector<std::pair<CommitmentRef, Bytes>> batches;

  Bytes to_bytes() const;
};

// ---------------------------------------------------------------------------
// Query

/// How a query proof covered the CLog state.
enum class QueryMode : u8 {
  /// Every entry was scanned inside the guest; the result is complete (no
  /// matching entry can have been omitted). Costs O(state size).
  complete = 0,
  /// Only prover-selected entries were opened with Merkle inclusion proofs,
  /// as §4.2 of the paper describes. Sound for what it proves ("these
  /// committed entries aggregate to X") but does NOT prove that no other
  /// entry matches — cheaper, O(matches · log n).
  selective = 1,
};

/// Public journal of a query proof.
struct QueryJournal {
  QueryMode mode = QueryMode::complete;
  Digest32 agg_claim_digest;  ///< aggregation receipt this query ran against
  Digest32 agg_root;
  u64 entry_count = 0;
  Query query;
  QueryResult result;

  void write(Writer& w) const;
  static Result<QueryJournal> parse(BytesView journal);
};

/// Host-side input to the complete-scan query guest.
struct QueryInput {
  zvm::Claim agg_claim;      ///< claim of the aggregation receipt
  Bytes agg_journal;         ///< that receipt's journal bytes
  std::vector<Bytes> entries;  ///< full CLog state, canonical bytes in order
  Query query;

  Bytes to_bytes() const;
};

/// Host-side input to the selective query guest: only the matching entries,
/// authenticated together by ONE Merkle multiproof against the aggregation
/// root (shared path prefixes deduplicated — far cheaper than per-entry
/// proofs when matches cluster or are numerous).
struct SelectiveQueryInput {
  zvm::Claim agg_claim;
  Bytes agg_journal;
  struct OpenedEntry {
    u64 index = 0;
    Bytes entry;  ///< canonical CLog entry bytes
  };
  /// Must be strictly ascending by index.
  std::vector<OpenedEntry> opened;
  /// Batch inclusion proof for exactly the opened indices (ignored when
  /// `opened` is empty).
  crypto::MerkleMultiProof proof;
  Query query;

  Bytes to_bytes() const;
};

/// Traced Merkle-root computation over leaf digests (pads to a power of two
/// with the empty leaf, like crypto::MerkleTree). Exposed for tests.
Digest32 merkle_root_traced(zvm::Env& env, std::vector<Digest32> leaves);

namespace detail {
/// One child receipt bound inside a recursive guest: its claim (read from
/// the input stream in Claim::serialize framing), the traced claim digest,
/// and the authenticated journal bytes.
struct ReceiptBinding {
  zvm::Claim claim;
  Digest32 claim_digest;
  Bytes journal;
};

/// Shared head of every receipt-consuming guest (queries, chain summaries,
/// join folds): read one (claim, journal) pair from the input stream,
/// assert `image_ok(claim.image_id)` (aborting with `context`), recompute
/// the claim digest with traced hashing, require a verified receipt for it
/// (assumption), and authenticate the journal bytes against the claim —
/// i.e. everything a round verifier does, inside the trace.
Result<ReceiptBinding> bind_receipt(zvm::Env& env,
                                    bool (*image_ok)(const zvm::ImageID&),
                                    std::string_view context);

/// bind_receipt specialized to aggregation receipts (either kind), with the
/// journal parsed. Shared head of every query-flavoured guest.
struct AggBinding {
  Digest32 claim_digest;
  AggJournal journal;
};
Result<AggBinding> bind_aggregation(zvm::Env& env);

/// The incremental aggregation guest body (defined in
/// guests_incremental.cpp, registered by guest_images()).
Status aggregate_incremental_guest(zvm::Env& env);

/// Traced u64 equality assertion shared by the aggregation guests.
Status assert_eq_u64(zvm::Env& env, u64 a, u64 b, std::string_view context);

/// Traced merge of a raw record into a CLog entry: one ALU row per counter,
/// so aggregation cost scales with record count like the paper's in-zkVM
/// aggregation does.
void merge_traced(zvm::Env& env, netflow::FlowRecord& into,
                  const netflow::FlowRecord& rec);

/// Read one committed RLog batch from the input stream and verify it
/// against its published commitment with traced hashing (the integrity
/// check of Figure 3) — shared by both aggregation guests.
Result<std::pair<CommitmentRef, netflow::RLogBatch>> read_verified_batch(
    zvm::Env& env);

/// The proof-carrying sketch state both aggregation guests thread through
/// a round: the previous sketch (authenticated by its traced digest) and
/// the fold target the per-record updates mutate.
struct SketchFold {
  bool enabled = false;
  Digest32 prev_digest;
  netflow::RoundSketch sketch;
};

/// Read the round's sketch section from the input stream (u8 has_sketch
/// [+ blob prev_sketch_bytes]): traced-hash the previous bytes into
/// prev_digest and deserialize the fold target. At genesis the previous
/// sketch must be empty (zero total, zero counters, no tracked keys) —
/// asserted in-trace so a chain cannot start from seeded counts.
Result<SketchFold> read_sketch_state(zvm::Env& env, bool genesis);

/// Publish the folded sketch into the journal: traced digest over the new
/// canonical bytes plus params/total/prev-digest fields.
void publish_sketch(zvm::Env& env, const SketchFold& fold,
                    AggJournal& journal);

/// Traced commitment to a round's ordered touched-entry list (domain
/// "zkt.agg.updates.v1" || count || per-entry index/created/leaf). Both
/// aggregation guests call this once per round; the journal carries only
/// the digest so downstream journal bindings stay O(1) in N.
Digest32 hash_update_refs(zvm::Env& env, const std::vector<UpdateRef>& updates);

/// Traced condition evaluation (0/1) and field extraction used by the query
/// guests.
u64 eval_condition_traced(zvm::Env& env, const Condition& c,
                          const netflow::FlowRecord& e);
u64 extract_field_traced(zvm::Env& env, const netflow::FlowRecord& e,
                         QField field);
}  // namespace detail

}  // namespace zkt::core
