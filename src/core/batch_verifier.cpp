#include "core/batch_verifier.h"

namespace zkt::core {

Status verify_aggregation_receipt(zvm::Verifier& verifier,
                                  const zvm::Receipt& receipt) {
  return verify_aggregation_receipt(verifier, receipt, zvm::VerifyContext{});
}

Status verify_aggregation_receipt(zvm::Verifier& verifier,
                                  const zvm::Receipt& receipt,
                                  const zvm::VerifyContext& context) {
  if (!is_aggregation_image(receipt.claim.image_id)) {
    return Error{Errc::proof_invalid,
                 "receipt was not produced by an aggregation guest"};
  }
  return verifier.verify(receipt, receipt.claim.image_id, context);
}

std::vector<Status> BatchVerifier::verify_aggregation(
    std::span<const zvm::Receipt> receipts, zvm::VerifyStats* stats) {
  std::vector<const zvm::Receipt*> ptrs(receipts.size());
  for (size_t i = 0; i < receipts.size(); ++i) ptrs[i] = &receipts[i];
  return verify_aggregation(std::span<const zvm::Receipt* const>(ptrs),
                            stats);
}

std::vector<Status> BatchVerifier::verify_aggregation(
    std::span<const zvm::Receipt* const> receipts, zvm::VerifyStats* stats) {
  std::vector<Status> out(receipts.size());
  if (receipts.empty()) return out;

  // Per-receipt predecessor caches, one entry each: receipt i may resolve an
  // embedded assumption against receipt i-1, receipt 0 against the head of
  // the previous call. Seeding is optimistic — entries are not yet known to
  // verify — which the repair pass below makes sound.
  std::vector<zvm::VerifiedCache> caches(receipts.size());
  caches[0] = head_cache_;
  for (size_t i = 1; i < receipts.size(); ++i) {
    caches[i].add(*receipts[i - 1]);
  }

  std::vector<zvm::VerifyStats> local(receipts.size());
  // zkt-lint: shared(each call writes only index i of out/caches/local; workers cover disjoint i)
  const auto verify_one = [&](size_t i) {
    out[i] = verify_aggregation_receipt(
        verifier_, *receipts[i],
        zvm::VerifyContext{&caches[i], &local[i]});
  };

  common::ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &common::ThreadPool::shared();
  if (options_.parallel && receipts.size() > 1) {
    // Grain 1: each receipt is a full seal check, far above chunking cost.
    pool->parallel_for(receipts.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) verify_one(i);
    });
  } else {
    for (size_t i = 0; i < receipts.size(); ++i) verify_one(i);
  }

  // Repair pass: a skipped assumption is only as good as the predecessor it
  // resolved against. head_cache_ entries verified in an earlier call, but
  // the intra-batch seed (receipts[i-1]) may just have FAILED — in which
  // case the byte-identical embedded copy would fail too, and sequential
  // verification of receipt i would reject it. Re-verify those uncached so
  // every outcome is standalone-authoritative. Processed in input order so
  // a repair-induced failure propagates to its own successor.
  for (size_t i = 1; i < receipts.size(); ++i) {
    if (!out[i - 1].ok() && out[i].ok() && local[i].assumptions_skipped > 0) {
      zvm::VerifyStats retry;
      out[i] = verify_aggregation_receipt(
          verifier_, *receipts[i], zvm::VerifyContext{nullptr, &retry});
      local[i].merge(retry);
    }
  }

  // Remember the deepest verified prefix head for the next call's receipt 0.
  size_t ok_prefix = 0;
  while (ok_prefix < receipts.size() && out[ok_prefix].ok()) ++ok_prefix;
  if (ok_prefix > 0) {
    head_cache_ = zvm::VerifiedCache{};
    head_cache_.add(*receipts[ok_prefix - 1]);
  }

  zvm::VerifyStats merged;
  for (const auto& s : local) merged.merge(s);
  stats_.merge(merged);
  if (stats != nullptr) stats->merge(merged);
  return out;
}

}  // namespace zkt::core
