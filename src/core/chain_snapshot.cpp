#include "core/chain_snapshot.h"

#include "store/logstore.h"

namespace zkt::core {

namespace {
constexpr u32 kSnapshotMagic = 0x5A4B4353;  // "ZKCS"
// Version 2 appends the round-sketch section (u8 has_sketch [+ blob +
// CRC]); version-1 snapshots still parse, with has_sketch = false.
constexpr u32 kSnapshotVersion = 2;
constexpr u32 kShardedSnapshotMagic = 0x5A4B5353;  // "ZKSS"
constexpr u32 kShardedSnapshotVersion = 1;
constexpr u32 kMaxSnapshotShards = 4096;
}  // namespace

ChainSnapshot ChainSnapshot::capture(u64 round_id, u64 window_id,
                                     const Digest32& claim_digest,
                                     const CLogState& state,
                                     const netflow::RoundSketch* sketch) {
  ChainSnapshot snap;
  snap.round_id = round_id;
  snap.window_id = window_id;
  snap.claim_digest = claim_digest;
  snap.root = state.root();
  snap.entry_count = state.entry_count();
  Writer w;
  state.serialize(w);
  snap.state_bytes = std::move(w).take();
  if (sketch != nullptr) {
    snap.has_sketch = true;
    snap.sketch_bytes = sketch->canonical_bytes();
  }
  return snap;
}

Result<CLogState> ChainSnapshot::restore_state() const {
  Reader r(state_bytes);
  auto state = CLogState::deserialize(r);
  if (!state.ok()) return state.error();
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing bytes in chain snapshot state"};
  }
  if (state.value().root() != root ||
      state.value().entry_count() != entry_count) {
    return Error{Errc::merkle_mismatch,
                 "chain snapshot state does not match its recorded root"};
  }
  return state;
}

Result<std::optional<netflow::RoundSketch>> ChainSnapshot::restore_sketch()
    const {
  if (!has_sketch) return std::optional<netflow::RoundSketch>{};
  Reader r(sketch_bytes);
  auto sketch = netflow::RoundSketch::deserialize(r);
  if (!sketch.ok()) return sketch.error();
  if (!r.done()) {
    return Error{Errc::parse_error,
                 "trailing bytes in chain snapshot sketch"};
  }
  return std::optional<netflow::RoundSketch>{std::move(sketch.value())};
}

Bytes ChainSnapshot::to_bytes() const {
  Writer w;
  w.u32v(kSnapshotMagic);
  w.u32v(kSnapshotVersion);
  w.u64v(round_id);
  w.u64v(window_id);
  w.fixed(claim_digest.bytes);
  w.fixed(root.bytes);
  w.u64v(entry_count);
  w.blob(state_bytes);
  w.u32v(store::crc32(state_bytes));
  w.u8v(has_sketch ? 1 : 0);
  if (has_sketch) {
    w.blob(sketch_bytes);
    w.u32v(store::crc32(sketch_bytes));
  }
  return std::move(w).take();
}

Result<ChainSnapshot> ChainSnapshot::from_bytes(BytesView data) {
  Reader r(data);
  auto magic = r.u32v();
  if (!magic.ok() || magic.value() != kSnapshotMagic) {
    return Error{Errc::parse_error, "bad chain snapshot magic"};
  }
  auto version = r.u32v();
  if (!version.ok()) return version.error();
  if (version.value() != 1 && version.value() != kSnapshotVersion) {
    return Error{Errc::unsupported, "unknown chain snapshot version"};
  }
  ChainSnapshot snap;
  auto round = r.u64v();
  if (!round.ok()) return round.error();
  snap.round_id = round.value();
  auto window = r.u64v();
  if (!window.ok()) return window.error();
  snap.window_id = window.value();
  ZKT_TRY(r.fixed(snap.claim_digest.bytes));
  ZKT_TRY(r.fixed(snap.root.bytes));
  auto entries = r.u64v();
  if (!entries.ok()) return entries.error();
  snap.entry_count = entries.value();
  auto state = r.blob();
  if (!state.ok()) return state.error();
  snap.state_bytes = std::move(state.value());
  auto crc = r.u32v();
  if (!crc.ok()) return crc.error();
  if (store::crc32(snap.state_bytes) != crc.value()) {
    return Error{Errc::parse_error, "chain snapshot state failed CRC"};
  }
  if (version.value() >= 2) {
    auto has = r.u8v();
    if (!has.ok()) return has.error();
    if (has.value() > 1) {
      return Error{Errc::parse_error, "bad chain snapshot sketch flag"};
    }
    snap.has_sketch = has.value() == 1;
    if (snap.has_sketch) {
      auto sketch = r.blob();
      if (!sketch.ok()) return sketch.error();
      snap.sketch_bytes = std::move(sketch.value());
      auto scrc = r.u32v();
      if (!scrc.ok()) return scrc.error();
      if (store::crc32(snap.sketch_bytes) != scrc.value()) {
        return Error{Errc::parse_error, "chain snapshot sketch failed CRC"};
      }
    }
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing bytes in chain snapshot"};
  }
  return snap;
}

Bytes ShardedChainSnapshot::to_bytes() const {
  Writer w;
  w.u32v(kShardedSnapshotMagic);
  w.u32v(kShardedSnapshotVersion);
  w.u64v(round_id);
  w.u64v(window_id);
  w.u32v(shard_count);
  w.varint(shards.size());
  // Each inner snapshot keeps its own CRC, so the bundle needs no second
  // integrity layer.
  for (const auto& shard : shards) w.blob(shard.to_bytes());
  return std::move(w).take();
}

Result<ShardedChainSnapshot> ShardedChainSnapshot::from_bytes(BytesView data) {
  Reader r(data);
  auto magic = r.u32v();
  if (!magic.ok() || magic.value() != kShardedSnapshotMagic) {
    return Error{Errc::parse_error, "bad sharded chain snapshot magic"};
  }
  auto version = r.u32v();
  if (!version.ok()) return version.error();
  if (version.value() != kShardedSnapshotVersion) {
    return Error{Errc::unsupported, "unknown sharded chain snapshot version"};
  }
  ShardedChainSnapshot snap;
  auto round = r.u64v();
  if (!round.ok()) return round.error();
  snap.round_id = round.value();
  auto window = r.u64v();
  if (!window.ok()) return window.error();
  snap.window_id = window.value();
  auto count = r.u32v();
  if (!count.ok()) return count.error();
  snap.shard_count = count.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() != snap.shard_count || n.value() == 0 ||
      n.value() > kMaxSnapshotShards) {
    return Error{Errc::parse_error, "sharded snapshot shard count mismatch"};
  }
  snap.shards.reserve(n.value());
  for (u64 i = 0; i < n.value(); ++i) {
    auto blob = r.blob();
    if (!blob.ok()) return blob.error();
    auto inner = ChainSnapshot::from_bytes(blob.value());
    if (!inner.ok()) return inner.error();
    snap.shards.push_back(std::move(inner.value()));
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing bytes in sharded snapshot"};
  }
  return snap;
}

}  // namespace zkt::core
