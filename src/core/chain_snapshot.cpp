#include "core/chain_snapshot.h"

#include "store/logstore.h"

namespace zkt::core {

namespace {
constexpr u32 kSnapshotMagic = 0x5A4B4353;  // "ZKCS"
constexpr u32 kSnapshotVersion = 1;
}  // namespace

ChainSnapshot ChainSnapshot::capture(u64 round_id, u64 window_id,
                                     const Digest32& claim_digest,
                                     const CLogState& state) {
  ChainSnapshot snap;
  snap.round_id = round_id;
  snap.window_id = window_id;
  snap.claim_digest = claim_digest;
  snap.root = state.root();
  snap.entry_count = state.entry_count();
  Writer w;
  state.serialize(w);
  snap.state_bytes = std::move(w).take();
  return snap;
}

Result<CLogState> ChainSnapshot::restore_state() const {
  Reader r(state_bytes);
  auto state = CLogState::deserialize(r);
  if (!state.ok()) return state.error();
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing bytes in chain snapshot state"};
  }
  if (state.value().root() != root ||
      state.value().entry_count() != entry_count) {
    return Error{Errc::merkle_mismatch,
                 "chain snapshot state does not match its recorded root"};
  }
  return state;
}

Bytes ChainSnapshot::to_bytes() const {
  Writer w;
  w.u32v(kSnapshotMagic);
  w.u32v(kSnapshotVersion);
  w.u64v(round_id);
  w.u64v(window_id);
  w.fixed(claim_digest.bytes);
  w.fixed(root.bytes);
  w.u64v(entry_count);
  w.blob(state_bytes);
  w.u32v(store::crc32(state_bytes));
  return std::move(w).take();
}

Result<ChainSnapshot> ChainSnapshot::from_bytes(BytesView data) {
  Reader r(data);
  auto magic = r.u32v();
  if (!magic.ok() || magic.value() != kSnapshotMagic) {
    return Error{Errc::parse_error, "bad chain snapshot magic"};
  }
  auto version = r.u32v();
  if (!version.ok()) return version.error();
  if (version.value() != kSnapshotVersion) {
    return Error{Errc::unsupported, "unknown chain snapshot version"};
  }
  ChainSnapshot snap;
  auto round = r.u64v();
  if (!round.ok()) return round.error();
  snap.round_id = round.value();
  auto window = r.u64v();
  if (!window.ok()) return window.error();
  snap.window_id = window.value();
  ZKT_TRY(r.fixed(snap.claim_digest.bytes));
  ZKT_TRY(r.fixed(snap.root.bytes));
  auto entries = r.u64v();
  if (!entries.ok()) return entries.error();
  snap.entry_count = entries.value();
  auto state = r.blob();
  if (!state.ok()) return state.error();
  snap.state_bytes = std::move(state.value());
  auto crc = r.u32v();
  if (!crc.ok()) return crc.error();
  if (store::crc32(snap.state_bytes) != crc.value()) {
    return Error{Errc::parse_error, "chain snapshot state failed CRC"};
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing bytes in chain snapshot"};
  }
  return snap;
}

}  // namespace zkt::core
