#include "core/pipeline.h"

#include <algorithm>
#include <map>

namespace zkt::core {

std::vector<u64> ProviderPipeline::pending_windows() const {
  std::vector<u64> windows;
  const u64 from = last_window_.has_value() ? *last_window_ + 1 : 0;
  for (const auto& row : store_->scan(store::kTableRlogs, from, ~0ULL)) {
    windows.push_back(row.k1);
  }
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  return windows;
}

u64 ProviderPipeline::prune_aggregated() {
  if (!last_window_.has_value()) return 0;
  return store_->drop_rows(store::kTableRlogs, *last_window_);
}

Result<std::vector<AggregationRound>> ProviderPipeline::aggregate_pending() {
  std::vector<AggregationRound> rounds;
  for (u64 window : pending_windows()) {
    std::vector<netflow::RLogBatch> batches;
    for (const auto& row :
         store_->scan(store::kTableRlogs, window, window)) {
      Reader r(row.payload);
      auto batch = netflow::RLogBatch::deserialize(r);
      if (!batch.ok()) return batch.error();
      if (!r.done()) {
        return Error{Errc::parse_error, "trailing bytes in stored batch"};
      }
      batches.push_back(std::move(batch.value()));
    }
    auto round = aggregation_.aggregate(std::move(batches));
    if (!round.ok()) return round.error();

    auto stored = store_->append(store::kTableReceipts, window,
                                 round.value().round_id,
                                 round.value().receipt.to_bytes());
    if (!stored.ok()) return stored.error();
    receipts_.push_back(round.value().receipt);
    last_window_ = window;
    rounds.push_back(std::move(round.value()));
  }
  return rounds;
}

}  // namespace zkt::core
