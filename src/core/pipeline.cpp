#include "core/pipeline.h"

#include <algorithm>
#include <map>
#include <thread>

#include "common/log.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zkt::core {

namespace {

/// Transient errors are worth retrying (a flaky disk or a briefly
/// unavailable backend); everything else — parse errors, integrity
/// violations, proof failures — is terminal and must halt the chain.
bool is_transient(Errc code) { return code == Errc::io_error; }

double ms(std::chrono::milliseconds d) {
  return static_cast<double>(d.count());
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

ProviderPipeline::ProviderPipeline(store::LogStore& store,
                                   const CommitmentBoard& board,
                                   PipelineOptions options)
    : store_(&store),
      options_(std::move(options)),
      aggregation_(board,
                   AggregationOptions{.prove_options = options_.prove_options,
                                      .mode = options_.agg_mode,
                                      .sketch = options_.sketch}) {
  if (options_.sharded.shard_count >= 2) {
    ShardedOptions sharded = options_.sharded;
    sharded.prove_options = options_.prove_options;
    sharded.agg_mode = options_.agg_mode;
    sharded.sketch = options_.sketch;
    sharded_ =
        std::make_unique<ShardedAggregationService>(board, std::move(sharded));
  } else if (options_.epoch_every > 0) {
    EpochLadderOptions ladder;
    ladder.epoch_every = options_.epoch_every;
    ladder.prove_options = options_.prove_options;
    epoch_ = std::make_unique<EpochLadder>(std::move(ladder));
  }
}

Status ProviderPipeline::with_retry(
    const char* what, const std::function<Status()>& op) const {
  obs::Registry& metrics = obs::Registry::instance();
  const RetryPolicy& policy = options_.retry;
  const u32 attempts = std::max<u32>(policy.max_attempts, 1);
  std::chrono::milliseconds backoff = policy.base_backoff;
  for (u32 attempt = 1;; ++attempt) {
    Status status = op();
    if (status.ok() || !is_transient(status.code()) || attempt >= attempts) {
      return status;
    }
    ZKT_LOG(warn) << what << " failed transiently (attempt " << attempt << "/"
                  << attempts << "): " << status.to_string()
                  << "; backing off " << backoff.count() << " ms";
    metrics.counter("core.pipeline.retries").add(1);
    metrics.histogram("core.pipeline.retry_backoff_ms").record(ms(backoff));
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.max_backoff);
  }
}

Result<std::vector<u64>> ProviderPipeline::pending_windows() const {
  std::vector<u64> windows;
  const u64 from = last_window_.has_value() ? *last_window_ + 1 : 0;
  Status scanned = with_retry("pending-window scan", [&]() -> Status {
    windows.clear();
    return store_->for_each(store::kTableRlogs, from, ~0ULL,
                            [&](const store::StoredRow& row) {
                              windows.push_back(row.k1);
                            });
  });
  if (!scanned.ok()) return scanned.error();
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  return windows;
}

Status ProviderPipeline::load_batches(
    u64 window, std::vector<netflow::RLogBatch>& batches) const {
  return with_retry("window batch load", [&]() -> Status {
    batches.clear();
    Status parse_status;
    Status scanned = store_->for_each(
        store::kTableRlogs, window, window,
        [&](const store::StoredRow& row) {
          if (!parse_status.ok()) return;
          Reader r(row.payload);
          auto batch = netflow::RLogBatch::deserialize(r);
          if (!batch.ok()) {
            parse_status = batch.error();
            return;
          }
          if (!r.done()) {
            parse_status =
                Error{Errc::parse_error, "trailing bytes in stored batch"};
            return;
          }
          batches.push_back(std::move(batch.value()));
        });
    if (!scanned.ok()) return scanned;
    return parse_status;
  });
}

Status ProviderPipeline::persist_round(u64 window,
                                       const AggregationRound& round) {
  obs::Registry& metrics = obs::Registry::instance();
  // Snapshot BEFORE receipt: a crash between the two appends leaves an
  // orphan snapshot (skipped at recover()) rather than a receipt the next
  // process would have to re-prove. See docs/RECOVERY.md.
  const bool snapshot_due =
      options_.checkpoint_every_n_rounds > 0 &&
      rounds_since_snapshot_ + 1 >= options_.checkpoint_every_n_rounds;
  if (snapshot_due) {
    const ChainSnapshot snap = ChainSnapshot::capture(
        round.round_id + 1, window, round.receipt.claim.digest(),
        aggregation_.state(),
        aggregation_.sketch_enabled() ? &aggregation_.sketch() : nullptr);
    const Bytes payload = snap.to_bytes();
    ZKT_TRY(with_retry("chain snapshot append", [&]() -> Status {
      auto id = store_->append(store::kTableChainState, window,
                               round.round_id, payload);
      return id.ok() ? Status{} : Status(id.error());
    }));
    metrics.counter("core.pipeline.snapshots").add(1);
  }
  ZKT_TRY(with_retry("receipt append", [&]() -> Status {
    auto id = store_->append(store::kTableReceipts, window, round.round_id,
                             round.receipt.to_bytes());
    return id.ok() ? Status{} : Status(id.error());
  }));
  rounds_since_snapshot_ = snapshot_due ? 0 : rounds_since_snapshot_ + 1;
  return {};
}

Status ProviderPipeline::persist_sharded_round(u64 window,
                                               const RoundResult& round) {
  obs::Registry& metrics = obs::Registry::instance();
  // Same snapshot-before-receipt ordering as the single-chain path, per
  // window: sharded snapshot, then the K shard receipts. The tree seal is
  // appended later by persist_seal (its fold may still be running); a
  // crash before it is repaired at recover() by re-folding.
  const bool snapshot_due =
      options_.checkpoint_every_n_rounds > 0 &&
      rounds_since_snapshot_ + 1 >= options_.checkpoint_every_n_rounds;
  if (snapshot_due) {
    ShardedChainSnapshot snap;
    snap.round_id = round.round_id;
    snap.window_id = window;
    snap.shard_count = sharded_->shard_count();
    for (u32 s = 0; s < sharded_->shard_count(); ++s) {
      const AggregationService& shard = sharded_->shard_service(s);
      snap.shards.push_back(ChainSnapshot::capture(
          round.round_id, window,
          round.shard_rounds[s].receipt.claim.digest(),
          sharded_->shard_state(s),
          shard.sketch_enabled() ? &shard.sketch() : nullptr));
    }
    const Bytes payload = snap.to_bytes();
    ZKT_TRY(with_retry("sharded snapshot append", [&]() -> Status {
      auto id = store_->append(store::kTableShardState, window,
                               round.round_id, payload);
      return id.ok() ? Status{} : Status(id.error());
    }));
    metrics.counter("core.pipeline.snapshots").add(1);
  }
  for (u32 s = 0; s < sharded_->shard_count(); ++s) {
    const Bytes payload = round.shard_rounds[s].receipt.to_bytes();
    ZKT_TRY(with_retry("shard receipt append", [&]() -> Status {
      auto id = store_->append(store::kTableShardReceipts, window, s, payload);
      return id.ok() ? Status{} : Status(id.error());
    }));
  }
  rounds_since_snapshot_ = snapshot_due ? 0 : rounds_since_snapshot_ + 1;
  return {};
}

Status ProviderPipeline::persist_seal(u64 window, const RoundResult& round) {
  if (!round.tree_seal.has_value()) return {};
  const Bytes payload = round.tree_seal->to_bytes();
  ZKT_TRY(with_retry("tree seal append", [&]() -> Status {
    auto id = store_->append(store::kTableTreeSeals, window, round.round_id,
                             payload);
    return id.ok() ? Status{} : Status(id.error());
  }));
  obs::Registry::instance().counter("core.pipeline.seals").add(1);
  return {};
}

Status ProviderPipeline::persist_epoch_seals() {
  if (!epoch_) return {};
  for (const EpochSeal& seal : epoch_->take_completed()) {
    const Bytes payload = seal.to_bytes();
    ZKT_TRY(with_retry("epoch seal append", [&]() -> Status {
      auto id = store_->append(store::kTableEpochSeals, seal.level,
                               seal.start_round, payload);
      return id.ok() ? Status{} : Status(id.error());
    }));
    obs::Registry::instance().counter("core.pipeline.epoch_seals").add(1);
  }
  return {};
}

Result<std::vector<EpochSeal>> ProviderPipeline::epoch_seals() {
  if (!epoch_) return std::vector<EpochSeal>{};
  ZKT_TRY(epoch_->settle());
  ZKT_TRY(persist_epoch_seals());
  return epoch_->ladder();
}

Status ProviderPipeline::recover_epoch_ladder(
    const std::vector<u64>& round_windows, RecoveryInfo& info) {
  obs::Registry& metrics = obs::Registry::instance();
  // Latest stored seal per (level, start_round).
  std::map<std::pair<u64, u64>, Bytes> stored;
  ZKT_TRY(with_retry("epoch seal scan", [&]() -> Status {
    stored.clear();
    return store_->for_each(store::kTableEpochSeals, 0, ~0ULL,
                            [&](const store::StoredRow& row) {
                              stored[{row.k1, row.k2}] = row.payload;
                            });
  }));

  // The expected ladder is a pure function of the recovered chain length;
  // walk it in chain order, adopting stored seals that validate against the
  // restored receipts and re-folding anything missing or damaged.
  const u64 epoch_every = epoch_->epoch_every();
  Digest32 commitments_digest = epoch_commitments_init();
  for (const EpochSpanSpec& spec :
       epoch_ladder_plan(receipts_.size(), epoch_every)) {
    bool adopted = false;
    auto it = stored.find({spec.level, spec.start_round});
    if (it != stored.end()) {
      auto seal = EpochSeal::from_bytes(it->second);
      if (!seal.ok()) {
        ZKT_LOG(warn) << "unreadable epoch seal (level " << spec.level
                      << ", start " << spec.start_round
                      << "): " << seal.error().to_string() << "; re-folding";
      } else if (Status valid = validate_recovered_seal(
                     seal.value(), receipts_, epoch_every);
                 !valid.ok()) {
        ZKT_LOG(warn) << "stored epoch seal (level " << spec.level
                      << ", start " << spec.start_round
                      << ") failed validation: " << valid.to_string()
                      << "; re-folding";
      } else {
        commitments_digest = seal.value().journal.final_commitments_digest;
        ZKT_TRY(epoch_->adopt(std::move(seal.value())));
        ++info.epoch_seals_adopted;
        adopted = true;
      }
    }
    if (adopted) continue;

    // Crash before this level was persisted (or it failed validation):
    // re-fold the span from the restored receipts. O(span) prover work, but
    // only on the damaged level — the healthy ladder re-adopts for free.
    EpochSpanOptions span_options;
    span_options.prove_options = epoch_->options().prove_options;
    span_options.first_commitments_digest = commitments_digest;
    auto response = prove_epoch_span(
        std::span<const zvm::Receipt>(receipts_.data() + spec.start_round,
                                      spec.rounds),
        span_options);
    if (!response.ok()) return response.error();
    EpochSeal seal;
    seal.level = spec.level;
    seal.start_round = spec.start_round;
    seal.rounds = spec.rounds;
    seal.first_window = round_windows[spec.start_round];
    seal.last_window = round_windows[spec.start_round + spec.rounds - 1];
    seal.receipt = std::move(response.value().receipt);
    seal.journal = response.value().journal;
    seal.commitments = std::move(response.value().commitments);
    commitments_digest = seal.journal.final_commitments_digest;
    const Bytes payload = seal.to_bytes();
    ZKT_TRY(with_retry("epoch seal append", [&]() -> Status {
      auto id = store_->append(store::kTableEpochSeals, seal.level,
                               seal.start_round, payload);
      return id.ok() ? Status{} : Status(id.error());
    }));
    ZKT_TRY(epoch_->adopt(std::move(seal)));
    ++info.epoch_levels_refolded;
    metrics.counter("core.pipeline.epoch_seals").add(1);
  }

  // Re-feed the unsealed tail so the next full epoch builds on schedule.
  const u64 sealed = (receipts_.size() / epoch_every) * epoch_every;
  for (u64 round = sealed; round < receipts_.size(); ++round) {
    ZKT_TRY(epoch_->feed(receipts_[round], round_windows[round]));
  }
  return {};
}

u64 ProviderPipeline::prune_aggregated() {
  if (!last_window_.has_value()) return 0;
  const u64 dropped = store_->drop_rows(store::kTableRlogs, *last_window_);
  obs::Registry::instance().counter("core.pipeline.pruned_rows").add(dropped);
  return dropped;
}

Result<std::vector<RoundResult>> ProviderPipeline::aggregate_pending() {
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("pipeline_aggregate_pending");

  auto pending = pending_windows();
  if (!pending.ok()) return pending.error();
  // Pending-window lag before this run: how far the provider's proof chain
  // trails the routers' committed windows.
  metrics.gauge("core.pipeline.pending_windows")
      .set(static_cast<double>(pending.value().size()));

  return sharded_ ? aggregate_pending_sharded(std::move(pending.value()))
                  : aggregate_pending_plain(std::move(pending.value()));
}

Result<std::vector<RoundResult>> ProviderPipeline::aggregate_pending_plain(
    std::vector<u64> windows) {
  obs::Registry& metrics = obs::Registry::instance();
  std::vector<RoundResult> rounds;
  for (u64 window : windows) {
    const auto round_start = std::chrono::steady_clock::now();
    std::vector<netflow::RLogBatch> batches;
    if (Status loaded = load_batches(window, batches); !loaded.ok()) {
      return loaded.error();
    }
    auto round = aggregation_.aggregate(batches);
    if (!round.ok()) return round.error();

    if (Status persisted = persist_round(window, round.value());
        !persisted.ok()) {
      return persisted.error();
    }
    receipts_.push_back(round.value().receipt);
    last_window_ = window;
    if (epoch_) {
      // The ladder proves asynchronously — feed() only buffers/dispatches.
      // Finished seals are drained and persisted here, between rounds.
      if (Status fed = epoch_->feed(round.value().receipt, window);
          !fed.ok()) {
        return fed.error();
      }
      if (Status persisted = persist_epoch_seals(); !persisted.ok()) {
        return persisted.error();
      }
    }

    RoundResult result;
    result.round_id = round.value().round_id;
    result.total_cycles = round.value().prove_info.cycles;
    result.wall_ms = elapsed_ms(round_start);
    result.shard_rounds.push_back(std::move(round.value()));
    rounds.push_back(std::move(result));

    metrics.histogram("core.pipeline.round_ms").record(rounds.back().wall_ms);
    metrics.histogram("core.pipeline.batches_per_round")
        .record(static_cast<double>(batches.size()));
    metrics.counter("core.pipeline.windows_aggregated").add(1);
    metrics.gauge("core.pipeline.pending_windows")
        .set(static_cast<double>(windows.size() - rounds.size()));
  }
  if (epoch_) {
    // Quiesce the ladder so this call's seals are durable before returning
    // (a caller that exits right after aggregate_pending loses nothing).
    if (Status settled = epoch_->settle(); !settled.ok()) {
      return settled.error();
    }
    if (Status persisted = persist_epoch_seals(); !persisted.ok()) {
      return persisted.error();
    }
  }
  if (options_.prune_aggregated && !rounds.empty()) {
    prune_aggregated();
  }
  return rounds;
}

Result<std::vector<RoundResult>> ProviderPipeline::aggregate_pending_sharded(
    std::vector<u64> windows) {
  if (options_.epoch_every > 0) {
    return Error{Errc::invalid_argument,
                 "epoch seals require single-chain mode (shard chains have "
                 "no single round chain to seal)"};
  }
  obs::Registry& metrics = obs::Registry::instance();
  common::ThreadPool& pool = common::ThreadPool::shared();
  const u32 depth = std::max<u32>(options_.sharded.pipeline_depth, 1);

  // Window i+1 loads + split-proves on a pool worker while window i's
  // shards prove on this thread, and window i's tree folds on a worker
  // while window i+1 proves. Chain LINKING stays here, in window order
  // (commit_staged / prove_shards / persist), so every depth produces
  // byte-identical receipts; results are drained from `sealing` in window
  // order.
  struct StagedEntry {
    u64 window = 0;
    std::shared_ptr<std::vector<netflow::RLogBatch>> batches;
    std::future<Result<ShardedAggregationService::StagedRound>> staged;
  };
  struct SealEntry {
    u64 window = 0;
    std::shared_ptr<RoundResult> round;
    std::future<Status> folded;
  };
  std::deque<StagedEntry> staging;
  std::deque<SealEntry> sealing;
  std::vector<RoundResult> rounds;
  size_t next_window = 0;

  // On a terminal error every in-flight future must finish before the
  // deques (and the service) can be torn down.
  auto settle_inflight = [&] {
    for (auto& entry : staging) {
      if (entry.staged.valid()) entry.staged.wait();
    }
    for (auto& entry : sealing) {
      if (entry.folded.valid()) entry.folded.wait();
    }
  };
  auto set_inflight = [&] {
    metrics.gauge("core.pipeline.inflight")
        .set(static_cast<double>(staging.size() + sealing.size()));
  };

  auto top_up_staging = [&]() -> Status {
    while (next_window < windows.size() && staging.size() < depth) {
      StagedEntry entry;
      entry.window = windows[next_window];
      entry.batches = std::make_shared<std::vector<netflow::RLogBatch>>();
      ZKT_TRY(load_batches(entry.window, *entry.batches));
      entry.staged = pool.submit(
          [service = sharded_.get(), batches = entry.batches] {
            return service->stage(*batches);
          });
      staging.push_back(std::move(entry));
      ++next_window;
    }
    set_inflight();
    return {};
  };

  auto drain_one_seal = [&]() -> Status {
    SealEntry entry = std::move(sealing.front());
    sealing.pop_front();
    const auto wait_start = std::chrono::steady_clock::now();
    Status folded = entry.folded.get();
    metrics.histogram("core.pipeline.fold_wait_ms")
        .record(elapsed_ms(wait_start));
    ZKT_TRY(folded);
    ZKT_TRY(persist_seal(entry.window, *entry.round));
    if (entry.round->tree_seal.has_value()) {
      tree_seals_.push_back(*entry.round->tree_seal);
    }
    rounds.push_back(std::move(*entry.round));
    set_inflight();
    return {};
  };

  for (;;) {
    if (Status topped = top_up_staging(); !topped.ok()) {
      settle_inflight();
      return topped.error();
    }
    if (staging.empty()) break;

    const auto round_start = std::chrono::steady_clock::now();
    StagedEntry entry = std::move(staging.front());
    staging.pop_front();
    auto staged = entry.staged.get();
    if (!staged.ok()) {
      settle_inflight();
      return staged.error();
    }
    metrics.histogram("core.pipeline.stage_ms")
        .record(staged.value().split_ms);

    if (Status committed = sharded_->commit_staged(staged.value());
        !committed.ok()) {
      settle_inflight();
      return committed.error();
    }
    const auto prove_start = std::chrono::steady_clock::now();
    auto round = sharded_->prove_shards(std::move(staged.value()));
    if (!round.ok()) {
      settle_inflight();
      return round.error();
    }
    // The serial segment: shard proving runs on this thread, in window
    // order, because chains link round i+1 onto round i. Pipelining can
    // only hide stage_ms and fold_wait_ms around it.
    metrics.histogram("core.pipeline.prove_ms").record(elapsed_ms(prove_start));
    if (Status persisted = persist_sharded_round(entry.window, round.value());
        !persisted.ok()) {
      settle_inflight();
      return persisted.error();
    }
    last_window_ = entry.window;

    SealEntry seal;
    seal.window = entry.window;
    seal.round = std::make_shared<RoundResult>(std::move(round.value()));
    seal.folded = pool.submit([service = sharded_.get(), r = seal.round] {
      return service->fold_round(*r);
    });
    sealing.push_back(std::move(seal));
    set_inflight();

    metrics.histogram("core.pipeline.round_ms").record(elapsed_ms(round_start));
    metrics.histogram("core.pipeline.batches_per_round")
        .record(static_cast<double>(entry.batches->size()));
    metrics.counter("core.pipeline.windows_aggregated").add(1);
    metrics.gauge("core.pipeline.pending_windows")
        .set(static_cast<double>(windows.size() - next_window +
                                 staging.size()));

    while (sealing.size() >= depth) {
      if (Status drained = drain_one_seal(); !drained.ok()) {
        settle_inflight();
        return drained.error();
      }
    }
  }
  while (!sealing.empty()) {
    if (Status drained = drain_one_seal(); !drained.ok()) {
      settle_inflight();
      return drained.error();
    }
  }
  if (options_.prune_aggregated && !rounds.empty()) {
    prune_aggregated();
  }
  return rounds;
}

Result<ProviderPipeline::RecoveryInfo> ProviderPipeline::recover() {
  obs::ScopedSpan span("pipeline_recover");
  if (has_rounds() || last_window_.has_value()) {
    return Error{Errc::invalid_argument,
                 "recover() must run before any aggregation"};
  }
  return sharded_ ? recover_sharded() : recover_plain();
}

Result<ProviderPipeline::RecoveryInfo> ProviderPipeline::recover_plain() {
  obs::Registry& metrics = obs::Registry::instance();
  if (store_->row_count(store::kTableShardState) > 0 ||
      store_->row_count(store::kTableShardReceipts) > 0) {
    return Error{Errc::invalid_argument,
                 "store holds sharded chain rows; a single-chain pipeline "
                 "cannot recover it (configure matching shards)"};
  }

  RecoveryInfo info;

  std::vector<store::StoredRow> snapshot_rows;
  Status scanned = with_retry("chain-state scan", [&]() -> Status {
    snapshot_rows.clear();
    return store_->for_each(store::kTableChainState, 0, ~0ULL,
                            [&](const store::StoredRow& row) {
                              snapshot_rows.push_back(row);
                            });
  });
  if (!scanned.ok()) return scanned.error();

  // Adopt the newest snapshot whose receipt checks out. Orphans (snapshot
  // appended, crash before its receipt) and unreadable rows are skipped in
  // favor of an older snapshot; a snapshot that *contradicts* its receipt
  // fails terminally below, inside restore().
  std::optional<ChainSnapshot> adopted;
  for (auto it = snapshot_rows.rbegin();
       it != snapshot_rows.rend() && !adopted.has_value(); ++it) {
    auto snap = ChainSnapshot::from_bytes(it->payload);
    if (!snap.ok()) {
      ZKT_LOG(warn) << "skipping unreadable chain snapshot (row " << it->id
                    << "): " << snap.error().to_string();
      ++info.snapshots_skipped;
      continue;
    }
    auto receipt_row = store_->latest(store::kTableReceipts,
                                      snap.value().window_id);
    if (!receipt_row.has_value()) {
      // Crash between snapshot append and receipt append.
      ++info.snapshots_skipped;
      continue;
    }
    auto receipt = zvm::Receipt::from_bytes(receipt_row->payload);
    if (!receipt.ok()) return receipt.error();
    if (receipt.value().claim.digest() != snap.value().claim_digest) {
      ZKT_LOG(warn) << "skipping chain snapshot for window "
                    << snap.value().window_id
                    << ": stored receipt has a different claim digest";
      ++info.snapshots_skipped;
      continue;
    }
    auto state = snap.value().restore_state();
    if (!state.ok()) return state.error();
    auto sketch = snap.value().restore_sketch();
    if (!sketch.ok()) return sketch.error();
    ZKT_TRY(aggregation_.restore(std::move(state.value()),
                                 std::move(receipt.value()),
                                 snap.value().round_id,
                                 std::move(sketch.value())));
    adopted = std::move(snap.value());
  }
  if (adopted.has_value()) {
    info.resumed = true;
    info.rounds_restored = adopted->round_id;
    last_window_ = adopted->window_id;
  }

  // Roll forward over receipts proven after the adopted snapshot (or from
  // genesis when no snapshot was usable) by replaying their raw batches —
  // verified against the receipts' journals, never re-proven.
  std::vector<store::StoredRow> receipt_rows;
  scanned = with_retry("receipt scan", [&]() -> Status {
    receipt_rows.clear();
    return store_->for_each(store::kTableReceipts, 0, ~0ULL,
                            [&](const store::StoredRow& row) {
                              receipt_rows.push_back(row);
                            });
  });
  if (!scanned.ok()) return scanned.error();
  std::sort(receipt_rows.begin(), receipt_rows.end(),
            [](const store::StoredRow& a, const store::StoredRow& b) {
              return std::tie(a.k1, a.id) < std::tie(b.k1, b.id);
            });

  std::vector<u64> round_windows;  // round index -> window id
  for (const auto& row : receipt_rows) {
    auto receipt = zvm::Receipt::from_bytes(row.payload);
    if (!receipt.ok()) return receipt.error();
    if (adopted.has_value() && row.k1 <= adopted->window_id) {
      // Part of the chain the snapshot already vouches for.
      receipts_.push_back(std::move(receipt.value()));
      round_windows.push_back(row.k1);
      continue;
    }
    std::vector<netflow::RLogBatch> batches;
    if (Status loaded = load_batches(row.k1, batches); !loaded.ok()) {
      return loaded.error();
    }
    if (batches.empty()) {
      return Error{Errc::chain_broken,
                   "receipt for window " + std::to_string(row.k1) +
                       " has no raw logs to replay (pruned before a chain "
                       "snapshot covered it?)"};
    }
    ZKT_TRY(aggregation_.replay_round(batches, receipt.value()));
    receipts_.push_back(std::move(receipt.value()));
    round_windows.push_back(row.k1);
    last_window_ = row.k1;
    ++info.rounds_replayed;
    info.resumed = true;
  }

  if (epoch_) {
    ZKT_TRY(recover_epoch_ladder(round_windows, info));
  }

  info.last_window = last_window_;
  if (info.resumed) {
    metrics.counter("core.pipeline.recoveries").add(1);
    metrics.gauge("core.pipeline.recovered_rounds")
        .set(static_cast<double>(info.rounds_restored + info.rounds_replayed));
    ZKT_LOG(info) << "pipeline recovered: " << info.rounds_restored
                  << " rounds from snapshot, " << info.rounds_replayed
                  << " replayed, resuming after window "
                  << (last_window_.has_value() ? std::to_string(*last_window_)
                                               : std::string("none"));
  }
  return info;
}

Result<ProviderPipeline::RecoveryInfo> ProviderPipeline::recover_sharded() {
  obs::Registry& metrics = obs::Registry::instance();
  if (options_.epoch_every > 0) {
    return Error{Errc::invalid_argument,
                 "epoch seals require single-chain mode (shard chains have "
                 "no single round chain to seal)"};
  }
  if (store_->row_count(store::kTableChainState) > 0 ||
      store_->row_count(store::kTableReceipts) > 0) {
    return Error{Errc::invalid_argument,
                 "store holds single-chain rows; a sharded pipeline cannot "
                 "recover it (drop --shards to recover)"};
  }

  RecoveryInfo info;
  const u32 shard_count = sharded_->shard_count();

  // The latest stored receipt per (window, shard); nullopt when any shard's
  // receipt is missing (a crash mid-persist left the window incomplete).
  auto load_shard_receipts =
      [&](u64 window) -> Result<std::optional<std::vector<zvm::Receipt>>> {
    std::vector<zvm::Receipt> receipts;
    for (u32 s = 0; s < shard_count; ++s) {
      std::vector<store::StoredRow> rows;
      Status scanned = with_retry("shard receipt scan", [&]() -> Status {
        rows = store_->scan_exact(store::kTableShardReceipts, window, s);
        return {};
      });
      if (!scanned.ok()) return scanned.error();
      if (rows.empty()) return std::optional<std::vector<zvm::Receipt>>{};
      auto receipt = zvm::Receipt::from_bytes(rows.back().payload);
      if (!receipt.ok()) return receipt.error();
      receipts.push_back(std::move(receipt.value()));
    }
    return std::optional<std::vector<zvm::Receipt>>{std::move(receipts)};
  };

  std::vector<store::StoredRow> snapshot_rows;
  Status scanned = with_retry("shard-state scan", [&]() -> Status {
    snapshot_rows.clear();
    return store_->for_each(store::kTableShardState, 0, ~0ULL,
                            [&](const store::StoredRow& row) {
                              snapshot_rows.push_back(row);
                            });
  });
  if (!scanned.ok()) return scanned.error();

  // Adopt the newest sharded snapshot whose K shard receipts all exist and
  // match its claim digests; orphans and unreadable rows are skipped. A
  // shard-count mismatch is terminal — recovering a 4-shard store with
  // --shards 8 must not silently fork the chains.
  std::optional<ShardedChainSnapshot> adopted;
  for (auto it = snapshot_rows.rbegin();
       it != snapshot_rows.rend() && !adopted.has_value(); ++it) {
    auto snap = ShardedChainSnapshot::from_bytes(it->payload);
    if (!snap.ok()) {
      ZKT_LOG(warn) << "skipping unreadable sharded snapshot (row " << it->id
                    << "): " << snap.error().to_string();
      ++info.snapshots_skipped;
      continue;
    }
    if (snap.value().shard_count != shard_count) {
      return Error{Errc::invalid_argument,
                   "store was written with " +
                       std::to_string(snap.value().shard_count) +
                       " shards but the pipeline is configured with " +
                       std::to_string(shard_count) +
                       " (the shard count cannot change across restarts)"};
    }
    auto receipts = load_shard_receipts(snap.value().window_id);
    if (!receipts.ok()) return receipts.error();
    if (!receipts.value().has_value()) {
      // Crash between snapshot append and the shard receipts.
      ++info.snapshots_skipped;
      continue;
    }
    bool digests_match = snap.value().shards.size() == shard_count;
    for (u32 s = 0; digests_match && s < shard_count; ++s) {
      digests_match = snap.value().shards[s].claim_digest ==
                      (*receipts.value())[s].claim.digest();
    }
    if (!digests_match) {
      ZKT_LOG(warn) << "skipping sharded snapshot for window "
                    << snap.value().window_id
                    << ": stored shard receipts have different claim digests";
      ++info.snapshots_skipped;
      continue;
    }
    ZKT_TRY(sharded_->restore(snap.value(), std::move(*receipts.value())));
    adopted = std::move(snap.value());
  }
  if (adopted.has_value()) {
    info.resumed = true;
    info.rounds_restored = adopted->round_id;
    last_window_ = adopted->window_id;
  }

  // Windows with stored shard receipts, ascending. A receipt row for a
  // shard id past the configured count is the no-snapshot face of the
  // shard-count mismatch above — also terminal.
  std::vector<u64> receipt_windows;
  u64 max_shard_seen = 0;
  scanned = with_retry("shard receipt window scan", [&]() -> Status {
    receipt_windows.clear();
    max_shard_seen = 0;
    return store_->for_each(store::kTableShardReceipts, 0, ~0ULL,
                            [&](const store::StoredRow& row) {
                              receipt_windows.push_back(row.k1);
                              max_shard_seen =
                                  std::max(max_shard_seen, row.k2);
                            });
  });
  if (!scanned.ok()) return scanned.error();
  if (!receipt_windows.empty() && max_shard_seen >= shard_count) {
    return Error{Errc::invalid_argument,
                 "store holds receipts for shard " +
                     std::to_string(max_shard_seen) +
                     " but the pipeline is configured with " +
                     std::to_string(shard_count) +
                     " shards (the shard count cannot change across "
                     "restarts)"};
  }
  std::sort(receipt_windows.begin(), receipt_windows.end());
  receipt_windows.erase(
      std::unique(receipt_windows.begin(), receipt_windows.end()),
      receipt_windows.end());

  for (size_t i = 0; i < receipt_windows.size(); ++i) {
    const u64 window = receipt_windows[i];
    auto receipts = load_shard_receipts(window);
    if (!receipts.ok()) return receipts.error();
    if (!receipts.value().has_value()) {
      // Incomplete persist. Only tolerable at the chain tip, where the
      // window simply counts as unproven (aggregate_pending re-proves it);
      // a gap in the middle means the chain cannot be rebuilt.
      if (i + 1 == receipt_windows.size() &&
          (!last_window_.has_value() || window > *last_window_)) {
        break;
      }
      return Error{Errc::chain_broken,
                   "window " + std::to_string(window) +
                       " is missing shard receipts mid-chain"};
    }

    const bool covered =
        adopted.has_value() && window <= adopted->window_id;
    if (!covered) {
      // Roll forward: replay the window's raw batches against the stored
      // receipts — verified against each shard's journal, never re-proven.
      std::vector<netflow::RLogBatch> batches;
      if (Status loaded = load_batches(window, batches); !loaded.ok()) {
        return loaded.error();
      }
      if (batches.empty()) {
        return Error{Errc::chain_broken,
                     "shard receipts for window " + std::to_string(window) +
                         " have no raw logs to replay (pruned before a "
                         "snapshot covered them?)"};
      }
      ZKT_TRY(sharded_->replay_round(batches, *receipts.value()));
      last_window_ = window;
      ++info.rounds_replayed;
      info.resumed = true;
    }

    if (sharded_->fold_enabled()) {
      auto seal_row = store_->latest(store::kTableTreeSeals, window);
      if (seal_row.has_value()) {
        auto seal = zvm::Receipt::from_bytes(seal_row->payload);
        if (!seal.ok()) return seal.error();
        tree_seals_.push_back(std::move(seal.value()));
      } else {
        // Crash after the shard receipts, before the seal: re-fold from the
        // verified receipts (proof work is O(K) joins, not a re-prove of
        // the round) and persist what the crashed process could not.
        FoldOptions fold_options;
        fold_options.fanout = sharded_->options().join_fanout;
        fold_options.prove_options = sharded_->options().prove_options;
        fold_options.prove_options.assumptions.clear();
        std::vector<netflow::RoundSketch> leaf_sketches;
        auto leaf_journal =
            AggJournal::parse((*receipts.value())[0].journal);
        if (!leaf_journal.ok()) return leaf_journal.error();
        if (leaf_journal.value().has_sketch) {
          // Sketched leaves need this window's round-sketch bytes fed back
          // to the join guests. The live shard services hold them only when
          // the chain position matches (the window we just replayed, or the
          // adopted snapshot's own window); an older window rebuilds them by
          // replaying every stored window's raw batches through the same
          // shard split and (window, router) fold order the guests used —
          // and the rebuild is only trusted after it reproduces each
          // shard's proven sketch digest.
          const bool state_matches =
              !covered ||
              (adopted.has_value() && window == adopted->window_id);
          if (state_matches) {
            for (u32 s = 0; s < shard_count; ++s) {
              leaf_sketches.push_back(sharded_->shard_service(s).sketch());
            }
          } else {
            leaf_sketches.assign(
                shard_count,
                netflow::RoundSketch{leaf_journal.value().sketch_params});
            for (u64 w : receipt_windows) {
              if (w > window) break;
              std::vector<netflow::RLogBatch> replay;
              if (Status loaded = load_batches(w, replay); !loaded.ok()) {
                return loaded.error();
              }
              if (replay.empty()) {
                return Error{Errc::chain_broken,
                             "window " + std::to_string(window) +
                                 " is missing its tree seal and its shard "
                                 "sketches cannot be rebuilt (raw logs "
                                 "pruned before a seal covered them?)"};
              }
              std::sort(
                  replay.begin(), replay.end(),
                  [](const netflow::RLogBatch& a,
                     const netflow::RLogBatch& b) {
                    return std::tie(a.window_id, a.router_id) <
                           std::tie(b.window_id, b.router_id);
                  });
              for (const auto& batch : replay) {
                for (const auto& record : batch.records) {
                  leaf_sketches[shard_of(record.key, shard_count)].update(
                      record.key, record.packets);
                }
              }
            }
            for (u32 s = 0; s < shard_count; ++s) {
              auto shard_journal =
                  AggJournal::parse((*receipts.value())[s].journal);
              if (!shard_journal.ok()) return shard_journal.error();
              if (!shard_journal.value().has_sketch ||
                  shard_journal.value().sketch_digest !=
                      leaf_sketches[s].hash()) {
                return Error{Errc::hash_mismatch,
                             "rebuilt shard sketches disagree with the "
                             "proven digests for window " +
                                 std::to_string(window)};
              }
            }
          }
          fold_options.leaf_sketches = leaf_sketches;
        }
        auto folded = fold_receipts(*receipts.value(), fold_options);
        if (!folded.ok()) return folded.error();
        RoundResult refold;
        refold.round_id = info.rounds_restored + info.rounds_replayed;
        refold.tree_seal = std::move(folded.value().root);
        ZKT_TRY(persist_seal(window, refold));
        tree_seals_.push_back(*refold.tree_seal);
        ++info.seals_refolded;
      }
    }
  }

  info.last_window = last_window_;
  if (info.resumed) {
    metrics.counter("core.pipeline.recoveries").add(1);
    metrics.gauge("core.pipeline.recovered_rounds")
        .set(static_cast<double>(info.rounds_restored + info.rounds_replayed));
    ZKT_LOG(info) << "sharded pipeline recovered: " << info.rounds_restored
                  << " rounds from snapshot, " << info.rounds_replayed
                  << " replayed, " << info.seals_refolded
                  << " seals re-folded, resuming after window "
                  << (last_window_.has_value() ? std::to_string(*last_window_)
                                               : std::string("none"));
  }
  return info;
}

}  // namespace zkt::core
