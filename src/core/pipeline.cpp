#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace zkt::core {

std::vector<u64> ProviderPipeline::pending_windows() const {
  std::vector<u64> windows;
  const u64 from = last_window_.has_value() ? *last_window_ + 1 : 0;
  for (const auto& row : store_->scan(store::kTableRlogs, from, ~0ULL)) {
    windows.push_back(row.k1);
  }
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  return windows;
}

u64 ProviderPipeline::prune_aggregated() {
  if (!last_window_.has_value()) return 0;
  const u64 dropped = store_->drop_rows(store::kTableRlogs, *last_window_);
  obs::Registry::instance().counter("core.pipeline.pruned_rows").add(dropped);
  return dropped;
}

Result<std::vector<AggregationRound>> ProviderPipeline::aggregate_pending() {
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("pipeline_aggregate_pending");

  const std::vector<u64> pending = pending_windows();
  // Pending-window lag before this run: how far the provider's proof chain
  // trails the routers' committed windows.
  metrics.gauge("core.pipeline.pending_windows")
      .set(static_cast<double>(pending.size()));

  std::vector<AggregationRound> rounds;
  for (u64 window : pending) {
    const auto round_start = std::chrono::steady_clock::now();
    std::vector<netflow::RLogBatch> batches;
    for (const auto& row :
         store_->scan(store::kTableRlogs, window, window)) {
      Reader r(row.payload);
      auto batch = netflow::RLogBatch::deserialize(r);
      if (!batch.ok()) return batch.error();
      if (!r.done()) {
        return Error{Errc::parse_error, "trailing bytes in stored batch"};
      }
      batches.push_back(std::move(batch.value()));
    }
    auto round = aggregation_.aggregate(batches);
    if (!round.ok()) return round.error();

    auto stored = store_->append(store::kTableReceipts, window,
                                 round.value().round_id,
                                 round.value().receipt.to_bytes());
    if (!stored.ok()) return stored.error();
    receipts_.push_back(round.value().receipt);
    last_window_ = window;
    rounds.push_back(std::move(round.value()));

    metrics.histogram("core.pipeline.round_ms")
        .record(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - round_start)
                    .count());
    metrics.histogram("core.pipeline.batches_per_round")
        .record(static_cast<double>(batches.size()));
    metrics.counter("core.pipeline.windows_aggregated").add(1);
    metrics.gauge("core.pipeline.pending_windows")
        .set(static_cast<double>(pending.size() - rounds.size()));
  }
  return rounds;
}

}  // namespace zkt::core
