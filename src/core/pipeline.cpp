#include "core/pipeline.h"

#include <algorithm>
#include <thread>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zkt::core {

namespace {

/// Transient errors are worth retrying (a flaky disk or a briefly
/// unavailable backend); everything else — parse errors, integrity
/// violations, proof failures — is terminal and must halt the chain.
bool is_transient(Errc code) { return code == Errc::io_error; }

double ms(std::chrono::milliseconds d) {
  return static_cast<double>(d.count());
}

}  // namespace

Status ProviderPipeline::with_retry(
    const char* what, const std::function<Status()>& op) const {
  obs::Registry& metrics = obs::Registry::instance();
  const RetryPolicy& policy = options_.retry;
  const u32 attempts = std::max<u32>(policy.max_attempts, 1);
  std::chrono::milliseconds backoff = policy.base_backoff;
  for (u32 attempt = 1;; ++attempt) {
    Status status = op();
    if (status.ok() || !is_transient(status.code()) || attempt >= attempts) {
      return status;
    }
    ZKT_LOG(warn) << what << " failed transiently (attempt " << attempt << "/"
                  << attempts << "): " << status.to_string()
                  << "; backing off " << backoff.count() << " ms";
    metrics.counter("core.pipeline.retries").add(1);
    metrics.histogram("core.pipeline.retry_backoff_ms").record(ms(backoff));
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.max_backoff);
  }
}

Result<std::vector<u64>> ProviderPipeline::pending_windows() const {
  std::vector<u64> windows;
  const u64 from = last_window_.has_value() ? *last_window_ + 1 : 0;
  Status scanned = with_retry("pending-window scan", [&]() -> Status {
    windows.clear();
    return store_->for_each(store::kTableRlogs, from, ~0ULL,
                            [&](const store::StoredRow& row) {
                              windows.push_back(row.k1);
                            });
  });
  if (!scanned.ok()) return scanned.error();
  std::sort(windows.begin(), windows.end());
  windows.erase(std::unique(windows.begin(), windows.end()), windows.end());
  return windows;
}

Status ProviderPipeline::load_batches(
    u64 window, std::vector<netflow::RLogBatch>& batches) const {
  return with_retry("window batch load", [&]() -> Status {
    batches.clear();
    Status parse_status;
    Status scanned = store_->for_each(
        store::kTableRlogs, window, window,
        [&](const store::StoredRow& row) {
          if (!parse_status.ok()) return;
          Reader r(row.payload);
          auto batch = netflow::RLogBatch::deserialize(r);
          if (!batch.ok()) {
            parse_status = batch.error();
            return;
          }
          if (!r.done()) {
            parse_status =
                Error{Errc::parse_error, "trailing bytes in stored batch"};
            return;
          }
          batches.push_back(std::move(batch.value()));
        });
    if (!scanned.ok()) return scanned;
    return parse_status;
  });
}

Status ProviderPipeline::persist_round(u64 window,
                                       const AggregationRound& round) {
  obs::Registry& metrics = obs::Registry::instance();
  // Snapshot BEFORE receipt: a crash between the two appends leaves an
  // orphan snapshot (skipped at recover()) rather than a receipt the next
  // process would have to re-prove. See docs/RECOVERY.md.
  const bool snapshot_due =
      options_.checkpoint_every_n_rounds > 0 &&
      rounds_since_snapshot_ + 1 >= options_.checkpoint_every_n_rounds;
  if (snapshot_due) {
    const ChainSnapshot snap =
        ChainSnapshot::capture(round.round_id + 1, window,
                               round.receipt.claim.digest(),
                               aggregation_.state());
    const Bytes payload = snap.to_bytes();
    ZKT_TRY(with_retry("chain snapshot append", [&]() -> Status {
      auto id = store_->append(store::kTableChainState, window,
                               round.round_id, payload);
      return id.ok() ? Status{} : Status(id.error());
    }));
    metrics.counter("core.pipeline.snapshots").add(1);
  }
  ZKT_TRY(with_retry("receipt append", [&]() -> Status {
    auto id = store_->append(store::kTableReceipts, window, round.round_id,
                             round.receipt.to_bytes());
    return id.ok() ? Status{} : Status(id.error());
  }));
  rounds_since_snapshot_ = snapshot_due ? 0 : rounds_since_snapshot_ + 1;
  return {};
}

u64 ProviderPipeline::prune_aggregated() {
  if (!last_window_.has_value()) return 0;
  const u64 dropped = store_->drop_rows(store::kTableRlogs, *last_window_);
  obs::Registry::instance().counter("core.pipeline.pruned_rows").add(dropped);
  return dropped;
}

Result<std::vector<AggregationRound>> ProviderPipeline::aggregate_pending() {
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("pipeline_aggregate_pending");

  auto pending = pending_windows();
  if (!pending.ok()) return pending.error();
  // Pending-window lag before this run: how far the provider's proof chain
  // trails the routers' committed windows.
  metrics.gauge("core.pipeline.pending_windows")
      .set(static_cast<double>(pending.value().size()));

  std::vector<AggregationRound> rounds;
  for (u64 window : pending.value()) {
    const auto round_start = std::chrono::steady_clock::now();
    std::vector<netflow::RLogBatch> batches;
    if (Status loaded = load_batches(window, batches); !loaded.ok()) {
      return loaded.error();
    }
    auto round = aggregation_.aggregate(batches);
    if (!round.ok()) return round.error();

    if (Status persisted = persist_round(window, round.value());
        !persisted.ok()) {
      return persisted.error();
    }
    receipts_.push_back(round.value().receipt);
    last_window_ = window;
    rounds.push_back(std::move(round.value()));

    metrics.histogram("core.pipeline.round_ms")
        .record(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - round_start)
                    .count());
    metrics.histogram("core.pipeline.batches_per_round")
        .record(static_cast<double>(batches.size()));
    metrics.counter("core.pipeline.windows_aggregated").add(1);
    metrics.gauge("core.pipeline.pending_windows")
        .set(static_cast<double>(pending.value().size() - rounds.size()));
  }
  if (options_.prune_aggregated && !rounds.empty()) {
    prune_aggregated();
  }
  return rounds;
}

Result<ProviderPipeline::RecoveryInfo> ProviderPipeline::recover() {
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("pipeline_recover");
  if (aggregation_.has_rounds() || last_window_.has_value()) {
    return Error{Errc::invalid_argument,
                 "recover() must run before any aggregation"};
  }

  RecoveryInfo info;

  std::vector<store::StoredRow> snapshot_rows;
  Status scanned = with_retry("chain-state scan", [&]() -> Status {
    snapshot_rows.clear();
    return store_->for_each(store::kTableChainState, 0, ~0ULL,
                            [&](const store::StoredRow& row) {
                              snapshot_rows.push_back(row);
                            });
  });
  if (!scanned.ok()) return scanned.error();

  // Adopt the newest snapshot whose receipt checks out. Orphans (snapshot
  // appended, crash before its receipt) and unreadable rows are skipped in
  // favor of an older snapshot; a snapshot that *contradicts* its receipt
  // fails terminally below, inside restore().
  std::optional<ChainSnapshot> adopted;
  for (auto it = snapshot_rows.rbegin();
       it != snapshot_rows.rend() && !adopted.has_value(); ++it) {
    auto snap = ChainSnapshot::from_bytes(it->payload);
    if (!snap.ok()) {
      ZKT_LOG(warn) << "skipping unreadable chain snapshot (row " << it->id
                    << "): " << snap.error().to_string();
      ++info.snapshots_skipped;
      continue;
    }
    auto receipt_row = store_->latest(store::kTableReceipts,
                                      snap.value().window_id);
    if (!receipt_row.has_value()) {
      // Crash between snapshot append and receipt append.
      ++info.snapshots_skipped;
      continue;
    }
    auto receipt = zvm::Receipt::from_bytes(receipt_row->payload);
    if (!receipt.ok()) return receipt.error();
    if (receipt.value().claim.digest() != snap.value().claim_digest) {
      ZKT_LOG(warn) << "skipping chain snapshot for window "
                    << snap.value().window_id
                    << ": stored receipt has a different claim digest";
      ++info.snapshots_skipped;
      continue;
    }
    auto state = snap.value().restore_state();
    if (!state.ok()) return state.error();
    ZKT_TRY(aggregation_.restore(std::move(state.value()),
                                 std::move(receipt.value()),
                                 snap.value().round_id));
    adopted = std::move(snap.value());
  }
  if (adopted.has_value()) {
    info.resumed = true;
    info.rounds_restored = adopted->round_id;
    last_window_ = adopted->window_id;
  }

  // Roll forward over receipts proven after the adopted snapshot (or from
  // genesis when no snapshot was usable) by replaying their raw batches —
  // verified against the receipts' journals, never re-proven.
  std::vector<store::StoredRow> receipt_rows;
  scanned = with_retry("receipt scan", [&]() -> Status {
    receipt_rows.clear();
    return store_->for_each(store::kTableReceipts, 0, ~0ULL,
                            [&](const store::StoredRow& row) {
                              receipt_rows.push_back(row);
                            });
  });
  if (!scanned.ok()) return scanned.error();
  std::sort(receipt_rows.begin(), receipt_rows.end(),
            [](const store::StoredRow& a, const store::StoredRow& b) {
              return std::tie(a.k1, a.id) < std::tie(b.k1, b.id);
            });

  for (const auto& row : receipt_rows) {
    auto receipt = zvm::Receipt::from_bytes(row.payload);
    if (!receipt.ok()) return receipt.error();
    if (adopted.has_value() && row.k1 <= adopted->window_id) {
      // Part of the chain the snapshot already vouches for.
      receipts_.push_back(std::move(receipt.value()));
      continue;
    }
    std::vector<netflow::RLogBatch> batches;
    if (Status loaded = load_batches(row.k1, batches); !loaded.ok()) {
      return loaded.error();
    }
    if (batches.empty()) {
      return Error{Errc::chain_broken,
                   "receipt for window " + std::to_string(row.k1) +
                       " has no raw logs to replay (pruned before a chain "
                       "snapshot covered it?)"};
    }
    ZKT_TRY(aggregation_.replay_round(batches, receipt.value()));
    receipts_.push_back(std::move(receipt.value()));
    last_window_ = row.k1;
    ++info.rounds_replayed;
    info.resumed = true;
  }

  info.last_window = last_window_;
  if (info.resumed) {
    metrics.counter("core.pipeline.recoveries").add(1);
    metrics.gauge("core.pipeline.recovered_rounds")
        .set(static_cast<double>(info.rounds_restored + info.rounds_replayed));
    ZKT_LOG(info) << "pipeline recovered: " << info.rounds_restored
                  << " rounds from snapshot, " << info.rounds_replayed
                  << " replayed, resuming after window "
                  << (last_window_.has_value() ? std::to_string(*last_window_)
                                               : std::string("none"));
  }
  return info;
}

}  // namespace zkt::core
