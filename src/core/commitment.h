// Per-router hash commitments and the public bulletin board.
//
// Every commitment window (5 s in the paper's evaluation), each router
// computes H_i = SHA-256 over its RLog batch and publishes (router, window,
// H_i, record count), signed with the router's Schnorr key. The board is the
// paper's "published hashes" (Figure 1): any later modification of the RLogs
// is detectable because aggregation re-hashes the raw logs inside the zkVM
// and asserts equality with these published values.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "crypto/digest.h"
#include "crypto/schnorr.h"
#include "netflow/record.h"

namespace zkt::core {

using crypto::Digest32;

struct Commitment {
  u32 router_id = 0;
  u64 window_id = 0;
  Digest32 rlog_hash;
  u64 record_count = 0;
  u64 published_at_ms = 0;
  std::array<u8, 32> router_pubkey{};
  crypto::SchnorrSignature signature;

  /// The digest the router signs (everything but the signature).
  Digest32 signing_digest() const;

  void serialize(Writer& w) const;
  static Result<Commitment> deserialize(Reader& r);
  Bytes to_bytes() const;
};

/// Create and sign a commitment over an RLog batch.
Result<Commitment> make_commitment(const netflow::RLogBatch& batch,
                                   const crypto::SchnorrKeyPair& key,
                                   u64 published_at_ms);

/// Create and sign a commitment over an arbitrary payload hash (e.g. a
/// per-window Count-Min sketch); `record_count` carries the payload's item
/// count (sketch updates, records, ...).
Result<Commitment> make_commitment_raw(u32 router_id, u64 window_id,
                                       const Digest32& payload_hash,
                                       u64 record_count,
                                       const crypto::SchnorrKeyPair& key,
                                       u64 published_at_ms);

/// Verify a commitment's signature.
Status verify_commitment(const Commitment& c);

/// Append-only public bulletin board of commitments. Thread-safe. Publishing
/// twice for the same (router, window) with a different hash is rejected —
/// equivocation is the attack this board exists to prevent.
class CommitmentBoard {
 public:
  /// Validates the signature, then records the commitment.
  Status publish(const Commitment& c);

  std::optional<Commitment> get(u32 router_id, u64 window_id) const;
  std::vector<Commitment> window(u64 window_id) const;
  std::vector<Commitment> all() const;
  size_t size() const;

  /// Pin a router's public key; subsequent commitments from this router id
  /// must be signed by it (first-use pinning otherwise).
  void register_router(u32 router_id, const std::array<u8, 32>& pubkey);

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<u32, u64>, Commitment> entries_;
  std::map<u32, std::array<u8, 32>> pinned_keys_;
};

}  // namespace zkt::core
