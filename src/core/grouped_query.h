// Grouped verifiable queries: the proof equivalent of
//
//   SELECT group_field, COUNT(*), SUM(agg_field), MIN(...), MAX(...)
//   FROM clogs WHERE <predicate> GROUP BY group_field;
//
// One receipt proves the aggregates of every group at once — e.g. loss and
// RTT per content provider for the neutrality audit (§2.1), instead of one
// proof per provider. Always complete-scan: the guest walks the whole
// authenticated state, so group membership and totals are exhaustive.
#pragma once

#include "core/guests.h"
#include "core/service.h"

namespace zkt::core {

struct GroupEntry {
  u64 group_value = 0;  ///< the grouped field's value
  QueryResult stats;    ///< aggregates over entries in this group

  friend bool operator==(const GroupEntry&, const GroupEntry&) = default;
};

struct GroupedQueryJournal {
  Digest32 agg_claim_digest;
  Digest32 agg_root;
  u64 entry_count = 0;
  Query query;          ///< predicate + per-group aggregate
  QField group_field = QField::protocol;
  /// Groups with at least one matching entry, ascending by group value.
  std::vector<GroupEntry> groups;

  void write(Writer& w) const;
  static Result<GroupedQueryJournal> parse(BytesView journal);
};

zvm::ImageID grouped_query_image();

struct GroupedQueryResponse {
  zvm::Receipt receipt;
  GroupedQueryJournal journal;
  zvm::ProveInfo prove_info;
};

/// Prove a grouped query against the service's latest aggregated state.
Result<GroupedQueryResponse> run_grouped_query(
    const AggregationService& aggregation, const Query& query,
    QField group_field, const zvm::ProveOptions& options = {});

/// Reference (non-proving) evaluator; the guest must match it exactly.
std::vector<GroupEntry> evaluate_grouped(
    const Query& query, QField group_field,
    std::span<const netflow::FlowRecord> entries);

class Auditor;

/// Verifier side: verify the receipt, require that it targets an
/// aggregation round the auditor accepted, and optionally match the
/// expected query/group field.
Result<GroupedQueryJournal> verify_grouped_query(
    const zvm::Receipt& receipt, const Auditor& auditor,
    const Query* expected_query = nullptr,
    const QField* expected_group = nullptr);

}  // namespace zkt::core
