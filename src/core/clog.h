// CLog: the aggregated, Merkle-authenticated global flow dataset (Figure 2).
//
// A CLog entry is one per-flow aggregate (a netflow::FlowRecord whose
// counters are merged across routers and windows). Entries are kept in
// **flow-key-sorted order**: the sorted vector *is* the persistent
// FlowKey→index map (lookup by binary search), and — the property the
// incremental aggregation guest depends on — non-membership of a key is
// provable by opening just the two adjacent entries that bracket its
// insertion point. The Merkle tree over entry leaf digests (leaves in the
// same sorted order) is the authentication structure every aggregation
// round and query proves against. Inserting a new flow shifts the indices
// of every entry with a larger key.
//
// CLogState is the host-side (prover's) copy of this structure; the zkVM
// guest independently recomputes the same roots from its verified inputs, so
// a host that tampers with its copy simply fails to produce a proof.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "netflow/record.h"

namespace zkt::core {

using crypto::Digest32;

using CLogEntry = netflow::FlowRecord;

/// Leaf digest of a CLog entry (domain-separated Merkle leaf hash of the
/// entry's canonical serialization).
Digest32 clog_leaf_digest(const CLogEntry& entry);

/// One entry modified or created by an aggregation round. Indices refer to
/// the state *after* the update was applied (sorted positions).
struct CLogUpdate {
  u64 index = 0;
  bool created = false;  ///< true if the entry was newly inserted
  Digest32 new_leaf;
};

class CLogState {
 public:
  CLogState() = default;

  u64 entry_count() const { return entries_.size(); }
  const std::vector<CLogEntry>& entries() const { return entries_; }
  const CLogEntry& entry(u64 index) const { return entries_[index]; }

  /// Root of the authentication tree. Empty state has the empty-tree root.
  Digest32 root() const { return tree_.root(); }

  /// The underlying authentication tree (e.g. to copy + grow_capacity for
  /// delta-round multiproofs over not-yet-occupied slots).
  const crypto::MerkleTree& tree() const { return tree_; }

  /// Inclusion proof for an entry.
  crypto::MerkleProof prove(u64 index) const { return tree_.prove(index); }

  /// Batch inclusion proof for several entries.
  crypto::MerkleMultiProof prove_multi(std::span<const u64> indices) const {
    return tree_.prove_multi(indices);
  }

  /// Index of the entry for a flow key, if present (binary search).
  std::optional<u64> find(const netflow::FlowKey& key) const;

  /// Sorted insertion position for a key: the index of the first entry with
  /// key >= `key` (== entry_count() if all keys are smaller).
  u64 lower_bound(const netflow::FlowKey& key) const;

  /// Apply one batch of raw records (already authenticated by the caller):
  /// merge into existing entries or insert new ones at their sorted
  /// position. Returns the updates performed, in application order, with
  /// indices as of the moment each update was applied.
  std::vector<CLogUpdate> apply_records(
      std::span<const netflow::FlowRecord> records);

  /// Canonical serialization of every entry, in index (= key-sorted) order
  /// (the guest input representing the previous aggregation state).
  std::vector<Bytes> entry_bytes() const;

  /// Serialize the whole state (entry list, in key-sorted index order —
  /// the serialized order *is* the persisted key index). The Merkle tree
  /// is a derived structure and is rebuilt on deserialize, so the snapshot
  /// stays small and cannot disagree with its entries. Deserialize rejects
  /// entry lists that are not strictly ascending by flow key.
  void serialize(Writer& w) const;
  static Result<CLogState> deserialize(Reader& r);

  /// Deep self-check: entries strictly ascending by key (the implicit key
  /// index is intact) and the cached tree levels match a from-scratch
  /// rebuild over the entry leaves. Used after snapshot adoption in
  /// recovery paths.
  Status check_consistency() const;

 private:
  std::vector<CLogEntry> entries_;  // strictly ascending by FlowKey
  crypto::MerkleTree tree_;
};

}  // namespace zkt::core
