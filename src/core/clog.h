// CLog: the aggregated, Merkle-authenticated global flow dataset (Figure 2).
//
// A CLog entry is one per-flow aggregate (a netflow::FlowRecord whose
// counters are merged across routers and windows). Entries live at stable
// indices: existing flows are updated in place, new flows are appended in
// first-appearance order. The Merkle tree over entry leaf digests is the
// authentication structure every aggregation round and query proves against.
//
// CLogState is the host-side (prover's) copy of this structure; the zkVM
// guest independently recomputes the same roots from its verified inputs, so
// a host that tampers with its copy simply fails to produce a proof.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/merkle.h"
#include "netflow/record.h"

namespace zkt::core {

using crypto::Digest32;

using CLogEntry = netflow::FlowRecord;

/// Leaf digest of a CLog entry (domain-separated Merkle leaf hash of the
/// entry's canonical serialization).
Digest32 clog_leaf_digest(const CLogEntry& entry);

/// One entry modified or created by an aggregation round.
struct CLogUpdate {
  u64 index = 0;
  bool created = false;  ///< true if the entry was newly appended
  Digest32 new_leaf;
};

class CLogState {
 public:
  CLogState() = default;

  u64 entry_count() const { return entries_.size(); }
  const std::vector<CLogEntry>& entries() const { return entries_; }
  const CLogEntry& entry(u64 index) const { return entries_[index]; }

  /// Root of the authentication tree. Empty state has the empty-tree root.
  Digest32 root() const { return tree_.root(); }

  /// Inclusion proof for an entry.
  crypto::MerkleProof prove(u64 index) const { return tree_.prove(index); }

  /// Batch inclusion proof for several entries.
  crypto::MerkleMultiProof prove_multi(std::span<const u64> indices) const {
    return tree_.prove_multi(indices);
  }

  /// Index of the entry for a flow key, if present.
  std::optional<u64> find(const netflow::FlowKey& key) const;

  /// Apply one batch of raw records (already authenticated by the caller):
  /// merge into existing entries or append new ones. Returns the updates
  /// performed, in application order.
  std::vector<CLogUpdate> apply_records(
      std::span<const netflow::FlowRecord> records);

  /// Canonical serialization of every entry, in index order (the guest input
  /// representing the previous aggregation state).
  std::vector<Bytes> entry_bytes() const;

  /// Serialize the whole state (entry list, in index order). The key index
  /// and Merkle tree are derived structures and are rebuilt on deserialize,
  /// so the snapshot stays small and cannot disagree with its entries.
  void serialize(Writer& w) const;
  static Result<CLogState> deserialize(Reader& r);

 private:
  std::vector<CLogEntry> entries_;
  std::unordered_map<netflow::FlowKey, u64, netflow::FlowKeyHasher> index_;
  crypto::MerkleTree tree_;
};

}  // namespace zkt::core
