// Text parser for the query mini-language used by the CLI tools:
//
//   count
//   sum(hop_sum) where src_ip = 1.1.1.1 and dst_ip = 9.9.9.9
//   count where rtt_avg_us < 50000 and (protocol = 6 or protocol = 17)
//
// Grammar (case-insensitive keywords):
//   query  := agg [ "where" clause { "and" clause } ]
//   agg    := "count" | ("sum"|"min"|"max") "(" field ")"
//   clause := cond { "or" cond } | "(" cond { "or" cond } ")"
//   cond   := field op value
//   op     := "=" | "==" | "!=" | "<" | "<=" | ">" | ">="
//   value  := uint64 | IPv4 dotted quad
// Parentheses only group OR-clauses (the language is CNF like the AST).
#pragma once

#include "core/query.h"

namespace zkt::core {

Result<Query> parse_query(std::string_view text);

}  // namespace zkt::core
