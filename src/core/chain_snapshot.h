// ChainSnapshot: one durable record of the prover's chain position after an
// aggregation round — the serialized CLog state plus the identifiers that
// bind it to the round's receipt.
//
// ProviderPipeline appends one to store::kTableChainState (k1 = window id,
// k2 = round id) every checkpoint interval, *before* the round's receipt is
// appended: a crash between the two leaves an orphan snapshot with no
// matching receipt, which recover() simply skips in favor of an older one —
// the receipts table never runs ahead of a usable snapshot for the same
// round. See docs/RECOVERY.md for the full crash matrix.
//
// The snapshot is self-checking (CRC over the state bytes) and
// cross-checked at recovery: the claim digest must match the stored
// receipt, and the rebuilt state's Merkle root and entry count must match
// that receipt's journal. A tampered snapshot therefore cannot silently
// fork the chain — it fails recovery with a typed error instead.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "common/result.h"
#include "common/serial.h"
#include "core/clog.h"
#include "netflow/sketch.h"

namespace zkt::core {

struct ChainSnapshot {
  u64 round_id = 0;    ///< rounds completed up to and including this round
  u64 window_id = 0;   ///< last aggregated commitment window
  Digest32 claim_digest;  ///< claim digest of this round's receipt
  Digest32 root;          ///< CLog Merkle root after the round
  u64 entry_count = 0;    ///< CLog entries after the round
  Bytes state_bytes;      ///< CLogState::serialize output
  /// Proof-carrying round sketch after the round (DESIGN.md §10), CRC'd
  /// like state_bytes. Version-1 snapshots (pre-sketch) parse with
  /// has_sketch = false; recovery then rejects them for sketched chains,
  /// the same way a claim-digest mismatch is rejected.
  bool has_sketch = false;
  Bytes sketch_bytes;  ///< RoundSketch canonical bytes when has_sketch

  /// Build from live chain state (serializes `state`, and `sketch` when the
  /// chain carries one).
  static ChainSnapshot capture(u64 round_id, u64 window_id,
                               const Digest32& claim_digest,
                               const CLogState& state,
                               const netflow::RoundSketch* sketch = nullptr);

  /// Rebuild the CLog state and verify it against the snapshot's own root
  /// and entry count.
  Result<CLogState> restore_state() const;

  /// Rebuild the round sketch (nullopt when the snapshot carries none).
  Result<std::optional<netflow::RoundSketch>> restore_sketch() const;

  Bytes to_bytes() const;
  static Result<ChainSnapshot> from_bytes(BytesView data);
};

/// One durable record of a SHARDED round's chain position: the per-shard
/// chain snapshots of one round, bundled so recovery adopts all K shard
/// chains (or none) atomically. ProviderPipeline appends one to
/// store::kTableShardState (k1 = window id, k2 = round id) per checkpoint
/// interval, before the round's shard receipts — the same
/// snapshot-before-receipt ordering the single-chain path uses, so a crash
/// between the appends orphans the snapshot instead of stranding receipts
/// ahead of any usable snapshot.
struct ShardedChainSnapshot {
  u64 round_id = 0;
  u64 window_id = 0;
  u32 shard_count = 0;
  /// Per-shard snapshots, in shard order. Each inner claim_digest names the
  /// shard's own receipt for this round.
  std::vector<ChainSnapshot> shards;

  Bytes to_bytes() const;
  static Result<ShardedChainSnapshot> from_bytes(BytesView data);
};

}  // namespace zkt::core
