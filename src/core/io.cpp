#include "core/io.h"

#include <cstdio>

#include "store/logstore.h"  // crc32

namespace zkt::core {

namespace {

constexpr std::string_view kCommitmentsMagic = "ZKTCOMM1";
constexpr std::string_view kReceiptsMagic = "ZKTRCPT1";

Bytes frame_items(std::string_view magic, const std::vector<Bytes>& items) {
  Writer w;
  w.str(magic);
  w.varint(items.size());
  for (const auto& item : items) {
    w.blob(item);
    w.u32v(store::crc32(item));
  }
  return std::move(w).take();
}

Result<std::vector<Bytes>> unframe_items(std::string_view magic,
                                         BytesView data) {
  Reader r(data);
  auto m = r.str();
  if (!m.ok()) return m.error();
  if (m.value() != magic) {
    return Error{Errc::parse_error, "bad file magic"};
  }
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > (1u << 20)) {
    return Error{Errc::parse_error, "unreasonable item count"};
  }
  std::vector<Bytes> items;
  items.reserve(n.value());
  for (u64 i = 0; i < n.value(); ++i) {
    auto item = r.blob();
    if (!item.ok()) return item.error();
    auto crc = r.u32v();
    if (!crc.ok()) return crc.error();
    if (store::crc32(item.value()) != crc.value()) {
      return Error{Errc::parse_error,
                   "item " + std::to_string(i) + " failed CRC"};
    }
    items.push_back(std::move(item.value()));
  }
  if (!r.done()) return Error{Errc::parse_error, "trailing file bytes"};
  return items;
}

// --- streaming reads -------------------------------------------------------

/// LEB128 varint straight off the file, mirroring Reader::varint's limits.
Result<u64> fread_varint(std::FILE* f) {
  u64 value = 0;
  for (u32 shift = 0; shift < 64; shift += 7) {
    const int c = std::fgetc(f);
    if (c == EOF) return Error{Errc::parse_error, "short read"};
    value |= static_cast<u64>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return value;
  }
  return Error{Errc::parse_error, "varint too long"};
}

Result<Bytes> fread_exact(std::FILE* f, size_t n) {
  Bytes out(n);
  if (n != 0 && std::fread(out.data(), 1, n, f) != n) {
    return Error{Errc::parse_error, "short read"};
  }
  return out;
}

}  // namespace

Result<ReceiptFileSource> ReceiptFileSource::open(const std::string& path,
                                                  Options options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error{Errc::io_error, "cannot open for reading: " + path};
  }
  ReceiptFileSource source(f, options);
  // Header: varint-length-prefixed magic string, then the item count —
  // exactly the unframe_items() validation, done incrementally.
  auto magic_len = fread_varint(f);
  if (!magic_len.ok()) return magic_len.error();
  if (magic_len.value() != kReceiptsMagic.size()) {
    return Error{Errc::parse_error, "bad file magic"};
  }
  auto magic = fread_exact(f, kReceiptsMagic.size());
  if (!magic.ok()) return magic.error();
  if (std::string_view(reinterpret_cast<const char*>(magic.value().data()),
                       magic.value().size()) != kReceiptsMagic) {
    return Error{Errc::parse_error, "bad file magic"};
  }
  auto n = fread_varint(f);
  if (!n.ok()) return n.error();
  if (n.value() > (1u << 20)) {
    return Error{Errc::parse_error, "unreasonable item count"};
  }
  source.count_ = n.value();
  return source;
}

Result<std::optional<zvm::Receipt>> ReceiptFileSource::next() {
  if (failed_.has_value()) return *failed_;
  const auto fail = [this](Error e) -> Result<std::optional<zvm::Receipt>> {
    failed_ = e;
    return e;
  };
  if (read_ == count_) {
    // Clean end-of-stream requires the file to end exactly here.
    if (std::fgetc(file_.get()) != EOF) {
      return fail({Errc::parse_error, "trailing file bytes"});
    }
    return std::optional<zvm::Receipt>{};
  }
  if (options_.fault != nullptr &&
      options_.fault->fire(store::FaultPoint::scan)) {
    return fail({Errc::io_error, "injected fault: receipt scan"});
  }
  auto len = fread_varint(file_.get());
  if (!len.ok()) return fail(len.error());
  if (len.value() > (1u << 30)) {
    return fail({Errc::parse_error, "unreasonable item size"});
  }
  auto item = fread_exact(file_.get(), len.value());
  if (!item.ok()) return fail(item.error());
  // 4-byte little-endian CRC, as written by frame_items.
  std::array<u8, 4> crc_bytes;
  if (std::fread(crc_bytes.data(), 1, 4, file_.get()) != 4) {
    return fail({Errc::parse_error, "short read"});
  }
  const u32 crc = static_cast<u32>(crc_bytes[0]) |
                  static_cast<u32>(crc_bytes[1]) << 8 |
                  static_cast<u32>(crc_bytes[2]) << 16 |
                  static_cast<u32>(crc_bytes[3]) << 24;
  if (store::crc32(item.value()) != crc) {
    return fail({Errc::parse_error,
                 "item " + std::to_string(read_) + " failed CRC"});
  }
  auto receipt = zvm::Receipt::from_bytes(item.value());
  if (!receipt.ok()) return fail(receipt.error());
  ++read_;
  return std::optional<zvm::Receipt>{std::move(receipt.value())};
}

Status for_each_receipt(
    const std::string& path,
    const std::function<Status(zvm::Receipt&&)>& visit) {
  auto source = ReceiptFileSource::open(path);
  if (!source.ok()) return source.error();
  for (;;) {
    auto receipt = source.value().next();
    if (!receipt.ok()) return receipt.error();
    if (!receipt.value().has_value()) return {};
    ZKT_TRY(visit(std::move(*receipt.value())));
  }
}

Status write_file(const std::string& path, BytesView data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Error{Errc::io_error, "cannot open for writing: " + path};
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Error{Errc::io_error, "short write: " + path};
  }
  return {};
}

Result<Bytes> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error{Errc::io_error, "cannot open for reading: " + path};
  }
  Bytes out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

Status save_commitments(const CommitmentBoard& board,
                        const std::string& path) {
  std::vector<Bytes> items;
  for (const auto& commitment : board.all()) {
    items.push_back(commitment.to_bytes());
  }
  return write_file(path, frame_items(kCommitmentsMagic, items));
}

Status load_commitments(const std::string& path, CommitmentBoard& board) {
  auto data = read_file(path);
  if (!data.ok()) return data.error();
  auto items = unframe_items(kCommitmentsMagic, data.value());
  if (!items.ok()) return items.error();
  for (const auto& item : items.value()) {
    Reader r(item);
    auto commitment = Commitment::deserialize(r);
    if (!commitment.ok()) return commitment.error();
    ZKT_TRY(board.publish(commitment.value()));
  }
  return {};
}

Status save_receipts(const std::vector<zvm::Receipt>& receipts,
                     const std::string& path) {
  std::vector<Bytes> items;
  items.reserve(receipts.size());
  for (const auto& receipt : receipts) {
    items.push_back(receipt.to_bytes());
  }
  return write_file(path, frame_items(kReceiptsMagic, items));
}

Result<std::vector<zvm::Receipt>> load_receipts(const std::string& path) {
  auto data = read_file(path);
  if (!data.ok()) return data.error();
  auto items = unframe_items(kReceiptsMagic, data.value());
  if (!items.ok()) return items.error();
  std::vector<zvm::Receipt> receipts;
  receipts.reserve(items.value().size());
  for (const auto& item : items.value()) {
    auto receipt = zvm::Receipt::from_bytes(item);
    if (!receipt.ok()) return receipt.error();
    receipts.push_back(std::move(receipt.value()));
  }
  return receipts;
}

}  // namespace zkt::core
