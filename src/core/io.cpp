#include "core/io.h"

#include <cstdio>

#include "store/logstore.h"  // crc32

namespace zkt::core {

namespace {

constexpr std::string_view kCommitmentsMagic = "ZKTCOMM1";
constexpr std::string_view kReceiptsMagic = "ZKTRCPT1";

Bytes frame_items(std::string_view magic, const std::vector<Bytes>& items) {
  Writer w;
  w.str(magic);
  w.varint(items.size());
  for (const auto& item : items) {
    w.blob(item);
    w.u32v(store::crc32(item));
  }
  return std::move(w).take();
}

Result<std::vector<Bytes>> unframe_items(std::string_view magic,
                                         BytesView data) {
  Reader r(data);
  auto m = r.str();
  if (!m.ok()) return m.error();
  if (m.value() != magic) {
    return Error{Errc::parse_error, "bad file magic"};
  }
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > (1u << 20)) {
    return Error{Errc::parse_error, "unreasonable item count"};
  }
  std::vector<Bytes> items;
  items.reserve(n.value());
  for (u64 i = 0; i < n.value(); ++i) {
    auto item = r.blob();
    if (!item.ok()) return item.error();
    auto crc = r.u32v();
    if (!crc.ok()) return crc.error();
    if (store::crc32(item.value()) != crc.value()) {
      return Error{Errc::parse_error,
                   "item " + std::to_string(i) + " failed CRC"};
    }
    items.push_back(std::move(item.value()));
  }
  if (!r.done()) return Error{Errc::parse_error, "trailing file bytes"};
  return items;
}

}  // namespace

Status write_file(const std::string& path, BytesView data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Error{Errc::io_error, "cannot open for writing: " + path};
  }
  const size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Error{Errc::io_error, "short write: " + path};
  }
  return {};
}

Result<Bytes> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Error{Errc::io_error, "cannot open for reading: " + path};
  }
  Bytes out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

Status save_commitments(const CommitmentBoard& board,
                        const std::string& path) {
  std::vector<Bytes> items;
  for (const auto& commitment : board.all()) {
    items.push_back(commitment.to_bytes());
  }
  return write_file(path, frame_items(kCommitmentsMagic, items));
}

Status load_commitments(const std::string& path, CommitmentBoard& board) {
  auto data = read_file(path);
  if (!data.ok()) return data.error();
  auto items = unframe_items(kCommitmentsMagic, data.value());
  if (!items.ok()) return items.error();
  for (const auto& item : items.value()) {
    Reader r(item);
    auto commitment = Commitment::deserialize(r);
    if (!commitment.ok()) return commitment.error();
    ZKT_TRY(board.publish(commitment.value()));
  }
  return {};
}

Status save_receipts(const std::vector<zvm::Receipt>& receipts,
                     const std::string& path) {
  std::vector<Bytes> items;
  items.reserve(receipts.size());
  for (const auto& receipt : receipts) {
    items.push_back(receipt.to_bytes());
  }
  return write_file(path, frame_items(kReceiptsMagic, items));
}

Result<std::vector<zvm::Receipt>> load_receipts(const std::string& path) {
  auto data = read_file(path);
  if (!data.ok()) return data.error();
  auto items = unframe_items(kReceiptsMagic, data.value());
  if (!items.ok()) return items.error();
  std::vector<zvm::Receipt> receipts;
  receipts.reserve(items.value().size());
  for (const auto& item : items.value()) {
    auto receipt = zvm::Receipt::from_bytes(item);
    if (!receipt.ok()) return receipt.error();
    receipts.push_back(std::move(receipt.value()));
  }
  return receipts;
}

}  // namespace zkt::core
