// Chain summaries and epoch seals: merge a span of aggregation rounds into
// ONE receipt — §7's "partial proofs can then be merged into a single final
// proof", applied to the round chain, incrementally.
//
// The summary guest folds a mixed list of children in chain order. A child
// is either an aggregation ROUND receipt or a prior SUMMARY receipt; every
// child is verified via the assumption mechanism (exactly like
// zkt.guest.join binds its children) and the chain links — claim digest,
// Merkle root, entry count, sketch digest — are re-checked inside the
// proven execution across every splice point. That makes summaries
// *incremental*:
//
//   summary(0..j) = fold(summary(0..i), rounds(i+1..j))
//
// so extending a sealed chain by one epoch costs O(epoch), not O(chain).
//
// The journal is CONSTANT SIZE in the rounds covered: instead of the full
// consumed-commitment list it carries a running commitment-chain digest
// (first -> final, domain "zkt.epoch.commitments.v1" — the same trick the
// AGG1 journal uses for its touched-entry list). The ordered CommitmentRef
// list travels out-of-band (EpochSeal records, files); the verifier
// recomputes the chain with host hashing and cross-checks every ref against
// the public board, so an auditor who was offline for the whole history
// verifies one receipt + a ref list — no round-by-round replay.
#pragma once

#include "core/auditor.h"
#include "core/guests.h"
#include "zvm/prover.h"

namespace zkt::core {

/// Public journal of a chain-summary / epoch-seal receipt ("EPOCH1").
/// Describes a SPAN of consecutive rounds: the chain state it folds from
/// (first_*) and the state it establishes (final_*). A genesis span folds
/// from the empty chain; a non-genesis span is only meaningful spliced onto
/// a summary whose finals equal its firsts.
struct ChainSummaryJournal {
  u64 rounds = 0;        ///< rounds the span covers
  bool genesis = false;  ///< span starts at the chain's genesis round

  // Span-start links (what the span chains FROM; zero/empty at genesis).
  Digest32 first_claim_digest;  ///< prev-claim of the span's first round
  Digest32 first_root;          ///< Merkle root before the span
  u64 first_entry_count = 0;

  // Span-end state (what the span establishes).
  Digest32 final_claim_digest;  ///< claim of the last round in the span
  Digest32 final_root;
  u64 final_entry_count = 0;

  // Commitment-chain digest: hash-chained over every CommitmentRef the span
  // consumed, in consumption order, starting from first_commitments_digest
  // (the genesis init is sha256("zkt.epoch.commitments.v1")). Constant size
  // no matter how many rounds/commitments the span covers.
  u64 commitment_count = 0;
  Digest32 first_commitments_digest;
  Digest32 final_commitments_digest;

  // Proof-carrying sketch continuity (DESIGN.md §10), chained through the
  // span exactly like the Merkle root so a cold verifier re-establishes the
  // sketch position from the seal alone.
  bool has_sketch = false;
  netflow::SketchParams sketch_params;
  Digest32 first_sketch_digest;  ///< prev sketch digest before the span
  Digest32 final_sketch_digest;  ///< sketch digest after the span
  u64 final_sketch_total = 0;

  void write(Writer& w) const;
  static Result<ChainSummaryJournal> parse(BytesView journal);

  /// The summarized chain head in Auditor::adopt_summary form. Only
  /// meaningful for genesis-anchored spans (rounds counts from genesis).
  ChainHead head() const {
    return ChainHead{rounds, final_claim_digest, final_root,
                     final_entry_count};
  }
};

zvm::ImageID chain_summary_image();
bool is_chain_summary_image(const zvm::ImageID& image);

/// Host mirror of the in-guest commitment-chain digest: the init value and
/// one fold step per consumed ref. Catch-up verifiers replay this (cheap
/// host SHA-256) over the out-of-band ref list to anchor a seal's
/// final_commitments_digest.
Digest32 epoch_commitments_init();
Digest32 epoch_commitments_fold(const Digest32& digest,
                                const CommitmentRef& ref);

struct ChainSummaryResponse {
  zvm::Receipt receipt;
  ChainSummaryJournal journal;
  /// Commitment refs consumed by ROUND children, in consumption order (a
  /// summary child's refs are NOT re-materialized here — the caller holding
  /// the child's seal record already has them; see EpochSeal).
  std::vector<CommitmentRef> commitments;
  zvm::ProveInfo prove_info;
};

/// Per-call options for prove_epoch_span, per the repo's options-struct
/// convention.
struct EpochSpanOptions {
  /// Commitment-chain digest before the span. Required when the span's
  /// first child is a NON-genesis round; ignored when the first child is a
  /// summary (derived from its journal) and must be absent-or-init when the
  /// span starts at genesis.
  std::optional<Digest32> first_commitments_digest;
  zvm::ProveOptions prove_options;
};

/// Prove a summary over a mixed child list in chain order: each child is
/// either an aggregation-round receipt or a prior summary receipt, and
/// consecutive children must chain (finals == nexts' firsts — asserted
/// in-trace). This is the incremental fold: [prior_summary, new rounds…]
/// extends a sealed prefix by a span of new rounds in O(span), and
/// [seal_a, seal_b] merges two adjacent seals in O(1) rounds' work (the
/// binary-counter ladder's merge step). A genesis-anchored summary child
/// can only appear first.
Result<ChainSummaryResponse> prove_epoch_span(
    std::span<const zvm::Receipt> children,
    const EpochSpanOptions& options = {});

/// Prove a summary over `rounds` (the full chain from genesis, in order) —
/// the non-incremental convenience wrapper over prove_epoch_span.
Result<ChainSummaryResponse> prove_chain_summary(
    std::span<const zvm::Receipt> rounds,
    const zvm::ProveOptions& options = {});

/// Verifier side: verify the summary receipt, recompute the commitment
/// chain from `commitments` (the span's out-of-band ordered ref list) and
/// check it lands on the journal's final digest, then cross-check every ref
/// against the public board. Genesis spans must start from the init digest.
/// On success returns the journal — the caller may then hand a
/// genesis-anchored journal to Auditor::adopt_summary. `options` follows
/// the unified verifier surface (expected_query is ignored here; stats are
/// merged when set).
Result<ChainSummaryJournal> verify_chain_summary(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    std::span<const CommitmentRef> commitments,
    const VerifyOptions& options = {});

}  // namespace zkt::core
