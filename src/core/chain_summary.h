// Chain summaries: merge a whole chain of aggregation receipts into ONE
// receipt — §7's "partial proofs can then be merged into a single final
// proof", applied to the round chain.
//
// The summary guest verifies every round receipt (via the assumption
// mechanism), re-checks the chain links (claim digests, Merkle-root and
// entry-count continuity, genesis rules) inside the proven execution, and
// publishes: the final state root/claim plus the full list of consumed
// commitments. An auditor who was offline for the whole history verifies
// one receipt and cross-checks the commitment list against the public
// board — no round-by-round replay.
#pragma once

#include "core/auditor.h"
#include "core/guests.h"
#include "zvm/prover.h"

namespace zkt::core {

struct ChainSummaryJournal {
  u64 rounds = 0;
  Digest32 final_claim_digest;   ///< claim of the last round in the chain
  Digest32 final_root;
  u64 final_entry_count = 0;
  /// Every commitment consumed across the chain, in consumption order.
  std::vector<CommitmentRef> commitments;

  void write(Writer& w) const;
  static Result<ChainSummaryJournal> parse(BytesView journal);

  /// The summarized chain head in Auditor::adopt_summary form.
  ChainHead head() const {
    return ChainHead{rounds, final_claim_digest, final_root,
                     final_entry_count};
  }
};

zvm::ImageID chain_summary_image();

struct ChainSummaryResponse {
  zvm::Receipt receipt;
  ChainSummaryJournal journal;
  zvm::ProveInfo prove_info;
};

/// Prove a summary over `rounds` (the full chain from genesis, in order).
Result<ChainSummaryResponse> prove_chain_summary(
    std::span<const zvm::Receipt> rounds,
    const zvm::ProveOptions& options = {});

/// Verifier side: verify the summary receipt and cross-check every consumed
/// commitment against the public board. On success returns the journal —
/// the caller may then hand its head() to Auditor::adopt_summary. `options`
/// follows the unified verifier surface (expected_query is ignored here;
/// stats are merged when set).
Result<ChainSummaryJournal> verify_chain_summary(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    const VerifyOptions& options = {});

}  // namespace zkt::core
