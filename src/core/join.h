// Proof-tree aggregation, guest side: the join guest folds child receipts —
// per-shard aggregation rounds at the leaves, lower join nodes above them —
// into one claim.
//
// A join guest verifies each child exactly the way a round verifier would
// (traced claim-digest recomputation + assumption + journal authentication)
// and commits a journal binding every leaf's chain-link fields in leaf
// order, plus an order-binding fold digest. Folding level by level gives a
// log_fanout(K)-depth tree whose interior joins prove composite (each
// embeds its children as assumption receipts) and whose root takes the
// caller's seal kind — succinct for the paper's constant-size seal.
// Verifying the one root receipt therefore transitively verifies all K
// shard chains: §7's parallel proving no longer costs the verifier O(K)
// receipts per round.
//
// This header (and join.cpp, a zkt-lint guest-determinism root) is
// guest-reachable: no clocks, threads, or floats. The host-side fold
// orchestration lives in core/fold.h.
#pragma once

#include "core/guests.h"
#include "zvm/receipt.h"

namespace zkt::core {

/// Chain-link fields of one leaf (per-shard aggregation receipt) under a
/// join node, extracted from the leaf's AggJournal inside the guest. Links
/// are published left to right, so a leaf's position in `JoinJournal::links`
/// IS its shard id — the auditor matches links[s] against shard s's split
/// outputs, which is what makes swapped shard receipts detectable.
struct ShardLink {
  Digest32 claim_digest;  ///< the leaf receipt's (verified) claim digest
  bool has_prev = false;
  Digest32 prev_claim_digest;
  Digest32 prev_root;
  Digest32 new_root;
  u64 prev_entry_count = 0;
  u64 new_entry_count = 0;
  /// Sub-batch commitments the leaf round consumed (AggJournal order).
  std::vector<CommitmentRef> commitments;
  /// Per-shard sketch chaining (DESIGN.md §10), lifted from the leaf's
  /// AggJournal so the sharded auditor can check each shard's sketch
  /// continuity from the seal alone.
  bool has_sketch = false;
  Digest32 prev_sketch_digest;
  Digest32 sketch_digest;

  friend bool operator==(const ShardLink&, const ShardLink&) = default;
};

/// Public journal of a join proof ("JOIN1" magic).
struct JoinJournal {
  u32 height = 0;         ///< 1 for a join of leaves, 1 + max child above
  u64 leaf_count = 0;     ///< aggregation receipts under this node
  u64 total_entries = 0;  ///< sum of links[i].new_entry_count
  /// Order-binding digest of the fold: traced SHA-256 over
  /// "zkt.join.fold.v1" || child fold values, where a leaf child's fold
  /// value is its claim digest and a join child's is its fold_digest.
  /// Reordering children or regrouping the tree changes this digest.
  Digest32 fold_digest;
  /// Every leaf's chain links, left to right (= shard order).
  std::vector<ShardLink> links;
  /// Round-sketch summation: when the children carry sketches (all or
  /// none), the join merges them with traced saturating adds and publishes
  /// the merged digest — so the tree seal binds ONE round sketch covering
  /// every shard.
  bool has_sketch = false;
  netflow::SketchParams sketch_params;
  Digest32 sketch_digest;  ///< hash of the merged round sketch bytes
  u64 sketch_total = 0;

  void write(Writer& w) const;
  static Result<JoinJournal> parse(BytesView journal);
};

/// Child kind tags in a join guest's input stream.
inline constexpr u8 kJoinChildAggregation = 0;
inline constexpr u8 kJoinChildJoin = 1;

/// The join guest's image (registered on first use).
zvm::ImageID join_image();

/// True iff `image` is the join guest image.
bool is_join_image(const zvm::ImageID& image);

/// Append one child — kind tag (see kJoinChild*), canonical claim
/// serialization, journal blob, then the sketch section (u8 has_sketch
/// [+ blob sketch_bytes]) — to a join guest input. `sketch_bytes` must be
/// the child's round-sketch canonical bytes when its journal chains a
/// sketch digest, nullptr otherwise. fold_receipts uses this; exposed so
/// soundness tests can craft malformed inputs around it.
void write_join_child(Writer& input, const zvm::Receipt& child,
                      const Bytes* sketch_bytes = nullptr);

}  // namespace zkt::core
