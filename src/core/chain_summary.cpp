#include "core/chain_summary.h"

#include "crypto/merkle.h"
#include "crypto/sha256.h"

namespace zkt::core {

namespace {

using zvm::AluOp;
using zvm::Env;

/// Child kinds in the summary guest's input stream.
constexpr u8 kEpochChildRound = 0;
constexpr u8 kEpochChildSummary = 1;

constexpr std::string_view kCommitmentsDomain = "zkt.epoch.commitments.v1";

/// Canonical bytes of one commitment-chain fold step (shared by the guest's
/// traced fold and the host mirror below).
Bytes commitments_fold_bytes(const Digest32& digest,
                             const CommitmentRef& ref) {
  Writer w;
  w.fixed(digest.bytes);
  write_commitment_ref(w, ref);
  return Bytes(w.bytes().begin(), w.bytes().end());
}

Bytes commitments_domain_bytes() {
  Writer w;
  w.str(kCommitmentsDomain);
  return Bytes(w.bytes().begin(), w.bytes().end());
}

/// Running fold state threaded through the summary guest, child by child.
struct FoldState {
  bool started = false;
  ChainSummaryJournal out;  ///< firsts/sketch head filled at the first child
  Digest32 prev_claim;      ///< claim digest of the last folded round
  Digest32 prev_root;
  u64 prev_count = 0;
  Digest32 commitments_digest;
  Digest32 sketch_digest;  ///< digest after the last folded round
};

/// Fold one ROUND child: bind it (claim digest recomputed with traced
/// hashing, receipt required via assumption, journal authenticated), check
/// the chain links in-trace, and advance the running state — including one
/// traced hash per consumed commitment for the running commitment chain.
Status fold_round_child(Env& env, FoldState& st,
                        const Digest32& claimed_first_commitments) {
  auto binding = detail::bind_aggregation(env);
  if (!binding.ok()) return binding.error();
  const AggJournal& j = binding.value().journal;

  if (!st.started) {
    st.started = true;
    st.out.genesis = !j.has_prev;
    if (st.out.genesis) {
      ZKT_TRY(env.assert_true(j.prev_entry_count == 0,
                              "genesis starts empty"));
      ZKT_TRY(env.assert_eq(j.prev_root, crypto::MerkleTree::empty_leaf(),
                            "genesis root"));
      // A genesis span's commitment chain starts at the domain init — the
      // claimed input cannot smuggle in a different anchor.
      const Digest32 init = env.sha256(commitments_domain_bytes());
      ZKT_TRY(env.assert_eq(claimed_first_commitments, init,
                            "genesis commitment-chain init"));
    }
    st.out.first_claim_digest = j.prev_claim_digest;
    st.out.first_root = j.prev_root;
    st.out.first_entry_count = j.prev_entry_count;
    st.out.first_commitments_digest = claimed_first_commitments;
    st.out.has_sketch = j.has_sketch;
    if (j.has_sketch) {
      st.out.sketch_params = j.sketch_params;
      st.out.first_sketch_digest = j.prev_sketch_digest;
    }
    st.commitments_digest = claimed_first_commitments;
  } else {
    ZKT_TRY(env.assert_true(j.has_prev, "non-genesis round must chain"));
    ZKT_TRY(env.assert_eq(j.prev_claim_digest, st.prev_claim,
                          "claim chain link"));
    ZKT_TRY(env.assert_eq(j.prev_root, st.prev_root, "root chain link"));
    const u64 eq = env.alu(AluOp::eq, j.prev_entry_count, st.prev_count);
    ZKT_TRY(env.assert_true(eq == 1, "entry count chain link"));
    ZKT_TRY(env.assert_true(j.has_sketch == st.out.has_sketch,
                            "round disagrees about sketch carriage"));
    if (st.out.has_sketch) {
      ZKT_TRY(env.assert_true(j.sketch_params == st.out.sketch_params,
                              "sketch params changed mid-span"));
      ZKT_TRY(env.assert_eq(j.prev_sketch_digest, st.sketch_digest,
                            "sketch chain link"));
    }
  }

  for (const auto& ref : j.commitments) {
    st.commitments_digest =
        env.sha256(commitments_fold_bytes(st.commitments_digest, ref));
    st.out.commitment_count =
        env.alu(AluOp::add, st.out.commitment_count, 1);
  }
  st.out.rounds = env.alu(AluOp::add, st.out.rounds, 1);
  st.prev_claim = binding.value().claim_digest;
  st.prev_root = j.new_root;
  st.prev_count = j.new_entry_count;
  if (j.has_sketch) {
    st.sketch_digest = j.sketch_digest;
    st.out.final_sketch_total = j.sketch_total;
  }
  return {};
}

/// Fold one SUMMARY child: bind it like a join child, then splice — either
/// adopt its span head (first position) or assert its firsts equal our
/// running finals (every later position), and jump the running state to its
/// finals. The commitment chain jumps with it: the child already proved the
/// fold over its own span.
Status fold_summary_child(Env& env, FoldState& st,
                          const Digest32& claimed_first_commitments) {
  auto bound = detail::bind_receipt(env, is_chain_summary_image,
                                    "summary child must be a chain summary");
  if (!bound.ok()) return bound.error();
  auto parsed = ChainSummaryJournal::parse(bound.value().journal);
  if (!parsed.ok()) return parsed.error();
  const ChainSummaryJournal& c = parsed.value();
  ZKT_TRY(env.assert_true(c.rounds >= 1, "summary child covers no rounds"));

  if (!st.started) {
    st.started = true;
    st.out.genesis = c.genesis;
    st.out.first_claim_digest = c.first_claim_digest;
    st.out.first_root = c.first_root;
    st.out.first_entry_count = c.first_entry_count;
    st.out.first_commitments_digest = c.first_commitments_digest;
    ZKT_TRY(env.assert_eq(claimed_first_commitments,
                          c.first_commitments_digest,
                          "claimed commitment-chain start vs summary child"));
    st.out.has_sketch = c.has_sketch;
    if (c.has_sketch) {
      st.out.sketch_params = c.sketch_params;
      st.out.first_sketch_digest = c.first_sketch_digest;
    }
  } else {
    // A genesis-anchored child cannot be spliced after other children —
    // that would double-count the prefix (the gap/overlap guard).
    ZKT_TRY(env.assert_true(!c.genesis,
                            "genesis summary child must be first"));
    ZKT_TRY(env.assert_eq(c.first_claim_digest, st.prev_claim,
                          "summary splice claim link"));
    ZKT_TRY(env.assert_eq(c.first_root, st.prev_root,
                          "summary splice root link"));
    const u64 eq = env.alu(AluOp::eq, c.first_entry_count, st.prev_count);
    ZKT_TRY(env.assert_true(eq == 1, "summary splice entry count link"));
    ZKT_TRY(env.assert_eq(c.first_commitments_digest, st.commitments_digest,
                          "summary splice commitment-chain link"));
    ZKT_TRY(env.assert_true(c.has_sketch == st.out.has_sketch,
                            "summary child disagrees about sketch carriage"));
    if (st.out.has_sketch) {
      ZKT_TRY(env.assert_true(c.sketch_params == st.out.sketch_params,
                              "sketch params changed across splice"));
      ZKT_TRY(env.assert_eq(c.first_sketch_digest, st.sketch_digest,
                            "summary splice sketch link"));
    }
  }

  st.out.rounds = env.alu(AluOp::add, st.out.rounds, c.rounds);
  st.out.commitment_count =
      env.alu(AluOp::add, st.out.commitment_count, c.commitment_count);
  st.commitments_digest = c.final_commitments_digest;
  st.prev_claim = c.final_claim_digest;
  st.prev_root = c.final_root;
  st.prev_count = c.final_entry_count;
  if (c.has_sketch) {
    st.sketch_digest = c.final_sketch_digest;
    st.out.final_sketch_total = c.final_sketch_total;
  }
  return {};
}

Status chain_summary_guest(Env& env) {
  auto n_children = env.read_u32();
  if (!n_children.ok()) return n_children.error();
  ZKT_TRY(env.assert_true(
      n_children.value() >= 1 && n_children.value() <= (1u << 20),
      "summary child count range"));

  auto claimed = env.read_blob();
  if (!claimed.ok()) return claimed.error();
  if (claimed.value().size() != sizeof(Digest32::bytes)) {
    return Error{Errc::guest_abort, "bad commitment-chain start digest"};
  }
  Digest32 claimed_first_commitments;
  std::copy(claimed.value().begin(), claimed.value().end(),
            claimed_first_commitments.bytes.begin());

  FoldState st;
  for (u32 i = 0; i < n_children.value(); ++i) {
    auto kind = env.read_u8();
    if (!kind.ok()) return kind.error();
    ZKT_TRY(env.assert_true(kind.value() == kEpochChildRound ||
                                kind.value() == kEpochChildSummary,
                            "summary child kind"));
    if (kind.value() == kEpochChildRound) {
      ZKT_TRY(fold_round_child(env, st, claimed_first_commitments));
    } else {
      ZKT_TRY(fold_summary_child(env, st, claimed_first_commitments));
    }
  }
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in summary input"};
  }
  ZKT_TRY(env.assert_true(st.out.rounds >= 1, "summary needs rounds"));

  st.out.final_claim_digest = st.prev_claim;
  st.out.final_root = st.prev_root;
  st.out.final_entry_count = st.prev_count;
  st.out.final_commitments_digest = st.commitments_digest;
  st.out.final_sketch_digest = st.sketch_digest;

  Writer jw;
  st.out.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace

void ChainSummaryJournal::write(Writer& w) const {
  w.str("EPOCH1");
  w.u64v(rounds);
  w.u8v(genesis ? 1 : 0);
  w.fixed(first_claim_digest.bytes);
  w.fixed(first_root.bytes);
  w.u64v(first_entry_count);
  w.fixed(final_claim_digest.bytes);
  w.fixed(final_root.bytes);
  w.u64v(final_entry_count);
  w.u64v(commitment_count);
  w.fixed(first_commitments_digest.bytes);
  w.fixed(final_commitments_digest.bytes);
  w.u8v(has_sketch ? 1 : 0);
  if (has_sketch) {
    w.u32v(sketch_params.cm.width);
    w.u32v(sketch_params.cm.depth);
    w.u64v(sketch_params.cm.seed);
    w.u32v(sketch_params.heavy_capacity);
    w.fixed(first_sketch_digest.bytes);
    w.fixed(final_sketch_digest.bytes);
    w.u64v(final_sketch_total);
  }
}

Result<ChainSummaryJournal> ChainSummaryJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "EPOCH1") {
    return Error{Errc::parse_error, "bad chain summary magic"};
  }
  ChainSummaryJournal j;
  auto rounds = r.u64v();
  if (!rounds.ok()) return rounds.error();
  j.rounds = rounds.value();
  auto genesis = r.u8v();
  if (!genesis.ok()) return genesis.error();
  if (genesis.value() > 1) {
    return Error{Errc::parse_error, "bad summary genesis flag"};
  }
  j.genesis = genesis.value() == 1;
  ZKT_TRY(r.fixed(j.first_claim_digest.bytes));
  ZKT_TRY(r.fixed(j.first_root.bytes));
  auto first_count = r.u64v();
  if (!first_count.ok()) return first_count.error();
  j.first_entry_count = first_count.value();
  ZKT_TRY(r.fixed(j.final_claim_digest.bytes));
  ZKT_TRY(r.fixed(j.final_root.bytes));
  auto final_count = r.u64v();
  if (!final_count.ok()) return final_count.error();
  j.final_entry_count = final_count.value();
  auto commitment_count = r.u64v();
  if (!commitment_count.ok()) return commitment_count.error();
  j.commitment_count = commitment_count.value();
  ZKT_TRY(r.fixed(j.first_commitments_digest.bytes));
  ZKT_TRY(r.fixed(j.final_commitments_digest.bytes));
  auto has_sketch = r.u8v();
  if (!has_sketch.ok()) return has_sketch.error();
  if (has_sketch.value() > 1) {
    return Error{Errc::parse_error, "bad summary sketch flag"};
  }
  j.has_sketch = has_sketch.value() == 1;
  if (j.has_sketch) {
    auto width = r.u32v();
    if (!width.ok()) return width.error();
    j.sketch_params.cm.width = width.value();
    auto depth = r.u32v();
    if (!depth.ok()) return depth.error();
    j.sketch_params.cm.depth = depth.value();
    auto seed = r.u64v();
    if (!seed.ok()) return seed.error();
    j.sketch_params.cm.seed = seed.value();
    auto cap = r.u32v();
    if (!cap.ok()) return cap.error();
    j.sketch_params.heavy_capacity = cap.value();
    if (j.sketch_params.cm.width == 0 || j.sketch_params.cm.depth == 0 ||
        j.sketch_params.heavy_capacity == 0) {
      return Error{Errc::parse_error, "degenerate summary sketch params"};
    }
    ZKT_TRY(r.fixed(j.first_sketch_digest.bytes));
    ZKT_TRY(r.fixed(j.final_sketch_digest.bytes));
    auto total = r.u64v();
    if (!total.ok()) return total.error();
    j.final_sketch_total = total.value();
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing summary journal bytes"};
  }
  return j;
}

zvm::ImageID chain_summary_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.chain_summary", 2, chain_summary_guest);
  return id;
}

bool is_chain_summary_image(const zvm::ImageID& image) {
  return image == chain_summary_image();
}

Digest32 epoch_commitments_init() {
  return crypto::sha256(commitments_domain_bytes());
}

Digest32 epoch_commitments_fold(const Digest32& digest,
                                const CommitmentRef& ref) {
  return crypto::sha256(commitments_fold_bytes(digest, ref));
}

Result<ChainSummaryResponse> prove_epoch_span(
    std::span<const zvm::Receipt> children, const EpochSpanOptions& options) {
  if (children.empty()) {
    return Error{Errc::invalid_argument, "cannot summarize an empty span"};
  }

  // Derive the claimed commitment-chain start: a summary first child pins
  // it; a genesis round pins it to the init; a non-genesis round start
  // needs the caller's bookkeeping.
  Digest32 first_commitments;
  const zvm::Receipt& first = children.front();
  if (is_chain_summary_image(first.claim.image_id)) {
    auto j = ChainSummaryJournal::parse(first.journal);
    if (!j.ok()) return j.error();
    first_commitments = j.value().first_commitments_digest;
  } else {
    auto j = AggJournal::parse(first.journal);
    if (!j.ok()) return j.error();
    if (!j.value().has_prev) {
      first_commitments = epoch_commitments_init();
    } else if (options.first_commitments_digest.has_value()) {
      first_commitments = *options.first_commitments_digest;
    } else {
      return Error{Errc::invalid_argument,
                   "a span starting mid-chain needs "
                   "first_commitments_digest"};
    }
  }

  Writer input;
  input.u32v(static_cast<u32>(children.size()));
  input.blob(BytesView(first_commitments.bytes.data(),
                       first_commitments.bytes.size()));
  std::vector<CommitmentRef> commitments;
  for (const auto& child : children) {
    const bool summary = is_chain_summary_image(child.claim.image_id);
    input.u8v(summary ? kEpochChildSummary : kEpochChildRound);
    child.claim.serialize(input);
    input.blob(child.journal);
    if (!summary) {
      auto j = AggJournal::parse(child.journal);
      if (!j.ok()) return j.error();
      for (const auto& ref : j.value().commitments) {
        commitments.push_back(ref);
      }
    }
  }

  zvm::ProveOptions prove_options = options.prove_options;
  for (const auto& child : children) {
    prove_options.assumptions.push_back(child);
  }

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(chain_summary_image(), input.bytes(),
                              prove_options, &info);
  if (!receipt.ok()) return receipt.error();
  auto journal = ChainSummaryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  ChainSummaryResponse response;
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.commitments = std::move(commitments);
  response.prove_info = info;
  return response;
}

Result<ChainSummaryResponse> prove_chain_summary(
    std::span<const zvm::Receipt> rounds, const zvm::ProveOptions& options) {
  if (rounds.empty()) {
    return Error{Errc::invalid_argument, "cannot summarize an empty chain"};
  }
  EpochSpanOptions span_options;
  span_options.prove_options = options;
  return prove_epoch_span(rounds, span_options);
}

Result<ChainSummaryJournal> verify_chain_summary(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    std::span<const CommitmentRef> commitments,
    const VerifyOptions& options) {
  zvm::Verifier verifier;
  zvm::VerifyStats stats;
  const Status verified = verifier.verify(
      receipt, chain_summary_image(), zvm::VerifyContext{nullptr, &stats});
  if (options.stats != nullptr) options.stats->merge(stats);
  ZKT_TRY(verified);
  auto journal = ChainSummaryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const ChainSummaryJournal& j = journal.value();

  if (j.genesis && j.first_commitments_digest != epoch_commitments_init()) {
    return Error{Errc::proof_invalid,
                 "genesis summary does not anchor the commitment chain"};
  }
  if (commitments.size() != j.commitment_count) {
    return Error{Errc::proof_invalid,
                 "summary ref list has " + std::to_string(commitments.size()) +
                     " commitments, journal claims " +
                     std::to_string(j.commitment_count)};
  }
  // Replay the commitment chain host-side over the out-of-band list; only a
  // list byte-identical to what the guests folded lands on the proven final
  // digest.
  Digest32 digest = j.first_commitments_digest;
  for (const auto& ref : commitments) {
    digest = epoch_commitments_fold(digest, ref);
  }
  if (digest != j.final_commitments_digest) {
    return Error{Errc::hash_mismatch,
                 "summary ref list does not reproduce the proven "
                 "commitment chain"};
  }

  for (const auto& ref : commitments) {
    auto published = board.get(ref.router_id, ref.window_id);
    if (!published.has_value() || published->rlog_hash != ref.rlog_hash ||
        published->record_count != ref.record_count) {
      return Error{Errc::commitment_missing,
                   "summary consumes a commitment not on the board (router " +
                       std::to_string(ref.router_id) + ", window " +
                       std::to_string(ref.window_id) + ")"};
    }
  }
  return journal;
}

}  // namespace zkt::core
