#include "core/chain_summary.h"

#include "crypto/merkle.h"

namespace zkt::core {

namespace {

using zvm::AluOp;
using zvm::Env;

Status chain_summary_guest(Env& env) {
  auto n_rounds = env.read_u64();
  if (!n_rounds.ok()) return n_rounds.error();
  ZKT_TRY(env.assert_true(n_rounds.value() >= 1, "summary needs rounds"));
  ZKT_TRY(env.assert_true(n_rounds.value() <= (1u << 20),
                          "summary round count sane"));

  ChainSummaryJournal out;
  out.rounds = n_rounds.value();

  Digest32 prev_claim;  // digest of round i-1's claim
  Digest32 prev_root = crypto::MerkleTree::empty_leaf();
  u64 prev_count = 0;

  for (u64 i = 0; i < n_rounds.value(); ++i) {
    // Reads one (claim, journal) pair, recomputes the claim digest with
    // traced hashing, requires a verified receipt for it (assumption), and
    // authenticates the journal — i.e. everything a round verifier does.
    auto binding = detail::bind_aggregation(env);
    if (!binding.ok()) return binding.error();
    const AggJournal& j = binding.value().journal;

    // Chain links, proven in-guest.
    if (i == 0) {
      ZKT_TRY(env.assert_true(!j.has_prev, "genesis must not chain"));
      ZKT_TRY(env.assert_true(j.prev_entry_count == 0,
                              "genesis starts empty"));
      ZKT_TRY(env.assert_eq(j.prev_root, crypto::MerkleTree::empty_leaf(),
                            "genesis root"));
    } else {
      ZKT_TRY(env.assert_true(j.has_prev, "non-genesis must chain"));
      ZKT_TRY(env.assert_eq(j.prev_claim_digest, prev_claim,
                            "claim chain link"));
      ZKT_TRY(env.assert_eq(j.prev_root, prev_root, "root chain link"));
      const u64 eq = env.alu(AluOp::eq, j.prev_entry_count, prev_count);
      ZKT_TRY(env.assert_true(eq == 1, "entry count chain link"));
    }

    prev_claim = binding.value().claim_digest;
    prev_root = j.new_root;
    prev_count = j.new_entry_count;
    for (const auto& ref : j.commitments) out.commitments.push_back(ref);
  }
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in summary input"};
  }

  out.final_claim_digest = prev_claim;
  out.final_root = prev_root;
  out.final_entry_count = prev_count;

  Writer jw;
  out.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace

void ChainSummaryJournal::write(Writer& w) const {
  w.str("CHAIN1");
  w.u64v(rounds);
  w.fixed(final_claim_digest.bytes);
  w.fixed(final_root.bytes);
  w.u64v(final_entry_count);
  w.varint(commitments.size());
  for (const auto& c : commitments) write_commitment_ref(w, c);
}

Result<ChainSummaryJournal> ChainSummaryJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "CHAIN1") {
    return Error{Errc::parse_error, "bad chain summary magic"};
  }
  ChainSummaryJournal j;
  auto rounds = r.u64v();
  if (!rounds.ok()) return rounds.error();
  j.rounds = rounds.value();
  ZKT_TRY(r.fixed(j.final_claim_digest.bytes));
  ZKT_TRY(r.fixed(j.final_root.bytes));
  auto count = r.u64v();
  if (!count.ok()) return count.error();
  j.final_entry_count = count.value();
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > (1u << 24)) {
    return Error{Errc::parse_error, "too many summary commitments"};
  }
  j.commitments.resize(n.value());
  for (auto& c : j.commitments) {
    auto parsed = parse_commitment_ref(r, CommitmentKind::rlog);
    if (!parsed.ok()) return parsed.error();
    c = std::move(parsed.value());
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing summary journal bytes"};
  }
  return j;
}

zvm::ImageID chain_summary_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.chain_summary", 1, chain_summary_guest);
  return id;
}

Result<ChainSummaryResponse> prove_chain_summary(
    std::span<const zvm::Receipt> rounds, const zvm::ProveOptions& options) {
  if (rounds.empty()) {
    return Error{Errc::invalid_argument, "cannot summarize an empty chain"};
  }
  Writer input;
  input.u64v(rounds.size());
  for (const auto& receipt : rounds) {
    receipt.claim.serialize(input);
    input.blob(receipt.journal);
  }

  zvm::ProveOptions prove_options = options;
  for (const auto& receipt : rounds) {
    prove_options.assumptions.push_back(receipt);
  }

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(chain_summary_image(), input.bytes(),
                              prove_options, &info);
  if (!receipt.ok()) return receipt.error();
  auto journal = ChainSummaryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  ChainSummaryResponse response;
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.prove_info = info;
  return response;
}

Result<ChainSummaryJournal> verify_chain_summary(
    const zvm::Receipt& receipt, const CommitmentBoard& board,
    const VerifyOptions& options) {
  zvm::Verifier verifier;
  zvm::VerifyStats stats;
  const Status verified = verifier.verify(
      receipt, chain_summary_image(), zvm::VerifyContext{nullptr, &stats});
  if (options.stats != nullptr) options.stats->merge(stats);
  ZKT_TRY(verified);
  auto journal = ChainSummaryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();

  for (const auto& ref : journal.value().commitments) {
    auto published = board.get(ref.router_id, ref.window_id);
    if (!published.has_value() || published->rlog_hash != ref.rlog_hash ||
        published->record_count != ref.record_count) {
      return Error{Errc::commitment_missing,
                   "summary consumes a commitment not on the board (router " +
                       std::to_string(ref.router_id) + ", window " +
                       std::to_string(ref.window_id) + ")"};
    }
  }
  return journal;
}

}  // namespace zkt::core
