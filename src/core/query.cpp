#include "core/query.h"

#include "crypto/sha256.h"

namespace zkt::core {

const char* qfield_name(QField f) {
  switch (f) {
    case QField::src_ip: return "src_ip";
    case QField::dst_ip: return "dst_ip";
    case QField::src_port: return "src_port";
    case QField::dst_port: return "dst_port";
    case QField::protocol: return "protocol";
    case QField::packets: return "packets";
    case QField::bytes: return "bytes";
    case QField::lost_packets: return "lost_packets";
    case QField::hop_sum: return "hop_sum";
    case QField::rtt_sum_us: return "rtt_sum_us";
    case QField::rtt_count: return "rtt_count";
    case QField::rtt_max_us: return "rtt_max_us";
    case QField::jitter_sum_us: return "jitter_sum_us";
    case QField::jitter_count: return "jitter_count";
    case QField::first_ms: return "first_ms";
    case QField::last_ms: return "last_ms";
    case QField::duration_ms: return "duration_ms";
    case QField::rtt_avg_us: return "rtt_avg_us";
    case QField::jitter_avg_us: return "jitter_avg_us";
  }
  return "?";
}

u64 extract_field(const netflow::FlowRecord& e, QField field) {
  switch (field) {
    case QField::src_ip: return e.key.src_ip;
    case QField::dst_ip: return e.key.dst_ip;
    case QField::src_port: return e.key.src_port;
    case QField::dst_port: return e.key.dst_port;
    case QField::protocol: return e.key.protocol;
    case QField::packets: return e.packets;
    case QField::bytes: return e.bytes;
    case QField::lost_packets: return e.lost_packets;
    case QField::hop_sum: return e.hop_count_sum;
    case QField::rtt_sum_us: return e.rtt_sum_us;
    case QField::rtt_count: return e.rtt_count;
    case QField::rtt_max_us: return e.rtt_max_us;
    case QField::jitter_sum_us: return e.jitter_sum_us;
    case QField::jitter_count: return e.jitter_count;
    case QField::first_ms: return e.first_ms;
    case QField::last_ms: return e.last_ms;
    case QField::duration_ms:
      return e.last_ms >= e.first_ms ? e.last_ms - e.first_ms : 0;
    case QField::rtt_avg_us:
      return e.rtt_count == 0 ? 0 : e.rtt_sum_us / e.rtt_count;
    case QField::jitter_avg_us:
      return e.jitter_count == 0 ? 0 : e.jitter_sum_us / e.jitter_count;
  }
  return 0;
}

void Query::serialize(Writer& w) const {
  w.str("QRYAST1");
  w.varint(where.size());
  for (const auto& clause : where) {
    w.varint(clause.size());
    for (const auto& cond : clause) {
      w.u8v(static_cast<u8>(cond.field));
      w.u8v(static_cast<u8>(cond.op));
      w.u64v(cond.value);
    }
  }
  w.u8v(static_cast<u8>(agg));
  w.u8v(static_cast<u8>(agg_field));
}

Result<Query> Query::deserialize(Reader& r) {
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "QRYAST1") {
    return Error{Errc::parse_error, "bad query magic"};
  }
  Query q;
  auto n_clauses = r.varint();
  if (!n_clauses.ok()) return n_clauses.error();
  if (n_clauses.value() > 256) {
    return Error{Errc::parse_error, "too many clauses"};
  }
  q.where.resize(n_clauses.value());
  for (auto& clause : q.where) {
    auto n_conds = r.varint();
    if (!n_conds.ok()) return n_conds.error();
    if (n_conds.value() == 0 || n_conds.value() > 256) {
      return Error{Errc::parse_error, "bad clause size"};
    }
    clause.resize(n_conds.value());
    for (auto& cond : clause) {
      auto f = r.u8v();
      auto op = r.u8v();
      auto v = r.u64v();
      if (!f.ok()) return f.error();
      if (!op.ok()) return op.error();
      if (!v.ok()) return v.error();
      if (f.value() < 1 || f.value() > static_cast<u8>(QField::jitter_avg_us)) {
        return Error{Errc::parse_error, "bad field"};
      }
      if (op.value() < 1 || op.value() > static_cast<u8>(CmpOp::ge)) {
        return Error{Errc::parse_error, "bad comparison op"};
      }
      cond.field = static_cast<QField>(f.value());
      cond.op = static_cast<CmpOp>(op.value());
      cond.value = v.value();
    }
  }
  auto agg = r.u8v();
  if (!agg.ok()) return agg.error();
  if (agg.value() < 1 || agg.value() > static_cast<u8>(AggKind::max)) {
    return Error{Errc::parse_error, "bad aggregate kind"};
  }
  q.agg = static_cast<AggKind>(agg.value());
  auto af = r.u8v();
  if (!af.ok()) return af.error();
  if (af.value() < 1 || af.value() > static_cast<u8>(QField::jitter_avg_us)) {
    return Error{Errc::parse_error, "bad aggregate field"};
  }
  q.agg_field = static_cast<QField>(af.value());
  return q;
}

Bytes Query::to_bytes() const {
  Writer w;
  serialize(w);
  return std::move(w).take();
}

crypto::Digest32 Query::digest() const { return crypto::sha256(to_bytes()); }

std::string Query::to_string() const {
  std::string s = "SELECT ";
  switch (agg) {
    case AggKind::count: s += "COUNT(*)"; break;
    case AggKind::sum: s += std::string("SUM(") + qfield_name(agg_field) + ")"; break;
    case AggKind::min: s += std::string("MIN(") + qfield_name(agg_field) + ")"; break;
    case AggKind::max: s += std::string("MAX(") + qfield_name(agg_field) + ")"; break;
  }
  s += " FROM clogs";
  if (!where.empty()) {
    s += " WHERE ";
    const char* op_names[] = {"", "=", "!=", "<", "<=", ">", ">="};
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) s += " AND ";
      if (where[i].size() > 1) s += "(";
      for (size_t j = 0; j < where[i].size(); ++j) {
        if (j > 0) s += " OR ";
        const auto& c = where[i][j];
        s += qfield_name(c.field);
        s += " ";
        s += op_names[static_cast<u8>(c.op)];
        s += " ";
        if (c.field == QField::src_ip || c.field == QField::dst_ip) {
          s += netflow::format_ipv4(static_cast<u32>(c.value));
        } else {
          s += std::to_string(c.value);
        }
      }
      if (where[i].size() > 1) s += ")";
    }
  }
  return s;
}

u64 QueryResult::value(AggKind kind) const {
  switch (kind) {
    case AggKind::count: return matched;
    case AggKind::sum: return sum;
    case AggKind::min: return matched == 0 ? 0 : min;
    case AggKind::max: return max;
  }
  return 0;
}

namespace {

bool eval_condition(const Condition& c, const netflow::FlowRecord& entry) {
  const u64 v = extract_field(entry, c.field);
  switch (c.op) {
    case CmpOp::eq: return v == c.value;
    case CmpOp::ne: return v != c.value;
    case CmpOp::lt: return v < c.value;
    case CmpOp::le: return v <= c.value;
    case CmpOp::gt: return v > c.value;
    case CmpOp::ge: return v >= c.value;
  }
  return false;
}

}  // namespace

bool matches(const Query& q, const netflow::FlowRecord& entry) {
  for (const auto& clause : q.where) {
    bool any = false;
    for (const auto& cond : clause) {
      if (eval_condition(cond, entry)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

QueryResult evaluate_query(const Query& q,
                           std::span<const netflow::FlowRecord> entries) {
  QueryResult result;
  for (const auto& entry : entries) {
    ++result.scanned;
    if (!matches(q, entry)) continue;
    ++result.matched;
    const u64 v = extract_field(entry, q.agg_field);
    result.sum += v;
    result.min = std::min(result.min, v);
    result.max = std::max(result.max, v);
  }
  return result;
}

}  // namespace zkt::core
