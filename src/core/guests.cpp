#include "core/guests.h"

#include <algorithm>
#include <bit>
#include <map>

#include "core/sketch_fold.h"
#include "crypto/merkle.h"

namespace zkt::core {

namespace {

using netflow::FlowKey;
using netflow::FlowRecord;
using netflow::RLogBatch;
using zvm::AluOp;
using zvm::Env;

}  // namespace

// ---------------------------------------------------------------------------
// Traced helpers shared by the aggregation guests (full + incremental)

namespace detail {

Status assert_eq_u64(Env& env, u64 a, u64 b, std::string_view context) {
  const u64 eq = env.alu(AluOp::eq, a, b);
  return env.assert_true(eq == 1, context);
}

void merge_traced(Env& env, FlowRecord& into, const FlowRecord& rec) {
  // min(first), max(last) via arithmetic select.
  {
    const u64 lt = env.alu(AluOp::ltu, rec.first_ms, into.first_ms);
    const u64 diff = env.alu(AluOp::sub, rec.first_ms, into.first_ms);
    into.first_ms = env.alu(AluOp::add, into.first_ms,
                            env.alu(AluOp::mul, lt, diff));
    const u64 gt = env.alu(AluOp::ltu, into.last_ms, rec.last_ms);
    const u64 diff2 = env.alu(AluOp::sub, rec.last_ms, into.last_ms);
    into.last_ms = env.alu(AluOp::add, into.last_ms,
                           env.alu(AluOp::mul, gt, diff2));
  }
  into.packets = env.alu(AluOp::add, into.packets, rec.packets);
  into.bytes = env.alu(AluOp::add, into.bytes, rec.bytes);
  into.lost_packets = env.alu(AluOp::add, into.lost_packets, rec.lost_packets);
  into.hop_count_sum = env.alu(AluOp::add, into.hop_count_sum, rec.hop_count_sum);
  into.rtt_sum_us = env.alu(AluOp::add, into.rtt_sum_us, rec.rtt_sum_us);
  into.rtt_count = env.alu(AluOp::add, into.rtt_count, rec.rtt_count);
  {
    const u64 gt = env.alu(AluOp::ltu, into.rtt_max_us, rec.rtt_max_us);
    const u64 diff = env.alu(AluOp::sub, rec.rtt_max_us, into.rtt_max_us);
    into.rtt_max_us = env.alu(AluOp::add, into.rtt_max_us,
                              env.alu(AluOp::mul, gt, diff));
  }
  into.jitter_sum_us = env.alu(AluOp::add, into.jitter_sum_us, rec.jitter_sum_us);
  into.jitter_count = env.alu(AluOp::add, into.jitter_count, rec.jitter_count);
  into.tcp_flags_or = static_cast<u8>(
      env.alu(AluOp::or_, into.tcp_flags_or, rec.tcp_flags_or));
}

Result<std::pair<CommitmentRef, RLogBatch>> read_verified_batch(Env& env) {
  CommitmentRef ref;
  auto rid = env.read_u32();
  if (!rid.ok()) return rid.error();
  ref.router_id = rid.value();
  auto wid = env.read_u64();
  if (!wid.ok()) return wid.error();
  ref.window_id = wid.value();
  auto chash = env.read_digest();
  if (!chash.ok()) return chash.error();
  ref.rlog_hash = chash.value();
  auto rcount = env.read_u64();
  if (!rcount.ok()) return rcount.error();
  ref.record_count = rcount.value();
  auto rlog_bytes = env.read_blob();
  if (!rlog_bytes.ok()) return rlog_bytes.error();

  // The integrity check of Figure 3: recompute H'_i and compare with the
  // published commitment. Tampered logs abort proof generation here.
  env.begin_region("verify_rlog_commitments");
  const Digest32 h = env.sha256(rlog_bytes.value());
  ZKT_TRY(env.assert_eq(h, ref.rlog_hash,
                        "RLog hash vs published commitment"));

  Reader br(rlog_bytes.value());
  auto batch = RLogBatch::deserialize(br);
  if (!batch.ok()) return batch.error();
  if (!br.done()) {
    return Error{Errc::guest_abort, "trailing bytes in RLog batch"};
  }
  ZKT_TRY(assert_eq_u64(env, batch.value().router_id, ref.router_id,
                        "batch router id vs commitment"));
  ZKT_TRY(assert_eq_u64(env, batch.value().window_id, ref.window_id,
                        "batch window id vs commitment"));
  ZKT_TRY(assert_eq_u64(env, batch.value().records.size(), ref.record_count,
                        "batch record count vs commitment"));
  return std::make_pair(ref, std::move(batch.value()));
}

Result<SketchFold> read_sketch_state(Env& env, bool genesis) {
  SketchFold fold;
  auto has = env.read_u8();
  if (!has.ok()) return has.error();
  if (has.value() > 1) {
    return Error{Errc::guest_abort, "bad sketch flag in aggregation input"};
  }
  if (has.value() == 0) return fold;
  fold.enabled = true;

  auto bytes = env.read_blob();
  if (!bytes.ok()) return bytes.error();
  // One traced hash binds the ENTIRE previous sketch; the per-record fold
  // below is the only way its counters legitimately change.
  env.begin_region("sketch_fold");
  fold.prev_digest = env.sha256(bytes.value());
  Reader sr(bytes.value());
  auto sketch = netflow::RoundSketch::deserialize(sr);
  if (!sketch.ok()) return sketch.error();
  if (!sr.done()) {
    return Error{Errc::guest_abort, "trailing bytes in sketch state"};
  }
  fold.sketch = std::move(sketch.value());

  if (genesis) {
    // A chain cannot start from seeded counts: the genesis sketch must be
    // all-zero (the auditor independently pins prev_sketch_digest to the
    // empty sketch's hash, but the in-trace check makes the receipt itself
    // unforgeable on this point).
    bool zero = fold.sketch.total() == 0 &&
                fold.sketch.heavy().size() == 0 &&
                fold.sketch.heavy().total() == 0;
    const auto& cm = fold.sketch.cm();
    for (u32 row = 0; zero && row < cm.params().depth; ++row) {
      zero = cm.nonzero_in_row(row) == 0;
    }
    ZKT_TRY(env.assert_true(zero, "genesis sketch must be empty"));
  }
  return fold;
}

void publish_sketch(Env& env, const SketchFold& fold, AggJournal& journal) {
  if (!fold.enabled) return;
  journal.has_sketch = true;
  journal.sketch_params = fold.sketch.params();
  journal.prev_sketch_digest = fold.prev_digest;
  journal.sketch_digest = sketch_digest_traced(env, fold.sketch);
  journal.sketch_total = fold.sketch.total();
}

Digest32 hash_update_refs(Env& env, const std::vector<UpdateRef>& updates) {
  Writer w;
  w.str("zkt.agg.updates.v1");
  w.varint(updates.size());
  for (const auto& u : updates) {
    w.u64v(u.index);
    w.u8v(u.created ? 1 : 0);
    w.fixed(u.new_leaf.bytes);
  }
  return env.sha256(w.bytes());
}

}  // namespace detail

bool is_aggregation_image(const zvm::ImageID& image) {
  return image == guest_images().aggregate ||
         image == guest_images().aggregate_incremental;
}

const zvm::ImageID& aggregation_image(RoundKind kind) {
  return kind == RoundKind::incremental ? guest_images().aggregate_incremental
                                      : guest_images().aggregate;
}

namespace {

using detail::assert_eq_u64;
using detail::merge_traced;

/// Traced construction of every Merkle level (levels[0] = padded leaves,
/// levels.back() = {root}).
std::vector<std::vector<Digest32>> merkle_levels_traced(
    zvm::Env& env, std::vector<Digest32> leaves) {
  const u64 padded = std::bit_ceil(std::max<u64>(leaves.size(), 1));
  leaves.resize(padded, crypto::MerkleTree::empty_leaf());
  std::vector<std::vector<Digest32>> levels;
  levels.push_back(std::move(leaves));
  while (levels.back().size() > 1) {
    const auto& below = levels.back();
    std::vector<Digest32> above(below.size() / 2);
    for (size_t i = 0; i < above.size(); ++i) {
      above[i] = env.hash_node(below[2 * i], below[2 * i + 1]);
    }
    levels.push_back(std::move(above));
  }
  return levels;
}

/// Algorithm 1, line 16: traced re-verification of one leaf's path against
/// the (already recomputed) tree — the per-record VerifyMerkle(T_prev, f)
/// step whose in-zkVM hashing dominates the paper's aggregation cost.
Status verify_path_traced(zvm::Env& env,
                          const std::vector<std::vector<Digest32>>& levels,
                          u64 index, const Digest32& root) {
  Digest32 acc = levels[0][index];
  u64 idx = index;
  for (size_t level = 0; level + 1 < levels.size(); ++level) {
    const Digest32& sibling = levels[level][idx ^ 1];
    acc = (idx & 1) ? env.hash_node(sibling, acc) : env.hash_node(acc, sibling);
    idx >>= 1;
  }
  return env.assert_eq(acc, root, "per-record Merkle verification");
}

/// True iff `sorted` has an element in [lo, hi).
bool range_has(const std::vector<u64>& sorted, u64 lo, u64 hi) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), lo);
  return it != sorted.end() && *it < hi;
}

/// Traced root computation over the round's final leaves that reuses
/// untouched subtree digests from `prev_levels` (the levels built while
/// verifying the previous state) instead of re-hashing them. A prev node is
/// reusable iff its leaf span lies entirely below `stable_limit` (the first
/// index whose position shifted — below it old index == new index) and
/// contains no in-place-changed leaf. All-padding subtrees cost one traced
/// hash per level instead of one per node. Bit-identical to
/// merkle_root_traced over the same leaves.
Digest32 merkle_root_reuse_traced(
    zvm::Env& env, std::vector<Digest32> leaves,
    const std::vector<std::vector<Digest32>>& prev_levels,
    const std::vector<u64>& changed_in_place, u64 stable_limit) {
  const u64 real = leaves.size();
  const u64 padded = std::bit_ceil(std::max<u64>(real, 1));
  leaves.resize(padded, crypto::MerkleTree::empty_leaf());
  std::vector<Digest32> cur = std::move(leaves);
  Digest32 empty_sub = crypto::MerkleTree::empty_leaf();
  u32 level = 0;
  while (cur.size() > 1) {
    std::vector<Digest32> above(cur.size() / 2);
    const u64 span = 1ULL << (level + 1);
    const Digest32 empty_next = env.hash_node(empty_sub, empty_sub);
    for (size_t j = 0; j < above.size(); ++j) {
      const u64 lo = j * span;
      if (lo >= real) {
        above[j] = empty_next;
        continue;
      }
      const u64 hi = lo + span;
      const bool in_prev = level + 1 < prev_levels.size() &&
                           j < prev_levels[level + 1].size();
      if (in_prev && hi <= stable_limit &&
          !range_has(changed_in_place, lo, hi)) {
        above[j] = prev_levels[level + 1][j];
        continue;
      }
      above[j] = env.hash_node(cur[2 * j], cur[2 * j + 1]);
    }
    cur = std::move(above);
    empty_sub = empty_next;
    ++level;
  }
  return cur[0];
}

}  // namespace

Digest32 merkle_root_traced(zvm::Env& env, std::vector<Digest32> leaves) {
  return merkle_levels_traced(env, std::move(leaves)).back()[0];
}

// ---------------------------------------------------------------------------
// Journal schemas

void write_commitment_ref(Writer& w, const CommitmentRef& ref) {
  w.u8v(static_cast<u8>(ref.kind));
  w.u32v(ref.router_id);
  w.u64v(ref.window_id);
  w.fixed(ref.rlog_hash.bytes);
  w.u64v(ref.record_count);
}

Result<CommitmentRef> parse_commitment_ref(Reader& r,
                                           CommitmentKind expected) {
  CommitmentRef ref;
  auto kind = r.u8v();
  if (!kind.ok()) return kind.error();
  if (kind.value() > static_cast<u8>(CommitmentKind::sketch)) {
    return Error{Errc::parse_error, "unknown commitment kind"};
  }
  ref.kind = static_cast<CommitmentKind>(kind.value());
  if (ref.kind != expected) {
    return Error{Errc::parse_error,
                 expected == CommitmentKind::rlog
                     ? "sketch commitment where an rlog commitment belongs"
                     : "rlog commitment where a sketch commitment belongs"};
  }
  auto rid = r.u32v();
  if (!rid.ok()) return rid.error();
  ref.router_id = rid.value();
  auto wid = r.u64v();
  if (!wid.ok()) return wid.error();
  ref.window_id = wid.value();
  ZKT_TRY(r.fixed(ref.rlog_hash.bytes));
  auto rc = r.u64v();
  if (!rc.ok()) return rc.error();
  ref.record_count = rc.value();
  return ref;
}

void AggJournal::write(Writer& w) const {
  w.str(kind == RoundKind::incremental ? "AGGI" : "AGG1");
  w.u8v(has_prev ? 1 : 0);
  w.fixed(prev_claim_digest.bytes);
  w.fixed(prev_root.bytes);
  w.fixed(new_root.bytes);
  w.u64v(prev_entry_count);
  w.u64v(new_entry_count);
  w.varint(commitments.size());
  for (const auto& c : commitments) {
    write_commitment_ref(w, c);
  }
  w.u64v(update_count);
  w.fixed(updates_digest.bytes);
  if (kind == RoundKind::incremental) {
    w.u64v(touched_entries);
    w.u64v(multiproof_siblings);
  }
  w.u8v(has_sketch ? 1 : 0);
  if (has_sketch) {
    w.u32v(sketch_params.cm.width);
    w.u32v(sketch_params.cm.depth);
    w.u64v(sketch_params.cm.seed);
    w.u32v(sketch_params.heavy_capacity);
    w.fixed(prev_sketch_digest.bytes);
    w.fixed(sketch_digest.bytes);
    w.u64v(sketch_total);
  }
}

Result<AggJournal> AggJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "AGG1" && magic.value() != "AGGI") {
    return Error{Errc::parse_error, "bad aggregation journal magic"};
  }
  AggJournal j;
  j.kind = magic.value() == "AGGI" ? RoundKind::incremental : RoundKind::full;
  auto hp = r.u8v();
  if (!hp.ok()) return hp.error();
  j.has_prev = hp.value() != 0;
  ZKT_TRY(r.fixed(j.prev_claim_digest.bytes));
  ZKT_TRY(r.fixed(j.prev_root.bytes));
  ZKT_TRY(r.fixed(j.new_root.bytes));
  auto pec = r.u64v();
  if (!pec.ok()) return pec.error();
  j.prev_entry_count = pec.value();
  auto nec = r.u64v();
  if (!nec.ok()) return nec.error();
  j.new_entry_count = nec.value();
  auto nc = r.varint();
  if (!nc.ok()) return nc.error();
  if (nc.value() > (1u << 20)) {
    return Error{Errc::parse_error, "too many commitments"};
  }
  j.commitments.resize(nc.value());
  for (auto& c : j.commitments) {
    auto ref = parse_commitment_ref(r, CommitmentKind::rlog);
    if (!ref.ok()) return ref.error();
    c = ref.value();
  }
  auto nu = r.u64v();
  if (!nu.ok()) return nu.error();
  j.update_count = nu.value();
  ZKT_TRY(r.fixed(j.updates_digest.bytes));
  if (j.kind == RoundKind::incremental) {
    auto te = r.u64v();
    if (!te.ok()) return te.error();
    j.touched_entries = te.value();
    auto ms = r.u64v();
    if (!ms.ok()) return ms.error();
    j.multiproof_siblings = ms.value();
  }
  auto hs = r.u8v();
  if (!hs.ok()) return hs.error();
  if (hs.value() > 1) {
    return Error{Errc::parse_error, "bad sketch flag"};
  }
  j.has_sketch = hs.value() != 0;
  if (j.has_sketch) {
    auto width = r.u32v();
    if (!width.ok()) return width.error();
    j.sketch_params.cm.width = width.value();
    auto depth = r.u32v();
    if (!depth.ok()) return depth.error();
    j.sketch_params.cm.depth = depth.value();
    auto seed = r.u64v();
    if (!seed.ok()) return seed.error();
    j.sketch_params.cm.seed = seed.value();
    auto cap = r.u32v();
    if (!cap.ok()) return cap.error();
    j.sketch_params.heavy_capacity = cap.value();
    if (j.sketch_params.cm.width == 0 || j.sketch_params.cm.depth == 0 ||
        j.sketch_params.heavy_capacity == 0) {
      return Error{Errc::parse_error, "degenerate sketch params"};
    }
    ZKT_TRY(r.fixed(j.prev_sketch_digest.bytes));
    ZKT_TRY(r.fixed(j.sketch_digest.bytes));
    auto st = r.u64v();
    if (!st.ok()) return st.error();
    j.sketch_total = st.value();
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing aggregation journal bytes"};
  }
  return j;
}

void QueryJournal::write(Writer& w) const {
  w.str("QRY1");
  w.u8v(static_cast<u8>(mode));
  w.fixed(agg_claim_digest.bytes);
  w.fixed(agg_root.bytes);
  w.u64v(entry_count);
  w.blob(query.to_bytes());
  w.u64v(result.matched);
  w.u64v(result.scanned);
  w.u64v(result.sum);
  w.u64v(result.min);
  w.u64v(result.max);
}

Result<QueryJournal> QueryJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "QRY1") {
    return Error{Errc::parse_error, "bad query journal magic"};
  }
  QueryJournal j;
  auto mode = r.u8v();
  if (!mode.ok()) return mode.error();
  if (mode.value() > 1) return Error{Errc::parse_error, "bad query mode"};
  j.mode = static_cast<QueryMode>(mode.value());
  ZKT_TRY(r.fixed(j.agg_claim_digest.bytes));
  ZKT_TRY(r.fixed(j.agg_root.bytes));
  auto ec = r.u64v();
  if (!ec.ok()) return ec.error();
  j.entry_count = ec.value();
  auto qb = r.blob();
  if (!qb.ok()) return qb.error();
  Reader qr(qb.value());
  auto q = Query::deserialize(qr);
  if (!q.ok()) return q.error();
  j.query = std::move(q.value());
  u64* fields[] = {&j.result.matched, &j.result.scanned, &j.result.sum,
                   &j.result.min, &j.result.max};
  for (u64* f : fields) {
    auto v = r.u64v();
    if (!v.ok()) return v.error();
    *f = v.value();
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing query journal bytes"};
  }
  return j;
}

// ---------------------------------------------------------------------------
// Input framing

Bytes AggregateInput::to_bytes() const {
  Writer w;
  w.u8v(has_prev ? 1 : 0);
  w.fixed(prev_claim_digest.bytes);
  w.u8v(static_cast<u8>(prev_image_kind));
  w.fixed(prev_root.bytes);
  w.u8v(has_sketch ? 1 : 0);
  if (has_sketch) w.blob(prev_sketch);
  w.u64v(prev_entries.size());
  for (const auto& e : prev_entries) w.blob(e);
  w.u64v(batches.size());
  for (const auto& [ref, rlog] : batches) {
    w.u32v(ref.router_id);
    w.u64v(ref.window_id);
    w.fixed(ref.rlog_hash.bytes);
    w.u64v(ref.record_count);
    w.blob(rlog);
  }
  return std::move(w).take();
}

Bytes DeltaAggregateInput::to_bytes() const {
  Writer w;
  w.fixed(prev_claim_digest.bytes);
  w.u8v(static_cast<u8>(prev_image_kind));
  w.fixed(prev_root.bytes);
  w.u8v(has_sketch ? 1 : 0);
  if (has_sketch) w.blob(prev_sketch);
  w.u64v(prev_entry_count);
  w.u64v(opened.size());
  for (const auto& o : opened) {
    w.u64v(o.index);
    w.blob(o.entry);
  }
  {
    Writer pw;
    proof.serialize(pw);
    w.blob(pw.bytes());
  }
  w.u64v(batches.size());
  for (const auto& [ref, rlog] : batches) {
    w.u32v(ref.router_id);
    w.u64v(ref.window_id);
    w.fixed(ref.rlog_hash.bytes);
    w.u64v(ref.record_count);
    w.blob(rlog);
  }
  return std::move(w).take();
}

Bytes QueryInput::to_bytes() const {
  Writer w;
  agg_claim.serialize(w);
  w.blob(agg_journal);
  w.u64v(entries.size());
  for (const auto& e : entries) w.blob(e);
  w.blob(query.to_bytes());
  return std::move(w).take();
}

Bytes SelectiveQueryInput::to_bytes() const {
  Writer w;
  agg_claim.serialize(w);
  w.blob(agg_journal);
  w.blob(query.to_bytes());
  w.u64v(opened.size());
  for (const auto& o : opened) {
    w.u64v(o.index);
    w.blob(o.entry);
  }
  if (!opened.empty()) {
    Writer pw;
    proof.serialize(pw);
    w.blob(pw.bytes());
  }
  return std::move(w).take();
}

// ---------------------------------------------------------------------------
// Aggregation guest (Algorithm 1)

namespace {

/// One working entry of the full-rebuild guest: the record under
/// aggregation plus where it came from in the previous (key-sorted) state.
struct WorkEntry {
  FlowRecord entry;
  u64 old_index = 0;     ///< index in the previous state (when !created)
  bool created = false;  ///< inserted this round (no prev path)
  bool merged = false;   ///< received at least one record this round
};

Status aggregate_guest(Env& env) {
  AggJournal journal;
  journal.kind = RoundKind::full;

  // ---- Parse the head of the input.
  auto has_prev = env.read_u8();
  if (!has_prev.ok()) return has_prev.error();
  journal.has_prev = has_prev.value() != 0;

  auto prev_claim = env.read_digest();
  if (!prev_claim.ok()) return prev_claim.error();
  journal.prev_claim_digest = prev_claim.value();

  auto prev_kind = env.read_u8();
  if (!prev_kind.ok()) return prev_kind.error();
  if (prev_kind.value() > 1) {
    return Error{Errc::guest_abort, "bad previous aggregation kind"};
  }

  auto prev_root = env.read_digest();
  if (!prev_root.ok()) return prev_root.error();
  journal.prev_root = prev_root.value();

  // ---- Step 1 (Algorithm 1): verify the previous aggregation proof. The
  // predecessor may be either aggregation flavour; the claim digest binds
  // the image, so lying about the kind fails the assumption check.
  if (journal.has_prev) {
    ZKT_TRY(env.verify_assumption(
        aggregation_image(static_cast<RoundKind>(prev_kind.value())),
        journal.prev_claim_digest));
  } else {
    ZKT_TRY(env.assert_eq(journal.prev_claim_digest, Digest32{},
                          "genesis round must carry a zero prev claim"));
  }

  // ---- Authenticate the proof-carrying sketch state (when enabled).
  auto sketch_fold = detail::read_sketch_state(env, !journal.has_prev);
  if (!sketch_fold.ok()) return sketch_fold.error();

  // ---- Load and authenticate the previous CLog state.
  auto prev_count = env.read_u64();
  if (!prev_count.ok()) return prev_count.error();
  journal.prev_entry_count = prev_count.value();
  if (!journal.has_prev) {
    ZKT_TRY(assert_eq_u64(env, journal.prev_entry_count, 0,
                          "genesis round starts empty"));
  }

  env.begin_region("verify_prev_state");
  std::vector<WorkEntry> work;
  std::vector<Digest32> leaves;
  work.reserve(journal.prev_entry_count);
  leaves.reserve(journal.prev_entry_count);
  for (u64 i = 0; i < journal.prev_entry_count; ++i) {
    auto bytes = env.read_blob();
    if (!bytes.ok()) return bytes.error();
    leaves.push_back(env.hash_leaf(bytes.value()));
    Reader er(bytes.value());
    auto entry = FlowRecord::deserialize(er);
    if (!entry.ok()) return entry.error();
    if (!er.done()) {
      return Error{Errc::guest_abort, "trailing bytes in CLog entry"};
    }
    // Strictly ascending keys: the sorted order IS the key index (binary
    // search below), and strictness rules out duplicates.
    ZKT_TRY(env.assert_true(
        work.empty() || work.back().entry.key < entry.value().key,
        "previous CLog state must be strictly key-sorted"));
    work.push_back(WorkEntry{std::move(entry.value()), i, false, false});
  }
  const auto prev_levels = merkle_levels_traced(env, leaves);
  ZKT_TRY(env.assert_eq(prev_levels.back()[0], journal.prev_root,
                        "previous CLog state vs committed root"));

  // ---- Step 2: verify authenticity of the raw logs, then Step 3: merge.
  auto n_batches = env.read_u64();
  if (!n_batches.ok()) return n_batches.error();

  // Flows created this round live in a side map instead of being spliced
  // into `work` per record — a sorted-vector insert there re-shuffles O(n)
  // entries per new flow, which turns genesis-shaped rounds quadratic in
  // untraced host time. The traced op sequence is unchanged: prev-state
  // flows verify their path and merge exactly as before, created flows
  // merge with no path, and the side map joins `work` in key order for the
  // rebuild pass below.
  std::map<FlowKey, WorkEntry> created_flows;
  for (u64 b = 0; b < n_batches.value(); ++b) {
    auto batch = detail::read_verified_batch(env);
    if (!batch.ok()) return batch.error();
    journal.commitments.push_back(batch.value().first);

    for (const auto& record : batch.value().second.records) {
      auto it = std::lower_bound(
          work.begin(), work.end(), record.key,
          [](const WorkEntry& w, const FlowKey& k) { return w.entry.key < k; });
      if (it != work.end() && it->entry.key == record.key) {
        // Algorithm 1, lines 15-18: the flow exists in C_prev — verify its
        // Merkle path against T_prev before aggregating into it.
        env.begin_region("per_record_merkle_verify");
        ZKT_TRY(verify_path_traced(env, prev_levels, it->old_index,
                                   journal.prev_root));
        env.begin_region("aggregate_records");
        merge_traced(env, it->entry, record);
        it->merged = true;
      } else if (auto created = created_flows.find(record.key);
                 created != created_flows.end()) {
        // Re-observed flow created earlier this round: no prev path.
        env.begin_region("aggregate_records");
        merge_traced(env, created->second.entry, record);
      } else {
        // New flow, first sighting this round.
        created_flows.emplace(record.key, WorkEntry{record, 0, true, true});
      }
      if (sketch_fold.value().enabled) {
        // Fold the record into the round sketch: depth traced index hashes
        // + saturating counter adds, weighted by the record's packets so
        // estimates cross-check against the exact CLog entry.
        env.begin_region("sketch_fold");
        sketch_fold_record_traced(env, sketch_fold.value().sketch, record.key,
                                  record.packets);
      }
    }
  }

  // ---- Recompute leaves for touched entries and derive the new root,
  // reusing the prev-state subtrees whose leaves did not change or move
  // instead of re-hashing the whole tree a second time. Walk the original
  // entries and this round's created flows as one key-sorted sequence — the
  // same order a direct sorted insert would have produced.
  env.begin_region("rebuild_merkle_tree");
  const u64 new_count = work.size() + created_flows.size();
  std::vector<Digest32> new_leaves(new_count);
  std::vector<UpdateRef> updates;
  std::vector<u64> changed_in_place;
  u64 stable_limit = new_count;  // first index whose position shifted
  auto original = work.begin();
  auto fresh = created_flows.begin();
  for (u64 j = 0; j < new_count; ++j) {
    const bool take_fresh =
        fresh != created_flows.end() &&
        (original == work.end() || fresh->first < original->entry.key);
    const WorkEntry& item = take_fresh ? fresh->second : *original;
    if (take_fresh) {
      ++fresh;
    } else {
      ++original;
    }
    if (item.created && j < stable_limit) stable_limit = j;
    if (item.created || item.merged) {
      new_leaves[j] = env.hash_leaf(item.entry.canonical_bytes());
      updates.push_back(UpdateRef{j, item.created, new_leaves[j]});
      if (!item.created) changed_in_place.push_back(j);
    } else {
      new_leaves[j] = prev_levels[0][item.old_index];
    }
  }
  journal.new_root = merkle_root_reuse_traced(
      env, std::move(new_leaves), prev_levels, changed_in_place, stable_limit);
  env.end_region();
  journal.new_entry_count = new_count;
  journal.update_count = updates.size();
  journal.updates_digest = detail::hash_update_refs(env, updates);

  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in aggregation input"};
  }

  detail::publish_sketch(env, sketch_fold.value(), journal);

  Writer jw;
  journal.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

// ---------------------------------------------------------------------------
// Query guests

}  // namespace

namespace detail {

/// Traced field extraction: the derived fields cost ALU rows, plain loads
/// are free (data movement).
u64 extract_field_traced(Env& env, const FlowRecord& e, QField field) {
  switch (field) {
    case QField::duration_ms:
      return env.alu(AluOp::sub, e.last_ms, e.first_ms);
    case QField::rtt_avg_us:
      return env.alu(AluOp::divu, e.rtt_sum_us, e.rtt_count);
    case QField::jitter_avg_us:
      return env.alu(AluOp::divu, e.jitter_sum_us, e.jitter_count);
    default:
      return extract_field(e, field);
  }
}

/// Traced condition evaluation -> 0/1.
u64 eval_condition_traced(Env& env, const Condition& c, const FlowRecord& e) {
  const u64 v = extract_field_traced(env, e, c.field);
  switch (c.op) {
    case CmpOp::eq: return env.alu(AluOp::eq, v, c.value);
    case CmpOp::ne: return env.alu(AluOp::xor_, env.alu(AluOp::eq, v, c.value), 1);
    case CmpOp::lt: return env.alu(AluOp::ltu, v, c.value);
    case CmpOp::le: return env.alu(AluOp::xor_, env.alu(AluOp::ltu, c.value, v), 1);
    case CmpOp::gt: return env.alu(AluOp::ltu, c.value, v);
    case CmpOp::ge: return env.alu(AluOp::xor_, env.alu(AluOp::ltu, v, c.value), 1);
  }
  return 0;
}

Result<ReceiptBinding> bind_receipt(Env& env,
                                    bool (*image_ok)(const zvm::ImageID&),
                                    std::string_view context) {
  ReceiptBinding binding;
  zvm::Claim& claim = binding.claim;
  auto img = env.read_digest();
  if (!img.ok()) return img.error();
  claim.image_id = img.value();
  auto input_digest = env.read_digest();
  if (!input_digest.ok()) return input_digest.error();
  claim.input_digest = input_digest.value();
  auto journal_digest = env.read_digest();
  if (!journal_digest.ok()) return journal_digest.error();
  claim.journal_digest = journal_digest.value();
  auto cycles = env.read_u64();
  if (!cycles.ok()) return cycles.error();
  claim.cycle_count = cycles.value();
  // The claim arrives in its canonical serialization (varint-counted
  // assumption list), exactly as Claim::serialize produces it.
  auto n_assumptions = env.read_varint();
  if (!n_assumptions.ok()) return n_assumptions.error();
  if (n_assumptions.value() > 4096) {
    return Error{Errc::guest_abort, "too many claim assumptions"};
  }
  claim.assumptions.resize(n_assumptions.value());
  for (auto& a : claim.assumptions) {
    auto aid = env.read_digest();
    if (!aid.ok()) return aid.error();
    a.image_id = aid.value();
    auto acd = env.read_digest();
    if (!acd.ok()) return acd.error();
    a.claim_digest = acd.value();
  }
  ZKT_TRY(env.assert_true(image_ok(claim.image_id), context));

  Writer cw;
  cw.str("zkt.claim.v1");
  claim.serialize(cw);
  binding.claim_digest = env.sha256(cw.bytes());
  ZKT_TRY(env.verify_assumption(claim.image_id, binding.claim_digest));

  auto journal_bytes = env.read_blob();
  if (!journal_bytes.ok()) return journal_bytes.error();
  const Digest32 jd = env.sha256(journal_bytes.value());
  ZKT_TRY(env.assert_eq(jd, claim.journal_digest, "child journal vs claim"));
  binding.journal = std::move(journal_bytes.value());
  return binding;
}

Result<AggBinding> bind_aggregation(Env& env) {
  // Either aggregation flavour is a valid binding target: full and
  // incremental rounds chain interchangeably and publish the same journal
  // schema.
  auto bound = bind_receipt(env, is_aggregation_image,
                            "query must target an aggregation receipt");
  if (!bound.ok()) return bound.error();
  AggBinding binding;
  binding.claim_digest = bound.value().claim_digest;
  auto agg_journal = AggJournal::parse(bound.value().journal);
  if (!agg_journal.ok()) return agg_journal.error();
  binding.journal = std::move(agg_journal.value());
  return binding;
}

}  // namespace detail

namespace {

using detail::bind_aggregation;
using detail::eval_condition_traced;
using detail::extract_field_traced;

Status query_guest(Env& env) {
  auto binding = bind_aggregation(env);
  if (!binding.ok()) return binding.error();

  QueryJournal out;
  out.mode = QueryMode::complete;
  out.agg_claim_digest = binding.value().claim_digest;
  out.agg_root = binding.value().journal.new_root;
  out.entry_count = binding.value().journal.new_entry_count;

  // ---- Load and authenticate the full CLog state.
  auto n_entries = env.read_u64();
  if (!n_entries.ok()) return n_entries.error();
  ZKT_TRY(assert_eq_u64(env, n_entries.value(), out.entry_count,
                        "query must scan the complete CLog state"));
  std::vector<FlowRecord> entries;
  std::vector<Digest32> leaves;
  entries.reserve(n_entries.value());
  leaves.reserve(n_entries.value());
  for (u64 i = 0; i < n_entries.value(); ++i) {
    auto bytes = env.read_blob();
    if (!bytes.ok()) return bytes.error();
    leaves.push_back(env.hash_leaf(bytes.value()));
    Reader er(bytes.value());
    auto entry = FlowRecord::deserialize(er);
    if (!entry.ok()) return entry.error();
    entries.push_back(std::move(entry.value()));
  }
  const Digest32 recomputed = merkle_root_traced(env, leaves);
  ZKT_TRY(env.assert_eq(recomputed, out.agg_root,
                        "CLog state vs aggregation root"));

  // ---- Parse the query.
  auto query_bytes = env.read_blob();
  if (!query_bytes.ok()) return query_bytes.error();
  Reader qr(query_bytes.value());
  auto query = Query::deserialize(qr);
  if (!query.ok()) return query.error();
  out.query = std::move(query.value());

  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in query input"};
  }

  // ---- Evaluate over every entry with traced arithmetic.
  QueryResult result;
  result.min = ~0ULL;
  for (const auto& entry : entries) {
    result.scanned = env.alu(AluOp::add, result.scanned, 1);
    // CNF evaluation.
    u64 matched = 1;
    for (const auto& clause : out.query.where) {
      u64 any = 0;
      for (const auto& cond : clause) {
        any = env.alu(AluOp::or_, any,
                      eval_condition_traced(env, cond, entry));
      }
      matched = env.alu(AluOp::and_, matched, any);
    }
    result.matched = env.alu(AluOp::add, result.matched, matched);
    const u64 v = extract_field_traced(env, entry, out.query.agg_field);
    result.sum = env.alu(AluOp::add, result.sum,
                         env.alu(AluOp::mul, matched, v));
    // min via arithmetic select (wrap-safe because take ∈ {0,1}).
    {
      const u64 lt = env.alu(AluOp::ltu, v, result.min);
      const u64 take = env.alu(AluOp::and_, matched, lt);
      const u64 diff = env.alu(AluOp::sub, v, result.min);
      result.min = env.alu(AluOp::add, result.min,
                           env.alu(AluOp::mul, take, diff));
    }
    {
      const u64 gt = env.alu(AluOp::ltu, result.max, v);
      const u64 take = env.alu(AluOp::and_, matched, gt);
      const u64 diff = env.alu(AluOp::sub, v, result.max);
      result.max = env.alu(AluOp::add, result.max,
                           env.alu(AluOp::mul, take, diff));
    }
  }
  out.result = result;

  Writer jw;
  out.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

// Selective query guest (§4.2 of the paper): the prover opens only the
// entries relevant to the query, each authenticated by a Merkle inclusion
// proof against the aggregation root, and proves they all match the
// predicate and aggregate to the result. Cheaper than the complete scan but
// does not prove that no other entry matches (see QueryMode).
Status selective_query_guest(Env& env) {
  auto binding = bind_aggregation(env);
  if (!binding.ok()) return binding.error();

  QueryJournal out;
  out.mode = QueryMode::selective;
  out.agg_claim_digest = binding.value().claim_digest;
  out.agg_root = binding.value().journal.new_root;
  out.entry_count = binding.value().journal.new_entry_count;

  auto query_bytes = env.read_blob();
  if (!query_bytes.ok()) return query_bytes.error();
  Reader qr(query_bytes.value());
  auto query = Query::deserialize(qr);
  if (!query.ok()) return query.error();
  out.query = std::move(query.value());

  auto n_opened = env.read_u64();
  if (!n_opened.ok()) return n_opened.error();
  ZKT_TRY(env.assert_true(n_opened.value() <= out.entry_count,
                          "cannot open more entries than exist"));

  QueryResult result;
  result.min = ~0ULL;
  std::vector<std::pair<u64, Digest32>> opened_leaves;
  std::vector<FlowRecord> opened_entries;
  opened_leaves.reserve(n_opened.value());
  opened_entries.reserve(n_opened.value());
  for (u64 i = 0; i < n_opened.value(); ++i) {
    auto index = env.read_u64();
    if (!index.ok()) return index.error();
    auto entry_bytes = env.read_blob();
    if (!entry_bytes.ok()) return entry_bytes.error();
    ZKT_TRY(env.assert_true(index.value() < out.entry_count,
                            "opened index out of range"));
    opened_leaves.emplace_back(index.value(),
                               env.hash_leaf(entry_bytes.value()));
    Reader er(entry_bytes.value());
    auto entry = FlowRecord::deserialize(er);
    if (!entry.ok()) return entry.error();
    opened_entries.push_back(std::move(entry.value()));
  }

  if (n_opened.value() > 0) {
    // One batch inclusion proof for every opened entry. Strict index
    // ascension inside the check also rules out double counting.
    auto proof_bytes = env.read_blob();
    if (!proof_bytes.ok()) return proof_bytes.error();
    Reader pr(proof_bytes.value());
    auto proof = crypto::MerkleMultiProof::deserialize(pr);
    if (!proof.ok()) return proof.error();
    ZKT_TRY(assert_eq_u64(env, proof.value().leaf_count, out.entry_count,
                          "proof leaf count vs state size"));
    ZKT_TRY(env.verify_merkle_multi(out.agg_root, opened_leaves,
                                    proof.value()));
  }
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in selective query input"};
  }

  for (const auto& entry : opened_entries) {
    // Every opened entry must satisfy the predicate (the prover cannot
    // smuggle non-matching entries into the aggregate).
    u64 matched = 1;
    for (const auto& clause : out.query.where) {
      u64 any = 0;
      for (const auto& cond : clause) {
        any = env.alu(AluOp::or_, any,
                      eval_condition_traced(env, cond, entry));
      }
      matched = env.alu(AluOp::and_, matched, any);
    }
    ZKT_TRY(env.assert_true(matched == 1, "opened entry must match query"));

    result.matched = env.alu(AluOp::add, result.matched, 1);
    result.scanned = env.alu(AluOp::add, result.scanned, 1);
    const u64 v = extract_field_traced(env, entry, out.query.agg_field);
    result.sum = env.alu(AluOp::add, result.sum, v);
    {
      const u64 lt = env.alu(AluOp::ltu, v, result.min);
      const u64 diff = env.alu(AluOp::sub, v, result.min);
      result.min =
          env.alu(AluOp::add, result.min, env.alu(AluOp::mul, lt, diff));
    }
    {
      const u64 gt = env.alu(AluOp::ltu, result.max, v);
      const u64 diff = env.alu(AluOp::sub, v, result.max);
      result.max =
          env.alu(AluOp::add, result.max, env.alu(AluOp::mul, gt, diff));
    }
  }
  out.result = result;

  Writer jw;
  out.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace

const GuestImages& guest_images() {
  static const GuestImages images = [] {
    GuestImages g;
    g.aggregate =
        zvm::ImageRegistry::instance().add("zkt.guest.aggregate", 1,
                                           aggregate_guest);
    g.aggregate_incremental = zvm::ImageRegistry::instance().add(
        "zkt.guest.aggregate_incremental", 1,
        detail::aggregate_incremental_guest);
    g.query = zvm::ImageRegistry::instance().add("zkt.guest.query", 1,
                                                 query_guest);
    g.query_selective = zvm::ImageRegistry::instance().add(
        "zkt.guest.query_selective", 1, selective_query_guest);
    return g;
  }();
  return images;
}

}  // namespace zkt::core
