#include "core/grouped_query.h"

#include <map>

#include "core/auditor.h"

namespace zkt::core {

namespace {

using netflow::FlowRecord;
using zvm::AluOp;
using zvm::Env;

Status grouped_query_guest(Env& env) {
  auto binding = detail::bind_aggregation(env);
  if (!binding.ok()) return binding.error();

  GroupedQueryJournal out;
  out.agg_claim_digest = binding.value().claim_digest;
  out.agg_root = binding.value().journal.new_root;
  out.entry_count = binding.value().journal.new_entry_count;

  auto query_bytes = env.read_blob();
  if (!query_bytes.ok()) return query_bytes.error();
  Reader qr(query_bytes.value());
  auto query = Query::deserialize(qr);
  if (!query.ok()) return query.error();
  out.query = std::move(query.value());

  auto group_field = env.read_u8();
  if (!group_field.ok()) return group_field.error();
  if (group_field.value() < 1 ||
      group_field.value() > static_cast<u8>(QField::jitter_avg_us)) {
    return Error{Errc::guest_abort, "bad group field"};
  }
  out.group_field = static_cast<QField>(group_field.value());

  // Load and authenticate the full state (completeness is the point of a
  // grouped report: no group can be omitted).
  auto n_entries = env.read_u64();
  if (!n_entries.ok()) return n_entries.error();
  const u64 expect_eq =
      env.alu(AluOp::eq, n_entries.value(), out.entry_count);
  ZKT_TRY(env.assert_true(expect_eq == 1,
                          "grouped query must scan the complete state"));
  std::vector<FlowRecord> entries;
  std::vector<Digest32> leaves;
  entries.reserve(n_entries.value());
  leaves.reserve(n_entries.value());
  for (u64 i = 0; i < n_entries.value(); ++i) {
    auto bytes = env.read_blob();
    if (!bytes.ok()) return bytes.error();
    leaves.push_back(env.hash_leaf(bytes.value()));
    Reader er(bytes.value());
    auto entry = FlowRecord::deserialize(er);
    if (!entry.ok()) return entry.error();
    entries.push_back(std::move(entry.value()));
  }
  const Digest32 recomputed = merkle_root_traced(env, leaves);
  ZKT_TRY(env.assert_eq(recomputed, out.agg_root,
                        "CLog state vs aggregation root"));
  if (env.input_remaining() != 0) {
    return Error{Errc::guest_abort, "trailing bytes in grouped query input"};
  }

  // Evaluate: predicate per entry, then accumulate into the entry's group.
  std::map<u64, QueryResult> groups;  // ordered -> deterministic journal
  for (const auto& entry : entries) {
    u64 matched = 1;
    for (const auto& clause : out.query.where) {
      u64 any = 0;
      for (const auto& cond : clause) {
        any = env.alu(AluOp::or_, any,
                      detail::eval_condition_traced(env, cond, entry));
      }
      matched = env.alu(AluOp::and_, matched, any);
    }
    if (matched == 0) continue;  // trace already witnessed the evaluation
    const u64 group_value =
        detail::extract_field_traced(env, entry, out.group_field);
    auto [it, inserted] = groups.emplace(group_value, QueryResult{});
    QueryResult& acc = it->second;
    if (inserted) acc.min = ~0ULL;
    acc.matched = env.alu(AluOp::add, acc.matched, 1);
    acc.scanned = acc.matched;
    const u64 v =
        detail::extract_field_traced(env, entry, out.query.agg_field);
    acc.sum = env.alu(AluOp::add, acc.sum, v);
    {
      const u64 lt = env.alu(AluOp::ltu, v, acc.min);
      const u64 diff = env.alu(AluOp::sub, v, acc.min);
      acc.min = env.alu(AluOp::add, acc.min, env.alu(AluOp::mul, lt, diff));
    }
    {
      const u64 gt = env.alu(AluOp::ltu, acc.max, v);
      const u64 diff = env.alu(AluOp::sub, v, acc.max);
      acc.max = env.alu(AluOp::add, acc.max, env.alu(AluOp::mul, gt, diff));
    }
  }
  out.groups.reserve(groups.size());
  for (const auto& [value, stats] : groups) {
    out.groups.push_back(GroupEntry{value, stats});
  }

  Writer jw;
  out.write(jw);
  env.commit_raw(jw.bytes());
  return {};
}

}  // namespace

void GroupedQueryJournal::write(Writer& w) const {
  w.str("GQRY1");
  w.fixed(agg_claim_digest.bytes);
  w.fixed(agg_root.bytes);
  w.u64v(entry_count);
  w.blob(query.to_bytes());
  w.u8v(static_cast<u8>(group_field));
  w.varint(groups.size());
  for (const auto& g : groups) {
    w.u64v(g.group_value);
    w.u64v(g.stats.matched);
    w.u64v(g.stats.scanned);
    w.u64v(g.stats.sum);
    w.u64v(g.stats.min);
    w.u64v(g.stats.max);
  }
}

Result<GroupedQueryJournal> GroupedQueryJournal::parse(BytesView journal) {
  Reader r(journal);
  auto magic = r.str();
  if (!magic.ok()) return magic.error();
  if (magic.value() != "GQRY1") {
    return Error{Errc::parse_error, "bad grouped query journal magic"};
  }
  GroupedQueryJournal j;
  ZKT_TRY(r.fixed(j.agg_claim_digest.bytes));
  ZKT_TRY(r.fixed(j.agg_root.bytes));
  auto ec = r.u64v();
  if (!ec.ok()) return ec.error();
  j.entry_count = ec.value();
  auto qb = r.blob();
  if (!qb.ok()) return qb.error();
  Reader qr(qb.value());
  auto q = Query::deserialize(qr);
  if (!q.ok()) return q.error();
  j.query = std::move(q.value());
  auto gf = r.u8v();
  if (!gf.ok()) return gf.error();
  if (gf.value() < 1 || gf.value() > static_cast<u8>(QField::jitter_avg_us)) {
    return Error{Errc::parse_error, "bad group field"};
  }
  j.group_field = static_cast<QField>(gf.value());
  auto n = r.varint();
  if (!n.ok()) return n.error();
  if (n.value() > (1u << 24)) {
    return Error{Errc::parse_error, "too many groups"};
  }
  j.groups.resize(n.value());
  for (auto& g : j.groups) {
    u64* fields[] = {&g.group_value,  &g.stats.matched, &g.stats.scanned,
                     &g.stats.sum,    &g.stats.min,     &g.stats.max};
    for (u64* f : fields) {
      auto v = r.u64v();
      if (!v.ok()) return v.error();
      *f = v.value();
    }
  }
  if (!r.done()) {
    return Error{Errc::parse_error, "trailing grouped query journal"};
  }
  return j;
}

zvm::ImageID grouped_query_image() {
  static const zvm::ImageID id = zvm::ImageRegistry::instance().add(
      "zkt.guest.query_grouped", 1, grouped_query_guest);
  return id;
}

std::vector<GroupEntry> evaluate_grouped(
    const Query& query, QField group_field,
    std::span<const netflow::FlowRecord> entries) {
  std::map<u64, QueryResult> groups;
  for (const auto& entry : entries) {
    if (!matches(query, entry)) continue;
    const u64 group_value = extract_field(entry, group_field);
    auto [it, inserted] = groups.emplace(group_value, QueryResult{});
    if (inserted) it->second.min = ~0ULL;
    QueryResult& acc = it->second;
    ++acc.matched;
    acc.scanned = acc.matched;
    const u64 v = extract_field(entry, query.agg_field);
    acc.sum += v;
    acc.min = std::min(acc.min, v);
    acc.max = std::max(acc.max, v);
  }
  std::vector<GroupEntry> out;
  out.reserve(groups.size());
  for (const auto& [value, stats] : groups) {
    out.push_back(GroupEntry{value, stats});
  }
  return out;
}

Result<GroupedQueryResponse> run_grouped_query(
    const AggregationService& aggregation, const Query& query,
    QField group_field, const zvm::ProveOptions& options) {
  if (!aggregation.has_rounds()) {
    return Error{Errc::chain_broken, "no aggregation round to query against"};
  }
  const zvm::Receipt& agg_receipt = aggregation.last_receipt();

  Writer input;
  agg_receipt.claim.serialize(input);
  input.blob(agg_receipt.journal);
  input.blob(query.to_bytes());
  input.u8v(static_cast<u8>(group_field));
  input.u64v(aggregation.state().entry_count());
  for (const auto& bytes : aggregation.state().entry_bytes()) {
    input.blob(bytes);
  }

  zvm::ProveOptions prove_options = options;
  prove_options.assumptions.push_back(agg_receipt);

  zvm::Prover prover;
  zvm::ProveInfo info;
  auto receipt = prover.prove(grouped_query_image(), input.bytes(),
                              prove_options, &info);
  if (!receipt.ok()) return receipt.error();
  auto journal = GroupedQueryJournal::parse(receipt.value().journal);
  if (!journal.ok()) return journal.error();

  GroupedQueryResponse response;
  response.receipt = std::move(receipt.value());
  response.journal = std::move(journal.value());
  response.prove_info = info;
  return response;
}

Result<GroupedQueryJournal> verify_grouped_query(
    const zvm::Receipt& receipt, const Auditor& auditor,
    const Query* expected_query, const QField* expected_group) {
  zvm::Verifier verifier;
  ZKT_TRY(verifier.verify(receipt, grouped_query_image()));
  auto journal = GroupedQueryJournal::parse(receipt.journal);
  if (!journal.ok()) return journal.error();
  const GroupedQueryJournal& j = journal.value();

  if (!auditor.is_accepted_claim(j.agg_claim_digest)) {
    return Error{Errc::chain_broken,
                 "grouped query targets an unaccepted aggregation round"};
  }
  if (expected_query != nullptr &&
      j.query.digest() != expected_query->digest()) {
    return Error{Errc::proof_invalid,
                 "receipt proves a different query than requested"};
  }
  if (expected_group != nullptr && j.group_field != *expected_group) {
    return Error{Errc::proof_invalid,
                 "receipt groups by a different field than requested"};
  }
  return journal;
}

}  // namespace zkt::core
