#include "core/fold.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace zkt::core {

Result<FoldResult> fold_receipts(std::span<const zvm::Receipt> leaves,
                                 const FoldOptions& options) {
  if (leaves.size() < 2) {
    return Error{Errc::invalid_argument,
                 "fold needs at least 2 leaf receipts"};
  }
  const bool sketched = !options.leaf_sketches.empty();
  if (sketched && options.leaf_sketches.size() != leaves.size()) {
    return Error{Errc::invalid_argument,
                 "fold needs one leaf sketch per leaf receipt"};
  }
  const u32 fanout = std::clamp<u32>(options.fanout, 2, 64);
  const auto start = std::chrono::steady_clock::now();
  obs::Registry& metrics = obs::Registry::instance();
  obs::ScopedSpan span("tree_fold");
  common::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : common::ThreadPool::shared();

  FoldResult result;
  // zkt-lint: shared(atomic join-cycle counter; workers only fetch_add)
  std::atomic<u64> cycles{0};
  // zkt-lint: shared(read-only inside workers; rebuilt between levels, after parallel_for joins)
  std::vector<zvm::Receipt> level(leaves.begin(), leaves.end());
  // Host mirror of the guests' sketch merges, advanced level by level in the
  // same left-to-right group order the join guests use.
  std::vector<netflow::RoundSketch> level_sketches(
      options.leaf_sketches.begin(), options.leaf_sketches.end());
  u64 sketch_merges = 0;
  while (level.size() > 1) {
    const size_t groups = (level.size() + fanout - 1) / fanout;
    const bool is_root = groups == 1;
    // zkt-lint: shared(read-only inside workers; rebuilt between levels, after parallel_for joins)
    std::vector<Bytes> level_sketch_bytes;
    if (sketched) {
      level_sketch_bytes.reserve(level.size());
      for (const auto& s : level_sketches) {
        level_sketch_bytes.push_back(s.canonical_bytes());
      }
    }
    // zkt-lint: shared(one slot per join group; workers write disjoint indices, read after join)
    std::vector<Result<zvm::Receipt>> joined(
        groups, Result<zvm::Receipt>(Errc::unsupported));
    pool.parallel_for(groups, 1, [&](size_t first, size_t last) {
      for (size_t g = first; g < last; ++g) {
        const size_t begin = g * fanout;
        const size_t end = std::min(begin + fanout, level.size());
        if (end - begin == 1) {
          // Single leftover child: passes through to the next level — a
          // 1-ary "join" would prove nothing its child doesn't already.
          joined[g] = level[begin];
          continue;
        }
        Writer input;
        input.u32v(static_cast<u32>(end - begin));
        zvm::ProveOptions prove_options = options.prove_options;
        prove_options.assumptions.clear();
        if (!is_root) {
          // Interior joins must embed their children (assumption receipts),
          // which only composite receipts carry; the caller's seal kind is
          // reserved for the root.
          prove_options.seal_kind = zvm::SealKind::composite;
        }
        for (size_t i = begin; i < end; ++i) {
          write_join_child(input, level[i],
                           sketched ? &level_sketch_bytes[i] : nullptr);
          prove_options.assumptions.push_back(level[i]);
        }
        zvm::Prover prover;
        zvm::ProveInfo info;
        auto receipt =
            prover.prove(join_image(), input.bytes(), prove_options, &info);
        if (receipt.ok()) cycles.fetch_add(info.cycles);
        joined[g] = std::move(receipt);
      }
    });
    std::vector<zvm::Receipt> next;
    next.reserve(groups);
    std::vector<netflow::RoundSketch> next_sketches;
    if (sketched) next_sketches.reserve(groups);
    for (size_t g = 0; g < groups; ++g) {
      if (!joined[g].ok()) return joined[g].error();
      const size_t begin = g * fanout;
      const size_t end = std::min(begin + fanout, level.size());
      if (end - begin > 1) ++result.joins;
      next.push_back(std::move(joined[g].value()));
      if (sketched) {
        // Same grouping, same child order as the join guest above — the
        // Space-Saving merge is order-sensitive, so the mirror must replay
        // it exactly for the digests to meet.
        netflow::RoundSketch merged = std::move(level_sketches[begin]);
        for (size_t i = begin + 1; i < end; ++i) {
          ZKT_TRY(merged.merge(level_sketches[i]));
          ++sketch_merges;
        }
        next_sketches.push_back(std::move(merged));
      }
    }
    level = std::move(next);
    level_sketches = std::move(next_sketches);
  }

  result.root = std::move(level.front());
  auto journal = JoinJournal::parse(result.root.journal);
  if (!journal.ok()) return journal.error();
  result.journal = std::move(journal.value());
  if (sketched) {
    if (!result.journal.has_sketch ||
        result.journal.sketch_digest != level_sketches.front().hash()) {
      return Error{Errc::hash_mismatch,
                   "host-merged sketch diverged from the tree seal"};
    }
    result.sketch = std::move(level_sketches.front());
    metrics.counter("core.sketch.merges").add(sketch_merges);
  }
  result.total_cycles = cycles.load();
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  metrics.counter("core.tree.joins").add(result.joins);
  metrics.counter("core.tree.folds").add(1);
  metrics.histogram("core.tree.fold_ms").record(result.wall_ms);
  metrics.histogram("core.tree.height")
      .record(static_cast<double>(result.journal.height));
  metrics.histogram("core.tree.leaves")
      .record(static_cast<double>(result.journal.leaf_count));
  metrics.histogram("core.tree.seal_bytes")
      .record(static_cast<double>(result.root.seal_size_bytes()));
  return result;
}

Status verify_join_receipt(zvm::Verifier& verifier,
                           const zvm::Receipt& receipt) {
  return verify_join_receipt(verifier, receipt, zvm::VerifyContext{});
}

Status verify_join_receipt(zvm::Verifier& verifier,
                           const zvm::Receipt& receipt,
                           const zvm::VerifyContext& context) {
  return verifier.verify(receipt, join_image(), context);
}

}  // namespace zkt::core
