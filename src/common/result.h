// Lightweight Result<T> / Status types for recoverable errors.
//
// zktel distinguishes programming errors (assert/abort) from protocol and
// verification failures, which are reported as values so callers can react
// (e.g. a failed Merkle check during aggregation must abort the round with a
// diagnosable reason, per Algorithm 1 of the paper).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace zkt {

enum class Errc {
  ok = 0,
  invalid_argument,
  parse_error,
  io_error,
  not_found,
  duplicate,
  // Verification failures (tamper-evident paths).
  hash_mismatch,
  merkle_mismatch,
  signature_invalid,
  proof_invalid,
  chain_broken,
  commitment_missing,
  // zkVM execution failures.
  guest_abort,
  input_exhausted,
  unsupported,
};

/// Human-readable name for an error code.
const char* errc_name(Errc c);

struct Error {
  Errc code = Errc::ok;
  std::string message;

  std::string to_string() const {
    std::string s = errc_name(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

inline Error make_error(Errc code, std::string message = {}) {
  return Error{code, std::move(message)};
}

/// Result<T>: either a value or an Error. Minimal std::expected stand-in.
/// [[nodiscard]] so silently dropping a fallible call is a compile warning;
/// zkt-lint's result-discipline rule enforces the same at review time.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}              // NOLINT(implicit)
  Result(Error err) : v_(std::move(err)) {}              // NOLINT(implicit)
  Result(Errc code, std::string msg = {}) : v_(Error{code, std::move(msg)}) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? std::get<T>(v_) : fallback;
  }

 private:
  std::variant<T, Error> v_;
};

/// Status: Result with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;                                   // ok
  Status(Error err) : err_(std::move(err)) {}           // NOLINT(implicit)
  Status(Errc code, std::string msg = {}) : err_(Error{code, std::move(msg)}) {
    if (code == Errc::ok) err_.reset();
  }

  static Status Ok() { return {}; }

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *err_;
  }

  Errc code() const { return ok() ? Errc::ok : err_->code; }

  std::string to_string() const { return ok() ? "ok" : err_->to_string(); }

 private:
  std::optional<Error> err_;
};

/// Propagate errors: evaluates expr (a Status or Result); on failure returns
/// the error from the enclosing function.
#define ZKT_TRY(expr)                            \
  do {                                           \
    auto _zkt_status = (expr);                   \
    if (!_zkt_status.ok()) return _zkt_status.error(); \
  } while (0)

}  // namespace zkt
