#include "common/result.h"

namespace zkt {

const char* errc_name(Errc c) {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::parse_error: return "parse_error";
    case Errc::io_error: return "io_error";
    case Errc::not_found: return "not_found";
    case Errc::duplicate: return "duplicate";
    case Errc::hash_mismatch: return "hash_mismatch";
    case Errc::merkle_mismatch: return "merkle_mismatch";
    case Errc::signature_invalid: return "signature_invalid";
    case Errc::proof_invalid: return "proof_invalid";
    case Errc::chain_broken: return "chain_broken";
    case Errc::commitment_missing: return "commitment_missing";
    case Errc::guest_abort: return "guest_abort";
    case Errc::input_exhausted: return "input_exhausted";
    case Errc::unsupported: return "unsupported";
  }
  return "unknown";
}

}  // namespace zkt
