#include "common/serial.h"

namespace zkt {

void Writer::varint(u64 v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<u8>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<u8>(v));
}

Result<u8> Reader::u8v() { return get_le<u8>(); }
Result<u16> Reader::u16v() { return get_le<u16>(); }
Result<u32> Reader::u32v() { return get_le<u32>(); }
Result<u64> Reader::u64v() { return get_le<u64>(); }

Result<i64> Reader::i64v() {
  auto r = get_le<u64>();
  if (!r.ok()) return r.error();
  return static_cast<i64>(r.value());
}

Result<u64> Reader::varint() {
  u64 v = 0;
  int shift = 0;
  while (true) {
    if (remaining() == 0) return Error{Errc::parse_error, "truncated varint"};
    if (shift >= 64) return Error{Errc::parse_error, "varint overflow"};
    u8 b = data_[pos_++];
    v |= static_cast<u64>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<Bytes> Reader::raw(size_t n) {
  if (remaining() < n) return Error{Errc::parse_error, "short raw read"};
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Result<Bytes> Reader::blob() {
  auto len = varint();
  if (!len.ok()) return len.error();
  if (len.value() > remaining())
    return Error{Errc::parse_error, "blob length exceeds buffer"};
  return raw(static_cast<size_t>(len.value()));
}

Result<std::string> Reader::str() {
  auto b = blob();
  if (!b.ok()) return b.error();
  return std::string(b.value().begin(), b.value().end());
}

}  // namespace zkt
