// Tiny command-line flag parser for the zkt-* tools: supports
// --name=value, --name value, bare --switch, and positional arguments.
#pragma once

#include <charconv>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace zkt {

class Flags {
 public:
  Flags(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.starts_with("--")) {
        arg.remove_prefix(2);
        const size_t eq = arg.find('=');
        if (eq != std::string_view::npos) {
          named_[std::string(arg.substr(0, eq))] =
              std::string(arg.substr(eq + 1));
        } else if (i + 1 < argc &&
                   std::string_view(argv[i + 1]).substr(0, 2) != "--") {
          named_[std::string(arg)] = argv[++i];
        } else {
          named_[std::string(arg)] = "";  // bare switch
        }
      } else {
        positional_.emplace_back(arg);
      }
    }
  }

  bool has(const std::string& name) const { return named_.count(name) > 0; }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = named_.find(name);
    return it == named_.end() ? fallback : it->second;
  }

  u64 get_u64(const std::string& name, u64 fallback) const {
    auto it = named_.find(name);
    if (it == named_.end() || it->second.empty()) return fallback;
    u64 value = fallback;
    const auto& s = it->second;
    std::from_chars(s.data(), s.data() + s.size(), value);
    return value;
  }

  double get_double(const std::string& name, double fallback) const {
    auto it = named_.find(name);
    if (it == named_.end() || it->second.empty()) return fallback;
    try {
      return std::stod(it->second);
    } catch (...) {
      return fallback;
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> named_;
  std::vector<std::string> positional_;
};

}  // namespace zkt
