// Byte-buffer aliases and hex helpers used across all zktel modules.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace zkt {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

using Bytes = std::vector<u8>;
using BytesView = std::span<const u8>;

/// Encode a byte span as lowercase hex.
std::string to_hex(BytesView data);

/// Decode a hex string (with or without "0x" prefix). Returns false on
/// malformed input (odd length or non-hex characters).
bool from_hex(std::string_view hex, Bytes& out);

/// Convenience: hex-decode or abort. Intended for test vectors and constants.
Bytes hex_bytes(std::string_view hex);

/// Constant-time equality for secrets/digests.
bool ct_equal(BytesView a, BytesView b);

/// View over the raw bytes of a trivially copyable value.
template <typename T>
  requires std::is_trivially_copyable_v<T>
BytesView as_bytes_view(const T& v) {
  return {reinterpret_cast<const u8*>(&v), sizeof(T)};
}

/// Append a byte span to a buffer.
inline void append(Bytes& out, BytesView data) {
  out.insert(out.end(), data.begin(), data.end());
}

/// Append the bytes of a string.
inline void append(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

/// Bytes from a string literal/view.
inline Bytes bytes_of(std::string_view s) { return Bytes(s.begin(), s.end()); }

}  // namespace zkt
