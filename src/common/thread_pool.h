// common::ThreadPool — a bounded, shared worker pool for the proving host.
//
// The prover and the sharded aggregation service previously spawned one
// std::thread per segment / per shard, so a large trace or a wide shard
// fan-out could momentarily create hundreds of kernel threads. This pool
// replaces that with a fixed set of workers and a *bounded* task queue:
// submit() applies backpressure (blocks) when the queue is full, and
// try_submit() lets latency-sensitive callers fall back to running work
// inline instead of waiting.
//
// parallel_for() is the primary interface for the hot paths (segment
// commitment, Merkle level hashing, per-shard proving). It is safe to call
// from *inside* a pool task: the caller always participates in the loop and,
// while waiting for helper chunks, drains other queued tasks instead of
// blocking — so nested parallelism (a pooled segment build whose Merkle
// rebuild is itself level-parallel) cannot deadlock, even on a single-worker
// pool.
//
// Host-side only: guests never see this type (determinism — see
// .zkt-lint.toml guest-determinism excludes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/bytes.h"

namespace zkt::common {

class ThreadPool {
 public:
  struct Options {
    /// Worker thread count; 0 means std::thread::hardware_concurrency().
    size_t threads = 0;
    /// Maximum queued (not yet running) tasks before submit() blocks.
    size_t max_queue = 1024;
  };

  explicit ThreadPool(Options options);
  ThreadPool() : ThreadPool(Options{}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }
  size_t max_queue() const { return max_queue_; }

  /// Tasks currently waiting in the queue (excludes running tasks).
  size_t queue_depth() const;
  /// Tasks executed by pool workers or drained by help-waiting callers.
  u64 tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// parallel_for chunks that ran on the calling thread.
  u64 chunks_inline() const { return inlined_.load(std::memory_order_relaxed); }

  /// Enqueue `fn`; blocks while the queue is full (bounded backpressure).
  /// The returned future carries fn's result or its exception.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); }, /*block=*/true);
    return future;
  }

  /// Non-blocking submit: returns an empty optional (and runs nothing) when
  /// the queue is full, so the caller can execute the work inline instead.
  template <typename F>
  auto try_submit(F&& fn)
      -> std::optional<std::future<std::invoke_result_t<std::decay_t<F>>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (!enqueue([task] { (*task)(); }, /*block=*/false)) {
      return std::nullopt;
    }
    return future;
  }

  /// Run body(begin, end) over subranges covering [0, n). Chunks are claimed
  /// dynamically; the caller participates and, while waiting for helpers,
  /// executes other queued tasks (deadlock-free under nesting). Rethrows the
  /// first chunk exception after all chunks finish. `grain` is the smallest
  /// chunk worth shipping to another thread.
  void parallel_for(size_t n, size_t grain,
                    const std::function<void(size_t, size_t)>& body);

  /// Process-wide pool shared by the prover, Merkle builds, and the sharded
  /// aggregation service. Sized from the ZKT_POOL_THREADS environment
  /// variable when set, else hardware concurrency.
  static ThreadPool& shared();

 private:
  bool enqueue(std::function<void()> task, bool block);
  /// Pop and run one queued task; false if the queue was empty.
  bool run_one();
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  // zkt-lint: guarded_by(mu_) workers and submitters pop/push concurrently
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t max_queue_;
  // zkt-lint: guarded_by(mu_) checked by every wait predicate
  bool stop_ = false;
  std::atomic<u64> executed_{0};
  std::atomic<u64> inlined_{0};
};

}  // namespace zkt::common
