#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace zkt {

namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};
std::once_flag g_env_once;
std::mutex g_write_mutex;

LogLevel parse_level(const char* s) {
  if (!s) return LogLevel::warn;
  if (std::strcmp(s, "trace") == 0) return LogLevel::trace;
  if (std::strcmp(s, "debug") == 0) return LogLevel::debug;
  if (std::strcmp(s, "info") == 0) return LogLevel::info;
  if (std::strcmp(s, "warn") == 0) return LogLevel::warn;
  if (std::strcmp(s, "error") == 0) return LogLevel::error;
  if (std::strcmp(s, "off") == 0) return LogLevel::off;
  return LogLevel::warn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

void init_from_env() {
  std::call_once(g_env_once, [] {
    if (const char* env = std::getenv("ZKT_LOG_LEVEL")) {
      g_level.store(parse_level(env), std::memory_order_relaxed);
    }
  });
}

}  // namespace

LogLevel log_level() {
  init_from_env();
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) {
  init_from_env();
  g_level.store(level, std::memory_order_relaxed);
}

namespace detail {

void log_write(LogLevel level, const std::string& msg) {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       system_clock::now().time_since_epoch())
                       .count();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%lld.%03lld] %-5s %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), level_tag(level),
               msg.c_str());
}

}  // namespace detail

}  // namespace zkt
