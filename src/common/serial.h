// Binary serialization: little-endian Writer/Reader with length-prefixed
// containers. All zktel wire objects (receipts, commitments, NetFlow export
// packets, store WAL records) are serialized through these.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace zkt {

/// Appends little-endian primitives and length-prefixed blobs to a buffer.
class Writer {
 public:
  Writer() = default;
  explicit Writer(Bytes initial) : buf_(std::move(initial)) {}

  void u8v(u8 v) { buf_.push_back(v); }
  void u16v(u16 v) { put_le(v); }
  void u32v(u32 v) { put_le(v); }
  void u64v(u64 v) { put_le(v); }
  void i64v(i64 v) { put_le(static_cast<u64>(v)); }

  /// Unsigned LEB128 varint.
  void varint(u64 v);

  /// Raw bytes, no length prefix.
  void raw(BytesView data) { append(buf_, data); }

  /// varint length + bytes.
  void blob(BytesView data) {
    varint(data.size());
    raw(data);
  }

  void str(std::string_view s) {
    varint(s.size());
    append(buf_, s);
  }

  template <size_t N>
  void fixed(const std::array<u8, N>& a) {
    raw(BytesView(a.data(), N));
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<u8>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Consumes little-endian primitives from a byte view; all reads are bounds-
/// checked and report Errc::parse_error instead of reading out of range.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  Result<u8> u8v();
  Result<u16> u16v();
  Result<u32> u32v();
  Result<u64> u64v();
  Result<i64> i64v();
  Result<u64> varint();

  /// Read exactly n raw bytes.
  Result<Bytes> raw(size_t n);

  /// Read a varint-length-prefixed blob.
  Result<Bytes> blob();

  Result<std::string> str();

  template <size_t N>
  Status fixed(std::array<u8, N>& out) {
    if (remaining() < N) return Error{Errc::parse_error, "short fixed read"};
    std::memcpy(out.data(), data_.data() + pos_, N);
    pos_ += N;
    return {};
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  size_t position() const { return pos_; }

 private:
  template <typename T>
  Result<T> get_le() {
    if (remaining() < sizeof(T))
      return Error{Errc::parse_error, "short read"};
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  BytesView data_;
  size_t pos_ = 0;
};

}  // namespace zkt
