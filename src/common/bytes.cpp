#include "common/bytes.h"

#include <cstdlib>

namespace zkt {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (u8 b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

bool from_hex(std::string_view hex, Bytes& out) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) hex.remove_prefix(2);
  if (hex.size() % 2 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_nibble(hex[i]);
    int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return true;
}

Bytes hex_bytes(std::string_view hex) {
  Bytes out;
  if (!from_hex(hex, out)) std::abort();
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  u8 acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<u8>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace zkt
