// Minimal leveled logger. Thread-safe; writes to stderr. Level is process-
// global and settable via ZKT_LOG_LEVEL (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace zkt {

enum class LogLevel { trace = 0, debug, info, warn, error, off };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_write(LogLevel level, const std::string& msg);
}

/// Stream-style log statement: ZKT_LOG(info) << "aggregated " << n;
#define ZKT_LOG(level_name)                                            \
  for (bool _zkt_once = ::zkt::log_level() <= ::zkt::LogLevel::level_name; \
       _zkt_once; _zkt_once = false)                                   \
  ::zkt::detail::LogLine(::zkt::LogLevel::level_name)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace zkt
