#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace zkt::common {

ThreadPool::ThreadPool(Options options)
    : max_queue_(std::max<size_t>(options.max_queue, 1)) {
  size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<unsigned>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Drain anything still queued so every submitted task's future resolves
  // (packaged_task destruction without invocation would leave callers
  // blocked on a broken promise only in the std::future::get sense; running
  // them keeps shutdown semantics simple: destruction completes all work).
  while (run_one()) {
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool ThreadPool::enqueue(std::function<void()> task, bool block) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (block) {
      not_full_.wait(lock,
                     [this] { return stop_ || queue_.size() < max_queue_; });
    } else if (queue_.size() >= max_queue_ && !stop_) {
      return false;
    }
    if (stop_) {
      // After shutdown begins, run the task on the caller: the pool's
      // guarantee is that accepted work always completes.
      lock.unlock();
      task();
      executed_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  not_full_.notify_one();
  task();
  executed_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(size_t n, size_t grain,
                              const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  grain = std::max<size_t>(grain, 1);
  if (thread_count() == 0 || n <= grain) {
    body(0, n);
    inlined_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Dynamic chunk claiming: helpers and the caller race on a shared cursor,
  // so stragglers self-balance without a static partition.
  const size_t chunk =
      std::max(grain, (n + (thread_count() + 1) * 4 - 1) /
                          ((thread_count() + 1) * 4));
  auto cursor = std::make_shared<std::atomic<size_t>>(0);
  auto work = [cursor, chunk, n, &body] {
    for (;;) {
      const size_t begin = cursor->fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      body(begin, std::min(n, begin + chunk));
    }
  };

  const size_t helper_count =
      std::min(thread_count(), (n + chunk - 1) / chunk - 1);
  std::vector<std::future<void>> helpers;
  helpers.reserve(helper_count);
  for (size_t i = 0; i < helper_count; ++i) {
    // Queue full? Skip the helper — the caller will claim its chunks.
    auto f = try_submit(work);
    if (!f.has_value()) break;
    helpers.push_back(std::move(*f));
  }

  std::exception_ptr first_error;
  try {
    work();
    inlined_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    first_error = std::current_exception();
  }

  // Help-wait: drain other queued tasks instead of blocking, so a
  // parallel_for issued from inside a pool task cannot deadlock waiting for
  // helpers stuck behind the very task that is waiting.
  for (std::future<void>& f : helpers) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_one()) {
        f.wait_for(std::chrono::microseconds(200));
      }
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool* pool = [] {
    Options options;
    if (const char* env = std::getenv("ZKT_POOL_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) options.threads = static_cast<size_t>(v);
    }
    return new ThreadPool(options);  // leaked: outlives all static users
  }();
  return *pool;
}

}  // namespace zkt::common
