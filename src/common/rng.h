// Deterministic PRNGs for simulation workloads (NOT for cryptography; the
// crypto module has a ChaCha20 DRBG for that). Deterministic seeding keeps
// benchmark workloads and property tests reproducible.
#pragma once

#include <cmath>

#include "common/bytes.h"

namespace zkt {

/// SplitMix64: used to expand seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(u64 seed) : state_(seed) {}

  u64 next() {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  u64 state_;
};

/// xoshiro256** — fast, high-quality simulation PRNG.
class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  u64 next() {
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  u64 uniform(u64 bound) {
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
      u64 r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Exponential with given rate (for Poisson inter-arrival times).
  double exponential(double rate) {
    double u = uniform01();
    if (u >= 1.0) u = 0.9999999999999999;
    return -std::log(1.0 - u) / rate;
  }

  /// Approximately normal via sum of uniforms (Irwin–Hall, 12 terms).
  double normal(double mean, double stddev) {
    double acc = 0.0;
    for (int i = 0; i < 12; ++i) acc += uniform01();
    return mean + (acc - 6.0) * stddev;
  }

 private:
  static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
  u64 s_[4];
};

/// Zipf-distributed ranks in [1, n] with parameter s — models heavy-tailed
/// flow popularity, the standard traffic model for NetFlow workloads.
class ZipfSampler {
 public:
  ZipfSampler(u64 n, double s, u64 seed);

  u64 sample();
  u64 n() const { return n_; }

 private:
  u64 n_;
  double s_;
  double h_integral_n_;
  double h_integral_1_;
  Xoshiro256 rng_;

  double h_integral(double x) const;
  double h(double x) const;
  double h_integral_inverse(double x) const;
};

inline ZipfSampler::ZipfSampler(u64 n, double s, u64 seed)
    : n_(n), s_(s), rng_(seed) {
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  h_integral_1_ = h_integral(1.5) - 1.0;
}

inline double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  if (std::abs(1.0 - s_) < 1e-12) return log_x;
  return (std::exp((1.0 - s_) * log_x) - 1.0) / (1.0 - s_);
}

inline double ZipfSampler::h(double x) const {
  return std::exp(-s_ * std::log(x));
}

inline double ZipfSampler::h_integral_inverse(double x) const {
  if (std::abs(1.0 - s_) < 1e-12) return std::exp(x);
  double t = x * (1.0 - s_) + 1.0;
  if (t < 0) t = 0;
  return std::exp(std::log(t) / (1.0 - s_));
}

inline u64 ZipfSampler::sample() {
  // Rejection-inversion sampling (Hörmann & Derflinger).
  for (;;) {
    const double u =
        h_integral_n_ + rng_.uniform01() * (h_integral_1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    u64 k = static_cast<u64>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= 1.0 - (h_integral(kd + 0.5) - h_integral(kd - 0.5)) ||
        u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

}  // namespace zkt
