// Minimal TOML-subset config for zkt-lint (.zkt-lint.toml).
//
// Dependency-free on purpose: supports exactly the shapes the lint config
// uses — `[section.name]` headers, `key = "string"`, `key = true/false`,
// `key = 123`, and (possibly multi-line) `key = ["a", "b"]` string arrays.
#pragma once

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace zkt::analysis {

class Config {
 public:
  using Value = std::variant<std::string, bool, long, std::vector<std::string>>;

  /// Parse config text; returns Errc::parse_error with a line number on
  /// malformed input.
  static Result<Config> parse(std::string_view text);

  bool has(const std::string& section, const std::string& key) const;

  /// String value, or `fallback` when absent.
  std::string str(const std::string& section, const std::string& key,
                  std::string fallback = {}) const;
  /// Boolean value, or `fallback` when absent.
  bool flag(const std::string& section, const std::string& key,
            bool fallback) const;
  /// Integer value, or `fallback` when absent.
  long num(const std::string& section, const std::string& key,
           long fallback) const;
  /// String-array value; empty when absent.
  std::vector<std::string> strs(const std::string& section,
                                const std::string& key) const;
  /// All keys of a section, in file order.
  std::vector<std::string> keys(const std::string& section) const;

  void set(const std::string& section, const std::string& key, Value v);

 private:
  struct Section {
    std::vector<std::string> order;
    std::map<std::string, Value> values;
  };
  std::map<std::string, Section> sections_;
};

}  // namespace zkt::analysis
